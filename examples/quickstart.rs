//! Quickstart: annotate a black-box module with data examples.
//!
//! Mirrors the paper's Figure 2: given `GetRecord` (Uniprot accession →
//! protein record), generate the data examples that characterize its
//! behavior, then measure partition coverage.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use data_examples::core::coverage::measure_coverage;
use data_examples::core::{generate_examples, GenerationConfig};
use data_examples::ontology::mygrid;
use data_examples::pool::build_synthetic_pool;
use data_examples::values::classify::classify_concept;

fn main() {
    // The domain ontology used for annotation (myGrid-like), and a pool of
    // annotated instances (here synthesized; in production harvested from
    // workflow provenance).
    let ontology = mygrid::ontology();
    let pool = build_synthetic_pool(&ontology, 4, 7);

    // A population of black-box scientific modules. We only ever see their
    // annotated interfaces and an invoke button.
    let universe = data_examples::universe::build();
    let id = "dr:get_uniprot_record".into();
    let module = universe.catalog.get(&id).expect("module is supplied");

    println!("module: {}", module.descriptor().signature());

    // Generate the data examples (§3 of the paper: partition the input
    // domains via the ontology, select realizations from the pool, invoke,
    // keep normal terminations).
    let report = generate_examples(
        module.as_ref(),
        &ontology,
        &pool,
        &GenerationConfig::default(),
    )
    .expect("generation succeeds");

    println!("\ndata examples (Δ):");
    for example in report.examples.iter() {
        println!("  {example}");
    }

    // Coverage of the input and output partitions (§3.3).
    let coverage = measure_coverage(
        module.descriptor(),
        &report.examples,
        &ontology,
        classify_concept,
    )
    .expect("known concepts");
    println!(
        "\npartition coverage: {}/{} ({:.0}%)",
        coverage.covered(),
        coverage.total(),
        coverage.ratio() * 100.0
    );

    // A module with a *broad* input annotation gets one example per
    // sub-domain — Example 3 of the paper.
    let id = "da:align_seq_ebi".into();
    let module = universe.catalog.get(&id).expect("module is supplied");
    let report = generate_examples(
        module.as_ref(),
        &ontology,
        &pool,
        &GenerationConfig::default(),
    )
    .expect("generation succeeds");
    println!(
        "\nmodule: {}\npartitions of its BiologicalSequence input:",
        module.descriptor().signature()
    );
    for example in report.examples.iter() {
        println!(
            "  [{}] {}",
            example.input_partitions.join(", "),
            example.inputs[0].value.preview(30)
        );
    }
}
