//! The §5 user study, end to end: annotate every module, show three
//! simulated life-science researchers each module twice (without and with
//! data examples), and print the Figure 5 numbers.
//!
//! ```sh
//! cargo run --release --example user_study
//! ```

use data_examples::core::{ExampleSet, GenerationConfig};
use data_examples::modules::ModuleId;
use data_examples::pool::build_synthetic_pool;
use data_examples::registry::annotate_catalog;
use data_examples::study::run_user_study;
use data_examples::universe::Category;
use std::collections::BTreeMap;

fn main() {
    let universe = data_examples::universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 4, 9);

    // Step 1–2 of the paper's architecture: annotate parameters (done by
    // the universe builder) and generate data examples into the registry.
    let (registry, failures) = annotate_catalog(
        &universe.catalog,
        &universe.ontology,
        &pool,
        &GenerationConfig::default(),
    );
    assert!(failures.is_empty());
    let examples: BTreeMap<ModuleId, ExampleSet> = registry
        .entries()
        .filter_map(|(id, e)| e.examples.clone().map(|x| (id.clone(), x)))
        .collect();

    // The two-phase protocol.
    let outcome = run_user_study(&universe, &examples);
    println!("modules shown: {}\n", outcome.modules);
    println!(
        "{:<8} {:>18} {:>18}",
        "user", "without examples", "with examples"
    );
    for user in &outcome.users {
        println!(
            "{:<8} {:>18} {:>18}",
            user.user,
            user.without_count(),
            user.with_count()
        );
    }

    println!("\nper-category identification with examples:");
    print!("{:<24}", "category");
    for user in &outcome.users {
        print!("{:>12}", user.user);
    }
    println!();
    for category in Category::ALL {
        print!("{:<24}", category.to_string());
        for user in &outcome.users {
            let (hit, total) = user.per_category[&category];
            print!("{:>12}", format!("{hit}/{total}"));
        }
        println!();
    }

    println!(
        "\nmean identification with examples: {:.0}% (the paper reports 73%)",
        outcome.mean_with_rate() * 100.0
    );
    println!(
        "shim categories (format transformation, retrieval, mapping) are \
         transparent through data examples;\nfiltering and complex analysis \
         stay hard — exactly the paper's finding."
    );
}
