//! Exploring and comparing modules through the registry (Figure 3, steps
//! 3–4): search by consumed/produced concepts, inspect data examples, and
//! compare candidate modules' behavior.
//!
//! ```sh
//! cargo run --example module_explorer
//! ```

use data_examples::core::matching::MappingMode;
use data_examples::core::{compare_modules, GenerationConfig};
use data_examples::pool::build_synthetic_pool;
use data_examples::registry::search::{search, substitution_candidates};
use data_examples::registry::{annotate_catalog, SearchQuery};

fn main() {
    let universe = data_examples::universe::build();
    let ontology = &universe.ontology;
    let pool = build_synthetic_pool(ontology, 4, 5);

    // Run the full annotation pipeline: register interfaces + generate data
    // examples for every supplied module.
    let (registry, failures) = annotate_catalog(
        &universe.catalog,
        ontology,
        &pool,
        &GenerationConfig::default(),
    );
    assert!(failures.is_empty());
    println!("registry holds {} annotated modules", registry.len());

    // An experiment designer looks for something that turns a Uniprot
    // accession into an alignment report.
    let query = SearchQuery::any()
        .consuming("UniprotAccession")
        .producing("AlignmentReport")
        .available();
    let hits = search(&registry, &query, ontology);
    println!("\nmodules consuming UniprotAccession and producing an alignment report:");
    for (id, entry) in &hits {
        println!("  {id}: {}", entry.descriptor.signature());
    }

    // Inspect one candidate's data examples to understand its behavior.
    let (first_id, first) = hits.first().expect("search hit");
    println!("\ndata examples of {first_id}:");
    for example in first.examples.as_ref().expect("annotated").iter().take(3) {
        println!("  {example}");
    }

    // Compare two providers' homology searches: different algorithms, so
    // their behavior is NOT equivalent (§6, Example 4).
    let a = universe
        .catalog
        .get(&"da:blast_uniprot_ebi".into())
        .unwrap();
    let b = universe
        .catalog
        .get(&"da:blast_uniprot_ddbj".into())
        .unwrap();
    let verdict = compare_modules(
        a.as_ref(),
        b.as_ref(),
        ontology,
        &pool,
        &GenerationConfig::default(),
    )
    .expect("comparable");
    println!("\nblast_uniprot_ebi vs blast_uniprot_ddbj: {verdict}");

    // Whereas two front-ends of the same backend ARE equivalent.
    let a = universe.catalog.get(&"dr:get_gene_record".into()).unwrap();
    let b = universe
        .catalog
        .get(&"dr:get_gene_record_rest".into())
        .unwrap();
    let verdict = compare_modules(
        a.as_ref(),
        b.as_ref(),
        ontology,
        &pool,
        &GenerationConfig::default(),
    )
    .expect("comparable");
    println!("get_gene_record vs get_gene_record_rest: {verdict}");

    // Who could stand in for get_protein_sequence_ebi if it vanished?
    let target = universe
        .catalog
        .descriptor(&"dr:get_protein_sequence_ebi".into())
        .unwrap();
    let candidates = substitution_candidates(&registry, target, ontology, MappingMode::Subsuming);
    println!(
        "\ninterface-compatible substitutes for {} ({} found):",
        target.name,
        candidates.len()
    );
    for id in candidates.iter().take(8) {
        println!("  {id}");
    }
}
