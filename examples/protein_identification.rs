//! The paper's Figure 1 workflow: protein identification.
//!
//! `Identify` (peptide masses + error tolerance → protein accession) feeds
//! `GetRecord` (accession → protein record) feeds `SearchSimple` (record +
//! program + database → alignment report).
//!
//! ```sh
//! cargo run --example protein_identification
//! ```

use data_examples::modules::Parameter;
use data_examples::pool::build_synthetic_pool;
use data_examples::values::{StructuralType, Value};
use data_examples::workflow::{enact, validate, Source, Workflow};

fn main() {
    let universe = data_examples::universe::build();
    let ontology = &universe.ontology;

    // Build the Figure 1 workflow.
    let mut b = Workflow::builder("fig1", "protein identification");
    let masses = b.input(Parameter::required(
        "peptide masses",
        StructuralType::list_of(StructuralType::Float),
        "PeptideMassList",
    ));
    let error = b.input(Parameter::required(
        "identification error",
        StructuralType::Float,
        "ErrorTolerance",
    ));
    let program = b.input(Parameter::required(
        "program",
        StructuralType::Text,
        "AlgorithmName",
    ));
    let database = b.input(Parameter::required(
        "database",
        StructuralType::Text,
        "DatabaseName",
    ));
    let identify = b.step("Identify", "da:identify");
    let get_record = b.step("GetRecord", "dr:get_uniprot_record");
    let search = b.step("SearchSimple", "da:search_simple");
    b.link(Source::WorkflowInput(masses), identify, 0);
    b.link(Source::WorkflowInput(error), identify, 1);
    b.link(
        Source::StepOutput {
            step: identify,
            output: 0,
        },
        get_record,
        0,
    );
    b.link(
        Source::StepOutput {
            step: get_record,
            output: 0,
        },
        search,
        0,
    );
    b.link(Source::WorkflowInput(program), search, 1);
    b.link(Source::WorkflowInput(database), search, 2);
    b.output(
        "alignment report",
        Source::StepOutput {
            step: search,
            output: 0,
        },
    );
    let workflow = b.build();

    // Check interoperability of the data links before running (§1).
    validate(&workflow, &universe.catalog, ontology).expect("workflow is well-formed");
    println!(
        "workflow `{}` validates: {} steps",
        workflow.name,
        workflow.steps.len()
    );

    // Sample inputs from the annotated pool.
    let pool = build_synthetic_pool(ontology, 3, 123);
    let pick = |concept: &str, structural: &StructuralType| -> Value {
        pool.get_instance(concept, structural, 0)
            .expect("pool realization")
            .value
            .clone()
    };
    let inputs = vec![
        pick(
            "PeptideMassList",
            &StructuralType::list_of(StructuralType::Float),
        ),
        pick("ErrorTolerance", &StructuralType::Float),
        pick("AlgorithmName", &StructuralType::Text),
        pick("DatabaseName", &StructuralType::Text),
    ];
    println!("\ninputs:");
    for (p, v) in workflow.inputs.iter().zip(&inputs) {
        println!("  {} = {}", p.name, v.preview(60));
    }

    // Enact and show the full provenance trace.
    let trace = enact(&workflow, &universe.catalog, &inputs).expect("enactment succeeds");
    println!("\nprovenance trace:");
    for record in &trace.steps {
        println!(
            "  step {} [{}] {} -> {}",
            record.step,
            record.step_name,
            record
                .inputs
                .iter()
                .map(|v| v.preview(24))
                .collect::<Vec<_>>()
                .join(" | "),
            record
                .outputs
                .iter()
                .map(|v| v.preview(40))
                .collect::<Vec<_>>()
                .join(" | "),
        );
    }
    println!("\nfinal alignment report:\n{}", trace.outputs[0]);
}
