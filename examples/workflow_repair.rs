//! Repairing a decayed workflow (the paper's §6, Figures 6–7).
//!
//! A workflow uses `GetProteinSequence`. Its provider withdraws it. Using
//! the data examples reconstructed from the workflow's provenance traces,
//! the matcher finds a substitute — including `GetBiologicalSequence`,
//! whose parameters are *not* semantically identical (Figure 7): it accepts
//! the broader `DatabaseAccession` domain and is annotated to deliver
//! `BiologicalSequence`, yet behaves identically on the sub-domain this
//! workflow feeds it.
//!
//! ```sh
//! cargo run --example workflow_repair
//! ```

use data_examples::core::matching::{match_against_examples, MappingMode};
use data_examples::modules::Parameter;
use data_examples::pool::build_synthetic_pool;
use data_examples::provenance::{reconstruct_examples, ProvenanceCorpus};
use data_examples::values::StructuralType;
use data_examples::workflow::{enact, EnactError, Source, Workflow};

fn main() {
    let mut universe = data_examples::universe::build();
    let ontology = universe.ontology.clone();
    let pool = build_synthetic_pool(&ontology, 6, 2024);

    // The Figure 7(a) workflow: most-similar protein, then its sequence.
    let mut b = Workflow::builder("fig7", "go term of the most similar protein");
    let protein = b.input(Parameter::required(
        "protein",
        StructuralType::Text,
        "ProteinSequence",
    ));
    let most_similar = b.step("GetMostSimilarProtein", "da:get_most_similar_protein");
    let get_sequence = b.step("GetProteinSequence", "legacy:get_protein_sequence");
    b.link(Source::WorkflowInput(protein), most_similar, 0);
    b.link(
        Source::StepOutput {
            step: most_similar,
            output: 0,
        },
        get_sequence,
        0,
    );
    b.output(
        "sequence",
        Source::StepOutput {
            step: get_sequence,
            output: 0,
        },
    );
    let workflow = b.build();

    // Enact while everything is still supplied; keep the provenance.
    let sample = vec![pool
        .get_instance("ProteinSequence", &StructuralType::Text, 0)
        .expect("realization")
        .value
        .clone()];
    let original = enact(&workflow, &universe.catalog, &sample).expect("pre-decay run");
    let mut corpus = ProvenanceCorpus::new("lab-archive");
    corpus.add(original.clone());
    println!("pre-decay output: {}", original.outputs[0].preview(60));

    // The provider withdraws GetProteinSequence: the workflow decays.
    universe.decay();
    let broken = enact(&workflow, &universe.catalog, &sample);
    assert!(matches!(broken, Err(EnactError::ModuleUnavailable { .. })));
    println!("\nafter decay: {}", broken.unwrap_err());

    // Reconstruct the dead module's data examples from provenance …
    let legacy_id = "legacy:get_protein_sequence".into();
    let descriptor = universe
        .catalog
        .descriptor(&legacy_id)
        .expect("registries keep stale descriptors")
        .clone();
    let examples = reconstruct_examples(&corpus, &legacy_id, &descriptor);
    println!(
        "\nreconstructed {} data example(s) for {}:",
        examples.len(),
        descriptor.name
    );
    for e in examples.iter() {
        println!("  {e}");
    }

    // … and try candidates. GetBiologicalSequence has *different* parameter
    // concepts, so only the subsuming mapping mode (Figure 7) accepts it.
    for (candidate_id, mode) in [
        ("dr:get_protein_sequence_ddbj", MappingMode::Strict),
        ("dr:get_biological_sequence", MappingMode::Subsuming),
    ] {
        let candidate = universe
            .catalog
            .get(&candidate_id.into())
            .expect("candidate supplied");
        let verdict =
            match_against_examples(&descriptor, &examples, candidate.as_ref(), &ontology, mode)
                .expect("comparable");
        println!("\ncandidate {candidate_id} ({mode:?}): {verdict}");

        // Substitute and re-enact; the repaired workflow must deliver the
        // pre-decay results (§6's verification).
        let mut repaired = workflow.clone();
        repaired.substitute_module(&legacy_id, &candidate_id.into());
        let rerun = enact(&repaired, &universe.catalog, &sample).expect("repaired run");
        assert_eq!(rerun.outputs, original.outputs, "verification");
        println!("  repaired workflow re-enacts with identical outputs ✓");
    }
}
