//! Satellite 3 of ISSUE 10: neither backpressure (`Busy`), nor handler
//! panics, nor shutdown may poison the shared operating state or leak
//! admission tickets. The `Chaos` request panics *while holding* the
//! pipeline lock — on the write side this genuinely poisons the std
//! `RwLock` — and the service must keep answering correctly afterwards,
//! including further writes. A rude socket client that disconnects
//! mid-request must likewise leave the daemon serving everyone else.

use dex_core::delta::Delta;
use dexd::{proto, serve_unix, Client, Dexd, Request, Response, ServiceConfig, SocketClient};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn small_service(queue_capacity: usize) -> Arc<Dexd> {
    Dexd::launch(&ServiceConfig {
        scale: 120,
        seed: 9,
        pool_depth: 2,
        workers: 2,
        queue_capacity,
        ..ServiceConfig::default()
    })
}

/// Tickets release on `Drop`, not synchronously with the reply, so give
/// the counter a moment to settle before asserting it drained.
fn assert_drains(svc: &Dexd) {
    let start = Instant::now();
    while svc.in_flight() != 0 {
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "admission tickets leaked: {} still in flight",
            svc.in_flight()
        );
        std::thread::yield_now();
    }
}

/// Calls through transient `Busy` answers: a ticket releases on `Drop`
/// just *after* its reply lands, so even a sequential caller can hit the
/// admission cap for an instant when the capacity is this small.
fn call_retry(client: &Client, req: Request) -> Response {
    loop {
        match client.call(req.clone()) {
            Response::Busy => std::thread::yield_now(),
            resp => return resp,
        }
    }
}

fn stats(client: &Client) -> dexd::StatsReply {
    match call_retry(client, Request::Stats) {
        Response::Stats(s) => s,
        other => panic!("stats answered {other:?}"),
    }
}

#[test]
fn injected_panics_and_busy_storm_leave_state_unpoisoned() {
    let svc = small_service(2);
    let client = Client::new(Arc::clone(&svc));
    let ids = svc.tracked_ids();
    let probe = ids[0].0.clone();

    // Baseline answer, for comparing post-chaos bytes against.
    let baseline = call_retry(&client, Request::FindSubstitutes { id: probe.clone() });
    assert!(matches!(baseline, Response::Substitutes(_)));

    // ---- Panic under the read lock: contained, answered, recovered. ----
    let resp = call_retry(&client, Request::Chaos { hold_write: false });
    assert!(
        matches!(&resp, Response::Error { message } if message.contains("chaos")),
        "read-side chaos answered {resp:?}"
    );
    assert_eq!(
        serde_json::to_string(&call_retry(
            &client,
            Request::FindSubstitutes { id: probe.clone() }
        ))
        .unwrap(),
        serde_json::to_string(&baseline).unwrap(),
        "read-side chaos changed a served answer"
    );

    // ---- Panic under the WRITE lock: the std RwLock is now poisoned; ---
    // every later acquisition must ride through the poison.
    let resp = call_retry(&client, Request::Chaos { hold_write: true });
    assert!(
        matches!(&resp, Response::Error { message } if message.contains("chaos")),
        "write-side chaos answered {resp:?}"
    );
    assert_eq!(
        serde_json::to_string(&call_retry(
            &client,
            Request::FindSubstitutes { id: probe.clone() }
        ))
        .unwrap(),
        serde_json::to_string(&baseline).unwrap(),
        "write-side chaos changed a served answer"
    );

    // Writes still work on the poisoned lock: withdraw + restore a module.
    let victim = ids[1].0.clone();
    for delta in [
        Delta::ModuleWithdraw {
            id: victim.as_str().into(),
        },
        Delta::ModuleRestore {
            id: victim.as_str().into(),
        },
    ] {
        let resp = call_retry(
            &client,
            Request::ApplyDelta {
                deltas: vec![delta],
            },
        );
        assert!(
            matches!(resp, Response::DeltaApplied(_)),
            "post-poison delta answered {resp:?}"
        );
    }

    // An untracked id is refused with an Error — never a panic (the engine
    // itself would assert on it under the write lock).
    let resp = call_retry(
        &client,
        Request::ApplyDelta {
            deltas: vec![Delta::ModuleWithdraw {
                id: "no-such-module".into(),
            }],
        },
    );
    assert!(
        matches!(&resp, Response::Error { message } if message.contains("not tracked")),
        "untracked delta answered {resp:?}"
    );

    // ---- Busy storm: capacity 2, eight concurrent blocking callers. ----
    // Busy rejections must be immediate, leak nothing, and poison nothing.
    std::thread::scope(|scope| {
        for t in 0..8usize {
            let client = client.clone();
            let ids = &ids;
            scope.spawn(move || {
                for k in 0..25usize {
                    let req = Request::FindSubstitutes {
                        id: ids[(t * 25 + k) % ids.len()].0.clone(),
                    };
                    let mut resp = client.call(req.clone());
                    while matches!(resp, Response::Busy) {
                        std::thread::yield_now();
                        resp = client.call(req.clone());
                    }
                    assert!(
                        matches!(resp, Response::Substitutes(_)),
                        "storm request answered {resp:?}"
                    );
                }
            });
        }
    });
    assert_drains(&svc);

    let s = stats(&client);
    assert_eq!(s.handler_panics, 2, "both chaos panics must be counted");
    assert_eq!(s.queue_depth, 0);
    assert!(
        s.in_flight >= 1 && s.in_flight <= 2,
        "stats saw {} in flight (itself plus at most one draining ticket)",
        s.in_flight
    );
    assert!(
        s.busy_rejections > 0,
        "eight callers against capacity 2 must have seen Busy"
    );

    // The baseline answer survived everything above.
    assert_eq!(
        serde_json::to_string(&call_retry(&client, Request::FindSubstitutes { id: probe }))
            .unwrap(),
        serde_json::to_string(&baseline).unwrap(),
    );

    // ---- Shutdown: answered, sticky, and clean. ------------------------
    let resp = call_retry(&client, Request::Shutdown);
    assert!(matches!(resp, Response::ShuttingDown));
    let resp = client.call(Request::Stats);
    assert!(
        matches!(resp, Response::ShuttingDown),
        "post-shutdown request answered {resp:?}"
    );
    svc.join();
    assert_drains(&svc);
}

#[test]
fn socket_client_disconnecting_mid_request_does_not_wedge_the_daemon() {
    let svc = small_service(8);
    let ids = svc.tracked_ids();
    let path = std::env::temp_dir().join(format!("dexd-panic-safety-{}.sock", std::process::id()));
    let server = {
        let svc = Arc::clone(&svc);
        let path = path.clone();
        std::thread::spawn(move || serve_unix(svc, &path))
    };
    let connect = |what: &str| {
        let start = Instant::now();
        loop {
            match UnixStream::connect(&path) {
                Ok(s) => return s,
                Err(e) => {
                    assert!(
                        start.elapsed() < Duration::from_secs(10),
                        "{what}: daemon never bound {}: {e}",
                        path.display()
                    );
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    };

    // Rude client: send a valid request frame, vanish without reading the
    // reply. The worker still runs the job; the reply send fails silently;
    // the ticket releases on drop.
    for id in ids.iter().take(3) {
        let mut rude = connect("rude client");
        proto::write_message(&mut rude, &Request::FindSubstitutes { id: id.0.clone() })
            .expect("rude client write");
        drop(rude);
    }
    // A garbage frame gets an Error reply, not a dead daemon.
    let mut garbage = connect("garbage client");
    proto::write_frame(&mut garbage, b"{\"NoSuchRequest\":{}}").expect("garbage write");
    match proto::read_message::<Response>(&mut garbage) {
        Ok(Response::Error { message }) => {
            assert!(message.contains("malformed"), "got: {message}")
        }
        other => panic!("garbage frame answered {other:?}"),
    }
    drop(garbage);

    // A polite client is still served normally.
    let mut polite = SocketClient::connect(&path).expect("polite connect");
    let resp = polite
        .call(&Request::FindSubstitutes {
            id: ids[0].0.clone(),
        })
        .expect("polite call");
    assert!(
        matches!(resp, Response::Substitutes(_)),
        "polite request answered {resp:?}"
    );
    assert_drains(&svc);
    let resp = polite.call(&Request::Shutdown).expect("shutdown call");
    assert!(matches!(resp, Response::ShuttingDown));
    server
        .join()
        .expect("server thread")
        .expect("serve_unix result");
    svc.join();
    assert!(!path.exists(), "socket file must be removed on exit");
}
