//! The service's correctness contract (ISSUE 10): any interleaving of
//! concurrent dexd requests yields responses **byte-identical** to what a
//! sequential batch pipeline over the same state answers — admission
//! control, queue reordering, substitute-lookup coalescing, and worker
//! scheduling must all be invisible in the payloads. A second property
//! pins the same contract with seeded transient faults injected into every
//! module, and with a lock-poisoning `Chaos` panic thrown mid-run.
//!
//! Shape of each case: one `Dexd` service and one bare
//! [`IncrementalPipeline`] oracle are built over identical mini worlds.
//! Seeded delta batches go to both (sequentially); between batches a burst
//! of read requests hits the service from several client threads at once,
//! and every response is compared — as serialized JSON bytes — against the
//! reply the oracle's accessors dictate.

use dex_core::delta::Delta;
use dex_core::GenerationConfig;
use dex_experiments::IncrementalPipeline;
use dex_modules::{
    FaultPlan, FaultyModule, FnModule, InvocationError, ModuleDescriptor, ModuleKind, Parameter,
    RetryPolicy, SharedModule,
};
use dex_pool::{build_synthetic_pool, AnnotatedInstance, InstancePool};
use dex_universe::Universe;
use dex_values::{StructuralType, Value};
use dexd::{AnnotationReply, Client, Dexd, Request, Response, ServiceConfig, SubstitutesReply};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

const CONCEPTS: &[&str] = &[
    "BiologicalSequence",
    "DNASequence",
    "RNASequence",
    "ProteinSequence",
    "AlgorithmName",
];

const MODULES: usize = 8;

/// Client threads per read burst.
const BURST_THREADS: usize = 3;
/// Requests per client thread per burst.
const BURST_LEN: usize = 4;

/// Deterministic black-box behavior, scrambled by `salt` (same digest
/// construction as the incremental equivalence suite).
fn mini_module(slot: usize, inputs: &[usize], salt: u64, reject_pct: u64) -> FnModule {
    let params: Vec<Parameter> = inputs
        .iter()
        .enumerate()
        .map(|(i, &c)| Parameter::required(format!("in{i}"), StructuralType::Text, CONCEPTS[c]))
        .collect();
    FnModule::new(
        ModuleDescriptor::new(
            format!("svc:m{slot}"),
            format!("SvcModule{slot}"),
            ModuleKind::RestService,
            params,
            vec![Parameter::required(
                "digest",
                StructuralType::Text,
                "Document",
            )],
        ),
        move |values| {
            let mut acc = salt;
            for v in values {
                if let Some(t) = v.as_text() {
                    for b in t.bytes() {
                        acc = acc.wrapping_mul(1099511628211).wrapping_add(u64::from(b));
                    }
                }
            }
            if acc % 100 < reject_pct {
                return Err(InvocationError::rejected("salted rejection"));
            }
            Ok(vec![Value::text(format!("{acc:016x}"))])
        },
    )
}

/// Input shape of slot `i`: three shape classes so fingerprint buckets
/// collide (and the coalescing path actually groups lookups).
fn shape_for(slot: usize, shape_salt: u64) -> Vec<usize> {
    let class = slot % 3;
    let pick = |k: u32| ((shape_salt >> (8 * k)) as usize) % CONCEPTS.len();
    match class {
        0 => vec![pick(0)],
        1 => vec![pick(1), pick(2)],
        _ => vec![pick(3)],
    }
}

/// Builds the mini world — called once for the service and once,
/// identically, for the sequential oracle.
fn mini_world(
    shape_salt: u64,
    behavior_salt: u64,
    reject_pct: u64,
    faults: Option<(u64, u32)>,
) -> (Universe, InstancePool) {
    let ontology = dex_ontology::mygrid::ontology();
    let mut catalog = dex_modules::ModuleCatalog::new();
    for slot in 0..MODULES {
        let inputs = shape_for(slot, shape_salt);
        let module = mini_module(
            slot,
            &inputs,
            behavior_salt ^ (slot as u64).wrapping_mul(0x9e37_79b9),
            reject_pct,
        );
        let shared: SharedModule = match faults {
            None => Arc::new(module),
            Some((fault_seed, fault_rate_pct)) => Arc::new(FaultyModule::new(
                Arc::new(module) as SharedModule,
                FaultPlan {
                    seed: fault_seed ^ slot as u64,
                    fault_rate_millis: fault_rate_pct * 10,
                    max_consecutive: 2,
                    latency_ticks: 1,
                    flaps: Vec::new(),
                },
            )),
        };
        catalog.register(shared);
    }
    let pool = build_synthetic_pool(&ontology, 3, 7);
    let universe = Universe {
        catalog,
        ontology,
        categories: BTreeMap::new(),
        specs: BTreeMap::new(),
        legacy: Vec::new(),
        expected_match: BTreeMap::new(),
        popular: BTreeSet::new(),
        unfamiliar_output: BTreeSet::new(),
        partial_output: BTreeSet::new(),
    };
    (universe, pool)
}

/// Decodes one op word into a delta (mirrors the incremental suite; all
/// module ids are tracked, so the service never rejects a batch).
fn decode_delta(i: usize, word: u64) -> Delta {
    let concept = CONCEPTS[(word >> 8) as usize % CONCEPTS.len()];
    match word % 5 {
        0 => Delta::PoolInsert {
            instance: AnnotatedInstance::synthetic(
                Value::text(format!("ZX{:04x}", word >> 16 & 0xffff)),
                concept,
            ),
        },
        1 => Delta::PoolRemove {
            concept: concept.to_string(),
            occurrence: (word >> 16) as usize % 4,
        },
        2 => Delta::ModuleWithdraw {
            id: format!("svc:m{}", (word >> 16) as usize % MODULES).into(),
        },
        3 => Delta::ModuleRestore {
            id: format!("svc:m{}", (word >> 16) as usize % MODULES).into(),
        },
        _ => Delta::OntologyEdgeAdd {
            parent: concept.to_string(),
            child: format!("GrownConcept{i}"),
        },
    }
}

/// Decodes the read burst one op word dictates: a deterministic list of
/// annotation and substitute lookups aimed at seeded slots.
fn decode_burst(word: u64) -> Vec<Request> {
    (0..BURST_THREADS * BURST_LEN)
        .map(|k| {
            let bits = word
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                .wrapping_add(k as u64 * 0x9e37_79b9);
            let id = format!("svc:m{}", (bits >> 3) as usize % MODULES);
            if bits.is_multiple_of(2) {
                Request::FindSubstitutes { id }
            } else {
                Request::AnnotateModule { id }
            }
        })
        .collect()
}

/// What the sequential pipeline answers for a read request — the oracle
/// the service must agree with byte-for-byte.
fn oracle_response(p: &IncrementalPipeline, req: &Request) -> Response {
    match req {
        Request::AnnotateModule { id } => {
            let mid = dex_modules::ModuleId(id.clone());
            match p.annotation(&mid) {
                None => Response::Error {
                    message: format!("module `{id}` is not tracked by this registry"),
                },
                Some((available, outcome)) => Response::Annotation(AnnotationReply {
                    id: id.clone(),
                    available,
                    examples: outcome.as_ref().ok().map(|r| r.examples.clone()),
                    error: outcome.as_ref().err().map(|e| e.to_string()),
                    invocations: outcome.as_ref().map(|r| r.invocations).unwrap_or(0),
                    transient_failures: outcome.as_ref().map(|r| r.transient_failures).unwrap_or(0),
                }),
            }
        }
        Request::FindSubstitutes { id } => {
            let mid = dex_modules::ModuleId(id.clone());
            match p.substitutes(&mid) {
                None => Response::Error {
                    message: format!("module `{id}` is not tracked by this registry"),
                },
                Some(answer) => Response::Substitutes(SubstitutesReply {
                    id: id.clone(),
                    available: answer.available,
                    candidates_compared: answer.candidates_compared,
                    ranked: answer.ranked.into_iter().map(|(m, v)| (m.0, v)).collect(),
                }),
            }
        }
        other => unreachable!("burst only carries reads, got {other:?}"),
    }
}

/// Drives one full case: identical worlds for service and oracle, seeded
/// delta batches applied to both, concurrent read bursts between batches,
/// every response compared as serialized bytes.
fn check_service_equivalence(
    shape_salt: u64,
    behavior_salt: u64,
    reject_pct: u64,
    ops: &[u64],
    faults: Option<(u64, u32)>,
    inject_chaos: bool,
) {
    let config = GenerationConfig {
        retry: if faults.is_some() {
            RetryPolicy::transient(4)
        } else {
            RetryPolicy::none()
        },
        ..GenerationConfig::default()
    };
    let cfg = ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        generation: config.clone(),
        ..ServiceConfig::default()
    };

    let (svc_u, svc_p) = mini_world(shape_salt, behavior_salt, reject_pct, faults);
    let svc = Dexd::launch_with(svc_u, svc_p, &cfg);
    let client = Client::new(Arc::clone(&svc));

    let (oracle_u, oracle_p) = mini_world(shape_salt, behavior_salt, reject_pct, faults);
    let mut oracle = IncrementalPipeline::bootstrap(oracle_u, oracle_p, config);

    for (i, &word) in ops.iter().enumerate() {
        // ---- Concurrent read burst: any interleaving, same bytes. ------
        if inject_chaos && i == ops.len() / 2 {
            // Poison the write lock mid-run; the service must shrug it off.
            let resp = client.call(Request::Chaos { hold_write: true });
            assert!(
                matches!(&resp, Response::Error { message } if message.contains("chaos")),
                "chaos answered {resp:?}"
            );
        }
        let requests = decode_burst(word);
        let answered: Vec<(Request, Response)> = std::thread::scope(|scope| {
            let handles: Vec<_> = requests
                .chunks(BURST_LEN)
                .map(|chunk| {
                    let client = client.clone();
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|req| {
                                let mut resp = client.call(req.clone());
                                while matches!(resp, Response::Busy) {
                                    std::thread::yield_now();
                                    resp = client.call(req.clone());
                                }
                                (req.clone(), resp)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("burst thread"))
                .collect()
        });
        for (req, got) in &answered {
            let want = oracle_response(&oracle, req);
            let got_bytes = serde_json::to_string(got).expect("serialize service response");
            let want_bytes = serde_json::to_string(&want).expect("serialize oracle response");
            assert_eq!(
                got_bytes, want_bytes,
                "concurrent response diverged from the sequential pipeline for {req:?}"
            );
        }

        // ---- Sequential write: same delta batch to both sides. ---------
        let delta = decode_delta(i, word);
        let want_report = oracle.apply(std::slice::from_ref(&delta));
        let resp = client.call(Request::ApplyDelta {
            deltas: vec![delta],
        });
        match resp {
            Response::DeltaApplied(got_report) => assert_eq!(
                got_report, want_report,
                "delta accounting diverged after {i} ops"
            ),
            other => panic!("ApplyDelta answered {other:?}"),
        }
    }

    // Final burst after the last delta, then a clean shutdown.
    for req in decode_burst(0xD00D ^ ops.len() as u64) {
        let got = client.call(req.clone());
        let want = oracle_response(&oracle, &req);
        assert_eq!(
            serde_json::to_string(&got).unwrap(),
            serde_json::to_string(&want).unwrap(),
            "post-run response diverged for {req:?}"
        );
    }
    svc.shutdown();
    svc.join();
}

proptest! {
    /// Concurrent service == sequential pipeline, byte for byte, for any
    /// seeded request interleaving and delta sequence.
    #[test]
    fn concurrent_responses_match_sequential_pipeline(
        shape_salt in any::<u64>(),
        behavior_salt in any::<u64>(),
        reject_pct in 0u64..40,
        ops in proptest::collection::vec(any::<u64>(), 1..6),
    ) {
        check_service_equivalence(shape_salt, behavior_salt, reject_pct, &ops, None, false);
    }

    /// Same contract with seeded transient faults in every module and a
    /// lock-poisoning chaos panic injected mid-run: the retry layer
    /// converges both sides to the true outcomes, and poison recovery
    /// leaves the served state untouched.
    #[test]
    fn equivalence_survives_faults_and_injected_panics(
        shape_salt in any::<u64>(),
        behavior_salt in any::<u64>(),
        reject_pct in 0u64..40,
        fault_seed in any::<u64>(),
        fault_rate_pct in 1u32..31,
        ops in proptest::collection::vec(any::<u64>(), 1..5),
    ) {
        check_service_equivalence(
            shape_salt,
            behavior_salt,
            reject_pct,
            &ops,
            Some((fault_seed, fault_rate_pct)),
            true,
        );
    }
}
