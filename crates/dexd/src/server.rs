//! Unix-socket front end: one listener, one thread per connection, frames
//! decoded into [`Request`]s and pushed through [`Dexd::call`].
//!
//! The accept loop polls with a short timeout so it notices shutdown (set
//! by a `Shutdown` request on any connection, or programmatically) without
//! a self-pipe. A connection that sends garbage gets an `Error` frame when
//! the payload is undecodable, or a closed socket when the framing itself
//! is broken — either way the daemon keeps serving everyone else.

use crate::proto::{read_message, write_message, Request, Response};
use crate::service::Dexd;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Binds `path` and serves until the service shuts down. Removes a stale
/// socket file at `path` first, and removes it again on exit. Returns when
/// shutdown completes (worker threads are *not* joined here — the caller
/// owns that via [`Dexd::join`]).
pub fn serve_unix(svc: Arc<Dexd>, path: &Path) -> io::Result<()> {
    // A previous daemon that died uncleanly leaves its socket file behind;
    // binding over it requires removing it first.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;

    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !svc.is_shutdown() {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let svc = Arc::clone(&svc);
                conns.push(
                    std::thread::Builder::new()
                        .name("dexd-conn".to_string())
                        .spawn(move || serve_connection(svc, stream))
                        .expect("spawn dexd connection thread"),
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                let _ = std::fs::remove_file(path);
                return Err(e);
            }
        }
        // Reap finished connection threads so a long-lived daemon doesn't
        // accumulate handles.
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// Serves one connection until the peer closes, the framing breaks, or the
/// service shuts down.
fn serve_connection(svc: Arc<Dexd>, stream: UnixStream) {
    // The accept loop hands over a nonblocking socket (inherited on some
    // platforms); per-connection IO is blocking.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let req: Request = match read_message(&mut reader) {
            Ok(req) => req,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return, // peer closed
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Framing survived but the payload is not a request.
                let _ = write_message(
                    &mut writer,
                    &Response::Error {
                        message: format!("malformed request: {e}"),
                    },
                );
                continue;
            }
            Err(_) => return,
        };
        let resp = svc.call(req);
        let done = matches!(resp, Response::ShuttingDown);
        if write_message(&mut writer, &resp).is_err() {
            // Peer vanished mid-reply; the service already did the work and
            // released the admission ticket — just drop the connection.
            return;
        }
        if done {
            return;
        }
    }
}

/// Blocking client for the Unix-socket protocol — the shape external
/// tooling (and the CI smoke test) uses.
pub struct SocketClient {
    stream: UnixStream,
}

impl SocketClient {
    /// Connects to a serving daemon.
    pub fn connect(path: &Path) -> io::Result<SocketClient> {
        Ok(SocketClient {
            stream: UnixStream::connect(path)?,
        })
    }

    /// Sends one request and blocks for its response.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        write_message(&mut self.stream, req)?;
        read_message(&mut self.stream)
    }
}
