//! The resident service core: operating state built once, queried many
//! times.
//!
//! [`Dexd::launch`] constructs everything a registry query needs — catalog,
//! ontology interval index, concept-indexed pool, fingerprint index, warm
//! [`dex_modules::InvocationCache`], live
//! [`IncrementalPipeline`] — exactly once, then answers requests from that
//! state. Per-request cost drops from "rebuild the pipeline" to
//! "cache-mostly lookup".
//!
//! # Concurrency model
//!
//! The pipeline sits behind one [`RwLock`] ([`ServiceState`]): read
//! endpoints (`AnnotateModule`, `FindSubstitutes`, `ValidateWorkflow`,
//! `Stats`) share the read side; `ApplyDelta` takes the write side, so
//! readers already holding the lock keep serving the previous snapshot
//! while the writer waits, and new readers see the mutated state only once
//! the batch is fully absorbed. Lock acquisition always rides through
//! poisoning (`PoisonError::into_inner`): a contained handler panic can
//! never brick the service.
//!
//! # Admission control and batching
//!
//! Requests pass an admission gate (a counter capped at the configured
//! queue capacity) before entering the bounded queue; past the cap the
//! caller gets [`Response::Busy`] immediately — memory is bounded by
//! construction, never by luck. Each admitted request carries a [`Ticket`]
//! whose `Drop` releases the slot, so a worker panic or a vanished client
//! cannot leak admission capacity. Worker threads drain the queue;
//! a `FindSubstitutes` at the head pulls every other queued substitute
//! lookup into one batch, grouped by fingerprint bucket, so lookups that
//! would each scan the same bucket share a single matrix pass under a
//! single read acquisition.
//!
//! Handlers run inside `catch_unwind`: a panic becomes a
//! [`Response::Error`] (counted in [`StatsReply::handler_panics`]), the
//! ticket is released, and the next request proceeds.

use crate::proto::{
    AnnotationReply, BrokenStep, Request, Response, StatsReply, SubstitutesReply, ValidationReply,
};
use dex_core::delta::Delta;
use dex_core::GenerationConfig;
use dex_experiments::IncrementalPipeline;
use dex_modules::ModuleId;
use dex_pool::{build_synthetic_pool, build_text_pool, InstancePool};
use dex_universe::scale::{build_scaled, ScalePlan};
use dex_universe::Universe;
use dex_workflow::Workflow;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// Most substitute lookups one batch may coalesce (the head request plus
/// queued peers). Bounds the time a single read acquisition is held.
const MAX_BATCH: usize = 64;

/// Knobs of one service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Modules in the scaled universe; `0` builds the paper's byte-frozen
    /// 252-module profile instead.
    pub scale: usize,
    /// Master seed for the scaled world and pool.
    pub seed: u64,
    /// Per-concept instances in the backing pool.
    pub pool_depth: usize,
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Admission limit: requests queued or in service before `Busy`.
    pub queue_capacity: usize,
    /// Generation knobs (retry policy included) for the pipeline.
    pub generation: GenerationConfig,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            scale: 0,
            seed: 42,
            pool_depth: 4,
            workers: 4,
            queue_capacity: 64,
            generation: GenerationConfig::default(),
        }
    }
}

impl ServiceConfig {
    /// A service over a scaled world of `scale` modules.
    pub fn at_scale(scale: usize, seed: u64) -> ServiceConfig {
        ServiceConfig {
            scale,
            seed,
            ..ServiceConfig::default()
        }
    }
}

/// The operating state built once at launch: the live pipeline behind the
/// readers/writer lock, plus build metadata.
pub struct ServiceState {
    pipeline: RwLock<IncrementalPipeline>,
    /// Wall time of the one-off pipeline bootstrap, milliseconds — the cost
    /// every cold batch run pays and the resident service amortizes away.
    pub bootstrap_ms: f64,
    started: Instant,
}

/// Admission slot, held from enqueue to response. Dropping it — normally,
/// on a worker panic, or when a disconnected client's job is abandoned —
/// releases the slot, so the admission counter can never leak.
struct Ticket(Arc<AtomicUsize>);

impl Drop for Ticket {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// One queued request with its reply channel and admission slot.
struct Job {
    req: Request,
    reply: mpsc::Sender<Response>,
    /// Held for its `Drop`: releases the admission slot when the job is
    /// answered or abandoned.
    #[allow(dead_code)]
    ticket: Ticket,
    enqueued: Instant,
}

#[derive(Default)]
struct Counters {
    served: AtomicU64,
    busy: AtomicU64,
    batch_passes: AtomicU64,
    coalesced: AtomicU64,
    deltas: AtomicU64,
    panics: AtomicU64,
}

/// The resident annotation service.
pub struct Dexd {
    state: ServiceState,
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
    active: Arc<AtomicUsize>,
    capacity: usize,
    shutdown: AtomicBool,
    counters: Counters,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Builds the world the config describes (scaled or paper profile).
fn build_world(cfg: &ServiceConfig) -> (Universe, InstancePool) {
    if cfg.scale == 0 {
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, cfg.pool_depth.max(1), cfg.seed);
        (universe, pool)
    } else {
        let world = build_scaled(&ScalePlan::new(cfg.scale, cfg.seed));
        let pool = build_text_pool(&world.universe.ontology, cfg.pool_depth.max(1), cfg.seed);
        (world.universe, pool)
    }
}

/// Rides a mutex through poisoning: state guarded here is kept consistent
/// by construction, not by the poison flag.
fn lock_mutex<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Best-effort rendering of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

impl Dexd {
    /// Builds the world described by `cfg` and launches the service over
    /// it.
    pub fn launch(cfg: &ServiceConfig) -> Arc<Dexd> {
        let (universe, pool) = build_world(cfg);
        Dexd::launch_with(universe, pool, cfg)
    }

    /// Launches the service over a caller-built world — the hook tests use
    /// to serve deterministic mini-universes.
    pub fn launch_with(universe: Universe, pool: InstancePool, cfg: &ServiceConfig) -> Arc<Dexd> {
        let _span = dex_telemetry::span("dexd.launch");
        let t = Instant::now();
        let pipeline = IncrementalPipeline::bootstrap(universe, pool, cfg.generation.clone());
        let bootstrap_ms = t.elapsed().as_secs_f64() * 1000.0;

        let svc = Arc::new(Dexd {
            state: ServiceState {
                pipeline: RwLock::new(pipeline),
                bootstrap_ms,
                started: Instant::now(),
            },
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            active: Arc::new(AtomicUsize::new(0)),
            capacity: cfg.queue_capacity.max(1),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            workers: Mutex::new(Vec::new()),
        });
        let handles: Vec<_> = (0..cfg.workers.max(1))
            .map(|w| {
                let svc = Arc::clone(&svc);
                std::thread::Builder::new()
                    .name(format!("dexd-worker-{w}"))
                    .spawn(move || svc.worker_loop())
                    .expect("spawn dexd worker")
            })
            .collect();
        *lock_mutex(&svc.workers) = handles;
        svc
    }

    /// Submits one request and blocks until its response. This is the
    /// in-process path; the socket server calls it per decoded frame, and
    /// [`crate::Client`] wraps it for tests and embedding.
    pub fn call(&self, req: Request) -> Response {
        if self.shutdown.load(Ordering::SeqCst) {
            return Response::ShuttingDown;
        }
        let Some(ticket) = self.try_admit() else {
            self.counters.busy.fetch_add(1, Ordering::Relaxed);
            dex_telemetry::counter_add("dex.dexd.busy", 1);
            return Response::Busy;
        };
        let (tx, rx) = mpsc::channel();
        {
            let mut q = lock_mutex(&self.queue);
            q.push_back(Job {
                req,
                reply: tx,
                ticket,
                enqueued: Instant::now(),
            });
            dex_telemetry::gauge_set("dex.dexd.queue_depth", q.len() as i64);
        }
        self.work_ready.notify_one();
        match rx.recv() {
            Ok(resp) => resp,
            Err(_) => Response::Error {
                message: "the service dropped the request during shutdown".to_string(),
            },
        }
    }

    /// Whether the service has begun winding down.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Programmatic shutdown (the `Shutdown` request does the same).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.work_ready.notify_all();
    }

    /// Joins the worker threads. Call after [`Dexd::shutdown`].
    pub fn join(&self) {
        let handles = std::mem::take(&mut *lock_mutex(&self.workers));
        for h in handles {
            let _ = h.join();
        }
    }

    /// Wall time the one-off bootstrap took, milliseconds.
    pub fn bootstrap_ms(&self) -> f64 {
        self.state.bootstrap_ms
    }

    /// Requests admitted and not yet answered.
    pub fn in_flight(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Snapshot of every tracked module id (clients use it to aim queries).
    pub fn tracked_ids(&self) -> Vec<ModuleId> {
        self.read_pipeline().tracked_ids().to_vec()
    }

    fn try_admit(&self) -> Option<Ticket> {
        let mut cur = self.active.load(Ordering::Relaxed);
        loop {
            if cur >= self.capacity {
                return None;
            }
            match self.active.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Ticket(Arc::clone(&self.active))),
                Err(now) => cur = now,
            }
        }
    }

    fn read_pipeline(&self) -> RwLockReadGuard<'_, IncrementalPipeline> {
        self.state
            .pipeline
            .read()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn write_pipeline(&self) -> RwLockWriteGuard<'_, IncrementalPipeline> {
        self.state
            .pipeline
            .write()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn worker_loop(&self) {
        loop {
            let batch = {
                let mut q = lock_mutex(&self.queue);
                loop {
                    if self.shutdown.load(Ordering::SeqCst) {
                        // Answer stragglers instead of stranding them.
                        while let Some(job) = q.pop_front() {
                            let _ = job.reply.send(Response::ShuttingDown);
                        }
                        return;
                    }
                    if let Some(first) = q.pop_front() {
                        break Self::drain_batch(&mut q, first);
                    }
                    q = self
                        .work_ready
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            self.handle_batch(batch);
        }
    }

    /// Pulls every queued substitute lookup behind a substitute-lookup head
    /// into one batch (other request kinds keep their queue position).
    fn drain_batch(q: &mut VecDeque<Job>, first: Job) -> Vec<Job> {
        let mut batch = vec![first];
        if matches!(batch[0].req, Request::FindSubstitutes { .. }) {
            let mut i = 0;
            while i < q.len() && batch.len() < MAX_BATCH {
                if matches!(q[i].req, Request::FindSubstitutes { .. }) {
                    batch.push(q.remove(i).expect("index bounded by len"));
                } else {
                    i += 1;
                }
            }
        }
        dex_telemetry::gauge_set("dex.dexd.queue_depth", q.len() as i64);
        batch
    }

    fn handle_batch(&self, batch: Vec<Job>) {
        if matches!(batch[0].req, Request::FindSubstitutes { .. }) {
            self.handle_substitutes_batch(batch);
        } else {
            for job in batch {
                self.handle_one(job);
            }
        }
    }

    /// Answers a batch of substitute lookups under one read acquisition,
    /// grouped by fingerprint bucket: lookups sharing a bucket share one
    /// matrix pass.
    fn handle_substitutes_batch(&self, batch: Vec<Job>) {
        let _span = dex_telemetry::span("dexd.substitutes_batch");
        let pipeline = self.read_pipeline();
        let mut groups: BTreeMap<Option<u64>, Vec<Job>> = BTreeMap::new();
        for job in batch {
            let key = match &job.req {
                Request::FindSubstitutes { id } => pipeline.bucket_key(&ModuleId(id.clone())),
                _ => None,
            };
            groups.entry(key).or_default().push(job);
        }
        for jobs in groups.into_values() {
            self.counters.batch_passes.fetch_add(1, Ordering::Relaxed);
            self.counters
                .coalesced
                .fetch_add(jobs.len().saturating_sub(1) as u64, Ordering::Relaxed);
            dex_telemetry::counter_add("dex.dexd.batch_passes", 1);
            for job in jobs {
                let resp = self.run_handler(|| substitutes_reply(&pipeline, &job.req));
                self.finish(job, resp);
            }
        }
    }

    fn handle_one(&self, job: Job) {
        let resp = match &job.req {
            Request::AnnotateModule { id } => {
                let p = self.read_pipeline();
                self.run_handler(|| annotation_reply(&p, id))
            }
            Request::FindSubstitutes { .. } => {
                unreachable!("substitute lookups route through the batch path")
            }
            Request::ValidateWorkflow { workflow } => {
                let p = self.read_pipeline();
                self.run_handler(|| validation_reply(&p, workflow))
            }
            Request::ApplyDelta { deltas } => self.apply_delta(deltas),
            Request::Stats => {
                let p = self.read_pipeline();
                self.stats_reply(&p)
            }
            Request::Shutdown => {
                self.shutdown();
                Response::ShuttingDown
            }
            Request::Chaos { hold_write } => self.chaos(*hold_write),
        };
        self.finish(job, resp);
    }

    /// The write path: deltas precondition-checked under the read lock
    /// (the engine treats an untracked id as a programming error and
    /// asserts), then applied under the write lock while readers keep
    /// serving the previous snapshot.
    fn apply_delta(&self, deltas: &[Delta]) -> Response {
        {
            let p = self.read_pipeline();
            for d in deltas {
                if let Delta::ModuleWithdraw { id } | Delta::ModuleRestore { id } = d {
                    if p.availability(id).is_none() {
                        return Response::Error {
                            message: format!(
                                "delta references `{id}`, which is not tracked by this registry"
                            ),
                        };
                    }
                }
            }
        }
        let _span = dex_telemetry::span("dexd.apply_delta");
        let mut p = self.write_pipeline();
        let resp = self.run_handler(|| Response::DeltaApplied(p.apply(deltas)));
        if matches!(resp, Response::DeltaApplied(_)) {
            self.counters.deltas.fetch_add(1, Ordering::Relaxed);
            dex_telemetry::counter_add("dex.dexd.deltas", 1);
        }
        resp
    }

    /// Test-only: panic while *holding* the pipeline lock inside the
    /// handler, so the unwind drops the guard and (on the write side)
    /// poisons the `RwLock` — exactly the condition the poison-riding
    /// accessors must recover from.
    fn chaos(&self, hold_write: bool) -> Response {
        if hold_write {
            self.run_handler(|| {
                let _guard = self.write_pipeline();
                panic!("chaos: injected panic under the write lock");
            })
        } else {
            self.run_handler(|| {
                let _guard = self.read_pipeline();
                panic!("chaos: injected panic under the read lock");
            })
        }
    }

    /// Runs one handler with panic containment: a panic becomes an `Error`
    /// response instead of killing the worker (and the admission ticket
    /// still releases via `Drop`).
    fn run_handler(&self, f: impl FnOnce() -> Response) -> Response {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(resp) => resp,
            Err(payload) => {
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                dex_telemetry::counter_add("dex.dexd.handler_panics", 1);
                Response::Error {
                    message: format!("handler panicked: {}", panic_message(payload.as_ref())),
                }
            }
        }
    }

    fn stats_reply(&self, p: &IncrementalPipeline) -> Response {
        let cache = p.invocation_cache().stats();
        let queue_depth = lock_mutex(&self.queue).len();
        Response::Stats(StatsReply {
            uptime_ms: self.state.started.elapsed().as_millis() as u64,
            modules_tracked: p.tracked_ids().len(),
            modules_available: p.available_count(),
            requests_served: self.counters.served.load(Ordering::Relaxed),
            busy_rejections: self.counters.busy.load(Ordering::Relaxed),
            queue_depth,
            queue_capacity: self.capacity,
            in_flight: self.active.load(Ordering::Acquire),
            batch_passes: self.counters.batch_passes.load(Ordering::Relaxed),
            coalesced_lookups: self.counters.coalesced.load(Ordering::Relaxed),
            deltas_applied: self.counters.deltas.load(Ordering::Relaxed),
            handler_panics: self.counters.panics.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_hit_rate: cache.hit_rate(),
        })
    }

    fn finish(&self, job: Job, resp: Response) {
        let ns = job.enqueued.elapsed().as_nanos() as u64;
        dex_telemetry::observe_ns(endpoint_metric(&job.req), ns);
        self.counters.served.fetch_add(1, Ordering::Relaxed);
        dex_telemetry::counter_add("dex.dexd.requests", 1);
        // A vanished client (dropped receiver) is not an error: the ticket
        // still releases when `job` drops.
        let _ = job.reply.send(resp);
    }
}

/// Per-endpoint latency histogram name (static, no per-request allocation).
fn endpoint_metric(req: &Request) -> &'static str {
    match req {
        Request::AnnotateModule { .. } => "dex.dexd.annotate_ns",
        Request::FindSubstitutes { .. } => "dex.dexd.substitutes_ns",
        Request::ValidateWorkflow { .. } => "dex.dexd.validate_ns",
        Request::ApplyDelta { .. } => "dex.dexd.delta_ns",
        Request::Stats => "dex.dexd.stats_ns",
        Request::Shutdown => "dex.dexd.shutdown_ns",
        Request::Chaos { .. } => "dex.dexd.chaos_ns",
    }
}

fn annotation_reply(p: &IncrementalPipeline, id: &str) -> Response {
    let mid = ModuleId(id.to_string());
    match p.annotation(&mid) {
        None => Response::Error {
            message: format!("module `{id}` is not tracked by this registry"),
        },
        Some((available, outcome)) => Response::Annotation(AnnotationReply {
            id: id.to_string(),
            available,
            examples: outcome.as_ref().ok().map(|r| r.examples.clone()),
            error: outcome.as_ref().err().map(|e| e.to_string()),
            invocations: outcome.as_ref().map(|r| r.invocations).unwrap_or(0),
            transient_failures: outcome.as_ref().map(|r| r.transient_failures).unwrap_or(0),
        }),
    }
}

fn substitutes_reply(p: &IncrementalPipeline, req: &Request) -> Response {
    let Request::FindSubstitutes { id } = req else {
        unreachable!("batch path only carries substitute lookups");
    };
    let mid = ModuleId(id.clone());
    match p.substitutes(&mid) {
        None => Response::Error {
            message: format!("module `{id}` is not tracked by this registry"),
        },
        Some(answer) => Response::Substitutes(SubstitutesReply {
            id: id.clone(),
            available: answer.available,
            candidates_compared: answer.candidates_compared,
            ranked: answer.ranked.into_iter().map(|(m, v)| (m.0, v)).collect(),
        }),
    }
}

fn validation_reply(p: &IncrementalPipeline, workflow: &Workflow) -> Response {
    let structural_errors: Vec<String> =
        match dex_workflow::validate(workflow, &p.universe().catalog, &p.universe().ontology) {
            Ok(()) => Vec::new(),
            Err(errors) => errors.iter().map(|e| e.to_string()).collect(),
        };
    let broken_steps: Vec<BrokenStep> = workflow
        .steps
        .iter()
        .enumerate()
        .filter(|(_, s)| !p.universe().catalog.is_available(&s.module))
        .map(|(i, s)| BrokenStep {
            step: i,
            module: s.module.0.clone(),
            substitute: p
                .substitutes(&s.module)
                .and_then(|a| a.best().cloned())
                .map(|(m, v)| (m.0, v)),
        })
        .collect();
    let ok = structural_errors.is_empty() && broken_steps.is_empty();
    Response::Validation(ValidationReply {
        id: workflow.id.clone(),
        structural_errors,
        broken_steps,
        ok,
    })
}

/// Thin in-process client over a launched service — same admission, queue,
/// and worker path as the socket server, minus the socket.
#[derive(Clone)]
pub struct Client {
    svc: Arc<Dexd>,
}

impl Client {
    /// Wraps a launched service.
    pub fn new(svc: Arc<Dexd>) -> Client {
        Client { svc }
    }

    /// Submits one request and blocks for the response.
    pub fn call(&self, req: Request) -> Response {
        self.svc.call(req)
    }

    /// The wrapped service.
    pub fn service(&self) -> &Arc<Dexd> {
        &self.svc
    }
}
