//! `dexd` — the resident annotation service.
//!
//! Everything else in this workspace is batch-shaped: build the universe,
//! run the pipeline, print a table, exit. Real registries don't work that
//! way — clients ask "what does this module do?" and "what can replace
//! it?" continuously, and the expensive part (annotating every module and
//! matching every pair, §4–§6 of the paper) is the same work every time.
//! `dexd` pays that cost once: [`Dexd::launch`] bootstraps the full
//! operating state — catalog, ontology interval index, concept-indexed
//! pool, fingerprint index, warm invocation cache, live incremental
//! pipeline — and then answers requests from it until told to stop.
//!
//! Three layers:
//!
//! - [`proto`] — the wire protocol: [`Request`]/[`Response`] enums framed
//!   as length-prefixed JSON.
//! - [`service`] — the core: admission control, the bounded queue, worker
//!   threads with substitute-lookup batching, panic containment, and the
//!   readers/writer pipeline lock. [`Client`] drives it in-process.
//! - [`server`] — the Unix-socket front end ([`serve_unix`]) and the
//!   matching [`SocketClient`].
//!
//! ```no_run
//! use dexd::{Client, Dexd, Request, Response, ServiceConfig};
//!
//! let svc = Dexd::launch(&ServiceConfig::default());
//! let client = Client::new(svc.clone());
//! match client.call(Request::FindSubstitutes { id: "blast".into() }) {
//!     Response::Substitutes(reply) => println!("{} candidates", reply.ranked.len()),
//!     other => eprintln!("{other:?}"),
//! }
//! svc.shutdown();
//! svc.join();
//! ```

pub mod proto;
pub mod server;
pub mod service;

pub use proto::{
    read_frame, read_message, write_frame, write_message, AnnotationReply, BrokenStep, Request,
    Response, StatsReply, SubstitutesReply, ValidationReply, MAX_FRAME,
};
pub use server::{serve_unix, SocketClient};
pub use service::{Client, Dexd, ServiceConfig, ServiceState};
