//! Emits `BENCH_dexd.json`: the resident-service numbers of ISSUE 10 —
//! what a registry query costs when the operating state is built once and
//! kept warm, versus the batch-pipeline cost of rebuilding everything for
//! a single answer.
//!
//! Usage:
//!   cargo run --release -p dexd --bin dexd_bench -- \
//!     [--ci] [--smoke] [--scale N] [--seed N] [--threads N] [--requests N] \
//!     [OUT.json] [--trace-out PATH] [--telemetry[=OUT]]
//!
//! Phases:
//!
//! 1. **Cold baseline** — build the scaled world and pool, bootstrap the
//!    pipeline inside [`Dexd::launch_with`], and answer one
//!    `FindSubstitutes`. The summed wall time is what a batch run pays for
//!    a single query (`cold_single_query_ms`).
//! 2. **Steady state** — client threads drive a mixed workload (60%
//!    substitute lookups, 25% annotations, 10% workflow validations, 5%
//!    stats) through the in-process [`Client`] while the main thread
//!    interleaves `ApplyDelta` waves (withdraw + restore batches) through
//!    the write lock. Per-endpoint p50/p95/p99 come from the merged
//!    per-thread samples; `amortization_ratio` is the cold single-query
//!    cost over the steady-state substitute-lookup p50.
//! 3. **Socket smoke** (`--smoke`) — a second, small service behind
//!    [`serve_unix`]: ~100 mixed requests through [`SocketClient`]
//!    including an `ApplyDelta`, then a `Stats` check (nonzero cache hit
//!    rate, the delta counted) and a clean `Shutdown`. When tracing was
//!    requested, only this phase records spans — the 10k phase would swamp
//!    the trace buffer — so the exported trace is the smoke's.
//!
//! Self-gate (release builds, `--ci`, scale >= 10000): the steady-state
//! `FindSubstitutes` p50 must be at least **100x** faster than the cold
//! batch-pipeline single query.

use dex_core::delta::Delta;
use dex_experiments::telemetry::TelemetryRun;
use dex_pool::build_text_pool;
use dex_repair::{generate_repository, RepositoryPlan};
use dex_universe::scale::{build_scaled, ScalePlan};
use dex_workflow::Workflow;
use dexd::{serve_unix, Client, Dexd, Request, Response, ServiceConfig, SocketClient};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Gate floor: cold single query over steady-state substitutes p50.
const MIN_AMORTIZATION: f64 = 100.0;
/// `ApplyDelta` waves interleaved with the read workload.
const DELTA_WAVES: usize = 4;
/// Modules withdrawn (then restored) per wave.
const DELTA_BATCH: usize = 8;
/// Unrecorded warm-up lookups before sampling starts.
const WARMUP: usize = 256;

/// Request kinds, as sample labels.
const KIND_SUBSTITUTES: u8 = 0;
const KIND_ANNOTATE: u8 = 1;
const KIND_VALIDATE: u8 = 2;
const KIND_STATS: u8 = 3;
const KIND_DELTA: u8 = 4;
const KIND_NAMES: [&str; 5] = ["substitutes", "annotate", "validate", "stats", "delta"];

fn is_telemetry_flag(arg: &str) -> bool {
    [
        "--telemetry",
        "--telemetry-out",
        "--trace-out",
        "--flight-out",
    ]
    .iter()
    .any(|f| arg == *f || arg.starts_with(&format!("{f}=")))
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

struct SmokeReport {
    requests: u64,
    cache_hit_rate: f64,
    deltas_applied: u64,
    clean_shutdown: bool,
}

fn main() {
    let run = TelemetryRun::from_env();
    // The steady-state phase at CI scale would record hundreds of
    // thousands of spans; keep tracing for the smoke phase only.
    let tracing_requested = dex_telemetry::is_enabled();
    if tracing_requested {
        dex_telemetry::disable();
    }

    let mut ci = false;
    let mut smoke = false;
    let mut scale: Option<usize> = None;
    let mut seed = 42u64;
    let mut threads = 4usize;
    let mut per_thread = 1_200usize;
    let mut out_path = "BENCH_dexd.json".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("dexd_bench: {arg} needs a value");
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--ci" => ci = true,
            "--smoke" => smoke = true,
            "--scale" => scale = Some(take(&mut i).parse().expect("--scale: integer")),
            "--seed" => seed = take(&mut i).parse().expect("--seed: integer"),
            "--threads" => threads = take(&mut i).parse().expect("--threads: integer"),
            "--requests" => per_thread = take(&mut i).parse().expect("--requests: integer"),
            other if is_telemetry_flag(other) => {
                if !other.contains('=')
                    && args.get(i + 1).is_some_and(|next| !next.starts_with("--"))
                {
                    i += 1;
                }
            }
            other if !other.starts_with("--") => out_path = other.to_string(),
            other => {
                eprintln!("dexd_bench: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let scale = scale.unwrap_or(if ci { 10_000 } else { 2_500 });
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };

    // ---- Phase 1: cold baseline. ---------------------------------------
    // What a batch run pays to answer one substitute lookup: build the
    // world, bootstrap the pipeline, ask the question.
    eprintln!("dexd_bench: cold build at scale {scale} (seed {seed})...");
    let t = Instant::now();
    let world = build_scaled(&ScalePlan::new(scale, seed));
    let cfg = ServiceConfig {
        scale,
        seed,
        queue_capacity: 256,
        ..ServiceConfig::default()
    };
    let pool = build_text_pool(&world.universe.ontology, cfg.pool_depth, seed);
    let build_ms = t.elapsed().as_secs_f64() * 1000.0;
    let anchor = world.families[0].members[0].clone();

    let plan = RepositoryPlan {
        healthy: 40,
        equivalent_full: 0,
        equivalent_partial: 0,
        overlap_full: 0,
        overlap_partial: 0,
        overlap_odd: 0,
        none_only: 0,
        seed,
    };
    let repo = generate_repository(&world.universe, &pool, &plan);

    let t = Instant::now();
    let svc = Dexd::launch_with(world.universe, pool, &cfg);
    let client = Client::new(Arc::clone(&svc));
    let first = Instant::now();
    let resp = client.call(Request::FindSubstitutes {
        id: anchor.0.clone(),
    });
    assert!(
        matches!(resp, Response::Substitutes(_)),
        "anchor lookup failed: {resp:?}"
    );
    let cold_first_lookup_ms = first.elapsed().as_secs_f64() * 1000.0;
    let launch_ms = t.elapsed().as_secs_f64() * 1000.0;
    let bootstrap_ms = svc.bootstrap_ms();
    let cold_single_query_ms = build_ms + launch_ms;
    eprintln!(
        "dexd_bench: cold single query {cold_single_query_ms:.0} ms \
         (build {build_ms:.0}, bootstrap {bootstrap_ms:.0})"
    );

    // ---- Phase 2: steady state. ----------------------------------------
    let ids: Arc<Vec<String>> = Arc::new(svc.tracked_ids().into_iter().map(|m| m.0).collect());
    let workflows: Arc<Vec<Workflow>> =
        Arc::new(repo.workflows.iter().map(|s| s.workflow.clone()).collect());
    for w in 0..WARMUP {
        client.call(Request::FindSubstitutes {
            id: ids[w % ids.len()].clone(),
        });
    }

    eprintln!(
        "dexd_bench: steady state — {threads} client thread(s) x {per_thread} requests \
         + {DELTA_WAVES} delta waves..."
    );
    let t_steady = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|tid| {
            let client = client.clone();
            let ids = Arc::clone(&ids);
            let workflows = Arc::clone(&workflows);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ ((tid as u64 + 1) * 0x9E37_79B9));
                let mut samples: Vec<(u8, u64)> = Vec::with_capacity(per_thread);
                let mut busy_retries = 0u64;
                for _ in 0..per_thread {
                    let roll = rng.gen_range(0..100u32);
                    let (kind, req) = if roll < 60 {
                        (
                            KIND_SUBSTITUTES,
                            Request::FindSubstitutes {
                                id: ids[rng.gen_range(0..ids.len())].clone(),
                            },
                        )
                    } else if roll < 85 {
                        (
                            KIND_ANNOTATE,
                            Request::AnnotateModule {
                                id: ids[rng.gen_range(0..ids.len())].clone(),
                            },
                        )
                    } else if roll < 95 {
                        (
                            KIND_VALIDATE,
                            Request::ValidateWorkflow {
                                workflow: workflows[rng.gen_range(0..workflows.len())].clone(),
                            },
                        )
                    } else {
                        (KIND_STATS, Request::Stats)
                    };
                    let t0 = Instant::now();
                    let mut resp = client.call(req.clone());
                    while matches!(resp, Response::Busy) {
                        busy_retries += 1;
                        std::thread::yield_now();
                        resp = client.call(req.clone());
                    }
                    assert!(
                        !matches!(resp, Response::Error { .. }),
                        "steady-state request failed: {resp:?}"
                    );
                    samples.push((kind, t0.elapsed().as_nanos() as u64));
                }
                (samples, busy_retries)
            })
        })
        .collect();

    // Interleave write traffic from the main thread: withdraw a batch,
    // restore it, let the readers run between waves.
    let mut delta_samples: Vec<(u8, u64)> = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD311A);
    for _ in 0..DELTA_WAVES {
        std::thread::sleep(Duration::from_millis(25));
        let victims: Vec<String> = (0..DELTA_BATCH)
            .map(|_| ids[rng.gen_range(0..ids.len())].clone())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for mk in [
            |id: &String| Delta::ModuleWithdraw {
                id: id.as_str().into(),
            },
            |id: &String| Delta::ModuleRestore {
                id: id.as_str().into(),
            },
        ] {
            let deltas: Vec<Delta> = victims.iter().map(mk).collect();
            let t0 = Instant::now();
            let resp = client.call(Request::ApplyDelta { deltas });
            assert!(
                matches!(resp, Response::DeltaApplied(_)),
                "delta wave failed: {resp:?}"
            );
            delta_samples.push((KIND_DELTA, t0.elapsed().as_nanos() as u64));
        }
    }

    let mut samples: Vec<(u8, u64)> = delta_samples;
    let mut busy_retries = 0u64;
    for h in handles {
        let (s, b) = h.join().expect("client thread");
        samples.extend(s);
        busy_retries += b;
    }
    let steady_ms = t_steady.elapsed().as_secs_f64() * 1000.0;

    let final_stats = match client.call(Request::Stats) {
        Response::Stats(s) => s,
        other => panic!("final stats failed: {other:?}"),
    };
    svc.shutdown();
    svc.join();

    // ---- Percentiles per endpoint. -------------------------------------
    let mut by_kind: Vec<Vec<u64>> = vec![Vec::new(); KIND_NAMES.len()];
    for (kind, ns) in &samples {
        by_kind[*kind as usize].push(*ns);
    }
    for v in &mut by_kind {
        v.sort_unstable();
    }
    let sub_p50_us = percentile_us(&by_kind[KIND_SUBSTITUTES as usize], 0.50);
    let amortization_ratio = if sub_p50_us > 0.0 {
        (cold_single_query_ms * 1000.0) / sub_p50_us
    } else {
        f64::INFINITY
    };
    eprintln!(
        "dexd_bench: substitutes p50 {sub_p50_us:.1} us steady-state — \
         amortization {amortization_ratio:.0}x over cold"
    );

    // ---- Phase 3: socket smoke (traced when tracing was requested). ----
    let smoke_report = if smoke {
        if tracing_requested {
            dex_telemetry::enable();
        }
        Some(run_smoke(seed ^ 0x5107))
    } else {
        None
    };

    // ---- Gates. ---------------------------------------------------------
    let mut gate_failures: Vec<String> = Vec::new();
    if ci && profile == "release" && scale >= 10_000 && amortization_ratio < MIN_AMORTIZATION {
        gate_failures.push(format!(
            "amortization {amortization_ratio:.1}x below the {MIN_AMORTIZATION}x floor at scale {scale}"
        ));
    }

    // ---- Report. ---------------------------------------------------------
    let mut json = String::from("{\n");
    writeln!(json, "  \"profile\": \"{profile}\",").unwrap();
    writeln!(json, "  \"scale\": {scale},").unwrap();
    writeln!(json, "  \"seed\": {seed},").unwrap();
    writeln!(json, "  \"client_threads\": {threads},").unwrap();
    writeln!(json, "  \"service_workers\": {},", cfg.workers).unwrap();
    writeln!(json, "  \"queue_capacity\": {},", cfg.queue_capacity).unwrap();
    writeln!(json, "  \"build_ms\": {build_ms:.1},").unwrap();
    writeln!(json, "  \"bootstrap_ms\": {bootstrap_ms:.1},").unwrap();
    writeln!(
        json,
        "  \"cold_first_lookup_ms\": {cold_first_lookup_ms:.3},"
    )
    .unwrap();
    writeln!(
        json,
        "  \"cold_single_query_ms\": {cold_single_query_ms:.1},"
    )
    .unwrap();
    writeln!(json, "  \"steady_ms\": {steady_ms:.1},").unwrap();
    writeln!(json, "  \"amortization_ratio\": {amortization_ratio:.1},").unwrap();
    writeln!(json, "  \"busy_retries\": {busy_retries},").unwrap();
    writeln!(json, "  \"endpoints\": [").unwrap();
    let rows: Vec<String> = KIND_NAMES
        .iter()
        .enumerate()
        .map(|(k, name)| {
            let v = &by_kind[k];
            format!(
                "    {{\"endpoint\": \"{name}\", \"count\": {}, \"p50_us\": {:.1}, \
                 \"p95_us\": {:.1}, \"p99_us\": {:.1}}}",
                v.len(),
                percentile_us(v, 0.50),
                percentile_us(v, 0.95),
                percentile_us(v, 0.99),
            )
        })
        .collect();
    writeln!(json, "{}", rows.join(",\n")).unwrap();
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"service\": {{").unwrap();
    writeln!(
        json,
        "    \"requests_served\": {},",
        final_stats.requests_served
    )
    .unwrap();
    writeln!(json, "    \"batch_passes\": {},", final_stats.batch_passes).unwrap();
    writeln!(
        json,
        "    \"coalesced_lookups\": {},",
        final_stats.coalesced_lookups
    )
    .unwrap();
    writeln!(
        json,
        "    \"deltas_applied\": {},",
        final_stats.deltas_applied
    )
    .unwrap();
    writeln!(
        json,
        "    \"handler_panics\": {},",
        final_stats.handler_panics
    )
    .unwrap();
    writeln!(
        json,
        "    \"busy_rejections\": {},",
        final_stats.busy_rejections
    )
    .unwrap();
    writeln!(json, "    \"cache_hits\": {},", final_stats.cache_hits).unwrap();
    writeln!(json, "    \"cache_misses\": {},", final_stats.cache_misses).unwrap();
    writeln!(
        json,
        "    \"cache_hit_rate\": {:.4}",
        final_stats.cache_hit_rate
    )
    .unwrap();
    writeln!(json, "  }},").unwrap();
    match &smoke_report {
        Some(s) => {
            writeln!(json, "  \"smoke\": {{").unwrap();
            writeln!(json, "    \"requests\": {},", s.requests).unwrap();
            writeln!(json, "    \"cache_hit_rate\": {:.4},", s.cache_hit_rate).unwrap();
            writeln!(json, "    \"deltas_applied\": {},", s.deltas_applied).unwrap();
            writeln!(json, "    \"clean_shutdown\": {}", s.clean_shutdown).unwrap();
            writeln!(json, "  }}").unwrap();
        }
        None => writeln!(json, "  \"smoke\": null").unwrap(),
    }
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write summary");
    print!("{json}");
    run.finish("dexd_bench");

    if !gate_failures.is_empty() {
        for f in &gate_failures {
            eprintln!("dexd_bench: GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
}

/// The socket smoke: a small service behind `serve_unix`, ~100 mixed
/// requests over a real `SocketClient`, one `ApplyDelta`, a `Stats` check,
/// and a clean `Shutdown`. Panics on any protocol-level surprise.
fn run_smoke(seed: u64) -> SmokeReport {
    eprintln!("dexd_bench: socket smoke...");
    let scale = 300;
    let cfg = ServiceConfig {
        scale,
        seed,
        pool_depth: 3,
        workers: 2,
        queue_capacity: 32,
        ..ServiceConfig::default()
    };
    let world = build_scaled(&ScalePlan::new(scale, seed));
    let pool = build_text_pool(&world.universe.ontology, cfg.pool_depth, seed);
    let plan = RepositoryPlan {
        healthy: 6,
        equivalent_full: 0,
        equivalent_partial: 0,
        overlap_full: 0,
        overlap_partial: 0,
        overlap_odd: 0,
        none_only: 0,
        seed,
    };
    let repo = generate_repository(&world.universe, &pool, &plan);
    let svc = Dexd::launch_with(world.universe, pool, &cfg);
    let ids: Vec<String> = svc.tracked_ids().into_iter().map(|m| m.0).collect();
    let workflows: Vec<Workflow> = repo.workflows.iter().map(|s| s.workflow.clone()).collect();

    let path = std::env::temp_dir().join(format!("dexd-smoke-{}.sock", std::process::id()));
    let server = {
        let svc = Arc::clone(&svc);
        let path = path.clone();
        std::thread::spawn(move || serve_unix(svc, &path))
    };
    let started = Instant::now();
    let mut client = loop {
        match SocketClient::connect(&path) {
            Ok(c) => break c,
            Err(e) => {
                assert!(
                    started.elapsed() < Duration::from_secs(10),
                    "smoke: daemon never bound {}: {e}",
                    path.display()
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let mut requests = 0u64;
    for i in 0..100usize {
        let req = if i == 50 {
            // One write in the middle of the read traffic: withdraw a
            // module and restore it in the same atomic batch.
            let id = ids[rng.gen_range(0..ids.len())].clone();
            Request::ApplyDelta {
                deltas: vec![
                    Delta::ModuleWithdraw {
                        id: id.as_str().into(),
                    },
                    Delta::ModuleRestore {
                        id: id.as_str().into(),
                    },
                ],
            }
        } else {
            match i % 10 {
                0..=4 => Request::FindSubstitutes {
                    id: ids[rng.gen_range(0..ids.len())].clone(),
                },
                5..=7 => Request::AnnotateModule {
                    id: ids[rng.gen_range(0..ids.len())].clone(),
                },
                8 => Request::ValidateWorkflow {
                    workflow: workflows[rng.gen_range(0..workflows.len())].clone(),
                },
                _ => Request::Stats,
            }
        };
        let resp = client.call(&req).expect("smoke: socket call");
        assert!(
            !matches!(resp, Response::Error { .. } | Response::Busy),
            "smoke request {i} failed: {resp:?}"
        );
        requests += 1;
    }

    let stats = match client.call(&Request::Stats).expect("smoke: stats call") {
        Response::Stats(s) => s,
        other => panic!("smoke: stats answered {other:?}"),
    };
    assert!(
        stats.cache_hit_rate > 0.0,
        "smoke: invocation cache recorded no hits"
    );
    assert!(
        stats.deltas_applied >= 1,
        "smoke: the ApplyDelta was not counted"
    );

    let resp = client
        .call(&Request::Shutdown)
        .expect("smoke: shutdown call");
    assert!(
        matches!(resp, Response::ShuttingDown),
        "smoke: shutdown answered {resp:?}"
    );
    server
        .join()
        .expect("smoke: server thread")
        .expect("smoke: serve_unix");
    svc.join();
    eprintln!(
        "dexd_bench: smoke ok — {requests} requests, hit rate {:.1}%, clean shutdown",
        stats.cache_hit_rate * 100.0
    );
    SmokeReport {
        requests: requests + 2,
        cache_hit_rate: stats.cache_hit_rate,
        deltas_applied: stats.deltas_applied,
        clean_shutdown: true,
    }
}
