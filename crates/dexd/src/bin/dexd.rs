//! The `dexd` daemon: build the operating state once, serve the registry
//! protocol on a Unix socket until a `Shutdown` request arrives.
//!
//! Usage:
//!   cargo run --release -p dexd --bin dexd -- \
//!     [--socket PATH] [--scale N] [--seed N] [--workers N] [--queue N] \
//!     [--pool-depth N] [--telemetry[=OUT]] [--trace-out PATH] [--flight-out PATH]
//!
//! `--scale 0` (the default) serves the paper's byte-frozen 252-module
//! profile; any other value builds a heavy-tailed scaled universe of that
//! many modules. The telemetry flags are shared with the experiment bins:
//! `--trace-out` exports a Chrome trace of every request span on exit.
//!
//! Talk to it with `dexd_bench --smoke` or any client that frames JSON as
//! `proto` documents (length-prefixed, little-endian `u32`).

use dex_experiments::telemetry::TelemetryRun;
use dexd::{serve_unix, Dexd, ServiceConfig};
use std::path::PathBuf;

/// Options `TelemetryRun::from_env` owns; the daemon parser skips them
/// (and their space-separated values).
fn is_telemetry_flag(arg: &str) -> bool {
    [
        "--telemetry",
        "--telemetry-out",
        "--trace-out",
        "--flight-out",
    ]
    .iter()
    .any(|f| arg == *f || arg.starts_with(&format!("{f}=")))
}

fn main() {
    let run = TelemetryRun::from_env();

    let mut socket = PathBuf::from("/tmp/dexd.sock");
    let mut cfg = ServiceConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("dexd: {arg} needs a value");
                    std::process::exit(2);
                })
                .clone()
        };
        match arg.as_str() {
            "--socket" => socket = PathBuf::from(take(&mut i)),
            "--scale" => cfg.scale = take(&mut i).parse().expect("--scale: integer"),
            "--seed" => cfg.seed = take(&mut i).parse().expect("--seed: integer"),
            "--workers" => cfg.workers = take(&mut i).parse().expect("--workers: integer"),
            "--queue" => cfg.queue_capacity = take(&mut i).parse().expect("--queue: integer"),
            "--pool-depth" => cfg.pool_depth = take(&mut i).parse().expect("--pool-depth: integer"),
            other if is_telemetry_flag(other) => {
                // Skip a space-separated value too.
                if !other.contains('=')
                    && args.get(i + 1).is_some_and(|next| !next.starts_with("--"))
                {
                    i += 1;
                }
            }
            other => {
                eprintln!("dexd: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!(
        "dexd: building operating state (scale {}, seed {})...",
        cfg.scale, cfg.seed
    );
    let svc = Dexd::launch(&cfg);
    eprintln!(
        "dexd: serving {} modules on {} ({} workers, queue {}, bootstrap {:.0} ms)",
        svc.tracked_ids().len(),
        socket.display(),
        cfg.workers,
        cfg.queue_capacity,
        svc.bootstrap_ms()
    );
    if let Err(e) = serve_unix(svc.clone(), &socket) {
        eprintln!("dexd: socket error: {e}");
    }
    svc.shutdown();
    svc.join();
    eprintln!("dexd: stopped");
    run.finish("dexd");
}
