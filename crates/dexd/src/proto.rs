//! The `dexd` wire protocol: length-prefixed JSON frames.
//!
//! Every message is one frame: a little-endian `u32` payload length
//! followed by that many bytes of JSON — the externally tagged serde
//! encoding of [`Request`] or [`Response`]. The framing is deliberately
//! dumb: any language with a socket and a JSON parser can speak it, and a
//! frame boundary survives pipelined requests on one connection.
//!
//! Frames are capped at [`MAX_FRAME`]; an oversized length prefix is
//! treated as a protocol error, never as an allocation request — a
//! malformed client cannot make the daemon reserve gigabytes.

use dex_core::delta::{Delta, DeltaReport};
use dex_core::{ExampleSet, MatchVerdict};
use dex_workflow::Workflow;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// Largest accepted frame payload (16 MiB). Annotation replies carry full
/// example sets, which stay far below this at every supported scale.
pub const MAX_FRAME: usize = 16 << 20;

/// One client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// The module's maintained annotation: its data examples (§4) as kept
    /// current by the live pipeline, or its generation error.
    AnnotateModule {
        /// Module id, as registered in the catalog.
        id: String,
    },
    /// Ranked substitutes for a module (§6), answered from the live verdict
    /// matrix (available modules) or the carried-forward capture taken at
    /// withdrawal (withdrawn ones).
    FindSubstitutes {
        /// Module id, as registered in the catalog.
        id: String,
    },
    /// Structural validation of a workflow against the current catalog and
    /// ontology, plus substitute suggestions for steps whose module is
    /// unavailable.
    ValidateWorkflow {
        /// The workflow to validate.
        workflow: Workflow,
    },
    /// Routes a batch of registry deltas through the incremental engine
    /// under the service's write lock.
    ApplyDelta {
        /// The batch, applied atomically with respect to readers.
        deltas: Vec<Delta>,
    },
    /// Service counters: queue, admission, cache, uptime.
    Stats,
    /// Asks the service to stop accepting work and wind down.
    Shutdown,
    /// Test-only fault injection: the handler panics while holding the
    /// pipeline lock (read side, or write side when `hold_write`), proving
    /// a worker panic can neither poison shared state nor leak admission
    /// tickets. Answered with an `Error` response, never a crash.
    Chaos {
        /// Panic under the write lock instead of the read lock.
        hold_write: bool,
    },
}

impl Request {
    /// Short endpoint label, used for telemetry metric names.
    pub fn endpoint(&self) -> &'static str {
        match self {
            Request::AnnotateModule { .. } => "annotate",
            Request::FindSubstitutes { .. } => "substitutes",
            Request::ValidateWorkflow { .. } => "validate",
            Request::ApplyDelta { .. } => "delta",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
            Request::Chaos { .. } => "chaos",
        }
    }
}

/// One service response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::AnnotateModule`].
    Annotation(AnnotationReply),
    /// Answer to [`Request::FindSubstitutes`].
    Substitutes(SubstitutesReply),
    /// Answer to [`Request::ValidateWorkflow`].
    Validation(ValidationReply),
    /// Answer to [`Request::ApplyDelta`]: the engine's own accounting.
    DeltaApplied(DeltaReport),
    /// Answer to [`Request::Stats`].
    Stats(StatsReply),
    /// Backpressure: the admission limit is reached; retry later. The
    /// request was **not** queued.
    Busy,
    /// The service is winding down; no further requests will be served.
    ShuttingDown,
    /// The request could not be served (unknown module, malformed frame,
    /// handler panic…).
    Error {
        /// Human-readable cause.
        message: String,
    },
}

/// A module's maintained annotation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnotationReply {
    /// The module asked about.
    pub id: String,
    /// Whether it is currently available (withdrawn modules keep their
    /// last-known annotation, frozen at withdrawal).
    pub available: bool,
    /// The data examples, when generation succeeded.
    pub examples: Option<ExampleSet>,
    /// The rendered generation error, when it did not.
    pub error: Option<String>,
    /// Invocations the generation spent when it was (re)computed.
    pub invocations: usize,
    /// Transient failures absorbed by the retry layer during generation.
    pub transient_failures: usize,
}

/// Ranked substitutes for one module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubstitutesReply {
    /// The module asked about.
    pub id: String,
    /// Whether it is currently available.
    pub available: bool,
    /// Verdict-bearing comparisons behind the ranking.
    pub candidates_compared: usize,
    /// Usable candidates, best first (§6 study ordering). For withdrawn
    /// modules only the captured best survives.
    pub ranked: Vec<(String, MatchVerdict)>,
}

/// One workflow step referencing an unavailable module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrokenStep {
    /// Step index within the workflow.
    pub step: usize,
    /// The unavailable module.
    pub module: String,
    /// The best substitute the live state proposes, if any.
    pub substitute: Option<(String, MatchVerdict)>,
}

/// Validation outcome for one workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReply {
    /// The workflow's id.
    pub id: String,
    /// Rendered structural validation errors (empty when well-formed).
    pub structural_errors: Vec<String>,
    /// Steps whose module is currently unavailable, with suggestions.
    pub broken_steps: Vec<BrokenStep>,
    /// True when the workflow is well-formed and every step is available.
    pub ok: bool,
}

/// Service-level counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// Milliseconds since the service finished bootstrapping.
    pub uptime_ms: u64,
    /// Modules tracked by the pipeline.
    pub modules_tracked: usize,
    /// Tracked modules currently available.
    pub modules_available: usize,
    /// Requests answered (any response but `Busy`).
    pub requests_served: u64,
    /// Requests rejected with `Busy` at admission.
    pub busy_rejections: u64,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Admission limit (queued + in service).
    pub queue_capacity: usize,
    /// Requests admitted and not yet answered.
    pub in_flight: usize,
    /// Matrix passes taken by the substitute-lookup batcher.
    pub batch_passes: u64,
    /// Substitute lookups that shared a pass with an earlier lookup of the
    /// same fingerprint bucket.
    pub coalesced_lookups: u64,
    /// `ApplyDelta` batches absorbed.
    pub deltas_applied: u64,
    /// Handler panics contained (each answered with an `Error` response).
    pub handler_panics: u64,
    /// Invocation-cache hits since bootstrap.
    pub cache_hits: u64,
    /// Invocation-cache misses since bootstrap.
    pub cache_misses: u64,
    /// Hit fraction in `[0, 1]`.
    pub cache_hit_rate: f64,
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. `UnexpectedEof` before the first length
/// byte means the peer closed cleanly between messages.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a {len}-byte frame (cap {MAX_FRAME})"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Serializes `value` and writes it as one frame.
pub fn write_message<T: Serialize>(w: &mut impl Write, value: &T) -> io::Result<()> {
    let json = serde_json::to_string(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    write_frame(w, json.as_bytes())
}

/// Reads one frame and parses it as `T`.
pub fn read_message<T: serde::Deserialize>(r: &mut impl Read) -> io::Result<T> {
    let payload = read_frame(r)?;
    let text = std::str::from_utf8(&payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    serde_json::from_str(text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_frames() {
        let requests = vec![
            Request::AnnotateModule { id: "m1".into() },
            Request::FindSubstitutes { id: "m2".into() },
            Request::ApplyDelta {
                deltas: vec![
                    Delta::ModuleWithdraw { id: "m3".into() },
                    Delta::ModuleRestore { id: "m3".into() },
                ],
            },
            Request::Stats,
            Request::Shutdown,
            Request::Chaos { hold_write: true },
        ];
        let mut buf = Vec::new();
        for r in &requests {
            write_message(&mut buf, r).unwrap();
        }
        let mut cursor = &buf[..];
        for expected in &requests {
            let got: Request = read_message(&mut cursor).unwrap();
            assert_eq!(&got, expected);
        }
        // Clean EOF after the last frame.
        assert!(read_message::<Request>(&mut cursor).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(b"junk");
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn responses_round_trip() {
        let resp = Response::Substitutes(SubstitutesReply {
            id: "m9".into(),
            available: false,
            candidates_compared: 3,
            ranked: vec![(
                "m10".into(),
                MatchVerdict::Overlapping {
                    agreeing: 2,
                    compared: 3,
                },
            )],
        });
        let mut buf = Vec::new();
        write_message(&mut buf, &resp).unwrap();
        let got: Response = read_message(&mut &buf[..]).unwrap();
        assert_eq!(got, resp);
        let busy = Response::Busy;
        let mut buf = Vec::new();
        write_message(&mut buf, &busy).unwrap();
        assert_eq!(read_message::<Response>(&mut &buf[..]).unwrap(), busy);
    }
}
