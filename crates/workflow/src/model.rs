//! The workflow structure.

use dex_modules::{ModuleId, Parameter};
use serde::{Deserialize, Serialize};

/// Where a step input (or workflow output) draws its value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Source {
    /// The `i`-th workflow-level input.
    WorkflowInput(usize),
    /// The `output`-th output of step `step`.
    StepOutput { step: usize, output: usize },
}

/// One workflow step: an invocation of a module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Step {
    /// Step label, unique within the workflow (e.g. `Identify`).
    pub name: String,
    /// The module the step invokes.
    pub module: ModuleId,
}

/// A data link feeding one input of one step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Value source.
    pub source: Source,
    /// Index of the consuming step.
    pub target_step: usize,
    /// Index of the consumed input within that step's module.
    pub target_input: usize,
}

/// An exported workflow output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutputBinding {
    /// Output name.
    pub name: String,
    /// Value source.
    pub source: Source,
}

/// A scientific workflow: steps in topological order plus data links.
///
/// # Invariants (checked by [`crate::validate`](crate::validate()))
///
/// * Steps are stored in a valid topological order: a link's
///   `StepOutput.step` is strictly smaller than its `target_step`.
/// * Every input of every step is fed by exactly one link (modules with
///   optional parameters are fed `Null` through enactment defaults when a
///   link is absent — see [`crate::enact`](crate::enact())).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    /// Stable identifier within a repository.
    pub id: String,
    /// Human-readable title.
    pub name: String,
    /// Workflow-level inputs (annotated like module parameters).
    pub inputs: Vec<Parameter>,
    /// Steps, topologically ordered.
    pub steps: Vec<Step>,
    /// Data links.
    pub links: Vec<Link>,
    /// Exported outputs.
    pub outputs: Vec<OutputBinding>,
}

impl Workflow {
    /// Starts building a workflow.
    pub fn builder(id: impl Into<String>, name: impl Into<String>) -> WorkflowBuilder {
        WorkflowBuilder {
            workflow: Workflow {
                id: id.into(),
                name: name.into(),
                inputs: Vec::new(),
                steps: Vec::new(),
                links: Vec::new(),
                outputs: Vec::new(),
            },
        }
    }

    /// All module ids referenced by the workflow, in step order (with
    /// duplicates when a module is used twice).
    pub fn module_ids(&self) -> Vec<&ModuleId> {
        self.steps.iter().map(|s| &s.module).collect()
    }

    /// Whether the workflow references the given module.
    pub fn uses_module(&self, id: &ModuleId) -> bool {
        self.steps.iter().any(|s| &s.module == id)
    }

    /// The links feeding a given step, sorted by target input.
    pub fn links_into(&self, step: usize) -> Vec<&Link> {
        let mut links: Vec<&Link> = self
            .links
            .iter()
            .filter(|l| l.target_step == step)
            .collect();
        links.sort_by_key(|l| l.target_input);
        links
    }

    /// Replaces every step referencing `from` with `to`, returning how many
    /// steps changed. The caller is responsible for re-validating.
    pub fn substitute_module(&mut self, from: &ModuleId, to: &ModuleId) -> usize {
        let mut changed = 0;
        for step in &mut self.steps {
            if &step.module == from {
                step.module = to.clone();
                changed += 1;
            }
        }
        changed
    }
}

/// Fluent construction of workflows.
pub struct WorkflowBuilder {
    workflow: Workflow,
}

impl WorkflowBuilder {
    /// Declares a workflow-level input; returns its index.
    pub fn input(&mut self, parameter: Parameter) -> usize {
        self.workflow.inputs.push(parameter);
        self.workflow.inputs.len() - 1
    }

    /// Appends a step; returns its index.
    pub fn step(&mut self, name: impl Into<String>, module: impl Into<ModuleId>) -> usize {
        self.workflow.steps.push(Step {
            name: name.into(),
            module: module.into(),
        });
        self.workflow.steps.len() - 1
    }

    /// Links a source into a step input.
    pub fn link(&mut self, source: Source, target_step: usize, target_input: usize) -> &mut Self {
        self.workflow.links.push(Link {
            source,
            target_step,
            target_input,
        });
        self
    }

    /// Exports an output.
    pub fn output(&mut self, name: impl Into<String>, source: Source) -> &mut Self {
        self.workflow.outputs.push(OutputBinding {
            name: name.into(),
            source,
        });
        self
    }

    /// Finalizes the workflow (structure only; use [`crate::validate`](crate::validate()) for
    /// semantic checks).
    pub fn build(self) -> Workflow {
        self.workflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_values::StructuralType;

    fn two_step() -> Workflow {
        let mut b = Workflow::builder("wf1", "demo");
        let input = b.input(Parameter::required(
            "acc",
            StructuralType::Text,
            "UniprotAccession",
        ));
        let s0 = b.step("GetRecord", "dr:get_uniprot_record");
        let s1 = b.step("Convert", "ft:conv_uniprot_fasta");
        b.link(Source::WorkflowInput(input), s0, 0);
        b.link(
            Source::StepOutput {
                step: s0,
                output: 0,
            },
            s1,
            0,
        );
        b.output(
            "fasta",
            Source::StepOutput {
                step: s1,
                output: 0,
            },
        );
        b.build()
    }

    #[test]
    fn builder_assembles_structure() {
        let wf = two_step();
        assert_eq!(wf.steps.len(), 2);
        assert_eq!(wf.links.len(), 2);
        assert_eq!(wf.outputs.len(), 1);
        assert_eq!(wf.module_ids().len(), 2);
        assert!(wf.uses_module(&"dr:get_uniprot_record".into()));
        assert!(!wf.uses_module(&"nope".into()));
    }

    #[test]
    fn links_into_sorted_by_input() {
        let mut wf = two_step();
        wf.links.push(Link {
            source: Source::WorkflowInput(0),
            target_step: 1,
            target_input: 2,
        });
        wf.links.push(Link {
            source: Source::WorkflowInput(0),
            target_step: 1,
            target_input: 1,
        });
        let into1: Vec<usize> = wf.links_into(1).iter().map(|l| l.target_input).collect();
        assert_eq!(into1, vec![0, 1, 2]);
    }

    #[test]
    fn substitution_replaces_all_uses() {
        let mut wf = two_step();
        let from = ModuleId::from("dr:get_uniprot_record");
        let to = ModuleId::from("dr:get_uniprot_record_ebi");
        assert_eq!(wf.substitute_module(&from, &to), 1);
        assert!(!wf.uses_module(&from));
        assert!(wf.uses_module(&to));
        assert_eq!(wf.substitute_module(&from, &to), 0);
    }

    #[test]
    fn serde_round_trip() {
        let wf = two_step();
        let json = serde_json::to_string(&wf).unwrap();
        let back: Workflow = serde_json::from_str(&json).unwrap();
        assert_eq!(wf, back);
    }
}
