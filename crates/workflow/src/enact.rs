//! Workflow enactment with full trace capture.

use crate::model::{Source, Workflow};
use dex_modules::{InvocationCache, InvocationError, ModuleCatalog, ModuleId, Retrier};
use dex_values::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why an enactment failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnactError {
    /// The step's module is withdrawn or unknown — a decayed workflow.
    ModuleUnavailable { step: usize, module: ModuleId },
    /// The module was invoked and failed.
    Invocation {
        step: usize,
        module: ModuleId,
        error: InvocationError,
    },
    /// The workflow structure is broken (dangling source, missing input…).
    Structure(String),
}

impl fmt::Display for EnactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnactError::ModuleUnavailable { step, module } => {
                write!(f, "step {step}: module {module} is unavailable")
            }
            EnactError::Invocation {
                step,
                module,
                error,
            } => write!(f, "step {step}: module {module} failed: {error}"),
            EnactError::Structure(s) => write!(f, "workflow structure error: {s}"),
        }
    }
}

impl std::error::Error for EnactError {}

/// The record of one step's invocation inside an enactment — what a
/// provenance system captures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Step index in the workflow.
    pub step: usize,
    /// Step label.
    pub step_name: String,
    /// Invoked module.
    pub module: ModuleId,
    /// Input values, in the module's declaration order.
    pub inputs: Vec<Value>,
    /// Output values, in declaration order.
    pub outputs: Vec<Value>,
}

/// A complete provenance trace of one workflow enactment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnactmentTrace {
    /// The enacted workflow's id.
    pub workflow: String,
    /// The workflow-level input values used.
    pub inputs: Vec<Value>,
    /// One record per executed step, in execution order.
    pub steps: Vec<StepRecord>,
    /// The exported output values, in output-binding order.
    pub outputs: Vec<Value>,
}

/// Enacts a workflow: executes steps in order, feeding each input from its
/// link (or `Null` for unfed optional inputs) and capturing a full trace.
pub fn enact(
    workflow: &Workflow,
    catalog: &ModuleCatalog,
    inputs: &[Value],
) -> Result<EnactmentTrace, EnactError> {
    enact_with(workflow, catalog, inputs, None, None)
}

/// [`enact`] through a shared [`InvocationCache`]: step invocations whose
/// `(module, input vector)` was already executed — by an earlier enactment
/// sharing the cache, or by example generation — are answered from the memo.
/// The trace is identical to an uncached enactment; bulk re-enactment (e.g.
/// building a provenance corpus over a repository whose workflows share
/// modules and pool values) skips the repeated work.
pub fn enact_cached(
    workflow: &Workflow,
    catalog: &ModuleCatalog,
    inputs: &[Value],
    cache: &InvocationCache,
) -> Result<EnactmentTrace, EnactError> {
    enact_with(workflow, catalog, inputs, Some(cache), None)
}

/// [`enact_cached`] with an explicit, shared [`Retrier`]: a step invocation
/// that fails *transiently* is re-attempted under the retrier's policy
/// before the enactment is abandoned. The availability gate still applies —
/// a step whose module the catalog reports withdrawn fails
/// [`EnactError::ModuleUnavailable`] without an invocation, retried or not.
pub fn enact_retrying(
    workflow: &Workflow,
    catalog: &ModuleCatalog,
    inputs: &[Value],
    cache: &InvocationCache,
    retrier: &Retrier,
) -> Result<EnactmentTrace, EnactError> {
    enact_with(workflow, catalog, inputs, Some(cache), Some(retrier))
}

fn enact_with(
    workflow: &Workflow,
    catalog: &ModuleCatalog,
    inputs: &[Value],
    cache: Option<&InvocationCache>,
    retrier: Option<&Retrier>,
) -> Result<EnactmentTrace, EnactError> {
    let _span = dex_telemetry::span("workflow.enact");
    let result = enact_inner(workflow, catalog, inputs, cache, retrier);
    if dex_telemetry::is_enabled() {
        dex_telemetry::counter_add("dex.workflow.enactments", 1);
        match &result {
            Ok(trace) => {
                dex_telemetry::counter_add("dex.workflow.steps_executed", trace.steps.len() as u64);
            }
            Err(error) => {
                dex_telemetry::counter_add("dex.workflow.enact_failures", 1);
                dex_telemetry::event!(
                    dex_telemetry::Level::Debug,
                    "workflow",
                    "enactment of `{}` failed: {error}",
                    workflow.id
                );
            }
        }
    }
    result
}

fn enact_inner(
    workflow: &Workflow,
    catalog: &ModuleCatalog,
    inputs: &[Value],
    cache: Option<&InvocationCache>,
    retrier: Option<&Retrier>,
) -> Result<EnactmentTrace, EnactError> {
    if inputs.len() != workflow.inputs.len() {
        return Err(EnactError::Structure(format!(
            "expected {} workflow inputs, got {}",
            workflow.inputs.len(),
            inputs.len()
        )));
    }
    let mut step_outputs: Vec<Vec<Value>> = Vec::with_capacity(workflow.steps.len());
    let mut records = Vec::with_capacity(workflow.steps.len());

    let resolve = |source: &Source, step_outputs: &[Vec<Value>]| -> Result<Value, EnactError> {
        match source {
            Source::WorkflowInput(i) => inputs
                .get(*i)
                .cloned()
                .ok_or_else(|| EnactError::Structure(format!("no workflow input {i}"))),
            Source::StepOutput { step, output } => step_outputs
                .get(*step)
                .and_then(|outs| outs.get(*output))
                .cloned()
                .ok_or_else(|| EnactError::Structure(format!("no output {output} of step {step}"))),
        }
    };

    for (i, step) in workflow.steps.iter().enumerate() {
        let Some(module) = catalog.get(&step.module) else {
            return Err(EnactError::ModuleUnavailable {
                step: i,
                module: step.module.clone(),
            });
        };
        let descriptor = module.descriptor();
        let mut values = vec![Value::Null; descriptor.inputs.len()];
        for link in workflow.links_into(i) {
            if link.target_input >= values.len() {
                return Err(EnactError::Structure(format!(
                    "step {i} has no input {}",
                    link.target_input
                )));
            }
            values[link.target_input] = resolve(&link.source, &step_outputs)?;
        }
        let invoked = match (cache, retrier) {
            (Some(cache), Some(retrier)) => retrier
                .invoke_cached(cache, module.as_ref(), &values)
                .as_ref()
                .clone(),
            (Some(cache), None) => cache.invoke(module.as_ref(), &values).as_ref().clone(),
            (None, Some(retrier)) => retrier.invoke(module.as_ref(), &values),
            (None, None) => module.invoke(&values),
        };
        let outputs = invoked.map_err(|error| EnactError::Invocation {
            step: i,
            module: step.module.clone(),
            error,
        })?;
        records.push(StepRecord {
            step: i,
            step_name: step.name.clone(),
            module: step.module.clone(),
            inputs: values,
            outputs: outputs.clone(),
        });
        step_outputs.push(outputs);
    }

    let mut exported = Vec::with_capacity(workflow.outputs.len());
    for binding in &workflow.outputs {
        exported.push(resolve(&binding.source, &step_outputs)?);
    }

    Ok(EnactmentTrace {
        workflow: workflow.id.clone(),
        inputs: inputs.to_vec(),
        steps: records,
        outputs: exported,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Workflow;
    use dex_modules::{FnModule, ModuleDescriptor, ModuleKind, Parameter};
    use dex_values::StructuralType;

    fn catalog() -> ModuleCatalog {
        let mut c = ModuleCatalog::new();
        c.register(FnModule::shared(
            ModuleDescriptor::new(
                "double",
                "Double",
                ModuleKind::LocalProgram,
                vec![Parameter::required("x", StructuralType::Text, "Document")],
                vec![Parameter::required("y", StructuralType::Text, "Document")],
            ),
            |i| {
                let s = i[0].as_text().unwrap();
                Ok(vec![Value::text(format!("{s}{s}"))])
            },
        ));
        c.register(FnModule::shared(
            ModuleDescriptor::new(
                "suffix",
                "Suffix",
                ModuleKind::LocalProgram,
                vec![
                    Parameter::required("x", StructuralType::Text, "Document"),
                    Parameter::optional("sep", StructuralType::Text, "Document", Value::text("!")),
                ],
                vec![Parameter::required("y", StructuralType::Text, "Document")],
            ),
            |i| {
                Ok(vec![Value::text(format!(
                    "{}{}",
                    i[0].as_text().unwrap(),
                    i[1].as_text().unwrap()
                ))])
            },
        ));
        c
    }

    fn pipeline() -> Workflow {
        let mut b = Workflow::builder("w", "pipeline");
        let i = b.input(Parameter::required("in", StructuralType::Text, "Document"));
        let s0 = b.step("Double", "double");
        let s1 = b.step("Suffix", "suffix");
        b.link(Source::WorkflowInput(i), s0, 0);
        b.link(
            Source::StepOutput {
                step: s0,
                output: 0,
            },
            s1,
            0,
        );
        b.output(
            "out",
            Source::StepOutput {
                step: s1,
                output: 0,
            },
        );
        b.build()
    }

    #[test]
    fn enactment_runs_and_traces() {
        let trace = enact(&pipeline(), &catalog(), &[Value::text("ab")]).unwrap();
        assert_eq!(trace.outputs, vec![Value::text("abab!")]);
        assert_eq!(trace.steps.len(), 2);
        assert_eq!(trace.steps[0].outputs, vec![Value::text("abab")]);
        // Optional unfed input recorded as Null (the module defaulted it).
        assert_eq!(trace.steps[1].inputs[1], Value::Null);
        assert_eq!(trace.workflow, "w");
    }

    #[test]
    fn unavailable_module_fails_enactment() {
        let mut c = catalog();
        c.withdraw(&"double".into());
        let err = enact(&pipeline(), &c, &[Value::text("x")]).unwrap_err();
        assert_eq!(
            err,
            EnactError::ModuleUnavailable {
                step: 0,
                module: "double".into()
            }
        );
    }

    #[test]
    fn invocation_failure_is_reported_with_step() {
        let mut c = ModuleCatalog::new();
        c.register(FnModule::shared(
            ModuleDescriptor::new(
                "double",
                "Double",
                ModuleKind::LocalProgram,
                vec![Parameter::required("x", StructuralType::Text, "Document")],
                vec![Parameter::required("y", StructuralType::Text, "Document")],
            ),
            |_| Err(InvocationError::rejected("nope")),
        ));
        c.register(catalog().get(&"suffix".into()).unwrap().clone());
        let err = enact(&pipeline(), &c, &[Value::text("x")]).unwrap_err();
        assert!(matches!(err, EnactError::Invocation { step: 0, .. }));
    }

    #[test]
    fn cached_success_does_not_outlive_withdrawal() {
        // The availability gate runs before the cache is consulted, so a
        // memoized success from an earlier enactment cannot mask a module
        // that has since been withdrawn from the catalog.
        let mut c = catalog();
        let cache = InvocationCache::default();
        let wf = pipeline();
        let ok = enact_cached(&wf, &c, &[Value::text("ab")], &cache).unwrap();
        assert_eq!(ok.outputs, vec![Value::text("abab!")]);
        assert!(cache.stats().entries > 0, "first enactment seeds the cache");

        c.withdraw(&"double".into());
        let err = enact_cached(&wf, &c, &[Value::text("ab")], &cache).unwrap_err();
        assert_eq!(
            err,
            EnactError::ModuleUnavailable {
                step: 0,
                module: "double".into()
            }
        );

        c.restore(&"double".into());
        let again = enact_cached(&wf, &c, &[Value::text("ab")], &cache).unwrap();
        assert_eq!(again, ok, "restoration re-enables the memoized trace");
    }

    #[test]
    fn retrying_enactment_rides_out_transient_faults() {
        use dex_modules::RetryPolicy;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let failures = Arc::new(AtomicUsize::new(2));
        let flaky = {
            let failures = Arc::clone(&failures);
            FnModule::shared(
                ModuleDescriptor::new(
                    "double",
                    "Double",
                    ModuleKind::LocalProgram,
                    vec![Parameter::required("x", StructuralType::Text, "Document")],
                    vec![Parameter::required("y", StructuralType::Text, "Document")],
                ),
                move |i| {
                    if failures
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                        .is_ok()
                    {
                        return Err(InvocationError::fault("transient outage"));
                    }
                    let s = i[0].as_text().unwrap();
                    Ok(vec![Value::text(format!("{s}{s}"))])
                },
            )
        };
        let mut c = ModuleCatalog::new();
        c.register(flaky);
        c.register(catalog().get(&"suffix".into()).unwrap().clone());

        let cache = InvocationCache::default();
        let retrier = Retrier::new(RetryPolicy::transient(4));
        let trace =
            enact_retrying(&pipeline(), &c, &[Value::text("ab")], &cache, &retrier).unwrap();
        assert_eq!(trace.outputs, vec![Value::text("abab!")]);
        let stats = retrier.stats();
        assert!(stats.retries >= 2, "both injected faults were retried");
        assert_eq!(
            cache.stats().memoized_transients,
            0,
            "transient outcomes never persist in the memo"
        );
    }

    #[test]
    fn wrong_input_arity_is_structural() {
        let err = enact(&pipeline(), &catalog(), &[]).unwrap_err();
        assert!(matches!(err, EnactError::Structure(_)));
    }

    #[test]
    fn unfed_mandatory_input_surfaces_as_invocation_error() {
        let mut b = Workflow::builder("w2", "broken");
        b.input(Parameter::required("in", StructuralType::Text, "Document"));
        b.step("Double", "double");
        // No link feeds step 0.
        let wf = b.build();
        let err = enact(&wf, &catalog(), &[Value::text("x")]).unwrap_err();
        assert!(matches!(err, EnactError::Invocation { .. }));
    }
}
