//! Workflow well-formedness and link-compatibility checking.

use crate::enact::{enact_cached, enact_retrying, EnactError, EnactmentTrace};
use crate::model::{Source, Workflow};
use dex_modules::{InvocationCache, ModuleCatalog, Retrier};
use dex_ontology::Ontology;
use dex_values::Value;
use std::fmt;

/// Why a workflow is not well-formed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A step references a module the catalog has never heard of.
    UnknownModule { step: usize, module: String },
    /// A link points at a step/input/output that does not exist.
    DanglingLink { detail: String },
    /// A link flows backwards (or self-loops), violating topological order.
    BackwardLink { from_step: usize, to_step: usize },
    /// A step input is fed by more than one link.
    DuplicateFeed { step: usize, input: usize },
    /// A mandatory step input has no feeding link.
    UnfedInput { step: usize, input: usize },
    /// A link connects structurally incompatible parameters.
    StructuralMismatch { detail: String },
    /// A link's source concept is not subsumed by the target concept — the
    /// "interoperability issue" the paper's §1 mentions.
    SemanticMismatch { detail: String },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::UnknownModule { step, module } => {
                write!(f, "step {step} references unknown module `{module}`")
            }
            ValidationError::DanglingLink { detail } => write!(f, "dangling link: {detail}"),
            ValidationError::BackwardLink { from_step, to_step } => write!(
                f,
                "link from step {from_step} to earlier-or-same step {to_step}"
            ),
            ValidationError::DuplicateFeed { step, input } => {
                write!(f, "step {step} input {input} is fed by multiple links")
            }
            ValidationError::UnfedInput { step, input } => {
                write!(f, "mandatory input {input} of step {step} is unfed")
            }
            ValidationError::StructuralMismatch { detail } => {
                write!(f, "structural mismatch: {detail}")
            }
            ValidationError::SemanticMismatch { detail } => {
                write!(f, "semantic mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates a workflow against a catalog and ontology.
///
/// Checks structure (references, topology, feeding) and link compatibility:
/// the source's structural type must be accepted by the target parameter
/// and the source's semantic concept must be subsumed by the target's.
/// Withdrawn modules pass validation — the workflow is well-formed, it just
/// cannot currently be enacted.
pub fn validate(
    workflow: &Workflow,
    catalog: &ModuleCatalog,
    ontology: &Ontology,
) -> Result<(), Vec<ValidationError>> {
    let _span = dex_telemetry::span("workflow.validate");
    let result = validate_inner(workflow, catalog, ontology);
    if dex_telemetry::is_enabled() {
        dex_telemetry::counter_add("dex.workflow.validations", 1);
        if let Err(errors) = &result {
            dex_telemetry::counter_add("dex.workflow.validation_errors", errors.len() as u64);
            dex_telemetry::event!(
                dex_telemetry::Level::Debug,
                "workflow",
                "workflow `{}` failed validation with {} error(s)",
                workflow.id,
                errors.len()
            );
        }
    }
    result
}

/// Why a dynamic (enactment-backed) validation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum DynamicValidationError {
    /// Static validation failed; the workflow was not enacted.
    Static(Vec<ValidationError>),
    /// The workflow is well-formed but its dry-run enactment failed.
    Enactment(EnactError),
}

impl fmt::Display for DynamicValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynamicValidationError::Static(errors) => {
                write!(f, "static validation failed with {} error(s)", errors.len())
            }
            DynamicValidationError::Enactment(e) => write!(f, "dry-run enactment failed: {e}"),
        }
    }
}

impl std::error::Error for DynamicValidationError {}

/// [`validate`], then prove the workflow *enactable* by dry-running it on
/// `sample_inputs` — the strongest validation short of production use.
///
/// Dry runs used to be priced out: every validation re-invoked every step.
/// Routing the enactment through a shared [`InvocationCache`] makes repeated
/// validation of a repository (where workflows are stamped from shared
/// templates over shared pool values) pay for each distinct
/// `(module, input vector)` once, so enactment-backed validation is cheap
/// enough to run on every workflow. The successful trace is returned for
/// callers that also want the provenance.
pub fn validate_with_enactment(
    workflow: &Workflow,
    catalog: &ModuleCatalog,
    ontology: &Ontology,
    sample_inputs: &[Value],
    cache: &InvocationCache,
) -> Result<EnactmentTrace, DynamicValidationError> {
    validate(workflow, catalog, ontology).map_err(DynamicValidationError::Static)?;
    enact_cached(workflow, catalog, sample_inputs, cache).map_err(DynamicValidationError::Enactment)
}

/// [`validate_with_enactment`] with an explicit [`Retrier`]: the dry run
/// re-attempts transiently failing step invocations under the retrier's
/// policy, so a momentary service outage does not condemn a structurally
/// sound workflow. Permanent failures (arity, rejected input…) still fail
/// the validation on the first attempt.
pub fn validate_with_enactment_retrying(
    workflow: &Workflow,
    catalog: &ModuleCatalog,
    ontology: &Ontology,
    sample_inputs: &[Value],
    cache: &InvocationCache,
    retrier: &Retrier,
) -> Result<EnactmentTrace, DynamicValidationError> {
    validate(workflow, catalog, ontology).map_err(DynamicValidationError::Static)?;
    enact_retrying(workflow, catalog, sample_inputs, cache, retrier)
        .map_err(DynamicValidationError::Enactment)
}

fn validate_inner(
    workflow: &Workflow,
    catalog: &ModuleCatalog,
    ontology: &Ontology,
) -> Result<(), Vec<ValidationError>> {
    let mut errors = Vec::new();

    // Resolve descriptors.
    let mut descriptors = Vec::with_capacity(workflow.steps.len());
    for (i, step) in workflow.steps.iter().enumerate() {
        match catalog.descriptor(&step.module) {
            Some(d) => descriptors.push(Some(d)),
            None => {
                errors.push(ValidationError::UnknownModule {
                    step: i,
                    module: step.module.to_string(),
                });
                descriptors.push(None);
            }
        }
    }

    // Resolve a source to its (structural, semantic) annotation.
    let resolve = |source: &Source| -> Result<(dex_values::StructuralType, String), String> {
        match source {
            Source::WorkflowInput(i) => workflow
                .inputs
                .get(*i)
                .map(|p| (p.structural.clone(), p.semantic.clone()))
                .ok_or_else(|| format!("workflow input {i} does not exist")),
            Source::StepOutput { step, output } => {
                let d = descriptors
                    .get(*step)
                    .and_then(|d| *d)
                    .ok_or_else(|| format!("step {step} does not exist or is unknown"))?;
                d.outputs
                    .get(*output)
                    .map(|p| (p.structural.clone(), p.semantic.clone()))
                    .ok_or_else(|| format!("step {step} has no output {output}"))
            }
        }
    };

    // Per-step feed map.
    let mut fed: Vec<Vec<usize>> = descriptors
        .iter()
        .map(|d| vec![0; d.map_or(0, |d| d.inputs.len())])
        .collect();

    for link in &workflow.links {
        // Topology.
        if let Source::StepOutput { step, .. } = link.source {
            if step >= link.target_step {
                errors.push(ValidationError::BackwardLink {
                    from_step: step,
                    to_step: link.target_step,
                });
            }
        }
        let Some(target) = descriptors.get(link.target_step).and_then(|d| *d) else {
            errors.push(ValidationError::DanglingLink {
                detail: format!("target step {} unknown", link.target_step),
            });
            continue;
        };
        let Some(target_param) = target.inputs.get(link.target_input) else {
            errors.push(ValidationError::DanglingLink {
                detail: format!(
                    "step {} has no input {}",
                    link.target_step, link.target_input
                ),
            });
            continue;
        };
        if let Some(count) = fed
            .get_mut(link.target_step)
            .and_then(|f| f.get_mut(link.target_input))
        {
            *count += 1;
            if *count > 1 {
                errors.push(ValidationError::DuplicateFeed {
                    step: link.target_step,
                    input: link.target_input,
                });
            }
        }
        match resolve(&link.source) {
            Err(detail) => errors.push(ValidationError::DanglingLink { detail }),
            Ok((structural, semantic)) => {
                if !target_param.structural.accepts(&structural) {
                    errors.push(ValidationError::StructuralMismatch {
                        detail: format!(
                            "{structural} cannot feed {} at step {} input {}",
                            target_param.structural, link.target_step, link.target_input
                        ),
                    });
                }
                match (ontology.id(&target_param.semantic), ontology.id(&semantic)) {
                    (Some(t), Some(s)) if ontology.subsumes(t, s) => {}
                    _ => errors.push(ValidationError::SemanticMismatch {
                        detail: format!(
                            "`{semantic}` does not fit `{}` at step {} input {}",
                            target_param.semantic, link.target_step, link.target_input
                        ),
                    }),
                }
            }
        }
    }

    // Unfed mandatory inputs.
    for (i, d) in descriptors.iter().enumerate() {
        if let Some(d) = d {
            for (j, p) in d.inputs.iter().enumerate() {
                if !p.optional && fed[i][j] == 0 {
                    errors.push(ValidationError::UnfedInput { step: i, input: j });
                }
            }
        }
    }

    // Workflow outputs must resolve.
    for output in &workflow.outputs {
        if let Err(detail) = resolve(&output.source) {
            errors.push(ValidationError::DanglingLink { detail });
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Workflow;
    use dex_modules::{FnModule, ModuleDescriptor, ModuleKind, Parameter};
    use dex_ontology::mygrid;
    use dex_values::{StructuralType, Value};

    fn catalog() -> ModuleCatalog {
        let mut c = ModuleCatalog::new();
        c.register(FnModule::shared(
            ModuleDescriptor::new(
                "get",
                "Get",
                ModuleKind::SoapService,
                vec![Parameter::required(
                    "acc",
                    StructuralType::Text,
                    "UniprotAccession",
                )],
                vec![Parameter::required(
                    "seq",
                    StructuralType::Text,
                    "ProteinSequence",
                )],
            ),
            |i| Ok(vec![i[0].clone()]),
        ));
        c.register(FnModule::shared(
            ModuleDescriptor::new(
                "use",
                "Use",
                ModuleKind::SoapService,
                vec![Parameter::required(
                    "seq",
                    StructuralType::Text,
                    "BiologicalSequence",
                )],
                vec![Parameter::required("out", StructuralType::Text, "Report")],
            ),
            |_| Ok(vec![Value::text("REPORT x\n")]),
        ));
        c
    }

    fn wf() -> Workflow {
        let mut b = Workflow::builder("w", "w");
        let i = b.input(Parameter::required(
            "acc",
            StructuralType::Text,
            "UniprotAccession",
        ));
        let s0 = b.step("Get", "get");
        let s1 = b.step("Use", "use");
        b.link(Source::WorkflowInput(i), s0, 0);
        b.link(
            Source::StepOutput {
                step: s0,
                output: 0,
            },
            s1,
            0,
        );
        b.output(
            "report",
            Source::StepOutput {
                step: s1,
                output: 0,
            },
        );
        b.build()
    }

    #[test]
    fn valid_workflow_passes() {
        let onto = mygrid::ontology();
        validate(&wf(), &catalog(), &onto).unwrap();
    }

    #[test]
    fn subsumption_compatible_links_pass() {
        // ProteinSequence output feeds a BiologicalSequence input: fine.
        let onto = mygrid::ontology();
        assert!(validate(&wf(), &catalog(), &onto).is_ok());
    }

    #[test]
    fn unknown_module_reported() {
        let onto = mygrid::ontology();
        let mut w = wf();
        w.steps[0].module = "ghost".into();
        let errors = validate(&w, &catalog(), &onto).unwrap_err();
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::UnknownModule { .. })));
    }

    #[test]
    fn backward_link_reported() {
        let onto = mygrid::ontology();
        let mut w = wf();
        w.links[1].source = Source::StepOutput { step: 1, output: 0 };
        let errors = validate(&w, &catalog(), &onto).unwrap_err();
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::BackwardLink { .. })));
    }

    #[test]
    fn unfed_input_reported() {
        let onto = mygrid::ontology();
        let mut w = wf();
        w.links.remove(0);
        let errors = validate(&w, &catalog(), &onto).unwrap_err();
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::UnfedInput { step: 0, input: 0 })));
    }

    #[test]
    fn duplicate_feed_reported() {
        let onto = mygrid::ontology();
        let mut w = wf();
        let duplicate = w.links[0].clone();
        w.links.push(duplicate);
        let errors = validate(&w, &catalog(), &onto).unwrap_err();
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::DuplicateFeed { .. })));
    }

    #[test]
    fn semantic_mismatch_reported() {
        let onto = mygrid::ontology();
        let mut w = wf();
        // Feed the report-producing step's output back as nothing; instead
        // change the workflow input annotation to something incompatible.
        w.inputs[0].semantic = "GOTerm".to_string();
        let errors = validate(&w, &catalog(), &onto).unwrap_err();
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::SemanticMismatch { .. })));
    }

    #[test]
    fn dangling_output_reported() {
        let onto = mygrid::ontology();
        let mut w = wf();
        w.outputs[0].source = Source::StepOutput { step: 9, output: 0 };
        let errors = validate(&w, &catalog(), &onto).unwrap_err();
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::DanglingLink { .. })));
    }

    #[test]
    fn dynamic_validation_dry_runs_through_the_cache() {
        let onto = mygrid::ontology();
        let c = catalog();
        let cache = InvocationCache::new();
        let trace =
            validate_with_enactment(&wf(), &c, &onto, &[Value::text("MKVL")], &cache).unwrap();
        assert_eq!(trace.steps.len(), 2);
        assert_eq!(cache.stats().misses, 2, "both steps invoked once");
        // Re-validating the same workflow is answered from the memo.
        let again =
            validate_with_enactment(&wf(), &c, &onto, &[Value::text("MKVL")], &cache).unwrap();
        assert_eq!(again, trace);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().hits, 2);
        // A statically broken workflow is rejected before any invocation.
        let mut broken = wf();
        broken.steps[0].module = "ghost".into();
        let err = validate_with_enactment(&broken, &c, &onto, &[Value::text("MKVL")], &cache)
            .unwrap_err();
        assert!(matches!(err, DynamicValidationError::Static(_)));
        assert_eq!(
            cache.stats().misses,
            2,
            "no invocation for invalid workflow"
        );
    }

    #[test]
    fn withdrawn_module_still_validates() {
        let onto = mygrid::ontology();
        let mut c = catalog();
        c.withdraw(&"get".into());
        assert!(validate(&wf(), &c, &onto).is_ok());
    }
}
