//! # dex-workflow
//!
//! Scientific workflows in the style of Taverna/Galaxy (paper §1, Figures 1,
//! 6 and 7): DAGs whose steps invoke scientific modules and whose edges are
//! data links.
//!
//! The crate provides:
//!
//! * [`model`] — the workflow structure: steps referencing modules by id,
//!   workflow-level inputs, data links and exported outputs;
//! * [`validate`](validate()) — structural/semantic well-formedness of the data links
//!   against an ontology and a module catalog (the "interoperability
//!   issues" check of the paper's §1);
//! * [`enact`](enact()) — a topological enactment engine that runs a workflow
//!   against a [`ModuleCatalog`](dex_modules::ModuleCatalog) and records a
//!   full [`EnactmentTrace`], the raw material of workflow provenance.
//!
//! Workflow decay (§6) falls out naturally: enactment fails with
//! [`EnactError::ModuleUnavailable`] once a provider withdraws a module the
//! workflow references.

pub mod enact;
pub mod model;
pub mod render;
pub mod validate;

pub use enact::{enact, enact_cached, enact_retrying, EnactError, EnactmentTrace, StepRecord};
pub use model::{Link, OutputBinding, Source, Step, Workflow};
pub use render::render;
pub use validate::{
    validate, validate_with_enactment, validate_with_enactment_retrying, DynamicValidationError,
    ValidationError,
};
