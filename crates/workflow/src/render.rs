//! Plain-text rendering of workflows, for CLIs, examples and logs.

use crate::model::{Source, Workflow};

/// Renders a workflow as an indented step list with link arrows:
///
/// ```text
/// workflow fig1: protein identification
///   inputs: peptide masses, identification error, program, database
///   0. Identify [da:identify]  <- in:0, in:1
///   1. GetRecord [dr:get_uniprot_record]  <- 0.0
///   2. SearchSimple [da:search_simple]  <- 1.0, in:2, in:3
///   outputs: alignment report <- 2.0
/// ```
pub fn render(workflow: &Workflow) -> String {
    let mut out = format!("workflow {}: {}\n", workflow.id, workflow.name);
    let input_names: Vec<&str> = workflow.inputs.iter().map(|p| p.name.as_str()).collect();
    out.push_str(&format!("  inputs: {}\n", input_names.join(", ")));
    for (i, step) in workflow.steps.iter().enumerate() {
        let feeds: Vec<String> = workflow
            .links_into(i)
            .iter()
            .map(|l| source_label(&l.source))
            .collect();
        out.push_str(&format!(
            "  {i}. {} [{}]{}\n",
            step.name,
            step.module,
            if feeds.is_empty() {
                String::new()
            } else {
                format!("  <- {}", feeds.join(", "))
            }
        ));
    }
    for binding in &workflow.outputs {
        out.push_str(&format!(
            "  outputs: {} <- {}\n",
            binding.name,
            source_label(&binding.source)
        ));
    }
    out
}

fn source_label(source: &Source) -> String {
    match source {
        Source::WorkflowInput(i) => format!("in:{i}"),
        Source::StepOutput { step, output } => format!("{step}.{output}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_modules::Parameter;
    use dex_values::StructuralType;

    #[test]
    fn rendering_shows_steps_links_and_outputs() {
        let mut b = Workflow::builder("w", "demo");
        let i = b.input(Parameter::required("acc", StructuralType::Text, "GOTerm"));
        let s0 = b.step("First", "m1");
        let s1 = b.step("Second", "m2");
        b.link(Source::WorkflowInput(i), s0, 0);
        b.link(
            Source::StepOutput {
                step: s0,
                output: 0,
            },
            s1,
            0,
        );
        b.output(
            "result",
            Source::StepOutput {
                step: s1,
                output: 0,
            },
        );
        let text = render(&b.build());
        assert!(text.contains("workflow w: demo"));
        assert!(text.contains("inputs: acc"));
        assert!(text.contains("0. First [m1]  <- in:0"));
        assert!(text.contains("1. Second [m2]  <- 0.0"));
        assert!(text.contains("outputs: result <- 1.0"));
    }

    #[test]
    fn step_without_feeds_renders_cleanly() {
        let mut b = Workflow::builder("w", "demo");
        b.step("Lonely", "m");
        let text = render(&b.build());
        assert!(text.contains("0. Lonely [m]\n"));
    }
}
