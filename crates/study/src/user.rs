//! The simulated study participant.

use dex_core::ExampleSet;
use dex_modules::ModuleDescriptor;
use dex_universe::{db, Category};

/// A simulated life-science researcher.
///
/// Decisions are deterministic functions of `(user seed, module id)`, so a
/// study run is reproducible and the three users differ on the margins.
#[derive(Debug, Clone)]
pub struct UserModel {
    /// Display name (`user1` …).
    pub name: String,
    seed: u64,
    /// Fraction of popular modules this user happens to know already
    /// (per-mille).
    familiarity: u64,
    /// Success rate on filtering modules given examples (per-mille).
    filtering_rate: u64,
    /// Success rate on data-analysis modules given examples (per-mille).
    analysis_rate: u64,
}

impl UserModel {
    /// The study's three participants, calibrated to §5.
    pub fn panel() -> Vec<UserModel> {
        vec![
            UserModel {
                name: "user1".into(),
                seed: 1,
                familiarity: 850,
                filtering_rate: 160,
                analysis_rate: 40,
            },
            UserModel {
                name: "user2".into(),
                seed: 2,
                familiarity: 820,
                filtering_rate: 180,
                analysis_rate: 50,
            },
            UserModel {
                name: "user3".into(),
                seed: 3,
                familiarity: 880,
                filtering_rate: 140,
                analysis_rate: 35,
            },
        ]
    }

    /// A per-(user, module, aspect) coin with the given per-mille
    /// probability.
    fn coin(&self, module: &str, aspect: &str, per_mille: u64) -> bool {
        let h = db::seed_for(&[&self.name, module, aspect]) ^ self.seed.wrapping_mul(0x9e37);
        h % 1000 < per_mille
    }

    /// Phase 1: the user sees only the module's name and its annotated
    /// interface. Identification happens only for modules the user already
    /// knows (the *popular* ones), and only when this user happens to know
    /// this one.
    pub fn identifies_by_interface(&self, descriptor: &ModuleDescriptor, popular: bool) -> bool {
        popular && self.coin(descriptor.id.as_str(), "known", self.familiarity)
    }

    /// Phase 2: the user additionally examines the data examples.
    ///
    /// An empty example set conveys nothing; otherwise success follows the
    /// per-category findings of §5. `unfamiliar_output` marks retrieval
    /// modules whose output format the user cannot read.
    pub fn identifies_with_examples(
        &self,
        descriptor: &ModuleDescriptor,
        examples: &ExampleSet,
        category: Category,
        unfamiliar_output: bool,
    ) -> bool {
        if examples.is_empty() {
            return false;
        }
        let id = descriptor.id.as_str();
        match category {
            Category::FormatTransformation | Category::MappingIdentifiers => true,
            Category::DataRetrieval => !unfamiliar_output,
            Category::Filtering => self.coin(id, "filter", self.filtering_rate),
            Category::DataAnalysis => self.coin(id, "analysis", self.analysis_rate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_core::{Binding, DataExample};
    use dex_modules::{ModuleKind, Parameter};
    use dex_values::{StructuralType, Value};

    fn descriptor(id: &str) -> ModuleDescriptor {
        ModuleDescriptor::new(
            id,
            id,
            ModuleKind::SoapService,
            vec![Parameter::required("in", StructuralType::Text, "GOTerm")],
            vec![Parameter::required("out", StructuralType::Text, "GOTerm")],
        )
    }

    fn examples(id: &str) -> ExampleSet {
        let mut set = ExampleSet::new(id.into());
        set.examples.push(DataExample::new(
            vec![Binding::new("in", Value::text("GO:0000001"))],
            vec![Binding::new("out", Value::text("GO:0000002"))],
            vec!["GOTerm".into()],
        ));
        set
    }

    #[test]
    fn panel_has_three_distinct_users() {
        let panel = UserModel::panel();
        assert_eq!(panel.len(), 3);
        let names: Vec<&str> = panel.iter().map(|u| u.name.as_str()).collect();
        assert_eq!(names, vec!["user1", "user2", "user3"]);
    }

    #[test]
    fn interface_identification_requires_popularity() {
        let user = &UserModel::panel()[0];
        let d = descriptor("m1");
        assert!(!user.identifies_by_interface(&d, false));
        // Popular modules are identified with high (not certain) probability;
        // over many modules some hit.
        let hits = (0..100)
            .filter(|i| user.identifies_by_interface(&descriptor(&format!("m{i}")), true))
            .count();
        assert!(hits > 70 && hits < 100, "hits={hits}");
    }

    #[test]
    fn shims_are_transparent_with_examples() {
        let user = &UserModel::panel()[0];
        let d = descriptor("conv");
        assert!(user.identifies_with_examples(
            &d,
            &examples("conv"),
            Category::FormatTransformation,
            false
        ));
        assert!(user.identifies_with_examples(
            &d,
            &examples("conv"),
            Category::MappingIdentifiers,
            false
        ));
    }

    #[test]
    fn unfamiliar_retrieval_outputs_block_identification() {
        let user = &UserModel::panel()[0];
        let d = descriptor("get");
        assert!(user.identifies_with_examples(
            &d,
            &examples("get"),
            Category::DataRetrieval,
            false
        ));
        assert!(!user.identifies_with_examples(
            &d,
            &examples("get"),
            Category::DataRetrieval,
            true
        ));
    }

    #[test]
    fn empty_examples_convey_nothing() {
        let user = &UserModel::panel()[0];
        let d = descriptor("x");
        let empty = ExampleSet::new("x".into());
        assert!(!user.identifies_with_examples(&d, &empty, Category::FormatTransformation, false));
    }

    #[test]
    fn analysis_rate_is_low_but_nonzero() {
        let user = &UserModel::panel()[0];
        let hits = (0..200)
            .filter(|i| {
                let id = format!("da{i}");
                user.identifies_with_examples(
                    &descriptor(&id),
                    &examples(&id),
                    Category::DataAnalysis,
                    false,
                )
            })
            .count();
        assert!(hits > 2 && hits < 30, "hits={hits}");
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = &UserModel::panel()[1];
        let b = &UserModel::panel()[1];
        for i in 0..50 {
            let id = format!("f{i}");
            let d = descriptor(&id);
            assert_eq!(
                a.identifies_with_examples(&d, &examples(&id), Category::Filtering, false),
                b.identifies_with_examples(&d, &examples(&id), Category::Filtering, false)
            );
        }
    }
}
