//! The two-phase study protocol of §5.

use crate::user::UserModel;
use dex_core::ExampleSet;
use dex_modules::ModuleId;
use dex_universe::{Category, Universe};
use std::collections::{BTreeMap, BTreeSet};

/// One participant's results.
#[derive(Debug, Clone)]
pub struct UserOutcome {
    /// Participant name.
    pub user: String,
    /// Modules identified from name + annotations alone (phase 1).
    pub identified_without: BTreeSet<ModuleId>,
    /// Modules identified after examining data examples (phase 2;
    /// superset of phase 1 — the paper observed no regressions).
    pub identified_with: BTreeSet<ModuleId>,
    /// Phase-2 identification per category: `(identified, total)`.
    pub per_category: BTreeMap<Category, (usize, usize)>,
}

impl UserOutcome {
    /// Phase-1 count.
    pub fn without_count(&self) -> usize {
        self.identified_without.len()
    }

    /// Phase-2 count.
    pub fn with_count(&self) -> usize {
        self.identified_with.len()
    }
}

/// The full study result.
#[derive(Debug, Clone)]
pub struct StudyOutcome {
    /// Per-user outcomes, in panel order.
    pub users: Vec<UserOutcome>,
    /// Number of modules shown.
    pub modules: usize,
}

impl StudyOutcome {
    /// Mean phase-2 identification rate across users — the paper's "in
    /// average the three users were able to correctly identify the behavior
    /// of 73% of the modules".
    pub fn mean_with_rate(&self) -> f64 {
        if self.users.is_empty() || self.modules == 0 {
            return 0.0;
        }
        let total: usize = self.users.iter().map(UserOutcome::with_count).sum();
        total as f64 / (self.users.len() * self.modules) as f64
    }
}

/// Runs the two-phase protocol over every available module of the universe.
///
/// `examples` maps module ids to the data examples generated for them (from
/// the registry); modules without examples convey nothing extra in phase 2.
pub fn run_user_study(
    universe: &Universe,
    examples: &BTreeMap<ModuleId, ExampleSet>,
) -> StudyOutcome {
    let panel = UserModel::panel();
    let empty = |id: &ModuleId| ExampleSet::new(id.clone());
    let mut users = Vec::with_capacity(panel.len());

    for user in &panel {
        let mut identified_without = BTreeSet::new();
        let mut identified_with = BTreeSet::new();
        let mut per_category: BTreeMap<Category, (usize, usize)> = Category::ALL
            .iter()
            .map(|c| (*c, (0usize, 0usize)))
            .collect();

        for (id, category) in &universe.categories {
            let descriptor = universe
                .catalog
                .descriptor(id)
                .expect("available module registered");
            let popular = universe.popular.contains(id);
            let unfamiliar = universe.unfamiliar_output.contains(id);
            let phase1 = user.identifies_by_interface(descriptor, popular);
            if phase1 {
                identified_without.insert(id.clone());
            }
            let owned;
            let set = match examples.get(id) {
                Some(set) => set,
                None => {
                    owned = empty(id);
                    &owned
                }
            };
            // Phase 2 is cumulative: the data examples are shown *in
            // addition* to everything phase 1 offered.
            let phase2 =
                phase1 || user.identifies_with_examples(descriptor, set, *category, unfamiliar);
            let entry = per_category.get_mut(category).expect("all categories");
            entry.1 += 1;
            if phase2 {
                identified_with.insert(id.clone());
                entry.0 += 1;
            }
        }

        users.push(UserOutcome {
            user: user.name.clone(),
            identified_without,
            identified_with,
            per_category,
        });
    }

    StudyOutcome {
        users,
        modules: universe.categories.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_core::GenerationConfig;
    use dex_pool::build_synthetic_pool;
    use dex_registry::annotate_catalog;

    fn study() -> StudyOutcome {
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 4, 9);
        let (registry, failures) = annotate_catalog(
            &universe.catalog,
            &universe.ontology,
            &pool,
            &GenerationConfig::default(),
        );
        assert!(failures.is_empty());
        let examples: BTreeMap<ModuleId, ExampleSet> = registry
            .entries()
            .filter_map(|(id, e)| e.examples.clone().map(|x| (id.clone(), x)))
            .collect();
        run_user_study(&universe, &examples)
    }

    #[test]
    fn figure5_shape_holds() {
        let outcome = study();
        assert_eq!(outcome.users.len(), 3);
        assert_eq!(outcome.modules, 252);
        for user in &outcome.users {
            // Phase 1: a minority, in the tens (paper: 47 for user1).
            assert!(
                (30..70).contains(&user.without_count()),
                "{}: {}",
                user.user,
                user.without_count()
            );
            // Phase 2: the clear majority (paper: 169 for user1).
            assert!(
                (150..200).contains(&user.with_count()),
                "{}: {}",
                user.user,
                user.with_count()
            );
            // Monotone: nothing un-identified by seeing examples.
            assert!(user.identified_without.is_subset(&user.identified_with));
        }
        // Mean identification ≈ 73% (paper §5).
        let mean = outcome.mean_with_rate();
        assert!((0.60..0.80).contains(&mean), "mean rate {mean}");
    }

    #[test]
    fn per_category_findings_match_section5() {
        let outcome = study();
        for user in &outcome.users {
            let c = &user.per_category;
            // Shims: fully identified.
            assert_eq!(c[&Category::FormatTransformation].0, 53, "{}", user.user);
            assert_eq!(c[&Category::MappingIdentifiers].0, 62, "{}", user.user);
            // Retrieval: all but the unfamiliar-output modules (8), modulo
            // the popular ones the user knew by name anyway.
            let (dr_hit, dr_total) = c[&Category::DataRetrieval];
            assert_eq!(dr_total, 51);
            assert!((43..=47).contains(&dr_hit), "{}: {dr_hit}", user.user);
            // Filtering and analysis: small fractions.
            let (f_hit, f_total) = c[&Category::Filtering];
            assert_eq!(f_total, 27);
            assert!((2..=10).contains(&f_hit), "{}: {f_hit}", user.user);
            let (da_hit, da_total) = c[&Category::DataAnalysis];
            assert_eq!(da_total, 59);
            assert!((4..=16).contains(&da_hit), "{}: {da_hit}", user.user);
        }
    }

    #[test]
    fn without_examples_everything_needs_popularity() {
        let outcome = study();
        let universe = dex_universe::build();
        for user in &outcome.users {
            for id in &user.identified_without {
                assert!(universe.popular.contains(id), "{}: {id}", user.user);
            }
        }
    }
}
