//! # dex-study
//!
//! The §5 user study, simulated: can a human, shown a module's name,
//! parameter annotations and (in a second phase) its data examples,
//! correctly describe what the module does?
//!
//! The paper ran this with three life-science researchers. Here each
//! [`UserModel`] encodes what the paper *measured* about human performance:
//!
//! * without data examples, users only recognize *popular* modules they
//!   already know (≈18% for user 1);
//! * with data examples, shim behavior is transparent — format
//!   transformation and identifier mapping were identified **always**,
//!   data retrieval almost always (the misses were outputs in formats the
//!   user did not know, e.g. Glycan/Ligand);
//! * filtering and complex analysis stay hard (≈19% and ≈10%) because a
//!   handful of input/output pairs underdetermines the criterion or the
//!   algorithm;
//! * examples never *remove* understanding: phase 2 answers are a superset
//!   of phase 1 answers.
//!
//! The per-category success *rates* are calibrated to the paper; which
//! specific modules a user gets is a deterministic per-(user, module) hash,
//! so different simulated users disagree on the margins exactly like the
//! paper's "similar figures for user2 and user3".

pub mod protocol;
pub mod user;

pub use protocol::{run_user_study, StudyOutcome, UserOutcome};
pub use user::UserModel;
