//! Construction of the simulated module universe.
//!
//! Builds the population the paper characterizes (§5, Table 3): 252 modern
//! modules across five categories of data manipulation, plus 72 legacy
//! modules whose behavior the case study (§6) tries to re-identify among the
//! modern population. Every module is a deterministic closure over the
//! simulated backend in [`crate::db`], so example generation and matching are
//! reproducible.

use crate::behavior::{BehaviorClass, BehaviorSpec, Pred};
use crate::category::Category;
use crate::db;
use dex_modules::{
    FnModule, InvocationError, ModuleCatalog, ModuleDescriptor, ModuleId, ModuleKind, Parameter,
};
use dex_ontology::{mygrid, Ontology};
use dex_values::formats::accession::AccessionKind;
use dex_values::formats::document;
use dex_values::formats::records::{EntryRecord, RecordFormat};
use dex_values::formats::sequence::{self, SequenceKind};
use dex_values::synth;
use dex_values::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The verdict the case-study ground truth expects for one legacy module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpectedMatch {
    /// A modern module with the same observable behavior exists.
    Equivalent(ModuleId),
    /// A modern module agreeing on part of the input space exists.
    Overlapping(ModuleId),
    /// No modern module shares behavior with the legacy module.
    None,
}

/// The full simulated world: catalog, ontology, and ground-truth metadata.
pub struct Universe {
    /// Every module, modern and legacy alike.
    pub catalog: ModuleCatalog,
    /// The myGrid-like annotation ontology.
    pub ontology: Ontology,
    /// Category of each modern module (Table 3).
    pub categories: BTreeMap<ModuleId, Category>,
    /// Ground-truth behavior spec of each modern module.
    pub specs: BTreeMap<ModuleId, BehaviorSpec>,
    /// Legacy module ids, sorted.
    pub legacy: Vec<ModuleId>,
    /// Ground-truth matching verdict for each legacy module.
    pub expected_match: BTreeMap<ModuleId, ExpectedMatch>,
    /// Modern modules most users recognize by interface alone.
    pub popular: BTreeSet<ModuleId>,
    /// Modern retrievals whose output databases most users cannot assess.
    pub unfamiliar_output: BTreeSet<ModuleId>,
    /// Modern modules whose output-space coverage is necessarily partial.
    pub partial_output: BTreeSet<ModuleId>,
}

impl Universe {
    /// Ids of the modern (non-legacy) modules still present in the catalog.
    pub fn available_ids(&self) -> Vec<ModuleId> {
        self.catalog
            .available_ids()
            .into_iter()
            .filter(|id| !self.is_legacy(id))
            .collect()
    }

    /// Whether `id` names a legacy module.
    pub fn is_legacy(&self, id: &ModuleId) -> bool {
        self.legacy.binary_search(id).is_ok()
    }

    /// Withdraws every legacy module, leaving only the modern population.
    pub fn decay(&mut self) {
        for id in &self.legacy {
            self.catalog.withdraw(id);
        }
    }
}

/// Whether a legacy module's behavior diverges from its modern counterpart on
/// the input identified by `key` (the half of the input space where an
/// Overlapping pair disagrees).
pub fn legacy_divergent(key: &str) -> bool {
    db::seed_for(&[key]) % 2 == 1
}

// --------------------------------------------------------------------------
// Deterministic value builders shared by modern modules and their legacy
// twins. A `Core` maps one text input to one output value; modules whose
// behavior must coincide share a core constructed with identical arguments.
// --------------------------------------------------------------------------

type Core = Arc<dyn Fn(&str) -> Value + Send + Sync>;
type KeyFn = Arc<dyn Fn(&str) -> Option<String> + Send + Sync>;

/// Salt reserved for legacy-only derivations; no modern module uses it.
const LEGACY_SALT: u64 = 0xA5C1;

fn rng_local(parts: &[&str], salt: u64) -> StdRng {
    StdRng::seed_from_u64(db::seed_for(parts) ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn text_core(f: impl Fn(&str) -> String + Send + Sync + 'static) -> Core {
    Arc::new(move |s| Value::text(f(s)))
}

const KEYWORD_VOCAB: &[&str] = &[
    "binding",
    "transport",
    "catalysis",
    "signaling",
    "membrane",
    "nuclear",
    "repair",
    "folding",
];

fn keywords_for(key: &str, salt: u64) -> String {
    let mut rng = rng_local(&["keywords", key], salt);
    let n = rng.gen_range(2..4usize);
    let mut picked: Vec<&str> = Vec::new();
    while picked.len() < n {
        let w = KEYWORD_VOCAB[rng.gen_range(0..KEYWORD_VOCAB.len())];
        if !picked.contains(&w) {
            picked.push(w);
        }
    }
    format!("keywords:{}", picked.join(","))
}

fn xrefs_for(key: &str, salt: u64) -> String {
    let mut rng = rng_local(&["xrefs", key], salt);
    let a = AccessionKind::Uniprot.generate(&mut rng);
    let b = AccessionKind::Uniprot.generate(&mut rng);
    format!("xrefs:{a}|{b}")
}

fn abstract_for(key: &str, salt: u64) -> String {
    let mut rng = rng_local(&["abstract", key], salt);
    let n = rng.gen_range(1..4usize);
    let mut concepts: Vec<&str> = Vec::new();
    while concepts.len() < n {
        let c = document::PATHWAY_CONCEPTS[rng.gen_range(0..document::PATHWAY_CONCEPTS.len())];
        if !concepts.contains(&c) {
            concepts.push(c);
        }
    }
    document::generate_abstract(&mut rng, &concepts)
}

/// Entrez gene id for `key`; padded so the id never collides with the
/// four-character PDB accession shape.
fn entrez_for(key: &str, salt: u64) -> String {
    let mut v = db::map_accession(AccessionKind::Entrez, key, salt);
    while v.len() < 5 {
        v.insert(0, '1');
    }
    v
}

fn digest_masses(seq: &str, salt: u64) -> Vec<Value> {
    let mut rng = rng_local(&["digest", seq], salt);
    let n = rng.gen_range(6..=12usize);
    (0..n)
        .map(|_| Value::Float((rng.gen_range(500.0..3000.0f64) * 10.0).round() / 10.0))
        .collect()
}

fn seq_stats_text(seq: &str) -> String {
    format!(
        "REPORT seq-stats\nSTATUS ok\nPAYLOAD length={} gc={:.2}\n",
        seq.len(),
        sequence::gc_content(seq)
    )
}

fn record_core(dbname: &'static str, format: RecordFormat) -> Core {
    text_core(move |acc| db::record_for(dbname, acc, format))
}

fn kegg_core(kind: &'static str) -> Core {
    text_core(move |acc| db::kegg_entry_for(kind, acc))
}

fn seq_core(dbname: &'static str, kind: SequenceKind) -> Core {
    text_core(move |acc| db::seq_entry_for(dbname, acc, kind).sequence)
}

fn map_core(target: AccessionKind, salt: u64) -> Core {
    text_core(move |s| db::map_accession(target, s, salt))
}

fn entrez_core(salt: u64) -> Core {
    text_core(move |s| entrez_for(s, salt))
}

fn go_core(salt: u64) -> Core {
    text_core(move |s| db::go_term_for(s, salt))
}

fn annotate_core(salt: u64) -> Core {
    text_core(move |s| db::annotation_for(s, salt))
}

fn abstract_core(salt: u64) -> Core {
    text_core(move |s| abstract_for(s, salt))
}

fn tree_core(salt: u64) -> Core {
    text_core(move |s| db::tree_for(s, salt))
}

fn homology_core(dbname: &'static str, program: &'static str, salt: u64) -> Core {
    text_core(move |s| db::homology_report(dbname, program, s, salt))
}

fn keywords_core(salt: u64) -> Core {
    text_core(move |s| keywords_for(s, salt))
}

fn xrefs_core(salt: u64) -> Core {
    text_core(move |s| xrefs_for(s, salt))
}

fn echo_core() -> Core {
    Arc::new(|s| Value::text(s))
}

/// Parses `from` (or any known record shape) and re-renders as `to`.
fn conv_core(from: RecordFormat, to: RecordFormat) -> Core {
    text_core(
        move |text| match from.parse(text).ok().or_else(|| db::parse_any_record(text)) {
            Some(e) => to.render(&e),
            None => text.to_string(),
        },
    )
}

fn acc_core(format: RecordFormat) -> Core {
    text_core(move |text| {
        match format
            .parse(text)
            .ok()
            .or_else(|| db::parse_any_record(text))
        {
            Some(e) => e.accession,
            None => text.to_string(),
        }
    })
}

fn entry_acc_core() -> Core {
    text_core(|text| match EntryRecord::parse(text) {
        Ok(e) => e.accession,
        Err(_) => text.to_string(),
    })
}

fn generic_core() -> Core {
    text_core(|text| match db::parse_any_record(text) {
        Some(e) => db::render_generic_record(&e),
        None => text.to_string(),
    })
}

fn to_fasta_core() -> Core {
    text_core(|text| match db::parse_any_record(text) {
        Some(e) => RecordFormat::Fasta.render(&e),
        None => text.to_string(),
    })
}

/// Re-renders any record as FASTA under a canonical (EBI-style) accession,
/// so outputs share one shape regardless of the source format.
fn canonical_fasta_core(salt: u64) -> Core {
    text_core(move |text| match db::parse_any_record(text) {
        Some(mut e) => {
            e.accession = db::map_accession(AccessionKind::Uniprot, &e.accession, salt);
            RecordFormat::Fasta.render(&e)
        }
        None => text.to_string(),
    })
}

fn revcomp_core() -> Core {
    text_core(sequence::reverse_complement)
}

fn gc_core() -> Core {
    Arc::new(|s| Value::Float(sequence::gc_content(s)))
}

fn stats_core() -> Core {
    text_core(seq_stats_text)
}

fn digest_core(salt: u64) -> Core {
    Arc::new(move |s| Value::List(digest_masses(s, salt)))
}

fn first_concept_core() -> Core {
    text_core(|text| {
        document::extract_concepts(text)
            .into_iter()
            .next()
            .unwrap_or_else(|| "glycolysis".to_string())
    })
}

fn pick_core(list: &'static [&'static str], tag: &'static str, salt: u64) -> Core {
    text_core(move |s| {
        list[((db::seed_for(&[tag, s]) ^ salt) % list.len() as u64) as usize].to_string()
    })
}

/// Phylogeny keyed on the sequence inside a FASTA record.
fn tree_of_fasta_core(salt: u64) -> Core {
    text_core(move |text| {
        let key = RecordFormat::Fasta
            .parse(text)
            .map(|e| e.sequence)
            .unwrap_or_else(|_| text.to_string());
        db::tree_for(&key, salt)
    })
}

/// `dr:get_biological_sequence`: protein databases get protein sequences,
/// everything else is served as DNA.
fn bioseq_core() -> Core {
    text_core(|acc| {
        let kind = if AccessionKind::Uniprot.is_valid(acc) || AccessionKind::Pdb.is_valid(acc) {
            SequenceKind::Protein
        } else {
            SequenceKind::Dna
        };
        db::seq_entry_for("seqdb", acc, kind).sequence
    })
}

// --------------------------------------------------------------------------
// Legacy-divergence combinators.
// --------------------------------------------------------------------------

fn raw_key() -> KeyFn {
    Arc::new(|s| Some(s.to_string()))
}

fn fmt_acc_key(format: RecordFormat) -> KeyFn {
    Arc::new(move |s| format.parse(s).ok().map(|e| e.accession))
}

fn fasta_seq_key() -> KeyFn {
    Arc::new(|s| RecordFormat::Fasta.parse(s).ok().map(|e| e.sequence))
}

/// Overlapping-legacy body: agrees with `agree` except where the divergence
/// key says the archived implementation drifted.
fn overlap_core(agree: Core, key: KeyFn, divergent: Core) -> Core {
    Arc::new(move |s| match key(s) {
        Some(k) if legacy_divergent(&k) => divergent(s),
        _ => agree(s),
    })
}

/// Forces `alt` to differ from `agree` on every input (divergent halves must
/// never accidentally coincide with the modern output).
fn distinct_from(agree: Core, alt: Core) -> Core {
    Arc::new(move |s| {
        let a = agree(s);
        let d = alt(s);
        if d != a {
            return d;
        }
        match d {
            Value::Text(t) => Value::text(format!("{t}#archival")),
            Value::Float(f) => Value::Float(f + 1.0),
            Value::List(mut l) => {
                l.push(Value::Float(0.0));
                Value::List(l)
            }
            other => other,
        }
    })
}

/// Divergent retrieval: same backend record with an archival description.
fn archival_record_core(dbname: &'static str, format: RecordFormat) -> Core {
    text_core(move |acc| {
        let text = db::record_for(dbname, acc, format);
        match format.parse(&text) {
            Ok(mut e) => {
                e.description.push_str(" (archival copy)");
                format.render(&e)
            }
            Err(_) => format!("{text}#archival"),
        }
    })
}

/// Divergent conversion: parse, tweak the description, re-render.
fn archival_conv_core(from: RecordFormat, to: RecordFormat) -> Core {
    text_core(
        move |text| match from.parse(text).ok().or_else(|| db::parse_any_record(text)) {
            Some(mut e) => {
                e.description.push_str(" (archival copy)");
                to.render(&e)
            }
            None => format!("{text}#archival"),
        },
    )
}

// --------------------------------------------------------------------------
// Behavior-spec builders for the multi-class module families.
// --------------------------------------------------------------------------

fn two_class(task: &str, special: &str, guard: Pred, general: &str) -> BehaviorSpec {
    BehaviorSpec::new(
        task,
        vec![
            BehaviorClass::new(special, guard),
            BehaviorClass::new(general, Pred::Always),
        ],
    )
}

fn recode_spec() -> BehaviorSpec {
    two_class(
        "recode biological sequence",
        "transcribe nucleotide sequence",
        Pred::SeqKindIn(0, vec![SequenceKind::Dna, SequenceKind::Rna]),
        "recode protein sequence",
    )
}

fn resolve_gene_spec() -> BehaviorSpec {
    two_class(
        "resolve gene identifier",
        "resolve curated gene id",
        Pred::AnyOf(vec![
            Pred::TextPrefixed(0, "gene-".into()),
            Pred::ConceptIs(0, "EnsemblGeneId".into()),
        ]),
        "resolve aliased gene id",
    )
}

fn identifier_family_spec() -> BehaviorSpec {
    let family = |name: &str, concept: &str| {
        BehaviorClass::new(name.to_string(), Pred::ConceptIs(0, concept.into()))
    };
    BehaviorSpec::new(
        "normalize identifier to entrez gene id",
        vec![
            family("normalize uniprot accession", "UniprotAccession"),
            family("normalize pdb accession", "PDBAccession"),
            family("normalize embl accession", "EMBLAccession"),
            family("normalize genbank accession", "GenBankAccession"),
            family("normalize go term", "GOTerm"),
            family("normalize ec number", "ECNumber"),
            family("normalize entrez gene id", "EntrezGeneId"),
            family("normalize ensembl gene id", "EnsemblGeneId"),
            BehaviorClass::new("normalize any other identifier", Pred::Always),
        ],
    )
}

fn align_seq_spec() -> BehaviorSpec {
    two_class(
        "align biological sequence",
        "align nucleotide query",
        Pred::SeqKindIn(0, vec![SequenceKind::Dna, SequenceKind::Rna]),
        "align protein query",
    )
}

fn annotate_term_spec() -> BehaviorSpec {
    BehaviorSpec::new(
        "annotate ontology term",
        vec![
            BehaviorClass::new(
                "annotate generic term with free text",
                Pred::All(vec![
                    Pred::TextPrefixed(0, "TERM:".into()),
                    Pred::TextPrefixed(1, "annotation:".into()),
                ]),
            ),
            BehaviorClass::new(
                "annotate generic term with pathway concept",
                Pred::All(vec![
                    Pred::TextPrefixed(0, "TERM:".into()),
                    Pred::ConceptIs(1, "PathwayConcept".into()),
                ]),
            ),
            BehaviorClass::new(
                "annotate go term with category",
                Pred::All(vec![
                    Pred::ConceptIs(0, "GOTerm".into()),
                    Pred::ConceptIs(1, "FunctionalCategory".into()),
                ]),
            ),
            BehaviorClass::new(
                "annotate go term with keywords",
                Pred::All(vec![
                    Pred::ConceptIs(0, "GOTerm".into()),
                    Pred::TextPrefixed(1, "keywords:".into()),
                ]),
            ),
            BehaviorClass::new(
                "annotate ec number with cross references",
                Pred::All(vec![
                    Pred::ConceptIs(0, "ECNumber".into()),
                    Pred::TextPrefixed(1, "xrefs:".into()),
                ]),
            ),
            BehaviorClass::new(
                "annotate ec number with free text",
                Pred::All(vec![
                    Pred::ConceptIs(0, "ECNumber".into()),
                    Pred::TextPrefixed(1, "annotation:".into()),
                ]),
            ),
            BehaviorClass::new("annotate remaining term", Pred::Always),
        ],
    )
}

fn filter_annotation_spec() -> BehaviorSpec {
    two_class(
        "filter annotation data",
        "forward structured annotation",
        Pred::AnyOf(vec![
            Pred::TextPrefixed(0, "annotation:".into()),
            Pred::ConceptIs(0, "PathwayConcept".into()),
            Pred::ConceptIs(0, "FunctionalCategory".into()),
        ]),
        "summarize free annotation",
    )
}

fn analyze_record_spec() -> BehaviorSpec {
    BehaviorSpec::new(
        "analyze sequence record",
        vec![
            BehaviorClass::new(
                "analyze curated record",
                Pred::AnyOf(vec![
                    Pred::GenericSeqRecord(0),
                    Pred::ConceptIs(0, "UniprotRecord".into()),
                ]),
            ),
            BehaviorClass::new(
                "analyze sequence-file record",
                Pred::AnyOf(vec![
                    Pred::ConceptIs(0, "FastaRecord".into()),
                    Pred::ConceptIs(0, "GenBankRecord".into()),
                ]),
            ),
            BehaviorClass::new("analyze empty record", Pred::TextEmpty(0)),
            BehaviorClass::new("analyze other record", Pred::Always),
        ],
    )
}

fn profile_annotation_spec() -> BehaviorSpec {
    BehaviorSpec::new(
        "profile annotation data",
        vec![
            BehaviorClass::new(
                "profile free-text annotation",
                Pred::TextPrefixed(0, "annotation:".into()),
            ),
            BehaviorClass::new(
                "profile pathway annotation",
                Pred::ConceptIs(0, "PathwayConcept".into()),
            ),
            BehaviorClass::new(
                "profile category annotation",
                Pred::ConceptIs(0, "FunctionalCategory".into()),
            ),
            BehaviorClass::new(
                "profile keyword annotation",
                Pred::TextPrefixed(0, "keywords:".into()),
            ),
            BehaviorClass::new("profile empty annotation", Pred::TextEmpty(0)),
            BehaviorClass::new(
                "profile oversized annotation",
                Pred::TextLongerThan(0, 9999),
            ),
            BehaviorClass::new(
                "profile degenerate annotation",
                Pred::All(vec![Pred::TextEmpty(0), Pred::TextLongerThan(0, 9999)]),
            ),
            BehaviorClass::new("profile cross-reference annotation", Pred::Always),
        ],
    )
}

fn normalize_record_spec() -> BehaviorSpec {
    BehaviorSpec::new(
        "normalize sequence record",
        vec![
            BehaviorClass::new(
                "normalize curated record",
                Pred::AnyOf(vec![
                    Pred::GenericSeqRecord(0),
                    Pred::ConceptIs(0, "UniprotRecord".into()),
                ]),
            ),
            BehaviorClass::new(
                "normalize sequence-file record",
                Pred::AnyOf(vec![
                    Pred::ConceptIs(0, "FastaRecord".into()),
                    Pred::ConceptIs(0, "GenBankRecord".into()),
                ]),
            ),
            BehaviorClass::new("normalize empty record", Pred::TextEmpty(0)),
            BehaviorClass::new("normalize oversized record", Pred::TextLongerThan(0, 9999)),
            BehaviorClass::new("normalize other record", Pred::Always),
        ],
    )
}

fn filter_term_spec() -> BehaviorSpec {
    BehaviorSpec::new(
        "filter ontology terms",
        vec![
            BehaviorClass::new(
                "forward generic term",
                Pred::TextPrefixed(0, "TERM:".into()),
            ),
            BehaviorClass::new("forward go term", Pred::ConceptIs(0, "GOTerm".into())),
            BehaviorClass::new("drop empty term", Pred::TextEmpty(0)),
            BehaviorClass::new("drop oversized term", Pred::TextLongerThan(0, 9999)),
            BehaviorClass::new(
                "drop degenerate term",
                Pred::All(vec![Pred::TextEmpty(0), Pred::TextLongerThan(0, 9999)]),
            ),
            BehaviorClass::new("forward remaining term", Pred::Always),
        ],
    )
}

// --------------------------------------------------------------------------
// Registrar.
// --------------------------------------------------------------------------

fn kind_for(i: usize) -> ModuleKind {
    match i % 9 {
        0..=4 => ModuleKind::SoapService,
        5 | 6 => ModuleKind::RestService,
        _ => ModuleKind::LocalProgram,
    }
}

fn category_of(id: &str) -> Category {
    match id.split(':').next().unwrap_or("") {
        "ft" => Category::FormatTransformation,
        "dr" => Category::DataRetrieval,
        "mi" => Category::MappingIdentifiers,
        "fl" => Category::Filtering,
        "da" => Category::DataAnalysis,
        other => panic!("unknown category prefix {other:?}"),
    }
}

fn pretty_name(id: &str) -> String {
    let tail = id.split_once(':').map(|(_, t)| t).unwrap_or(id);
    tail.split('_')
        .map(|w| {
            let mut cs = w.chars();
            match cs.next() {
                Some(f) => f.to_uppercase().collect::<String>() + cs.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn param(name: &str, concept: &str) -> Parameter {
    let structural = synth::structural_type_of(concept)
        .unwrap_or_else(|| panic!("no structural grounding for concept {concept:?}"));
    Parameter::required(name, structural, concept)
}

struct Builder {
    catalog: ModuleCatalog,
    categories: BTreeMap<ModuleId, Category>,
    specs: BTreeMap<ModuleId, BehaviorSpec>,
    legacy: Vec<ModuleId>,
    expected: BTreeMap<ModuleId, ExpectedMatch>,
    modern_count: usize,
}

impl Builder {
    fn new() -> Self {
        Builder {
            catalog: ModuleCatalog::new(),
            categories: BTreeMap::new(),
            specs: BTreeMap::new(),
            legacy: Vec::new(),
            expected: BTreeMap::new(),
            modern_count: 0,
        }
    }

    fn register(
        &mut self,
        id: &str,
        kind: ModuleKind,
        inputs: Vec<Parameter>,
        outputs: Vec<Parameter>,
        body: impl Fn(&[Value]) -> Result<Vec<Value>, InvocationError> + Send + Sync + 'static,
    ) {
        let descriptor = ModuleDescriptor::new(id, pretty_name(id), kind, inputs, outputs);
        self.catalog.register(FnModule::shared(descriptor, body));
    }

    /// Registers a modern module with an arbitrary body.
    fn modern(
        &mut self,
        id: &str,
        inputs: &[(&str, &str)],
        output: (&str, &str),
        spec: BehaviorSpec,
        body: impl Fn(&[Value]) -> Result<Vec<Value>, InvocationError> + Send + Sync + 'static,
    ) {
        let kind = kind_for(self.modern_count);
        self.modern_count += 1;
        let ins = inputs.iter().map(|(n, c)| param(n, c)).collect();
        let outs = vec![param(output.0, output.1)];
        self.register(id, kind, ins, outs, body);
        let mid = ModuleId::new(id);
        self.categories.insert(mid.clone(), category_of(id));
        self.specs.insert(mid, spec);
    }

    /// Registers a modern module whose body is a single-text-input `Core`.
    fn modern_core(&mut self, id: &str, in_c: &str, out_c: &str, spec: BehaviorSpec, core: Core) {
        self.modern(
            id,
            &[("input", in_c)],
            ("output", out_c),
            spec,
            move |inputs: &[Value]| {
                let s = inputs.first().and_then(Value::as_text).unwrap_or_default();
                Ok(vec![core(s)])
            },
        );
    }

    /// Registers a modern module that rejects payloads its parser cannot
    /// handle — a strict single-format service, unlike the lenient cores
    /// that echo unparseable input through.
    fn modern_core_strict(
        &mut self,
        id: &str,
        in_c: &str,
        out_c: &str,
        spec: BehaviorSpec,
        accepts: impl Fn(&str) -> bool + Send + Sync + 'static,
        core: Core,
    ) {
        self.modern(
            id,
            &[("input", in_c)],
            ("output", out_c),
            spec,
            move |inputs: &[Value]| {
                let s = inputs.first().and_then(Value::as_text).unwrap_or_default();
                if !accepts(s) {
                    return Err(InvocationError::BadInput {
                        parameter: "input".to_string(),
                        reason: "payload does not parse as the expected record format".to_string(),
                    });
                }
                Ok(vec![core(s)])
            },
        );
    }

    /// Registers a legacy module (single input, single output).
    fn legacy_core(
        &mut self,
        id: &str,
        in_c: &str,
        out_c: &str,
        expected: ExpectedMatch,
        core: Core,
    ) {
        self.register(
            id,
            ModuleKind::SoapService,
            vec![param("input", in_c)],
            vec![param("output", out_c)],
            move |inputs: &[Value]| {
                let s = inputs.first().and_then(Value::as_text).unwrap_or_default();
                Ok(vec![core(s)])
            },
        );
        let mid = ModuleId::new(id);
        self.legacy.push(mid.clone());
        self.expected.insert(mid, expected);
    }
}

// --------------------------------------------------------------------------
// The universe.
// --------------------------------------------------------------------------

/// Record formats paired with their concept names.
const FORMATS: [(&str, RecordFormat, &str); 5] = [
    ("uniprot", RecordFormat::Uniprot, "UniprotRecord"),
    ("fasta", RecordFormat::Fasta, "FastaRecord"),
    ("genbank", RecordFormat::GenBank, "GenBankRecord"),
    ("embl", RecordFormat::Embl, "EMBLRecord"),
    ("pdb", RecordFormat::Pdb, "PDBRecord"),
];

fn uniform(task: &str) -> BehaviorSpec {
    BehaviorSpec::uniform(task)
}

fn add_format_transformations(b: &mut Builder) {
    // Pairwise format conversions (20 shims).
    for (a_name, a_fmt, a_concept) in FORMATS {
        for (b_name, b_fmt, b_concept) in FORMATS {
            if a_name == b_name {
                continue;
            }
            b.modern_core_strict(
                &format!("ft:conv_{a_name}_{b_name}"),
                a_concept,
                b_concept,
                uniform(&format!("convert {a_name} record to {b_name}")),
                move |s| a_fmt.parse(s).is_ok(),
                conv_core(a_fmt, b_fmt),
            );
        }
    }
    // Canonicalizers (5).
    for (name, fmt, concept) in FORMATS {
        b.modern_core_strict(
            &format!("ft:normalize_{name}"),
            concept,
            concept,
            uniform(&format!("normalize {name} record")),
            move |s| fmt.parse(s).is_ok(),
            conv_core(fmt, fmt),
        );
    }
    // Accession extraction from flat-file records (3).
    for (name, fmt, concept, acc_concept) in [
        (
            "uniprot",
            RecordFormat::Uniprot,
            "UniprotRecord",
            "UniprotAccession",
        ),
        ("pdb", RecordFormat::Pdb, "PDBRecord", "PDBAccession"),
        ("embl", RecordFormat::Embl, "EMBLRecord", "EMBLAccession"),
    ] {
        b.modern_core(
            &format!("ft:acc_of_{name}"),
            concept,
            acc_concept,
            uniform(&format!("extract {name} accession")),
            acc_core(fmt),
        );
    }
    // Accession extraction from KEGG-style entries (6).
    for (name, concept, acc_concept) in [
        ("pathway", "PathwayRecord", "KEGGPathwayId"),
        ("enzyme", "EnzymeRecord", "KEGGEnzymeId"),
        ("compound", "CompoundRecord", "KEGGCompoundId"),
        ("glycan", "GlycanRecord", "GlycanAccession"),
        ("ligand", "LigandRecord", "LigandAccession"),
        ("gene", "GeneRecord", "KEGGGeneId"),
    ] {
        b.modern_core(
            &format!("ft:kegg_acc_of_{name}"),
            concept,
            acc_concept,
            uniform(&format!("extract {name} entry accession")),
            entry_acc_core(),
        );
    }
    // Simple value-level shims (5).
    b.modern_core(
        "ft:revcomp",
        "DNASequence",
        "DNASequence",
        uniform("reverse-complement dna"),
        revcomp_core(),
    );
    b.modern_core(
        "ft:canonical_go",
        "GOTerm",
        "GOTerm",
        uniform("canonicalize go term"),
        echo_core(),
    );
    b.modern_core(
        "ft:format_ec",
        "ECNumber",
        "ECNumber",
        uniform("format ec number"),
        echo_core(),
    );
    b.modern_core(
        "ft:norm_symbol",
        "GeneSymbol",
        "GeneSymbol",
        uniform("normalize gene symbol"),
        echo_core(),
    );
    b.modern_core(
        "ft:render_tree",
        "PhylogeneticTree",
        "PhylogeneticTree",
        uniform("render phylogenetic tree"),
        echo_core(),
    );
    // Generic renderers over any record shape (2, partial output coverage).
    for i in 0..2 {
        b.modern_core(
            &format!("ft:render_generic_v{i}"),
            "SequenceRecord",
            "SequenceRecord",
            uniform("render generic sequence record"),
            generic_core(),
        );
    }
    // Record-to-FASTA shim over any record shape: one behavior class across
    // six input partitions, so its example set is maximally redundant.
    b.modern_core(
        "ft:record_to_fasta_ebi",
        "SequenceRecord",
        "FastaRecord",
        uniform("convert any sequence record to fasta"),
        canonical_fasta_core(16),
    );
    // Sequence recoders: interval-classified behavior (9).
    for (i, dbname) in [
        "recode-v0",
        "recode-v1",
        "recode-v2",
        "recode-v3",
        "recode-v4",
        "recode-v5",
        "recode-v6",
        "recode-v7",
        "recode-v8",
    ]
    .into_iter()
    .enumerate()
    {
        b.modern_core(
            &format!("ft:recode_seq_v{i}"),
            "BiologicalSequence",
            "ProteinSequence",
            recode_spec(),
            seq_core(dbname, SequenceKind::Protein),
        );
    }
    // Record normalizers with partially exercised specs (2).
    for i in 0..2 {
        b.modern_core(
            &format!("ft:normalize_record_v{i}"),
            "SequenceRecord",
            "FastaRecord",
            normalize_record_spec(),
            to_fasta_core(),
        );
    }
}

fn add_data_retrievals(b: &mut Builder) {
    // Primary flat-file retrievals.
    b.modern_core(
        "dr:get_uniprot_record",
        "UniprotAccession",
        "UniprotRecord",
        uniform("retrieve uniprot record"),
        record_core("uniprot", RecordFormat::Uniprot),
    );
    b.modern_core(
        "dr:get_uniprot_record_ebi",
        "UniprotAccession",
        "UniprotRecord",
        uniform("retrieve uniprot record"),
        record_core("uniprot", RecordFormat::Uniprot),
    );
    b.modern_core(
        "dr:get_pdb_record",
        "PDBAccession",
        "PDBRecord",
        uniform("retrieve pdb record"),
        record_core("pdb", RecordFormat::Pdb),
    );
    b.modern_core(
        "dr:get_embl_record",
        "EMBLAccession",
        "EMBLRecord",
        uniform("retrieve embl record"),
        record_core("embl", RecordFormat::Embl),
    );
    b.modern_core(
        "dr:get_genbank_record",
        "GenBankAccession",
        "GenBankRecord",
        uniform("retrieve genbank record"),
        record_core("genbank", RecordFormat::GenBank),
    );
    b.modern_core(
        "dr:get_fasta_uniprot",
        "UniprotAccession",
        "FastaRecord",
        uniform("retrieve fasta entry"),
        record_core("uniprot", RecordFormat::Fasta),
    );
    // Alternate providers for the same formats (8).
    for (fmt_name, fmt, in_c, out_c) in [
        (
            "uniprot",
            RecordFormat::Uniprot,
            "UniprotAccession",
            "UniprotRecord",
        ),
        ("pdb", RecordFormat::Pdb, "PDBAccession", "PDBRecord"),
        ("embl", RecordFormat::Embl, "EMBLAccession", "EMBLRecord"),
        (
            "genbank",
            RecordFormat::GenBank,
            "GenBankAccession",
            "GenBankRecord",
        ),
    ] {
        for (prov, dbname) in [
            (
                "ddbj",
                ["uniprot-ddbj", "pdb-ddbj", "embl-ddbj", "genbank-ddbj"],
            ),
            (
                "ncbi",
                ["uniprot-ncbi", "pdb-ncbi", "embl-ncbi", "genbank-ncbi"],
            ),
        ] {
            let idx = match fmt_name {
                "uniprot" => 0,
                "pdb" => 1,
                "embl" => 2,
                _ => 3,
            };
            b.modern_core(
                &format!("dr:get_{fmt_name}_record_{prov}"),
                in_c,
                out_c,
                uniform(&format!("retrieve {fmt_name} record from {prov}")),
                record_core(dbname[idx], fmt),
            );
        }
    }
    // FASTA from other databases (3).
    for (suffix, dbname, in_c) in [
        ("pdb", "fasta-pdb", "PDBAccession"),
        ("embl", "fasta-embl", "EMBLAccession"),
        ("genbank", "fasta-genbank", "GenBankAccession"),
    ] {
        b.modern_core(
            &format!("dr:get_fasta_{suffix}"),
            in_c,
            "FastaRecord",
            uniform("retrieve fasta entry"),
            record_core(dbname, RecordFormat::Fasta),
        );
    }
    // Enzyme-to-genes lookup: leaf input, broad output (the returned
    // identifier is only classifiable as a generic gene identifier, so the
    // output partition space is never fully witnessed).
    b.modern_core(
        "dr:get_genes_by_enzyme",
        "ECNumber",
        "GeneIdentifier",
        uniform("list genes catalyzing an enzyme"),
        text_core(|s| format!("gene-{}", db::seed_for(&["ec-genes", s]))),
    );
    // KEGG-style entry retrievals (10) plus lookups by symbol / EC (2).
    for (suffix, kind, in_c, out_c) in [
        ("pathway_entry", "Pathway", "KEGGPathwayId", "PathwayRecord"),
        ("enzyme_entry", "Enzyme", "KEGGEnzymeId", "EnzymeRecord"),
        (
            "compound_entry",
            "Compound",
            "KEGGCompoundId",
            "CompoundRecord",
        ),
        ("glycan_entry", "Glycan", "GlycanAccession", "GlycanRecord"),
        ("ligand_entry", "Ligand", "LigandAccession", "LigandRecord"),
    ] {
        b.modern_core(
            &format!("dr:get_{suffix}"),
            in_c,
            out_c,
            uniform(&format!("retrieve {kind} entry")),
            kegg_core(kind),
        );
        b.modern_core(
            &format!("dr:get_{suffix}_rest"),
            in_c,
            out_c,
            uniform(&format!("retrieve {kind} entry")),
            kegg_core(kind),
        );
    }
    b.modern_core(
        "dr:get_symbol_gene_entry",
        "GeneSymbol",
        "GeneRecord",
        uniform("retrieve gene entry by symbol"),
        kegg_core("Gene"),
    );
    b.modern_core(
        "dr:get_enzyme_by_ec",
        "ECNumber",
        "EnzymeRecord",
        uniform("retrieve enzyme entry by ec"),
        kegg_core("Enzyme"),
    );
    // Gene entries (2, same backend).
    b.modern_core(
        "dr:get_gene_record",
        "KEGGGeneId",
        "GeneRecord",
        uniform("retrieve gene entry"),
        kegg_core("Gene"),
    );
    b.modern_core(
        "dr:get_gene_record_rest",
        "KEGGGeneId",
        "GeneRecord",
        uniform("retrieve gene entry"),
        kegg_core("Gene"),
    );
    // Sequence retrievals (5).
    b.modern_core(
        "dr:get_protein_sequence_ddbj",
        "UniprotAccession",
        "ProteinSequence",
        uniform("retrieve protein sequence"),
        seq_core("seqdb", SequenceKind::Protein),
    );
    b.modern_core(
        "dr:get_protein_sequence_ebi",
        "UniprotAccession",
        "ProteinSequence",
        uniform("retrieve protein sequence"),
        seq_core("seqdb", SequenceKind::Protein),
    );
    b.modern_core(
        "dr:get_protein_sequence_pdb",
        "PDBAccession",
        "ProteinSequence",
        uniform("retrieve protein sequence"),
        seq_core("pdbseq", SequenceKind::Protein),
    );
    b.modern_core(
        "dr:get_dna_sequence",
        "EMBLAccession",
        "DNASequence",
        uniform("retrieve dna sequence"),
        seq_core("embl-dna", SequenceKind::Dna),
    );
    b.modern_core(
        "dr:get_dna_sequence_genbank",
        "GenBankAccession",
        "DNASequence",
        uniform("retrieve dna sequence"),
        seq_core("genbank-dna", SequenceKind::Dna),
    );
    b.modern_core(
        "dr:get_dna_sequence_ddbj",
        "EMBLAccession",
        "DNASequence",
        uniform("retrieve dna sequence"),
        seq_core("ddbj-dna", SequenceKind::Dna),
    );
    // Literature (4).
    for (suffix, in_c, salt) in [
        ("", "UniprotAccession", 0u64),
        ("_pdb", "PDBAccession", 1),
        ("_gene", "EntrezGeneId", 2),
        ("_embl", "EMBLAccession", 3),
    ] {
        b.modern_core(
            &format!("dr:get_abstract{suffix}"),
            in_c,
            "LiteratureAbstract",
            uniform("retrieve literature abstract"),
            abstract_core(salt),
        );
    }
    // Annotations (4).
    for (suffix, in_c, salt) in [
        ("annotation_uniprot", "UniprotAccession", 4u64),
        ("annotation_pdb", "PDBAccession", 5),
        ("annotation_gene", "EntrezGeneId", 6),
        ("go_annotation", "GOTerm", 7),
    ] {
        b.modern_core(
            &format!("dr:get_{suffix}"),
            in_c,
            "AnnotationReport",
            uniform("retrieve stored annotation"),
            annotate_core(salt),
        );
    }
    // Precomputed trees, keywords, xrefs (4).
    b.modern_core(
        "dr:get_tree_uniprot",
        "UniprotAccession",
        "PhylogeneticTree",
        uniform("retrieve precomputed tree"),
        tree_core(8),
    );
    b.modern_core(
        "dr:get_tree_gene",
        "EntrezGeneId",
        "PhylogeneticTree",
        uniform("retrieve precomputed tree"),
        tree_core(9),
    );
    b.modern_core(
        "dr:get_keywords_uniprot",
        "UniprotAccession",
        "KeywordSet",
        uniform("retrieve curated keywords"),
        keywords_core(10),
    );
    b.modern_core(
        "dr:get_xrefs_uniprot",
        "UniprotAccession",
        "CrossReferenceSet",
        uniform("retrieve cross references"),
        xrefs_core(11),
    );
    // Polymorphic sequence retrieval (1, partial output coverage).
    b.modern_core(
        "dr:get_biological_sequence",
        "DatabaseAccession",
        "BiologicalSequence",
        uniform("retrieve biological sequence"),
        bioseq_core(),
    );
}

fn add_identifier_mappings(b: &mut Builder) {
    // Pinned mappings mirrored by legacy modules.
    b.modern_core(
        "mi:map_uniprot_go",
        "UniprotAccession",
        "GOTerm",
        uniform("map uniprot to go"),
        go_core(0),
    );
    b.modern_core(
        "mi:map_uniprot_embl",
        "UniprotAccession",
        "EMBLAccession",
        uniform("map uniprot to embl"),
        map_core(AccessionKind::Embl, 0),
    );
    b.modern_core(
        "mi:map_uniprot_entrez",
        "UniprotAccession",
        "EntrezGeneId",
        uniform("map uniprot to entrez"),
        entrez_core(0),
    );
    b.modern_core(
        "mi:map_entrez_ensembl",
        "EntrezGeneId",
        "EnsemblGeneId",
        uniform("map entrez to ensembl"),
        map_core(AccessionKind::Ensembl, 0),
    );
    b.modern_core(
        "mi:map_symbol_entrez",
        "GeneSymbol",
        "EntrezGeneId",
        uniform("map symbol to entrez"),
        entrez_core(0),
    );
    b.modern_core(
        "mi:resolve_term",
        "GOTerm",
        "KeywordSet",
        uniform("resolve go term to keywords"),
        keywords_core(0),
    );
    // Bulk mapping table (44).
    const SRCS: [(&str, &str); 8] = [
        ("uniprot", "UniprotAccession"),
        ("pdb", "PDBAccession"),
        ("embl", "EMBLAccession"),
        ("genbank", "GenBankAccession"),
        ("entrez", "EntrezGeneId"),
        ("ensembl", "EnsemblGeneId"),
        ("symbol", "GeneSymbol"),
        ("go", "GOTerm"),
    ];
    const DSTS: [(&str, &str); 7] = [
        ("uniprot", "UniprotAccession"),
        ("pdb", "PDBAccession"),
        ("embl", "EMBLAccession"),
        ("entrez", "EntrezGeneId"),
        ("ensembl", "EnsemblGeneId"),
        ("go", "GOTerm"),
        ("kegg_gene", "KEGGGeneId"),
    ];
    const SKIP: [(&str, &str); 7] = [
        ("uniprot", "go"),
        ("uniprot", "embl"),
        ("uniprot", "entrez"),
        ("entrez", "ensembl"),
        ("symbol", "entrez"),
        ("go", "kegg_gene"),
        ("pdb", "go"),
    ];
    let mut bulk = 0usize;
    for (src, in_c) in SRCS {
        for (dst, out_c) in DSTS {
            if src == dst || SKIP.contains(&(src, dst)) {
                continue;
            }
            let core = match dst {
                "uniprot" => map_core(AccessionKind::Uniprot, 0),
                "pdb" => map_core(AccessionKind::Pdb, 0),
                "embl" => map_core(AccessionKind::Embl, 0),
                "entrez" => entrez_core(0),
                "ensembl" => map_core(AccessionKind::Ensembl, 0),
                "go" => map_core(AccessionKind::GoTerm, 0),
                _ => map_core(AccessionKind::KeggGene, 0),
            };
            b.modern_core(
                &format!("mi:map_{src}_{dst}"),
                in_c,
                out_c,
                uniform(&format!("map {src} to {dst}")),
                core,
            );
            bulk += 1;
        }
    }
    assert_eq!(bulk, 43, "bulk identifier-mapping census drifted");
    // Alternate provider for the pinned GO mapping (same upstream source).
    b.modern_core(
        "mi:map_uniprot_go_ebi",
        "UniprotAccession",
        "GOTerm",
        uniform("map uniprot to go"),
        go_core(0),
    );
    // Identifier normalizer: accepts any identifier family and resolves it
    // to an Entrez gene id. Its spec distinguishes nine identifier
    // families, so ten of the nineteen partition-driven examples are
    // redundant.
    b.modern_core(
        "mi:normalize_identifier_v0",
        "Identifier",
        "EntrezGeneId",
        identifier_family_spec(),
        entrez_core(60),
    );
    // Gene-identifier resolvers with two-class behavior (11).
    for i in 0..11u64 {
        b.modern_core(
            &format!("mi:resolve_gene_v{i}"),
            "GeneIdentifier",
            "EntrezGeneId",
            resolve_gene_spec(),
            entrez_core(40 + i),
        );
    }
}

fn add_filters(b: &mut Builder) {
    // Concept-preserving pass-through filters (21).
    const ECHOES: [(&str, &str); 21] = [
        ("filter_uniprot_acc", "UniprotAccession"),
        ("filter_pdb_acc", "PDBAccession"),
        ("filter_embl_acc", "EMBLAccession"),
        ("filter_go_terms", "GOTerm"),
        ("filter_ensembl_ids", "EnsemblGeneId"),
        ("filter_symbols", "GeneSymbol"),
        ("filter_ec_numbers", "ECNumber"),
        ("filter_dna", "DNASequence"),
        ("filter_protein", "ProteinSequence"),
        ("filter_uniprot_records", "UniprotRecord"),
        ("filter_fasta_records", "FastaRecord"),
        ("filter_embl_records", "EMBLRecord"),
        ("filter_pdb_records", "PDBRecord"),
        ("filter_blast_reports", "BlastReport"),
        ("filter_fasta_reports", "FastaAlignmentReport"),
        ("filter_trees", "PhylogeneticTree"),
        ("filter_annotations", "AnnotationReport"),
        ("filter_pathway_terms", "PathwayConcept"),
        ("filter_categories", "FunctionalCategory"),
        ("filter_keywords", "KeywordSet"),
        ("filter_xrefs", "CrossReferenceSet"),
    ];
    for (suffix, concept) in ECHOES {
        b.modern_core(
            &format!("fl:{suffix}"),
            concept,
            concept,
            uniform(&format!("filter {concept} values")),
            echo_core(),
        );
    }
    // Annotation filters with two-class behavior (4).
    for i in 0..4u64 {
        b.modern_core(
            &format!("fl:filter_annotation_v{i}"),
            "AnnotationData",
            "KeywordSet",
            filter_annotation_spec(),
            keywords_core(40 + i),
        );
    }
    // Term filters whose spec is partially dead (2).
    for i in 0..2u64 {
        b.modern_core(
            &format!("fl:filter_term_v{i}"),
            "OntologyTerm",
            "GOTerm",
            filter_term_spec(),
            go_core(20 + i),
        );
    }
}

fn add_data_analyses(b: &mut Builder) {
    // Peptide-mass identification (pinned interface).
    b.modern(
        "da:identify",
        &[
            ("masses", "PeptideMassList"),
            ("tolerance", "ErrorTolerance"),
        ],
        ("output", "UniprotAccession"),
        uniform("identify protein from masses"),
        |inputs: &[Value]| {
            let masses: Vec<f64> = inputs
                .first()
                .and_then(Value::as_list)
                .map(|l| l.iter().filter_map(Value::as_f64).collect())
                .unwrap_or_default();
            let tolerance = inputs.get(1).and_then(Value::as_f64).unwrap_or(1.0);
            let key: String = masses.iter().map(|m| format!("{m:.1};")).collect();
            let bucket = if tolerance < 1.0 {
                "strict"
            } else if tolerance < 5.0 {
                "normal"
            } else {
                "loose"
            };
            Ok(vec![Value::text(db::map_accession(
                AccessionKind::Uniprot,
                &format!("{bucket}:{key}"),
                21,
            ))])
        },
    );
    b.modern_core(
        "da:annotate_protein",
        "UniprotAccession",
        "AnnotationReport",
        uniform("annotate protein function"),
        annotate_core(0),
    );
    b.modern_core(
        "da:digest_protein",
        "ProteinSequence",
        "PeptideMassList",
        uniform("digest protein into peptide masses"),
        digest_core(0),
    );
    b.modern_core(
        "da:build_tree",
        "FastaRecord",
        "PhylogeneticTree",
        uniform("build phylogenetic tree"),
        tree_of_fasta_core(0),
    );
    b.modern_core(
        "da:get_concept",
        "LiteratureAbstract",
        "PathwayConcept",
        uniform("extract pathway concept"),
        first_concept_core(),
    );
    b.modern_core(
        "da:get_most_similar_protein",
        "ProteinSequence",
        "UniprotAccession",
        uniform("find most similar protein"),
        map_core(AccessionKind::Uniprot, 1),
    );
    b.modern_core(
        "da:blast_pdb_ddbj",
        "ProteinSequence",
        "FastaAlignmentReport",
        uniform("search pdb with fasta"),
        homology_core("pdb", "fasta", 0),
    );
    b.modern_core(
        "da:blast_pdb_ncbi",
        "ProteinSequence",
        "FastaAlignmentReport",
        uniform("search pdb with ssearch"),
        homology_core("pdb", "ssearch", 0),
    );
    b.modern_core(
        "da:blast_uniprot_ebi",
        "ProteinSequence",
        "BlastReport",
        uniform("blast uniprot"),
        homology_core("uniprot", "blastp", 0),
    );
    b.modern_core(
        "da:blast_uniprot_ddbj",
        "ProteinSequence",
        "BlastReport",
        uniform("blast uniprot translated"),
        homology_core("uniprot", "tblastx", 0),
    );
    b.modern_core(
        "da:gc_content",
        "DNASequence",
        "MeasurementData",
        uniform("compute gc content"),
        gc_core(),
    );
    b.modern_core(
        "da:seq_stats",
        "ProteinSequence",
        "Report",
        uniform("summarize sequence statistics"),
        stats_core(),
    );
    // Bulk analyses (14).
    b.modern_core(
        "da:translate_orf",
        "DNASequence",
        "ProteinSequence",
        uniform("translate open reading frame"),
        seq_core("translate", SequenceKind::Protein),
    );
    for (suffix, salt) in [("ebi", 2u64), ("ddbj", 3), ("ncbi", 4)] {
        b.modern_core(
            &format!("da:find_homolog_{suffix}"),
            "ProteinSequence",
            "UniprotAccession",
            uniform("find closest homolog"),
            map_core(AccessionKind::Uniprot, salt),
        );
    }
    b.modern_core(
        "da:mine_concepts",
        "FullTextArticle",
        "PathwayConcept",
        uniform("mine pathway concepts"),
        first_concept_core(),
    );
    b.modern_core(
        "da:classify_enzyme",
        "ProteinSequence",
        "FunctionalCategory",
        uniform("classify enzyme family"),
        pick_core(synth::FUNCTIONAL_CATEGORIES, "fcat", 0),
    );
    b.modern_core(
        "da:extract_keywords",
        "AnnotationReport",
        "KeywordSet",
        uniform("extract keywords from annotation"),
        keywords_core(12),
    );
    b.modern_core(
        "da:cross_refs",
        "UniprotAccession",
        "CrossReferenceSet",
        uniform("derive cross references"),
        xrefs_core(13),
    );
    b.modern_core(
        "da:predict_structure",
        "ProteinSequence",
        "PDBAccession",
        uniform("predict closest structure"),
        map_core(AccessionKind::Pdb, 5),
    );
    b.modern_core(
        "da:phylo_protein",
        "ProteinSequence",
        "PhylogeneticTree",
        uniform("build protein phylogeny"),
        tree_core(1),
    );
    b.modern(
        "da:mass_fingerprint",
        &[("masses", "PeptideMassList")],
        ("output", "IdentificationReport"),
        uniform("fingerprint peptide masses"),
        |inputs: &[Value]| {
            let masses: Vec<f64> = inputs
                .first()
                .and_then(Value::as_list)
                .map(|l| l.iter().filter_map(Value::as_f64).collect())
                .unwrap_or_default();
            Ok(vec![Value::text(
                db::identify_protein(&masses, 1.0, 7).to_string(),
            )])
        },
    );
    b.modern_core(
        "da:scan_motifs",
        "DNASequence",
        "KeywordSet",
        uniform("scan for sequence motifs"),
        keywords_core(14),
    );
    b.modern_core(
        "da:summarize_abstract",
        "LiteratureAbstract",
        "KeywordSet",
        uniform("summarize abstract"),
        keywords_core(15),
    );
    b.modern_core(
        "da:pick_database",
        "UniprotAccession",
        "DatabaseName",
        uniform("suggest search database"),
        pick_core(synth::DATABASE_NAMES, "pickdb", 0),
    );
    // Document aligners (4, partial output coverage).
    for i in 0..4u64 {
        b.modern_core(
            &format!("da:align_docs_v{i}"),
            "Document",
            "AlignmentReport",
            uniform("align document contents"),
            homology_core("textdb", "blastp", i),
        );
    }
    // Annotation aligners (8, partial output coverage).
    for i in 0..8u64 {
        let program = if i % 2 == 0 { "blastp" } else { "fasta" };
        b.modern_core(
            &format!("da:align_annotation_v{i}"),
            "AnnotationData",
            "AlignmentReport",
            uniform("align annotation payloads"),
            homology_core("anndb", program, 10 + i),
        );
    }
    // Parameterized search (pinned interface; partial output coverage).
    b.modern(
        "da:search_simple",
        &[
            ("query", "SequenceRecord"),
            ("algorithm", "AlgorithmName"),
            ("database", "DatabaseName"),
        ],
        ("output", "AlignmentReport"),
        uniform("run similarity search"),
        |inputs: &[Value]| {
            let query = inputs.first().and_then(Value::as_text).unwrap_or_default();
            let algorithm = inputs.get(1).and_then(Value::as_text).unwrap_or("blastp");
            let database = inputs.get(2).and_then(Value::as_text).unwrap_or("uniprot");
            Ok(vec![Value::text(db::homology_report(
                database, algorithm, query, 0,
            ))])
        },
    );
    // Sequence aligner with two-class behavior.
    b.modern_core(
        "da:align_seq_ebi",
        "BiologicalSequence",
        "BlastReport",
        align_seq_spec(),
        homology_core("ebi", "blastp", 20),
    );
    // The same aligner at a second provider (distinct backend).
    b.modern_core(
        "da:align_seq_ddbj",
        "BiologicalSequence",
        "BlastReport",
        align_seq_spec(),
        homology_core("ddbj-align", "blastp", 22),
    );
    // Term annotators over two inputs (6).
    for i in 0..6u64 {
        b.modern(
            &format!("da:annotate_term_v{i}"),
            &[("term", "OntologyTerm"), ("annotation", "AnnotationData")],
            ("output", "AnnotationReport"),
            annotate_term_spec(),
            move |inputs: &[Value]| {
                let term = inputs.first().and_then(Value::as_text).unwrap_or_default();
                let annotation = inputs.get(1).and_then(Value::as_text).unwrap_or_default();
                Ok(vec![Value::text(db::annotation_for(
                    &format!("{term}|{annotation}"),
                    100 + i,
                ))])
            },
        );
    }
    // Record analyzers with a partially dead spec (8).
    for i in 0..8u64 {
        b.modern(
            &format!("da:analyze_record_v{i}"),
            &[("record", "SequenceRecord")],
            ("output", "AnnotationReport"),
            analyze_record_spec(),
            move |inputs: &[Value]| {
                let text = inputs.first().and_then(Value::as_text).unwrap_or_default();
                let key = db::parse_any_record(text)
                    .map(|e| e.accession)
                    .unwrap_or_else(|| text.to_string());
                Ok(vec![Value::text(db::annotation_for(&key, 200 + i))])
            },
        );
    }
    // Annotation profilers with a mostly dead spec (4).
    for i in 0..4u64 {
        b.modern_core(
            &format!("da:profile_annotation_v{i}"),
            "AnnotationData",
            "KeywordSet",
            profile_annotation_spec(),
            keywords_core(300 + i),
        );
    }
}

fn arch_core(id: &str) -> Core {
    let tag = id.to_string();
    Arc::new(move |s| {
        Value::text(format!(
            "ARCHIVED {} {}",
            tag,
            db::seed_for(&["arch", &tag, s])
        ))
    })
}

fn add_legacy(b: &mut Builder) {
    use ExpectedMatch::{Equivalent, Overlapping};

    // -- Equivalent twins (16): the archived service and a modern module wrap
    // the same backend computation.
    let eq = |target: &str| Equivalent(ModuleId::new(target));
    b.legacy_core(
        "legacy:get_protein_sequence",
        "UniprotAccession",
        "ProteinSequence",
        eq("dr:get_protein_sequence_ddbj"),
        seq_core("seqdb", SequenceKind::Protein),
    );
    b.legacy_core(
        "legacy:get_uniprot_entry",
        "UniprotAccession",
        "UniprotRecord",
        eq("dr:get_uniprot_record"),
        record_core("uniprot", RecordFormat::Uniprot),
    );
    b.legacy_core(
        "legacy:get_pdb_entry",
        "PDBAccession",
        "PDBRecord",
        eq("dr:get_pdb_record"),
        record_core("pdb", RecordFormat::Pdb),
    );
    b.legacy_core(
        "legacy:get_embl_entry",
        "EMBLAccession",
        "EMBLRecord",
        eq("dr:get_embl_record"),
        record_core("embl", RecordFormat::Embl),
    );
    b.legacy_core(
        "legacy:get_fasta_entry",
        "UniprotAccession",
        "FastaRecord",
        eq("dr:get_fasta_uniprot"),
        record_core("uniprot", RecordFormat::Fasta),
    );
    b.legacy_core(
        "legacy:get_gene_entry",
        "KEGGGeneId",
        "GeneRecord",
        eq("dr:get_gene_record"),
        kegg_core("Gene"),
    );
    b.legacy_core(
        "legacy:get_pathway_entry_v1",
        "KEGGPathwayId",
        "PathwayRecord",
        eq("dr:get_pathway_entry"),
        kegg_core("Pathway"),
    );
    b.legacy_core(
        "legacy:map_protein_go",
        "UniprotAccession",
        "GOTerm",
        eq("mi:map_uniprot_go"),
        go_core(0),
    );
    b.legacy_core(
        "legacy:annotate_uniprot",
        "UniprotAccession",
        "AnnotationReport",
        eq("da:annotate_protein"),
        annotate_core(0),
    );
    b.legacy_core(
        "legacy:digest_peptides",
        "ProteinSequence",
        "PeptideMassList",
        eq("da:digest_protein"),
        digest_core(0),
    );
    b.legacy_core(
        "legacy:build_phylo",
        "FastaRecord",
        "PhylogeneticTree",
        eq("da:build_tree"),
        tree_of_fasta_core(0),
    );
    b.legacy_core(
        "legacy:conv_uniprot_fasta_v1",
        "UniprotRecord",
        "FastaRecord",
        eq("ft:conv_uniprot_fasta"),
        conv_core(RecordFormat::Uniprot, RecordFormat::Fasta),
    );
    b.legacy_core(
        "legacy:extract_uniprot_acc",
        "UniprotRecord",
        "UniprotAccession",
        eq("ft:acc_of_uniprot"),
        acc_core(RecordFormat::Uniprot),
    );
    b.legacy_core(
        "legacy:revcomp_v1",
        "DNASequence",
        "DNASequence",
        eq("ft:revcomp"),
        revcomp_core(),
    );
    b.legacy_core(
        "legacy:gc_percent",
        "DNASequence",
        "MeasurementData",
        eq("da:gc_content"),
        gc_core(),
    );
    b.legacy_core(
        "legacy:seq_report",
        "ProteinSequence",
        "Report",
        eq("da:seq_stats"),
        stats_core(),
    );

    // -- Overlapping (23): agree with the modern counterpart on half the key
    // space, drifted on the other half.
    let ov = |target: &str| Overlapping(ModuleId::new(target));
    for (id, dbname, fmt, in_c, out_c, target) in [
        (
            "legacy:get_uniprot_record_old",
            "uniprot",
            RecordFormat::Uniprot,
            "UniprotAccession",
            "UniprotRecord",
            "dr:get_uniprot_record",
        ),
        (
            "legacy:get_pdb_record_old",
            "pdb",
            RecordFormat::Pdb,
            "PDBAccession",
            "PDBRecord",
            "dr:get_pdb_record",
        ),
        (
            "legacy:get_embl_record_old",
            "embl",
            RecordFormat::Embl,
            "EMBLAccession",
            "EMBLRecord",
            "dr:get_embl_record",
        ),
        (
            "legacy:get_genbank_record_old",
            "genbank",
            RecordFormat::GenBank,
            "GenBankAccession",
            "GenBankRecord",
            "dr:get_genbank_record",
        ),
        (
            "legacy:get_fasta_uniprot_old",
            "uniprot",
            RecordFormat::Fasta,
            "UniprotAccession",
            "FastaRecord",
            "dr:get_fasta_uniprot",
        ),
    ] {
        b.legacy_core(
            id,
            in_c,
            out_c,
            ov(target),
            overlap_core(
                record_core(dbname, fmt),
                raw_key(),
                archival_record_core(dbname, fmt),
            ),
        );
    }
    b.legacy_core(
        "legacy:map_uniprot_go_old",
        "UniprotAccession",
        "GOTerm",
        ov("mi:map_uniprot_go"),
        overlap_core(
            go_core(0),
            raw_key(),
            distinct_from(go_core(0), go_core(LEGACY_SALT)),
        ),
    );
    b.legacy_core(
        "legacy:map_uniprot_embl_old",
        "UniprotAccession",
        "EMBLAccession",
        ov("mi:map_uniprot_embl"),
        overlap_core(
            map_core(AccessionKind::Embl, 0),
            raw_key(),
            distinct_from(
                map_core(AccessionKind::Embl, 0),
                map_core(AccessionKind::Embl, LEGACY_SALT),
            ),
        ),
    );
    b.legacy_core(
        "legacy:map_uniprot_entrez_old",
        "UniprotAccession",
        "EntrezGeneId",
        ov("mi:map_uniprot_entrez"),
        overlap_core(
            entrez_core(0),
            raw_key(),
            distinct_from(entrez_core(0), entrez_core(LEGACY_SALT)),
        ),
    );
    b.legacy_core(
        "legacy:map_entrez_ensembl_old",
        "EntrezGeneId",
        "EnsemblGeneId",
        ov("mi:map_entrez_ensembl"),
        overlap_core(
            map_core(AccessionKind::Ensembl, 0),
            raw_key(),
            distinct_from(
                map_core(AccessionKind::Ensembl, 0),
                map_core(AccessionKind::Ensembl, LEGACY_SALT),
            ),
        ),
    );
    b.legacy_core(
        "legacy:map_symbol_entrez_old",
        "GeneSymbol",
        "EntrezGeneId",
        ov("mi:map_symbol_entrez"),
        overlap_core(
            entrez_core(0),
            raw_key(),
            distinct_from(entrez_core(0), entrez_core(LEGACY_SALT)),
        ),
    );
    b.legacy_core(
        "legacy:get_dna_sequence_old",
        "EMBLAccession",
        "DNASequence",
        ov("dr:get_dna_sequence"),
        overlap_core(
            seq_core("embl-dna", SequenceKind::Dna),
            raw_key(),
            distinct_from(
                seq_core("embl-dna", SequenceKind::Dna),
                seq_core("embl-dna-arch", SequenceKind::Dna),
            ),
        ),
    );
    b.legacy_core(
        "legacy:get_abstract_old",
        "UniprotAccession",
        "LiteratureAbstract",
        ov("dr:get_abstract"),
        overlap_core(
            abstract_core(0),
            raw_key(),
            text_core(|acc| {
                format!(
                    "{} Archival context retained for provenance.",
                    abstract_for(acc, LEGACY_SALT)
                )
            }),
        ),
    );
    b.legacy_core(
        "legacy:annotate_protein_old",
        "UniprotAccession",
        "AnnotationReport",
        ov("da:annotate_protein"),
        overlap_core(
            annotate_core(0),
            raw_key(),
            distinct_from(annotate_core(0), annotate_core(LEGACY_SALT)),
        ),
    );
    b.legacy_core(
        "legacy:resolve_term_old",
        "GOTerm",
        "KeywordSet",
        ov("mi:resolve_term"),
        overlap_core(
            keywords_core(0),
            raw_key(),
            distinct_from(keywords_core(0), keywords_core(LEGACY_SALT)),
        ),
    );
    b.legacy_core(
        "legacy:digest_protein_old",
        "ProteinSequence",
        "PeptideMassList",
        ov("da:digest_protein"),
        overlap_core(
            digest_core(0),
            raw_key(),
            distinct_from(
                digest_core(0),
                Arc::new(|s: &str| {
                    let mut masses = digest_masses(s, LEGACY_SALT);
                    masses.push(Value::Float(999.9));
                    Value::List(masses)
                }),
            ),
        ),
    );
    b.legacy_core(
        "legacy:seq_stats_old",
        "ProteinSequence",
        "Report",
        ov("da:seq_stats"),
        overlap_core(
            stats_core(),
            raw_key(),
            text_core(|s| format!("{}ARCHIVE rev=2\n", seq_stats_text(s))),
        ),
    );
    b.legacy_core(
        "legacy:gc_content_old",
        "DNASequence",
        "MeasurementData",
        ov("da:gc_content"),
        overlap_core(
            gc_core(),
            raw_key(),
            Arc::new(|s: &str| Value::Float(sequence::gc_content(s) + 1.0)),
        ),
    );
    b.legacy_core(
        "legacy:get_concept_old",
        "LiteratureAbstract",
        "PathwayConcept",
        ov("da:get_concept"),
        Arc::new(|s: &str| {
            let concepts = document::extract_concepts(s);
            let pick = if legacy_divergent(s) && concepts.len() >= 2 {
                concepts.last().cloned()
            } else {
                concepts.first().cloned()
            };
            Value::text(pick.unwrap_or_else(|| "glycolysis".to_string()))
        }),
    );
    for (id, fmt, in_c, target) in [
        (
            "legacy:conv_genbank_fasta_old",
            RecordFormat::GenBank,
            "GenBankRecord",
            "ft:conv_genbank_fasta",
        ),
        (
            "legacy:conv_embl_fasta_old",
            RecordFormat::Embl,
            "EMBLRecord",
            "ft:conv_embl_fasta",
        ),
        (
            "legacy:conv_pdb_fasta_old",
            RecordFormat::Pdb,
            "PDBRecord",
            "ft:conv_pdb_fasta",
        ),
    ] {
        b.legacy_core(
            id,
            in_c,
            "FastaRecord",
            ov(target),
            overlap_core(
                conv_core(fmt, RecordFormat::Fasta),
                fmt_acc_key(fmt),
                archival_conv_core(fmt, RecordFormat::Fasta),
            ),
        );
    }
    b.legacy_core(
        "legacy:normalize_uniprot_old",
        "UniprotRecord",
        "UniprotRecord",
        ov("ft:normalize_uniprot"),
        overlap_core(
            conv_core(RecordFormat::Uniprot, RecordFormat::Uniprot),
            fmt_acc_key(RecordFormat::Uniprot),
            archival_conv_core(RecordFormat::Uniprot, RecordFormat::Uniprot),
        ),
    );
    b.legacy_core(
        "legacy:build_tree_old",
        "FastaRecord",
        "PhylogeneticTree",
        ov("da:build_tree"),
        overlap_core(
            tree_of_fasta_core(0),
            fasta_seq_key(),
            distinct_from(tree_of_fasta_core(0), tree_of_fasta_core(LEGACY_SALT)),
        ),
    );

    // -- No modern counterpart (33): archived one-off tasks whose outputs no
    // modern module reproduces.
    b.legacy_core(
        "legacy:get_homologous",
        "ProteinSequence",
        "Report",
        ExpectedMatch::None,
        arch_core("legacy:get_homologous"),
    );
    const ARCH_INPUTS: [&str; 11] = [
        "UniprotAccession",
        "PDBAccession",
        "EMBLAccession",
        "GOTerm",
        "DNASequence",
        "ProteinSequence",
        "GeneSymbol",
        "ECNumber",
        "EnsemblGeneId",
        "KEGGPathwayId",
        "KEGGGeneId",
    ];
    for i in 0..32usize {
        let id = format!("legacy:arch_task_v{i:02}");
        let core = arch_core(&id);
        b.legacy_core(
            &id,
            ARCH_INPUTS[i % ARCH_INPUTS.len()],
            "Report",
            ExpectedMatch::None,
            core,
        );
    }
}

/// Modern modules most study users know by interface alone (popular
/// services: mainstream retrievals, shims, and flagship analyses).
const POPULAR: [&str; 55] = [
    "dr:get_uniprot_record",
    "dr:get_uniprot_record_ebi",
    "dr:get_pdb_record",
    "dr:get_embl_record",
    "dr:get_genbank_record",
    "dr:get_fasta_uniprot",
    "dr:get_dna_sequence",
    "dr:get_abstract",
    "dr:get_protein_sequence_ddbj",
    "dr:get_protein_sequence_ebi",
    "dr:get_gene_record",
    "dr:get_gene_record_rest",
    "dr:get_pathway_entry",
    "dr:get_enzyme_entry",
    "dr:get_compound_entry",
    "dr:get_uniprot_record_ddbj",
    "dr:get_uniprot_record_ncbi",
    "dr:get_pdb_record_ddbj",
    "ft:conv_uniprot_fasta",
    "ft:conv_genbank_fasta",
    "ft:conv_embl_fasta",
    "ft:conv_pdb_fasta",
    "ft:conv_fasta_uniprot",
    "ft:normalize_uniprot",
    "ft:normalize_fasta",
    "ft:acc_of_uniprot",
    "ft:acc_of_pdb",
    "ft:acc_of_embl",
    "ft:revcomp",
    "ft:canonical_go",
    "ft:kegg_acc_of_pathway",
    "ft:kegg_acc_of_gene",
    "ft:norm_symbol",
    "mi:map_uniprot_go",
    "mi:map_uniprot_embl",
    "mi:map_uniprot_entrez",
    "mi:map_entrez_ensembl",
    "mi:map_symbol_entrez",
    "mi:resolve_term",
    "mi:map_uniprot_pdb",
    "mi:map_pdb_uniprot",
    "mi:map_embl_uniprot",
    "mi:map_genbank_uniprot",
    "mi:map_go_uniprot",
    "mi:map_ensembl_entrez",
    "da:annotate_protein",
    "da:digest_protein",
    "da:build_tree",
    "da:identify",
    "da:get_concept",
    "da:blast_uniprot_ebi",
    "da:blast_pdb_ddbj",
    "da:gc_content",
    "fl:filter_uniprot_acc",
    "fl:filter_go_terms",
];

/// Retrievals against niche databases whose outputs users cannot assess.
const UNFAMILIAR_OUTPUT: [&str; 8] = [
    "dr:get_glycan_entry",
    "dr:get_ligand_entry",
    "dr:get_glycan_entry_rest",
    "dr:get_ligand_entry_rest",
    "dr:get_symbol_gene_entry",
    "dr:get_enzyme_by_ec",
    "dr:get_tree_uniprot",
    "dr:get_tree_gene",
];

/// Modern modules whose generated examples cannot witness every output
/// partition (§4: output-space coverage is necessarily partial).
const PARTIAL_OUTPUT: [&str; 19] = [
    "da:align_docs_v0",
    "da:align_docs_v1",
    "da:align_docs_v2",
    "da:align_docs_v3",
    "da:align_annotation_v0",
    "da:align_annotation_v1",
    "da:align_annotation_v2",
    "da:align_annotation_v3",
    "da:align_annotation_v4",
    "da:align_annotation_v5",
    "da:align_annotation_v6",
    "da:align_annotation_v7",
    "da:search_simple",
    "dr:get_biological_sequence",
    "dr:get_genes_by_enzyme",
    "ft:render_generic_v0",
    "ft:render_generic_v1",
    "da:gc_content",
    "da:seq_stats",
];

fn id_set(catalog: &ModuleCatalog, ids: &[&str]) -> BTreeSet<ModuleId> {
    ids.iter()
        .map(|id| {
            let mid = ModuleId::new(*id);
            assert!(
                catalog.descriptor(&mid).is_some(),
                "universe set references unknown module {id}"
            );
            mid
        })
        .collect()
}

/// Builds the full simulated universe: 252 modern modules (Table 3 census)
/// plus 72 legacy modules with ground-truth matching verdicts.
pub fn build() -> Universe {
    let _span = dex_telemetry::span("universe.build");
    let ontology = mygrid::ontology();
    let mut b = Builder::new();
    add_format_transformations(&mut b);
    add_data_retrievals(&mut b);
    add_identifier_mappings(&mut b);
    add_filters(&mut b);
    add_data_analyses(&mut b);
    add_legacy(&mut b);
    b.legacy.sort();
    dex_telemetry::event!(
        dex_telemetry::Level::Info,
        "universe",
        "built {} modern + {} legacy modules over {} ontology concepts",
        b.modern_count,
        b.legacy.len(),
        ontology.len()
    );

    assert_eq!(b.modern_count, 252, "modern census drifted");
    assert_eq!(b.legacy.len(), 72, "legacy census drifted");
    for cat in Category::ALL {
        let n = b.categories.values().filter(|c| **c == cat).count();
        assert_eq!(n, cat.paper_count(), "census drifted for {cat}");
    }

    let popular = id_set(&b.catalog, &POPULAR);
    let unfamiliar_output = id_set(&b.catalog, &UNFAMILIAR_OUTPUT);
    let partial_output = id_set(&b.catalog, &PARTIAL_OUTPUT);
    assert!(
        popular.is_disjoint(&unfamiliar_output),
        "popular and unfamiliar sets must not overlap"
    );

    Universe {
        catalog: b.catalog,
        ontology,
        categories: b.categories,
        specs: b.specs,
        legacy: b.legacy,
        expected_match: b.expected,
        popular,
        unfamiliar_output,
        partial_output,
    }
}
