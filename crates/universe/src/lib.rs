//! # dex-universe
//!
//! The synthetic population of scientific modules the experiments run
//! against — the stand-in for the paper's 252 real life-science modules
//! (EBI/KEGG/DDBJ SOAP + REST services and local programs) plus the 72
//! withdrawn ("legacy") modules of the §6 matching study.
//!
//! Everything here is *executable*: each module is a deterministic Rust
//! function over the value formats of `dex-values`, backed by the infinite
//! deterministic databases of [`db`]. Determinism is what lets two modules
//! from different simulated providers implement *the same* database and
//! therefore be genuinely equivalent — the property the §6 experiment
//! (repairing decayed workflows by substitution) depends on.
//!
//! Ground truth lives in [`behavior`]: every module carries a hidden
//! [`BehaviorSpec`] listing its classes of behavior as predicates over input
//! values. The spec is consulted **only** by the evaluation harness (to
//! score completeness/conciseness, like the paper's domain expert reading
//! module documentation) — the data-example generator sees modules strictly
//! as black boxes.
//!
//! [`build`](build()) assembles the whole universe with the category mix of the
//! paper's Table 3 (53 format transformation, 51 data retrieval, 62 mapping
//! identifiers, 27 filtering, 59 data analysis) and plants the
//! over-/under-partitioning failure modes at the rates the paper observed.

pub mod behavior;
pub mod build;
pub mod category;
pub mod db;
pub mod scale;

pub use behavior::{BehaviorClass, BehaviorSpec, Pred, SpecOracle};
pub use build::{build, legacy_divergent, ExpectedMatch, Universe};
pub use category::Category;
pub use scale::{build_scaled, FamilyInfo, MemberRole, ScalePlan, ScaledWorld};
