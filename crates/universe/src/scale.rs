//! Parameterized universe construction at repository scale.
//!
//! [`build()`](crate::build()) reproduces the paper's 252-module population
//! byte-for-byte and stays untouched; this module grows *around* it. A
//! [`ScalePlan`] describes a heavy-tailed catalog of 10k–100k+ modules over a
//! deep EDAM-shaped ontology, and [`build_scaled`] materializes it
//! deterministically from the plan's seed.
//!
//! The generated world preserves the structural properties the matching
//! pipeline exercises on the paper profile:
//!
//! * **Families.** Modules come in behavior families of Zipf-like size
//!   (half the families are singletons; a heavy tail reaches
//!   [`ScalePlan::max_family`]). Members cycle through ground-truth roles —
//!   the family anchor, behaviorally [`MemberRole::Equivalent`] twins,
//!   [`MemberRole::Overlapping`] variants that diverge on exactly one input
//!   partition, and [`MemberRole::Distinct`] modules that share the interface
//!   but agree nowhere.
//! * **Deep ontology.** Five category branches (one per [`Category`]) each
//!   carry a spine of [`ScalePlan::depth`] levels; families hang their
//!   domain concepts off a sampled spine level, so concept depth and family
//!   placement are both heavy-tailed.
//! * **Partitioned input domains.** Each family's input concept has two leaf
//!   children, so the paper's partition machinery produces three partitions
//!   (the concept itself plus both children). Overlapping members diverge on
//!   the second child, keyed on the `ec:{concept}:` value-text tag that
//!   `dex_pool::build_text_pool` stamps on every instance.
//! * **Fingerprint skew.** Every [`ScalePlan::shared_shape_every`]-th family
//!   reuses one of [`ScalePlan::shared_shapes`] shared interface shapes, so
//!   fingerprint blocking sees a heavy-tailed bucket distribution with
//!   cross-family `Disjoint` pairs inside the big buckets — the hard case
//!   for the sub-quadratic matcher.
//!
//! Module behavior is a pure function of the module's identity and the
//! input text (via [`db::seed_for`]), so example generation, matching, and
//! repair over a scaled world are exactly as reproducible as on the paper
//! profile.

use crate::build::Universe;
use crate::category::Category;
use crate::db;
use dex_modules::{
    FnModule, InvocationError, ModuleCatalog, ModuleDescriptor, ModuleId, ModuleKind, Parameter,
};
use dex_values::{StructuralType, Value};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Recipe for a scaled universe. Two plans with equal fields produce
/// byte-identical worlds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalePlan {
    /// Total number of modules to generate (exact).
    pub modules: usize,
    /// Master seed; every size, placement, and behavior derives from it.
    pub seed: u64,
    /// Levels in each category branch's concept spine. The ontology's
    /// maximum depth is at least this.
    pub depth: usize,
    /// Cap on family size (the heavy tail's truncation point).
    pub max_family: usize,
    /// Every n-th family reuses a shared interface shape instead of minting
    /// its own concepts (0 disables sharing).
    pub shared_shape_every: usize,
    /// Number of distinct shared interface shapes.
    pub shared_shapes: usize,
}

impl ScalePlan {
    /// The default knobs at a given module count and seed: depth-10 spines,
    /// families capped at 64, every 24th family on one of 64 shared shapes.
    pub fn new(modules: usize, seed: u64) -> Self {
        ScalePlan {
            modules,
            seed,
            depth: 10,
            max_family: 64,
            shared_shape_every: 24,
            shared_shapes: 64,
        }
    }
}

/// Ground-truth role of a family member relative to the family anchor
/// (member 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberRole {
    /// The family's reference behavior.
    Anchor,
    /// Same observable behavior as the anchor on every input.
    Equivalent,
    /// Agrees with the anchor except on the divergent child partition.
    Overlapping,
    /// Shares the interface, agrees on no input.
    Distinct,
}

fn role_for(member: usize) -> MemberRole {
    match member {
        0 => MemberRole::Anchor,
        m if m % 3 == 1 => MemberRole::Equivalent,
        m if m % 3 == 2 => MemberRole::Overlapping,
        _ => MemberRole::Distinct,
    }
}

/// Ground truth for one generated behavior family.
#[derive(Debug, Clone)]
pub struct FamilyInfo {
    /// Member module ids, anchor first.
    pub members: Vec<ModuleId>,
    /// Role of each member, aligned with `members`.
    pub roles: Vec<MemberRole>,
    /// The input parameter's semantic concept (has two leaf children).
    pub input_concept: String,
    /// The child concept Overlapping members diverge on.
    pub divergent_concept: String,
    /// The output parameter's semantic concept.
    pub output_concept: String,
    /// Category the family was assigned to (heavy-tailed mass).
    pub category: Category,
    /// Index of the shared interface shape, if the family uses one.
    pub shared_shape: Option<usize>,
}

/// A scaled universe plus the ground truth needed to score it.
pub struct ScaledWorld {
    /// Catalog + ontology in the same shape the paper profile uses, so the
    /// whole pipeline (generation, matching, delta, repair) runs unchanged.
    pub universe: Universe,
    /// Behavior families, in generation order.
    pub families: Vec<FamilyInfo>,
    /// The plan that produced this world.
    pub plan: ScalePlan,
}

impl ScaledWorld {
    /// Total generated modules (equals `plan.modules`).
    pub fn module_count(&self) -> usize {
        self.families.iter().map(|f| f.members.len()).sum()
    }
}

/// Names of the four concepts forming one interface shape.
#[derive(Clone)]
struct ShapeConcepts {
    parent: String,
    child_b: String,
    out: String,
}

/// Zipf-like family size: `P(2^k) = 2^-(k+1)`, truncated at `cap`.
fn sample_family_size(rng: &mut StdRng, cap: usize) -> usize {
    let g = rng.next_u64().trailing_zeros().min(16);
    (1usize << g).min(cap.max(1))
}

/// Heavy-tailed category mass: weights 16:8:4:2:1 over [`Category::ALL`].
fn sample_category(rng: &mut StdRng) -> Category {
    let v = rng.gen_range(0..31u32);
    let idx = match v {
        0..=15 => 0,
        16..=23 => 1,
        24..=27 => 2,
        28..=29 => 3,
        _ => 4,
    };
    Category::ALL[idx]
}

const KINDS: [ModuleKind; 3] = [
    ModuleKind::LocalProgram,
    ModuleKind::RestService,
    ModuleKind::SoapService,
];

/// Materializes `plan` into a deterministic scaled world.
///
/// # Panics
/// Panics if `plan.modules == 0` or `plan.depth < 2` — a degenerate plan is
/// a programming error, not a runtime condition.
pub fn build_scaled(plan: &ScalePlan) -> ScaledWorld {
    assert!(plan.modules > 0, "a scaled world needs at least one module");
    assert!(plan.depth >= 2, "spines need at least two levels");
    let _span = dex_telemetry::span("universe.build_scaled");

    let mut rng = StdRng::seed_from_u64(plan.seed ^ 0x5CA1_AB1E_0000_0001);
    let mut builder = dex_ontology::Ontology::builder(format!("scaled-{}", plan.seed));
    builder.root("Data").expect("fresh root");

    // Five category branches, each a spine of `depth` concrete levels.
    let branches = Category::ALL.len();
    for b in 0..branches {
        let top = format!("sc.b{b}");
        builder.child(&top, "Data").expect("fresh branch");
        let mut parent = top;
        for l in 0..plan.depth {
            let name = format!("sc.b{b}.l{l:02}");
            builder.child(&name, &parent).expect("fresh spine level");
            parent = name;
        }
    }

    let mut shapes: Vec<Option<ShapeConcepts>> = vec![None; plan.shared_shapes.max(1)];
    let mut catalog = ModuleCatalog::new();
    let mut categories = BTreeMap::new();
    let mut families = Vec::new();

    let mut remaining = plan.modules;
    let mut f = 0usize;
    while remaining > 0 {
        let size = sample_family_size(&mut rng, plan.max_family).min(remaining);
        let category = sample_category(&mut rng);
        let branch = Category::ALL
            .iter()
            .position(|c| *c == category)
            .expect("category in ALL");
        let level = rng.gen_range(1..plan.depth);

        let shared = plan.shared_shape_every > 0
            && plan.shared_shapes > 0
            && f.is_multiple_of(plan.shared_shape_every);
        let (concepts, shape_idx) = if shared {
            let s = (f / plan.shared_shape_every) % plan.shared_shapes;
            if shapes[s].is_none() {
                // Shared shapes live deep on a branch picked by shape index,
                // independent of the families that borrow them.
                let spine = format!("sc.b{}.l{:02}", s % branches, plan.depth - 1);
                let parent = format!("sc.shape{s:03}.dom");
                builder.child(&parent, &spine).expect("fresh shape parent");
                let child_a = format!("sc.shape{s:03}.a");
                let child_b = format!("sc.shape{s:03}.b");
                builder.child(&child_a, &parent).expect("fresh shape child");
                builder.child(&child_b, &parent).expect("fresh shape child");
                let out = format!("sc.shape{s:03}.out");
                builder.child(&out, &spine).expect("fresh shape output");
                shapes[s] = Some(ShapeConcepts {
                    parent,
                    child_b,
                    out,
                });
            }
            (shapes[s].clone().expect("just ensured"), Some(s))
        } else {
            let spine = format!("sc.b{branch}.l{level:02}");
            let parent = format!("sc.f{f:06}.dom");
            builder.child(&parent, &spine).expect("fresh family parent");
            let child_a = format!("sc.f{f:06}.a");
            let child_b = format!("sc.f{f:06}.b");
            builder
                .child(&child_a, &parent)
                .expect("fresh family child");
            builder
                .child(&child_b, &parent)
                .expect("fresh family child");
            let out = format!("sc.f{f:06}.out");
            builder.child(&out, &spine).expect("fresh family output");
            (
                ShapeConcepts {
                    parent,
                    child_b,
                    out,
                },
                None,
            )
        };

        let fam_key = format!("sc.f{f:06}");
        let mut members = Vec::with_capacity(size);
        let mut roles = Vec::with_capacity(size);
        for m in 0..size {
            let role = role_for(m);
            let member_key = format!("{fam_key}.m{m:02}");
            let core: Arc<dyn Fn(&str) -> Value + Send + Sync> = match role {
                MemberRole::Anchor | MemberRole::Equivalent => {
                    let key = fam_key.clone();
                    Arc::new(move |s| {
                        Value::text(format!("out:{:016x}", db::seed_for(&[key.as_str(), s])))
                    })
                }
                MemberRole::Overlapping => {
                    let key = fam_key.clone();
                    let prefix = format!("ec:{}:", concepts.child_b);
                    Arc::new(move |s| {
                        if s.starts_with(&prefix) {
                            Value::text(format!(
                                "odd:{:016x}",
                                db::seed_for(&[member_key.as_str(), s])
                            ))
                        } else {
                            Value::text(format!("out:{:016x}", db::seed_for(&[key.as_str(), s])))
                        }
                    })
                }
                MemberRole::Distinct => Arc::new(move |s| {
                    Value::text(format!(
                        "own:{:016x}",
                        db::seed_for(&[member_key.as_str(), s])
                    ))
                }),
            };
            let id = ModuleId::new(format!("sc{f:06}.{m:02}"));
            let descriptor = ModuleDescriptor::new(
                id.clone(),
                format!("scaled/f{f:06}/m{m:02}"),
                KINDS[(f + m) % KINDS.len()],
                vec![Parameter::required(
                    "input",
                    StructuralType::Text,
                    concepts.parent.as_str(),
                )],
                vec![Parameter::required(
                    "output",
                    StructuralType::Text,
                    concepts.out.as_str(),
                )],
            );
            catalog.register(Arc::new(FnModule::new(descriptor, move |inputs| {
                let text = inputs[0]
                    .as_text()
                    .ok_or_else(|| InvocationError::BadInput {
                        parameter: "input".into(),
                        reason: "scaled modules consume text".into(),
                    })?;
                Ok(vec![core(text)])
            })));
            categories.insert(id.clone(), category);
            members.push(id);
            roles.push(role);
        }

        families.push(FamilyInfo {
            members,
            roles,
            input_concept: concepts.parent.clone(),
            divergent_concept: concepts.child_b.clone(),
            output_concept: concepts.out.clone(),
            category,
            shared_shape: shape_idx,
        });
        remaining -= size;
        f += 1;
    }

    let ontology = builder.build().expect("scaled ontology is well-formed");
    dex_telemetry::counter("dex.scale.modules").add(plan.modules as u64);
    dex_telemetry::counter("dex.scale.families").add(families.len() as u64);
    dex_telemetry::counter("dex.scale.concepts").add(ontology.len() as u64);

    ScaledWorld {
        universe: Universe {
            catalog,
            ontology,
            categories,
            specs: BTreeMap::new(),
            legacy: Vec::new(),
            expected_match: BTreeMap::new(),
            popular: Default::default(),
            unfamiliar_output: Default::default(),
            partial_output: Default::default(),
        },
        families,
        plan: plan.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_core::{GenerationConfig, MatchSession, MatchVerdict};
    use dex_pool::build_text_pool;

    fn small_plan() -> ScalePlan {
        ScalePlan {
            modules: 120,
            seed: 11,
            depth: 6,
            max_family: 16,
            shared_shape_every: 8,
            shared_shapes: 4,
        }
    }

    #[test]
    fn module_count_is_exact_and_ids_are_structural() {
        let world = build_scaled(&small_plan());
        assert_eq!(world.module_count(), 120);
        assert_eq!(world.universe.catalog.available_ids().len(), 120);
        let first = &world.families[0];
        assert_eq!(first.members[0].as_str(), "sc000000.00");
    }

    #[test]
    fn worlds_are_deterministic_in_the_plan_and_sensitive_to_the_seed() {
        let a = build_scaled(&small_plan());
        let b = build_scaled(&small_plan());
        let ids = |w: &ScaledWorld| w.universe.catalog.available_ids();
        assert_eq!(ids(&a), ids(&b));
        // Behavior is deterministic too: same module, same input, same output.
        let id = &a.families[0].members[0];
        let probe = vec![Value::text("ec:probe:0001:deadbeef")];
        let out_a = a.universe.catalog.get(id).unwrap().invoke(&probe).unwrap();
        let out_b = b.universe.catalog.get(id).unwrap().invoke(&probe).unwrap();
        assert_eq!(out_a, out_b);

        let mut other = small_plan();
        other.seed = 12;
        let c = build_scaled(&other);
        assert_ne!(
            a.families
                .iter()
                .map(|f| f.members.len())
                .collect::<Vec<_>>(),
            c.families
                .iter()
                .map(|f| f.members.len())
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn family_sizes_are_heavy_tailed() {
        let world = build_scaled(&ScalePlan::new(2_000, 3));
        let sizes: Vec<usize> = world.families.iter().map(|f| f.members.len()).collect();
        let small = sizes.iter().filter(|&&s| s <= 2).count();
        let max = sizes.iter().copied().max().unwrap();
        assert!(
            small * 4 >= sizes.len(),
            "expected >=25% small families, got {small}/{}",
            sizes.len()
        );
        assert!(max >= 8, "expected a heavy tail, max family was {max}");
    }

    #[test]
    fn category_mass_is_heavy_tailed() {
        let world = build_scaled(&ScalePlan::new(2_000, 3));
        let mut mass = BTreeMap::new();
        for fam in &world.families {
            *mass.entry(fam.category).or_insert(0usize) += fam.members.len();
        }
        let max = *mass.values().max().unwrap();
        let min = *mass.values().min().unwrap();
        assert!(
            max >= 4 * min.max(1),
            "expected skewed category mass, got {mass:?}"
        );
    }

    #[test]
    fn ontology_reaches_the_planned_depth() {
        let plan = small_plan();
        let world = build_scaled(&plan);
        let onto = &world.universe.ontology;
        let max_depth = onto.iter().map(|c| onto.depth(c)).max().unwrap();
        assert!(
            max_depth >= plan.depth as u32,
            "max depth {max_depth} < planned {}",
            plan.depth
        );
        // Family input concepts really have the two partition children.
        let fam = &world.families[0];
        let parent = onto.id(&fam.input_concept).expect("input concept exists");
        assert_eq!(onto.partitions_of(parent).len(), 3);
    }

    #[test]
    fn shared_shapes_produce_interface_collisions() {
        let world = build_scaled(&small_plan());
        let shared: Vec<&FamilyInfo> = world
            .families
            .iter()
            .filter(|f| f.shared_shape.is_some())
            .collect();
        assert!(
            shared.len() >= 2,
            "plan should produce shared-shape families"
        );
        let by_shape: BTreeMap<usize, usize> = shared.iter().fold(BTreeMap::new(), |mut acc, f| {
            *acc.entry(f.shared_shape.unwrap()).or_insert(0) += 1;
            acc
        });
        assert!(
            by_shape.values().any(|&n| n >= 2),
            "some shape must be reused across families: {by_shape:?}"
        );
    }

    #[test]
    fn member_roles_yield_the_expected_verdicts() {
        let plan = ScalePlan {
            modules: 80,
            seed: 7,
            depth: 5,
            max_family: 16,
            shared_shape_every: 0,
            shared_shapes: 0,
        };
        let world = build_scaled(&plan);
        let pool = build_text_pool(&world.universe.ontology, 6, plan.seed);
        let session =
            MatchSession::new(&world.universe.ontology, &pool, GenerationConfig::default());
        let fam = world
            .families
            .iter()
            .find(|f| f.members.len() >= 4)
            .expect("a family with all four roles");
        assert_eq!(
            &fam.roles[..4],
            &[
                MemberRole::Anchor,
                MemberRole::Equivalent,
                MemberRole::Overlapping,
                MemberRole::Distinct
            ]
        );
        let module = |i: usize| world.universe.catalog.get(&fam.members[i]).unwrap();
        let anchor = module(0);
        let verdict = |candidate: usize| {
            session
                .compare(anchor.as_ref(), module(candidate).as_ref())
                .expect("generation succeeds on text pool")
        };
        assert!(matches!(verdict(1), MatchVerdict::Equivalent { .. }));
        assert!(matches!(verdict(2), MatchVerdict::Overlapping { .. }));
        assert!(matches!(verdict(3), MatchVerdict::Disjoint { .. }));
    }
}
