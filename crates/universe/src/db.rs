//! Deterministic simulated databases and analysis backends.
//!
//! The paper's modules front real molecular databases (Uniprot, KEGG, PDB,
//! …) and analysis programs (BLAST, Mascot-style identification, text
//! mining). Here each backend is an *infinite deterministic function*: the
//! record for an accession is derived from a seed hashed out of the database
//! name and the accession itself. Two modules querying the same simulated
//! database therefore return byte-identical results — which is what makes
//! "the SOAP and REST front-ends of the same provider are equivalent"
//! (paper §6, the KEGG case) true in the simulation, and what makes
//! substitution verification meaningful.
//!
//! A `salt` argument distinguishes *providers with genuinely different
//! algorithms* (different alignment programs return different hits); salt 0
//! is the canonical backend.

use dex_values::formats::accession::AccessionKind;
use dex_values::formats::records::{EntryRecord, RecordFormat, SeqEntry};
use dex_values::formats::reports::{
    newick_ladder, AlignmentHit, AlignmentReport, AnnotationReport, IdentificationReport,
};
use dex_values::formats::sequence::SequenceKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// FNV-1a hash over the parts, used to seed per-query generators.
pub fn seed_for(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for part in parts {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= 0x1f; // separator so ("ab","c") != ("a","bc")
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn rng_for(parts: &[&str], salt: u64) -> StdRng {
    StdRng::seed_from_u64(seed_for(parts) ^ salt.wrapping_mul(0x9e3779b97f4a7c15))
}

/// The logical sequence-database entry behind `accession` in `database`.
///
/// The entry's accession field echoes the query accession; description,
/// organism and sequence are derived deterministically.
pub fn seq_entry_for(database: &str, accession: &str, kind: SequenceKind) -> SeqEntry {
    let mut rng = rng_for(&["seq-entry", database, accession], 0);
    const ADJ: &[&str] = &["putative", "conserved", "hypothetical", "predicted"];
    const NOUN: &[&str] = &["kinase", "transporter", "polymerase", "receptor", "ligase"];
    const ORG: &[&str] = &[
        "Homo sapiens",
        "Mus musculus",
        "Escherichia coli",
        "Saccharomyces cerevisiae",
    ];
    let len = rng.gen_range(40..100);
    SeqEntry {
        accession: accession.to_string(),
        description: format!(
            "{} {}",
            ADJ[rng.gen_range(0..ADJ.len())],
            NOUN[rng.gen_range(0..NOUN.len())]
        ),
        organism: ORG[rng.gen_range(0..ORG.len())].to_string(),
        sequence: kind.generate(&mut rng, len),
    }
}

/// The flat-text record behind `accession` in `database`, rendered in
/// `format`. Protein-ish formats carry protein sequences, nucleotide-ish
/// formats DNA.
pub fn record_for(database: &str, accession: &str, format: RecordFormat) -> String {
    let kind = match format {
        RecordFormat::Uniprot | RecordFormat::Pdb | RecordFormat::Fasta => SequenceKind::Protein,
        RecordFormat::GenBank | RecordFormat::Embl => SequenceKind::Dna,
    };
    format.render(&seq_entry_for(database, accession, kind))
}

/// The generic `SEQUENCE-RECORD` rendering (realizes the interior
/// `SequenceRecord` concept).
pub fn generic_record_for(database: &str, accession: &str) -> String {
    let entry = seq_entry_for(database, accession, SequenceKind::Generic);
    render_generic_record(&entry)
}

/// Renders a [`SeqEntry`] in the generic `SEQUENCE-RECORD` format.
pub fn render_generic_record(entry: &SeqEntry) -> String {
    format!(
        "SEQUENCE-RECORD {}\nDESC {}\nORG  {}\nSEQ  {}\n",
        entry.accession, entry.description, entry.organism, entry.sequence
    )
}

/// Parses the generic `SEQUENCE-RECORD` format.
pub fn parse_generic_record(text: &str) -> Option<SeqEntry> {
    let mut accession = None;
    let mut description = String::new();
    let mut organism = String::new();
    let mut sequence = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("SEQUENCE-RECORD ") {
            accession = Some(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("DESC ") {
            description = rest.trim().to_string();
        } else if let Some(rest) = line.strip_prefix("ORG  ") {
            organism = rest.trim().to_string();
        } else if let Some(rest) = line.strip_prefix("SEQ  ") {
            sequence = Some(rest.trim().to_string());
        }
    }
    Some(SeqEntry {
        accession: accession?,
        description,
        organism,
        sequence: sequence?,
    })
}

/// Parses any of the five concrete record formats *or* the generic
/// `SEQUENCE-RECORD` format.
pub fn parse_any_record(text: &str) -> Option<SeqEntry> {
    if text.starts_with("SEQUENCE-RECORD") {
        return parse_generic_record(text);
    }
    RecordFormat::detect(text).and_then(|f| f.parse(text).ok())
}

/// The KEGG-style entry behind `accession` (pathway/enzyme/compound/…).
pub fn kegg_entry_for(kind: &str, accession: &str) -> String {
    let mut rng = rng_for(&["kegg-entry", kind, accession], 0);
    const NAMES: &[&str] = &["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];
    let links = (0..rng.gen_range(1..4usize))
        .map(|_| AccessionKind::KeggGene.generate(&mut rng))
        .collect();
    EntryRecord {
        accession: accession.to_string(),
        kind: kind.to_string(),
        name: format!(
            "{}-{}",
            kind.to_lowercase(),
            NAMES[rng.gen_range(0..NAMES.len())]
        ),
        definition: format!("{kind} entry for {accession}"),
        links,
    }
    .render()
}

/// Deterministically maps an accession to a target syntax — the backend of
/// every identifier-mapping module. A function of `(target, accession,
/// salt)` only, so independent providers implementing "the" Uniprot→GO
/// mapping agree.
pub fn map_accession(target: AccessionKind, accession: &str, salt: u64) -> String {
    let mut rng = rng_for(&["map", &format!("{target}"), accession], salt);
    target.generate(&mut rng)
}

/// Alignment hits for `query` against `database`, using the algorithm
/// identified by `program` (different programs = different hit lists, which
/// is why the paper's homology modules were *not* interchangeable).
pub fn homology_report(database: &str, program: &str, query: &str, salt: u64) -> String {
    let mut rng = rng_for(&["homology", database, program, query], salt);
    let n = rng.gen_range(2..6usize);
    let hits = (0..n)
        .map(|i| AlignmentHit {
            accession: AccessionKind::Uniprot.generate(&mut rng),
            score: (rng.gen_range(3000..9000u32) as f64) / 10.0 - (i as f64) * 25.0,
            evalue: 10f64.powi(-(rng.gen_range(10..70i32))),
        })
        .collect();
    AlignmentReport {
        program: program.to_string(),
        database: database.to_string(),
        query: elide(query, 24),
        hits,
    }
    .render()
}

/// The GO term associated with an accession.
pub fn go_term_for(accession: &str, salt: u64) -> String {
    let mut rng = rng_for(&["go", accession], salt);
    AccessionKind::GoTerm.generate(&mut rng)
}

/// Protein identification from peptide masses at a tolerance — the backend
/// of the paper's `Identify` module (Figure 1). The result depends on the
/// masses and (coarsely) on the tolerance bucket, like a real search engine
/// widening its candidate set.
pub fn identify_protein(masses: &[f64], tolerance: f64, salt: u64) -> IdentificationReport {
    let bucket = if tolerance < 1.0 {
        "strict"
    } else if tolerance < 5.0 {
        "normal"
    } else {
        "loose"
    };
    let mass_key: String = masses.iter().map(|m| format!("{:.1};", m)).collect();
    let mut rng = rng_for(&["identify", bucket, &mass_key], salt);
    IdentificationReport {
        accession: AccessionKind::Uniprot.generate(&mut rng),
        confidence: (rng.gen_range(600..999u32) as f64) / 1000.0,
        matched_peptides: masses.len().saturating_sub(rng.gen_range(0..3usize)).max(1),
    }
}

/// Functional annotation of an accession.
pub fn annotation_for(accession: &str, salt: u64) -> String {
    let mut rng = rng_for(&["annotate", accession], salt);
    let n = rng.gen_range(1..4usize);
    let terms = (0..n)
        .map(|_| {
            (
                AccessionKind::GoTerm.generate(&mut rng),
                (rng.gen_range(100..999u32) as f64) / 1000.0,
            )
        })
        .collect();
    AnnotationReport {
        accession: accession.to_string(),
        terms,
    }
    .render()
}

/// A phylogenetic tree over homologs of the given sequence key.
pub fn tree_for(key: &str, salt: u64) -> String {
    let mut rng = rng_for(&["tree", key], salt);
    let n = rng.gen_range(3..6usize);
    let leaves: Vec<String> = (0..n)
        .map(|_| AccessionKind::Uniprot.generate(&mut rng))
        .collect();
    newick_ladder(&leaves)
}

fn elide(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        s.chars().take(max).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_distinguishes_part_boundaries() {
        assert_ne!(seed_for(&["ab", "c"]), seed_for(&["a", "bc"]));
        assert_ne!(seed_for(&["a"]), seed_for(&["a", ""]));
        assert_eq!(seed_for(&["x", "y"]), seed_for(&["x", "y"]));
    }

    #[test]
    fn records_are_deterministic_and_echo_accession() {
        let a = record_for("uniprot", "P12345", RecordFormat::Uniprot);
        let b = record_for("uniprot", "P12345", RecordFormat::Uniprot);
        assert_eq!(a, b);
        let parsed = RecordFormat::Uniprot.parse(&a).unwrap();
        assert_eq!(parsed.accession, "P12345");
    }

    #[test]
    fn different_databases_differ() {
        let a = record_for("uniprot", "P12345", RecordFormat::Fasta);
        let b = record_for("trembl", "P12345", RecordFormat::Fasta);
        assert_ne!(a, b);
    }

    #[test]
    fn generic_record_round_trips() {
        let text = generic_record_for("any", "XDB:000123");
        let parsed = parse_generic_record(&text).unwrap();
        assert_eq!(parsed.accession, "XDB:000123");
        assert!(!parsed.sequence.is_empty());
        assert_eq!(parse_any_record(&text).unwrap(), parsed);
    }

    #[test]
    fn parse_any_handles_all_formats() {
        for format in RecordFormat::ALL {
            let text = record_for("db", "AB123456", format);
            let parsed = parse_any_record(&text).unwrap();
            assert_eq!(parsed.accession, "AB123456", "{}", format.name());
        }
        assert!(parse_any_record("garbage").is_none());
    }

    #[test]
    fn mapping_is_functional_and_salted() {
        let a = map_accession(AccessionKind::GoTerm, "P12345", 0);
        let b = map_accession(AccessionKind::GoTerm, "P12345", 0);
        let c = map_accession(AccessionKind::GoTerm, "P12345", 7);
        let d = map_accession(AccessionKind::GoTerm, "Q99999", 0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert!(AccessionKind::GoTerm.is_valid(&a));
    }

    #[test]
    fn homology_depends_on_program() {
        let blast = homology_report("uniprot", "blastp", "MKVL", 0);
        let fasta = homology_report("uniprot", "fasta", "MKVL", 0);
        assert_ne!(blast, fasta);
        let parsed = AlignmentReport::parse(&blast).unwrap();
        assert_eq!(parsed.program, "blastp");
        assert!(!parsed.hits.is_empty());
    }

    #[test]
    fn identification_depends_on_tolerance_bucket() {
        let masses = [1200.5, 980.2, 1500.1];
        let strict = identify_protein(&masses, 0.5, 0);
        let strict2 = identify_protein(&masses, 0.9, 0);
        let loose = identify_protein(&masses, 9.0, 0);
        assert_eq!(strict, strict2, "same bucket, same result");
        assert_ne!(strict.accession, loose.accession);
    }

    #[test]
    fn kegg_entry_parses() {
        let text = kegg_entry_for("Pathway", "path:map00010");
        let entry = EntryRecord::parse(&text).unwrap();
        assert_eq!(entry.kind, "Pathway");
        assert_eq!(entry.accession, "path:map00010");
    }

    #[test]
    fn annotation_and_tree_and_goterm_are_deterministic() {
        assert_eq!(annotation_for("P12345", 1), annotation_for("P12345", 1));
        assert_eq!(tree_for("k", 0), tree_for("k", 0));
        assert_eq!(go_term_for("P12345", 0), go_term_for("P12345", 0));
        assert_ne!(go_term_for("P12345", 0), go_term_for("P12345", 1));
    }
}
