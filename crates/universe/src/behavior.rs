//! Ground-truth behavior classes.
//!
//! A module's *classes of behavior* are "the different tasks that a given
//! module can perform" (paper §4.2). For the synthetic universe each module
//! carries a [`BehaviorSpec`]: an ordered list of classes, each guarded by a
//! predicate over the module's input values. Class membership uses
//! **first-match** semantics (like `match` arms), so classes are disjoint
//! and total as long as the last class is a catch-all.
//!
//! Specs play the role of the paper's module documentation + domain expert:
//! they exist solely so the evaluation can score generated data examples.
//! Nothing in the generation pipeline reads them.

use dex_core::{BehaviorOracle, DataExample};
use dex_values::formats::accession::AccessionKind;
use dex_values::formats::records::RecordFormat;
use dex_values::formats::sequence::{classify as classify_seq, SequenceKind};
use dex_values::Value;
use serde::{Deserialize, Serialize};

/// A predicate over a module's input vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Pred {
    /// Always true — the catch-all for a spec's last class.
    Always,
    /// Input `idx` is a sequence of the given kind.
    SeqKind(usize, SequenceKind),
    /// Input `idx` is a sequence of one of the given kinds.
    SeqKindIn(usize, Vec<SequenceKind>),
    /// Input `idx` is text longer than `len` characters.
    TextLongerThan(usize, usize),
    /// Input `idx` is empty text.
    TextEmpty(usize),
    /// Input `idx` is a valid accession of the given kind.
    AccKind(usize, AccessionKind),
    /// Input `idx` is a valid accession of one of the given kinds.
    AccKindIn(usize, Vec<AccessionKind>),
    /// Input `idx` parses as a record of the given format.
    RecFormat(usize, RecordFormat),
    /// Input `idx` parses as one of the given record formats.
    RecFormatIn(usize, Vec<RecordFormat>),
    /// Input `idx` is a generic `SEQUENCE-RECORD` (the realization of the
    /// interior `SequenceRecord` concept).
    GenericSeqRecord(usize),
    /// Input `idx` has the given text prefix.
    TextPrefixed(usize, String),
    /// Input `idx` classifies (via [`dex_values::classify`]) to the concept.
    ConceptIs(usize, String),
    /// Input `idx` is numeric and strictly above the bound.
    FloatAbove(usize, f64),
    /// Input `idx` is numeric and strictly below the bound.
    FloatBelow(usize, f64),
    /// Input `idx` is a list with more than `n` elements.
    ListLongerThan(usize, usize),
    /// Input `idx` is an empty list.
    ListEmpty(usize),
    /// Negation.
    Not(Box<Pred>),
    /// Conjunction.
    All(Vec<Pred>),
    /// Disjunction.
    AnyOf(Vec<Pred>),
}

impl Pred {
    /// Evaluates the predicate against an input vector.
    pub fn eval(&self, inputs: &[&Value]) -> bool {
        let text = |idx: usize| inputs.get(idx).and_then(|v| v.as_text());
        match self {
            Pred::Always => true,
            Pred::SeqKind(i, kind) => text(*i).and_then(classify_seq) == Some(*kind),
            Pred::SeqKindIn(i, kinds) => text(*i)
                .and_then(classify_seq)
                .is_some_and(|k| kinds.contains(&k)),
            Pred::TextLongerThan(i, len) => text(*i).is_some_and(|s| s.chars().count() > *len),
            Pred::TextEmpty(i) => text(*i).is_some_and(str::is_empty),
            Pred::AccKind(i, kind) => text(*i).is_some_and(|s| kind.is_valid(s)),
            Pred::AccKindIn(i, kinds) => {
                text(*i).is_some_and(|s| kinds.iter().any(|k| k.is_valid(s)))
            }
            Pred::RecFormat(i, format) => text(*i).is_some_and(|s| format.parse(s).is_ok()),
            Pred::RecFormatIn(i, formats) => {
                text(*i).is_some_and(|s| formats.iter().any(|f| f.parse(s).is_ok()))
            }
            Pred::GenericSeqRecord(i) => text(*i).is_some_and(|s| s.starts_with("SEQUENCE-RECORD")),
            Pred::TextPrefixed(i, prefix) => text(*i).is_some_and(|s| s.starts_with(prefix)),
            Pred::ConceptIs(i, concept) => {
                inputs
                    .get(*i)
                    .and_then(|v| dex_values::classify::classify_concept(v))
                    == Some(concept.as_str())
            }
            Pred::FloatAbove(i, bound) => inputs
                .get(*i)
                .and_then(|v| v.as_f64())
                .is_some_and(|f| f > *bound),
            Pred::FloatBelow(i, bound) => inputs
                .get(*i)
                .and_then(|v| v.as_f64())
                .is_some_and(|f| f < *bound),
            Pred::ListLongerThan(i, n) => inputs
                .get(*i)
                .and_then(|v| v.as_list())
                .is_some_and(|l| l.len() > *n),
            Pred::ListEmpty(i) => inputs
                .get(*i)
                .and_then(|v| v.as_list())
                .is_some_and(<[Value]>::is_empty),
            Pred::Not(p) => !p.eval(inputs),
            Pred::All(ps) => ps.iter().all(|p| p.eval(inputs)),
            Pred::AnyOf(ps) => ps.iter().any(|p| p.eval(inputs)),
        }
    }
}

/// One class of behavior: a task the module performs for the inputs matching
/// `guard`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorClass {
    /// Short task name (e.g. "retrieve uniprot record").
    pub name: String,
    /// Inputs exercising this class (first-match across the spec).
    pub guard: Pred,
}

impl BehaviorClass {
    /// Creates a class.
    pub fn new(name: impl Into<String>, guard: Pred) -> Self {
        BehaviorClass {
            name: name.into(),
            guard,
        }
    }
}

/// The ground-truth behavior specification of one module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorSpec {
    /// A human-readable statement of the overall task (what the paper's
    /// study participants were asked to produce).
    pub task: String,
    /// Ordered classes; membership is first-match.
    pub classes: Vec<BehaviorClass>,
}

impl BehaviorSpec {
    /// A single-class spec: the module performs one task everywhere.
    pub fn uniform(task: impl Into<String>) -> Self {
        let task = task.into();
        BehaviorSpec {
            classes: vec![BehaviorClass::new(task.clone(), Pred::Always)],
            task,
        }
    }

    /// A spec with explicit classes.
    pub fn new(task: impl Into<String>, classes: Vec<BehaviorClass>) -> Self {
        BehaviorSpec {
            task: task.into(),
            classes,
        }
    }

    /// First-match class index for an input vector.
    pub fn class_of_inputs(&self, inputs: &[&Value]) -> Option<usize> {
        self.classes.iter().position(|c| c.guard.eval(inputs))
    }
}

/// Adapts a [`BehaviorSpec`] to the scoring interface of `dex-core`.
pub struct SpecOracle<'a> {
    spec: &'a BehaviorSpec,
}

impl<'a> SpecOracle<'a> {
    /// Wraps a spec.
    pub fn new(spec: &'a BehaviorSpec) -> Self {
        SpecOracle { spec }
    }
}

impl BehaviorOracle for SpecOracle<'_> {
    fn class_count(&self) -> usize {
        self.spec.classes.len()
    }

    fn class_of(&self, example: &DataExample) -> Option<usize> {
        let inputs = example.input_values();
        self.spec.class_of_inputs(&inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::text(s)
    }

    #[test]
    fn first_match_semantics() {
        let spec = BehaviorSpec::new(
            "demo",
            vec![
                BehaviorClass::new("dna", Pred::SeqKind(0, SequenceKind::Dna)),
                BehaviorClass::new(
                    "any-seq",
                    Pred::SeqKindIn(
                        0,
                        vec![
                            SequenceKind::Dna,
                            SequenceKind::Rna,
                            SequenceKind::Protein,
                            SequenceKind::Generic,
                        ],
                    ),
                ),
                BehaviorClass::new("other", Pred::Always),
            ],
        );
        let dna = v("ACGTACGT");
        let rna = v("ACGUACGU");
        let junk = v("hello world");
        assert_eq!(spec.class_of_inputs(&[&dna]), Some(0));
        assert_eq!(spec.class_of_inputs(&[&rna]), Some(1));
        assert_eq!(spec.class_of_inputs(&[&junk]), Some(2));
    }

    #[test]
    fn numeric_and_list_predicates() {
        let above = Pred::FloatAbove(0, 10.0);
        let below = Pred::FloatBelow(0, 10.0);
        let five = Value::Float(5.0);
        let fifteen = Value::Integer(15);
        assert!(!above.eval(&[&five]));
        assert!(above.eval(&[&fifteen]));
        assert!(below.eval(&[&five]));

        let long = Pred::ListLongerThan(0, 2);
        let empty = Pred::ListEmpty(0);
        let l3 = Value::from(vec![1i64, 2, 3]);
        let l0 = Value::List(vec![]);
        assert!(long.eval(&[&l3]));
        assert!(!long.eval(&[&l0]));
        assert!(empty.eval(&[&l0]));
    }

    #[test]
    fn boolean_combinators() {
        let p = Pred::All(vec![
            Pred::TextPrefixed(0, "GO:".into()),
            Pred::Not(Box::new(Pred::TextLongerThan(0, 15))),
        ]);
        assert!(p.eval(&[&v("GO:0008150")]));
        assert!(!p.eval(&[&v("XX:0008150")]));
        let q = Pred::AnyOf(vec![Pred::TextEmpty(0), Pred::TextPrefixed(0, "a".into())]);
        assert!(q.eval(&[&v("")]));
        assert!(q.eval(&[&v("abc")]));
        assert!(!q.eval(&[&v("zzz")]));
    }

    #[test]
    fn accession_and_record_predicates() {
        let acc = Pred::AccKind(0, AccessionKind::Uniprot);
        assert!(acc.eval(&[&v("P12345")]));
        assert!(!acc.eval(&[&v("1ABC")]));
        let multi = Pred::AccKindIn(0, vec![AccessionKind::Uniprot, AccessionKind::Pdb]);
        assert!(multi.eval(&[&v("1ABC")]));

        let entry = dex_values::formats::records::SeqEntry {
            accession: "P12345".into(),
            description: "d".into(),
            organism: "o".into(),
            sequence: "MKVLHP".into(),
        };
        let fasta = RecordFormat::Fasta.render(&entry);
        assert!(Pred::RecFormat(0, RecordFormat::Fasta).eval(&[&v(&fasta)]));
        assert!(!Pred::RecFormat(0, RecordFormat::Uniprot).eval(&[&v(&fasta)]));
        assert!(Pred::GenericSeqRecord(0).eval(&[&v("SEQUENCE-RECORD X\n")]));
    }

    #[test]
    fn uniform_spec_has_one_total_class() {
        let spec = BehaviorSpec::uniform("echo");
        assert_eq!(spec.classes.len(), 1);
        assert_eq!(spec.class_of_inputs(&[&v("anything")]), Some(0));
    }

    #[test]
    fn oracle_adapts_spec() {
        use dex_core::Binding;
        let spec = BehaviorSpec::new(
            "t",
            vec![
                BehaviorClass::new("go", Pred::TextPrefixed(0, "GO:".into())),
                BehaviorClass::new("other", Pred::Always),
            ],
        );
        let oracle = SpecOracle::new(&spec);
        assert_eq!(oracle.class_count(), 2);
        let ex = DataExample::new(
            vec![Binding::new("in", v("GO:0000001"))],
            vec![Binding::new("out", v("x"))],
            vec!["GOTerm".into()],
        );
        assert_eq!(oracle.class_of(&ex), Some(0));
    }

    #[test]
    fn out_of_range_index_is_false_not_panic() {
        assert!(!Pred::SeqKind(5, SequenceKind::Dna).eval(&[&v("ACGT")]));
        assert!(!Pred::FloatAbove(9, 0.0).eval(&[]));
    }
}
