//! Module categories (the paper's Table 3 taxonomy of data manipulation).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The five kinds of data manipulation the paper classifies its 252 modules
/// into (§5, Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Shims translating between representations (Uniprot → FASTA, …).
    FormatTransformation,
    /// Accession → record lookups against scientific databases.
    DataRetrieval,
    /// Identifier translation between data sources (Uniprot → GO, …).
    MappingIdentifiers,
    /// Extracting the input values meeting given criteria.
    Filtering,
    /// Complex analyses: alignment, identification, text mining, ….
    DataAnalysis,
}

impl Category {
    /// All categories in Table 3 order.
    pub const ALL: [Category; 5] = [
        Category::FormatTransformation,
        Category::DataRetrieval,
        Category::MappingIdentifiers,
        Category::Filtering,
        Category::DataAnalysis,
    ];

    /// The paper's Table 3 module count for this category.
    pub fn paper_count(self) -> usize {
        match self {
            Category::FormatTransformation => 53,
            Category::DataRetrieval => 51,
            Category::MappingIdentifiers => 62,
            Category::Filtering => 27,
            Category::DataAnalysis => 59,
        }
    }

    /// Whether the paper found data examples make this category's behavior
    /// easy for humans to identify (§5: shims yes, filtering/analysis no).
    pub fn human_friendly(self) -> bool {
        !matches!(self, Category::Filtering | Category::DataAnalysis)
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Category::FormatTransformation => "format transformation",
            Category::DataRetrieval => "data retrieval",
            Category::MappingIdentifiers => "mapping identifiers",
            Category::Filtering => "filtering",
            Category::DataAnalysis => "data analysis",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts_sum_to_252() {
        let total: usize = Category::ALL.iter().map(|c| c.paper_count()).sum();
        assert_eq!(total, 252);
    }

    #[test]
    fn friendliness_matches_paper() {
        assert!(Category::FormatTransformation.human_friendly());
        assert!(Category::DataRetrieval.human_friendly());
        assert!(Category::MappingIdentifiers.human_friendly());
        assert!(!Category::Filtering.human_friendly());
        assert!(!Category::DataAnalysis.human_friendly());
    }

    #[test]
    fn display_names() {
        assert_eq!(Category::Filtering.to_string(), "filtering");
    }
}
