//! End-to-end calibration tests: generate data examples for all 252
//! available modules and check that the completeness / conciseness /
//! coverage distributions have the shape of the paper's Tables 1–2 and
//! §4.3.

use dex_core::{generate_examples, GenerationConfig};
use dex_pool::build_synthetic_pool;
use dex_universe::{build, SpecOracle};
use std::collections::BTreeMap;

use dex_core::coverage::measure_coverage;

#[test]
fn tables_1_2_and_coverage_shapes() {
    let u = build();
    let pool = build_synthetic_pool(&u.ontology, 6, 42);
    let config = GenerationConfig::default();

    let mut completeness: BTreeMap<String, usize> = BTreeMap::new();
    let mut conciseness: BTreeMap<String, usize> = BTreeMap::new();
    let mut input_uncovered: Vec<String> = Vec::new();
    let mut output_uncovered: Vec<String> = Vec::new();

    for id in u.available_ids() {
        let module = u.catalog.get(&id).expect("available");
        let report = generate_examples(module.as_ref(), &u.ontology, &pool, &config)
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        assert!(
            !report.examples.is_empty(),
            "{id}: no data examples generated"
        );
        // §4.3: every input partition covered, for every module.
        if report.input_partition_coverage(&u.ontology) < 1.0 {
            input_uncovered.push(format!(
                "{id}: failed={:?} unvalued={:?}",
                report.failed_combinations, report.unvalued_partitions
            ));
        }
        // Output partitions.
        let descriptor = u.catalog.descriptor(&id).unwrap();
        let cov = measure_coverage(
            descriptor,
            &report.examples,
            &u.ontology,
            dex_values::classify::classify_concept,
        )
        .unwrap();
        if !cov.outputs_fully_covered() {
            output_uncovered.push(id.to_string());
        }

        let oracle = SpecOracle::new(&u.specs[&id]);
        let score = dex_core::metrics::score(&report.examples, &oracle);
        *completeness
            .entry(format!("{:.3}", score.completeness))
            .or_default() += 1;
        *conciseness
            .entry(format!("{:.2}", score.conciseness))
            .or_default() += 1;
    }

    assert!(
        input_uncovered.is_empty(),
        "input partitions uncovered for:\n{}",
        input_uncovered.join("\n")
    );

    // §4.3: exactly the 19 designed modules have uncovered output partitions.
    let expected: Vec<String> = u.partial_output.iter().map(|m| m.to_string()).collect();
    assert_eq!(output_uncovered, expected, "output-coverage exceptions");

    // Table 1 shape.
    let complete = completeness.get("1.000").copied().unwrap_or(0);
    assert_eq!(complete, 236, "complete modules: {completeness:?}");
    assert_eq!(completeness.get("0.750").copied().unwrap_or(0), 8);
    assert_eq!(completeness.get("0.625").copied().unwrap_or(0), 4);
    assert_eq!(completeness.get("0.600").copied().unwrap_or(0), 2);
    assert_eq!(completeness.get("0.500").copied().unwrap_or(0), 2);

    // Table 2 shape.
    assert_eq!(
        conciseness.get("1.00").copied().unwrap_or(0),
        192,
        "{conciseness:?}"
    );
    assert_eq!(conciseness.get("0.50").copied().unwrap_or(0), 32);
    assert_eq!(conciseness.get("0.47").copied().unwrap_or(0), 7);
    assert_eq!(conciseness.get("0.40").copied().unwrap_or(0), 4);
    assert_eq!(conciseness.get("0.33").copied().unwrap_or(0), 4);
    assert_eq!(conciseness.get("0.20").copied().unwrap_or(0), 8);
    assert_eq!(conciseness.get("0.17").copied().unwrap_or(0), 4);
    assert_eq!(conciseness.get("0.09").copied().unwrap_or(0), 1);
}
