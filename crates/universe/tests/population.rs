//! Population-level properties of the synthetic universe beyond the
//! Table 1–3 calibration: supply-kind mix, interface plausibility, and
//! black-box determinism.

use dex_modules::ModuleKind;
use dex_pool::build_synthetic_pool;
use dex_universe::build;
use std::collections::BTreeMap;

/// The paper's corpus is SOAP-heavy: 136 SOAP / 60 REST / 56 local of 252.
/// The generated mix approximates that (the cycle yields 140/56/56 over the
/// 252 available modules).
#[test]
fn supply_kind_mix_is_soap_heavy() {
    let u = build();
    let mut counts: BTreeMap<ModuleKind, usize> = BTreeMap::new();
    for id in u.available_ids() {
        let kind = u.catalog.descriptor(&id).unwrap().kind;
        *counts.entry(kind).or_default() += 1;
    }
    let soap = counts[&ModuleKind::SoapService];
    let rest = counts[&ModuleKind::RestService];
    let local = counts[&ModuleKind::LocalProgram];
    assert_eq!(soap + rest + local, 252);
    assert!((130..=145).contains(&soap), "soap {soap}");
    assert!((50..=62).contains(&rest), "rest {rest}");
    assert!((50..=62).contains(&local), "local {local}");
}

/// Every module is a deterministic black box: invoking twice on the same
/// inputs yields identical outputs (matching and repair verification rely
/// on this).
#[test]
fn modules_are_deterministic() {
    let u = build();
    let pool = build_synthetic_pool(&u.ontology, 2, 99);
    for id in u.catalog.available_ids() {
        let module = u.catalog.get(&id).unwrap();
        let descriptor = module.descriptor();
        let inputs: Option<Vec<_>> = descriptor
            .inputs
            .iter()
            .map(|p| {
                pool.get_instance(&p.semantic, &p.structural, 0)
                    .map(|i| i.value.clone())
            })
            .collect();
        let Some(inputs) = inputs else { continue };
        let a = module.invoke(&inputs);
        let b = module.invoke(&inputs);
        assert_eq!(a, b, "{id}");
    }
}

/// Interfaces are plausible: every input/output concept has a structural
/// grounding consistent with the synthesizer's (a mismatch would make the
/// module unfeedable from any harvested pool).
#[test]
fn parameter_groundings_match_synthesis() {
    let u = build();
    for id in u.catalog.available_ids() {
        let descriptor = u.catalog.descriptor(&id).unwrap();
        for p in descriptor.inputs.iter().chain(&descriptor.outputs) {
            if let Some(expected) = dex_values::synth::structural_type_of(&p.semantic) {
                assert_eq!(
                    p.structural, expected,
                    "{id}: parameter {} grounding drifted",
                    p.name
                );
            }
        }
    }
}

/// Legacy modules all have single-input single-output interfaces (the §6
/// reconstruction and archive machinery assumes this, and real shim-era
/// services overwhelmingly had it).
#[test]
fn legacy_modules_are_single_in_single_out() {
    let u = build();
    for id in &u.legacy {
        let d = u.catalog.descriptor(id).unwrap();
        assert_eq!(d.inputs.len(), 1, "{id}");
        assert_eq!(d.outputs.len(), 1, "{id}");
    }
}
