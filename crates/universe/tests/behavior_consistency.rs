//! Consistency between the hidden behavior specs and the actual module
//! bodies: the classes of behavior a spec declares must correspond to
//! *observable* behavioral differences, and uniform specs to uniform
//! behavior.

use dex_core::BehaviorOracle;
use dex_core::{generate_examples, GenerationConfig};
use dex_pool::build_synthetic_pool;
use dex_universe::{build, SpecOracle};
use std::collections::BTreeMap;

/// For every multi-class module: examples that land in *different* classes
/// must produce structurally different outputs relative to their inputs —
/// otherwise the spec would be claiming distinctions the black box does not
/// exhibit, and the paper's completeness metric would be vacuous.
#[test]
fn distinct_classes_exhibit_distinct_behavior() {
    let u = build();
    let pool = build_synthetic_pool(&u.ontology, 6, 31);
    let config = GenerationConfig::default();

    // Modules where different classes map to different *output derivations*
    // for the same kind of probing. We check: grouping the generated
    // examples by oracle class, at least two groups exist for multi-class
    // modules whose reachable classes exceed one.
    let mut multi_class_total = 0;
    let mut multi_class_observed = 0;
    for id in u.available_ids() {
        let spec = &u.specs[&id];
        if spec.classes.len() < 2 {
            continue;
        }
        multi_class_total += 1;
        let module = u.catalog.get(&id).unwrap();
        let report = generate_examples(module.as_ref(), &u.ontology, &pool, &config).unwrap();
        let oracle = SpecOracle::new(spec);
        let mut by_class: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, example) in report.examples.iter().enumerate() {
            if let Some(class) = oracle.class_of(example) {
                by_class.entry(class).or_default().push(i);
            }
        }
        if by_class.len() >= 2 {
            multi_class_observed += 1;
        }
    }
    // Every multi-class module exhibits at least two classes through its
    // partition-driven examples (the universe plants no vacuous classes
    // reachable only outside the pool's domain — unreachable classes are
    // *extra* classes on top of ≥2 reachable ones).
    assert_eq!(multi_class_total, 49, "multi-class module census changed");
    assert_eq!(multi_class_observed, multi_class_total);
}

/// Specs never claim classes beyond what first-match can reach: for every
/// module, every example classifies into *some* class (specs are total
/// over the module's accepted domain).
#[test]
fn specs_are_total_over_generated_examples() {
    let u = build();
    let pool = build_synthetic_pool(&u.ontology, 6, 31);
    let config = GenerationConfig::default();
    for id in u.available_ids() {
        let module = u.catalog.get(&id).unwrap();
        let report = generate_examples(module.as_ref(), &u.ontology, &pool, &config).unwrap();
        let oracle = SpecOracle::new(&u.specs[&id]);
        for example in report.examples.iter() {
            assert!(
                oracle.class_of(example).is_some(),
                "{id}: example {example} matches no behavior class"
            );
        }
    }
}

/// Every module's task description is non-empty and distinct within its
/// interface signature — the ground truth the §5 study scores against.
#[test]
fn task_descriptions_exist() {
    let u = build();
    for (id, spec) in &u.specs {
        assert!(!spec.task.trim().is_empty(), "{id} has no task description");
        for class in &spec.classes {
            assert!(!class.name.trim().is_empty(), "{id} has an unnamed class");
        }
    }
}

/// The universe's module names mimic real registries: non-empty and unique.
#[test]
fn module_names_are_unique() {
    let u = build();
    let mut seen = std::collections::HashSet::new();
    for id in u.catalog.available_ids() {
        let d = u.catalog.descriptor(&id).unwrap();
        assert!(!d.name.is_empty());
        assert!(
            seen.insert(d.name.clone()),
            "duplicate module name {}",
            d.name
        );
    }
}
