//! Redundancy detection over data examples — the paper's §8 future work
//! ("we envisage examining the use of record linkage techniques … for
//! detecting redundant data examples").
//!
//! Two data examples are redundant when they describe the same class of
//! behavior (§4.2). Without ground-truth specs, redundancy must be
//! *suspected* from the examples themselves. Following the record-linkage
//! framing, we compare the **outputs** of two examples with a similarity
//! made of two signals:
//!
//! 1. **concept agreement** — both outputs classify to the same most
//!    specific concept (same kind of artifact);
//! 2. **shape similarity** — Jaccard similarity over the outputs' token
//!    *shapes* (letters → `A`, digits → `9`, other kept), which captures
//!    "same format, different payload" — the signature of over-partitioned
//!    inputs routed through identical behavior.
//!
//! Payload-identity is deliberately ignored: a retrieval module returns a
//! *different* record for every accession while performing the *same*
//! task, so raw value equality would find nothing.

use crate::coverage::ValueClassifier;
use crate::example::{DataExample, ExampleSet};
use dex_values::Value;
use std::collections::HashSet;

/// Tuning for redundancy suspicion.
#[derive(Debug, Clone)]
pub struct DedupeConfig {
    /// Minimum shape similarity for two same-concept outputs to be
    /// suspected redundant.
    pub shape_threshold: f64,
}

impl Default for DedupeConfig {
    fn default() -> Self {
        DedupeConfig {
            shape_threshold: 0.7,
        }
    }
}

/// The token-shape of a value: letters collapse to `A`, digits to `9`.
/// `"P12345"` and `"Q99999"` share the shape `A99999`… almost — `P1…` has
/// shape `A99999` and so does `Q9…`, which is the point.
fn shape(value: &Value) -> String {
    let text = value.to_string();
    text.chars()
        .map(|c| {
            if c.is_ascii_alphabetic() {
                'A'
            } else if c.is_ascii_digit() {
                '9'
            } else {
                c
            }
        })
        .collect()
}

/// Jaccard similarity over 3-gram shingles of the shapes.
fn shape_similarity(a: &Value, b: &Value) -> f64 {
    let grams = |s: &str| -> HashSet<String> {
        let chars: Vec<char> = s.chars().collect();
        if chars.len() < 3 {
            return std::iter::once(s.to_string()).collect();
        }
        chars.windows(3).map(|w| w.iter().collect()).collect()
    };
    let (sa, sb) = (shape(a), shape(b));
    let (ga, gb) = (grams(&sa), grams(&sb));
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    let inter = ga.intersection(&gb).count() as f64;
    let union = ga.union(&gb).count() as f64;
    inter / union
}

/// Whether two examples are suspected to describe the same behavior class.
pub fn suspected_redundant(
    a: &DataExample,
    b: &DataExample,
    classifier: ValueClassifier,
    config: &DedupeConfig,
) -> bool {
    if a.outputs.len() != b.outputs.len() {
        return false;
    }
    a.outputs.iter().zip(&b.outputs).all(|(x, y)| {
        classifier(&x.value) == classifier(&y.value)
            && shape_similarity(&x.value, &y.value) >= config.shape_threshold
    })
}

/// Report of a redundancy scan.
#[derive(Debug, Clone)]
pub struct DedupeReport {
    /// Index pairs `(kept, duplicate)` suspected redundant.
    pub suspected_pairs: Vec<(usize, usize)>,
    /// The pruned example set: the first representative of every suspected
    /// cluster survives.
    pub pruned: ExampleSet,
}

/// Scans an example set, greedily clustering suspected-redundant examples
/// and keeping each cluster's first representative.
pub fn detect_redundant(
    examples: &ExampleSet,
    classifier: ValueClassifier,
    config: &DedupeConfig,
) -> DedupeReport {
    let mut representatives: Vec<usize> = Vec::new();
    let mut suspected_pairs: Vec<(usize, usize)> = Vec::new();
    let mut pruned = ExampleSet::new(examples.module.clone());

    for (i, example) in examples.examples.iter().enumerate() {
        match representatives
            .iter()
            .find(|&&r| suspected_redundant(&examples.examples[r], example, classifier, config))
        {
            Some(&r) => suspected_pairs.push((r, i)),
            None => {
                representatives.push(i);
                pruned.examples.push(example.clone());
            }
        }
    }
    DedupeReport {
        suspected_pairs,
        pruned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::Binding;
    use dex_values::classify::classify_concept;

    fn example(output: &str) -> DataExample {
        DataExample::new(
            vec![Binding::new("in", Value::text("x"))],
            vec![Binding::new("out", Value::text(output))],
            vec!["C".into()],
        )
    }

    #[test]
    fn same_syntax_different_payload_is_redundant() {
        let a = example("GO:0008150");
        let b = example("GO:0001234");
        assert!(suspected_redundant(
            &a,
            &b,
            classify_concept,
            &DedupeConfig::default()
        ));
    }

    #[test]
    fn different_concepts_are_not_redundant() {
        let a = example("GO:0008150"); // GO term
        let b = example("ACGTACGTAAA"); // DNA
        assert!(!suspected_redundant(
            &a,
            &b,
            classify_concept,
            &DedupeConfig::default()
        ));
    }

    #[test]
    fn pruning_keeps_one_per_cluster() {
        let mut set = ExampleSet::new("m".into());
        set.examples.push(example("GO:0008150"));
        set.examples.push(example("GO:0001234"));
        set.examples.push(example("ACGTACGTAAA"));
        set.examples.push(example("GO:0009999"));
        let report = detect_redundant(&set, classify_concept, &DedupeConfig::default());
        assert_eq!(report.pruned.len(), 2);
        assert_eq!(report.suspected_pairs, vec![(0, 1), (0, 3)]);
    }

    #[test]
    fn empty_set_is_trivially_clean() {
        let set = ExampleSet::new("m".into());
        let report = detect_redundant(&set, classify_concept, &DedupeConfig::default());
        assert!(report.suspected_pairs.is_empty());
        assert!(report.pruned.is_empty());
    }

    #[test]
    fn shape_similarity_basics() {
        let a = Value::text("P12345");
        let b = Value::text("Q99999");
        assert!(shape_similarity(&a, &b) > 0.99);
        let c = Value::text("path:map00010");
        assert!(shape_similarity(&a, &c) < 0.5);
        assert_eq!(shape_similarity(&Value::text(""), &Value::text("")), 1.0);
    }

    /// On the synthetic universe, pruning an over-partitioned module's
    /// examples recovers (approximately) its true class count, and pruning
    /// a concise module's examples removes nothing.
    #[test]
    fn pruning_approximates_true_classes_on_the_universe() {
        use crate::generate::{generate_examples, GenerationConfig};
        let universe = dex_universe::build();
        let pool = dex_pool::build_synthetic_pool(&universe.ontology, 4, 3);
        let config = GenerationConfig::default();

        // record_to_fasta_ebi: 6 examples, 1 true class.
        let m = universe
            .catalog
            .get(&"ft:record_to_fasta_ebi".into())
            .unwrap();
        let report = generate_examples(m.as_ref(), &universe.ontology, &pool, &config).unwrap();
        assert_eq!(report.examples.len(), 6);
        let deduped =
            detect_redundant(&report.examples, classify_concept, &DedupeConfig::default());
        assert!(
            deduped.pruned.len() <= 2,
            "over-partitioned module kept {} examples",
            deduped.pruned.len()
        );

        // A concise retrieval module: 1 example, nothing to prune.
        let m = universe
            .catalog
            .get(&"dr:get_uniprot_record".into())
            .unwrap();
        let report = generate_examples(m.as_ref(), &universe.ontology, &pool, &config).unwrap();
        let deduped =
            detect_redundant(&report.examples, classify_concept, &DedupeConfig::default());
        assert_eq!(deduped.pruned.len(), report.examples.len());
    }
}
