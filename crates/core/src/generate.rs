//! The data-example generation heuristic (paper §3.2): partition → select →
//! invoke → construct — reorganized as **plan, execute, assemble**.
//!
//! Module invocation is the dominant cost of the paper's setting (remote,
//! metered SOAP/REST services), so the generator no longer interleaves pool
//! lookups and invocations combination by combination. Instead it:
//!
//! 1. resolves every `(input, partition)`'s candidate values **once**
//!    ([`resolve_candidates`] — the pool is probed per partition, not per
//!    combination per attempt);
//! 2. plans each combination's attempt vectors up front, dropping retry
//!    attempts whose value vector is identical to an earlier attempt of the
//!    same combination (shallow pools used to make retries re-invoke the
//!    exact same inputs — pure waste);
//! 3. executes the planned invocations in retry waves — attempt 0 for every
//!    combination, then attempt 1 for the still-unresolved ones, … — so each
//!    wave's *distinct* vectors can fan out over scoped threads
//!    ([`GenerationConfig::invoke_threads`]) and route through a shared
//!    [`InvocationCache`] ([`generate_examples_cached`]);
//! 4. assembles the report from the memoized outcomes in combination order,
//!    so the result is byte-identical to the sequential reference path
//!    ([`generate_examples_sequential`]) regardless of thread count or cache
//!    state.

use crate::error::GenerationError;
use crate::example::{Binding, DataExample, ExampleSet};
use crate::partition::{input_partition_plan, PartitionPlan};
use dex_modules::{
    invoke_all_retrying, BlackBox, InvocationCache, InvocationOutcome, Retrier, RetryPolicy,
};
use dex_ontology::Ontology;
use dex_pool::InstancePool;
use dex_values::Value;
use std::sync::Arc;

/// Tuning knobs for the generator.
#[derive(Debug, Clone)]
pub struct GenerationConfig {
    /// Hard cap on the cartesian product of input partitions; exceeding it
    /// aborts generation with [`GenerationError::TooManyCombinations`]
    /// rather than hammering a (in the paper's world: remote, metered)
    /// module with thousands of invocations.
    pub max_combinations: usize,
    /// How many alternative value selections to try for a combination whose
    /// invocation is rejected, before recording the combination as failed.
    /// Each retry advances every input's pool pick by one.
    pub retries_per_combination: usize,
    /// Base offset into each partition's realization list. `0` picks the
    /// first conforming instance; the matcher uses identical offsets for two
    /// modules to obtain *aligned* examples (§6: "we choose the same values
    /// for both i and i′").
    pub value_offset: usize,
    /// Opt-in invocation parallelism: each retry wave's distinct invocations
    /// fan out over up to this many scoped threads (`BlackBox` is
    /// `Send + Sync`). `0` and `1` mean sequential execution. The report is
    /// identical for every thread count — only wall-clock changes.
    pub invoke_threads: usize,
    /// How to retry *transient* invocation failures (`Unavailable`/`Fault`)
    /// within one planned attempt. Distinct from
    /// [`retries_per_combination`](GenerationConfig::retries_per_combination),
    /// which tries *different value vectors* after a deterministic rejection;
    /// this re-attempts the *same* vector when the failure was
    /// state-dependent. Defaults to [`RetryPolicy::none`].
    pub retry: RetryPolicy,
}

impl Default for GenerationConfig {
    fn default() -> Self {
        GenerationConfig {
            max_combinations: 4096,
            retries_per_combination: 3,
            value_offset: 0,
            invoke_threads: 1,
            retry: RetryPolicy::none(),
        }
    }
}

/// Everything the generator learned about a module.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationReport {
    /// The constructed data examples, `∆(m)`.
    pub examples: ExampleSet,
    /// The partition plan the examples were generated against.
    pub plan: PartitionPlan,
    /// Input partitions (input index, concept name) for which the pool held
    /// no structurally compatible realization.
    pub unvalued_partitions: Vec<(usize, String)>,
    /// Partition combinations whose every attempted invocation failed
    /// (concept names per input).
    pub failed_combinations: Vec<Vec<String>>,
    /// Planned invocation attempts consumed (duplicate retry vectors are
    /// skipped, not counted — they cannot change a deterministic module's
    /// answer). When a shared [`InvocationCache`] is in play the number of
    /// *actual* module invocations can be lower still; see the cache's
    /// [`stats`](InvocationCache::stats).
    pub invocations: usize,
    /// Attempts whose outcome was still a *transient* error after the retry
    /// policy gave up — state-dependent failures the run degraded through
    /// rather than aborting. `0` whenever every injected fault was retried
    /// to its true outcome (and always `0` on a healthy module population).
    pub transient_failures: usize,
}

impl GenerationReport {
    /// Fraction of input partitions covered by at least one example,
    /// in `[0, 1]`; `1.0` for a module with no partitions.
    pub fn input_partition_coverage(&self, ontology: &Ontology) -> f64 {
        let total = self.plan.partition_count();
        if total == 0 {
            return 1.0;
        }
        // Keyed by (input, ConceptId): ids are Copy, so counting coverage
        // allocates nothing per example.
        let mut covered = std::collections::HashSet::new();
        for example in self.examples.iter() {
            for (input_idx, concept) in example.input_partitions.iter().enumerate() {
                if let Some(id) = ontology.id(concept) {
                    covered.insert((input_idx, id));
                }
            }
        }
        covered.len() as f64 / total as f64
    }
}

/// Candidate values for one `(input, partition)` pair, resolved from the
/// pool exactly once per generation.
///
/// `picks[a]` is the value attempt `a` feeds this input, after the fallback
/// chain (requested depth → base offset → first pick) — `None` for every
/// attempt exactly when the pool holds no structurally compatible
/// realization at all.
struct ResolvedPartition<'p> {
    concept: String,
    picks: Vec<Option<&'p Value>>,
}

/// Phase 2, hoisted: resolve every `(input, partition)`'s candidates once.
///
/// The legacy generator probed `get_instance` for every partition in phase 2
/// and then repeated the identical lookups (plus two `or_else` fallbacks per
/// input per attempt) inside the phase-3 combination loop. Here each
/// `(input, partition)` costs `retries + 2` pool lookups total, shared by
/// every combination that references it, and the "unvalued" probe is the
/// same lookup as the attempt-0 fallback.
fn resolve_candidates<'p>(
    plan: &PartitionPlan,
    descriptor: &dex_modules::ModuleDescriptor,
    ontology: &Ontology,
    pool: &'p InstancePool,
    config: &GenerationConfig,
) -> (Vec<Vec<ResolvedPartition<'p>>>, Vec<(usize, String)>) {
    let attempts = config.retries_per_combination + 1;
    let mut resolved: Vec<Vec<ResolvedPartition<'p>>> = Vec::with_capacity(plan.per_input.len());
    let mut unvalued: Vec<(usize, String)> = Vec::new();
    for (i, parts) in plan.per_input.iter().enumerate() {
        let structural = &descriptor.inputs[i].structural;
        let mut per_partition = Vec::with_capacity(parts.len());
        for &p in parts {
            let concept = ontology.concept_name(p);
            let first = pool.get_instance(concept, structural, 0).map(|x| &x.value);
            if first.is_none() {
                unvalued.push((i, concept.to_string()));
            }
            let base = if config.value_offset == 0 {
                first
            } else {
                pool.get_instance(concept, structural, config.value_offset)
                    .map(|x| &x.value)
                    .or(first)
            };
            let picks = (0..attempts)
                .map(|attempt| {
                    first?;
                    if attempt == 0 {
                        // skip == value_offset: exactly the `base` lookup.
                        return base;
                    }
                    pool.get_instance(concept, structural, config.value_offset + attempt)
                        .map(|x| &x.value)
                        .or(base)
                })
                .collect();
            per_partition.push(ResolvedPartition {
                concept: concept.to_string(),
                picks,
            });
        }
        resolved.push(per_partition);
    }
    (resolved, unvalued)
}

/// A stable digest of everything generation reads from the ontology and the
/// pool for one module: the partition plan (concept names per input, in
/// plan order) and every resolved pool pick per `(input, partition,
/// attempt)` — i.e. the full output of [`resolve_candidates`], computed by
/// the very same code path.
///
/// Because the report of [`generate_examples`] is a pure function of
/// (module behavior, plan, resolved picks, config), an unchanged signature
/// guarantees an unchanged report for an unchanged module — the staleness
/// check the incremental layer (`crate::delta`) uses to decide whether a
/// pool or ontology delta actually dirties a module, instead of assuming
/// every delta touching a referenced concept does. Total: planning errors
/// are folded into the digest rather than returned, so the signature is
/// defined for every module.
pub fn generation_signature(
    descriptor: &dex_modules::ModuleDescriptor,
    ontology: &Ontology,
    pool: &InstancePool,
    config: &GenerationConfig,
) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x100_0000_01b3;
    fn fold(hash: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *hash ^= u64::from(b);
            *hash = hash.wrapping_mul(FNV_PRIME);
        }
        // Length-prefix framing so concatenations cannot collide.
        *hash ^= bytes.len() as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }

    let mut hash = FNV_OFFSET;
    let plan = match input_partition_plan(descriptor, ontology) {
        Ok(plan) => plan,
        Err(e) => {
            fold(&mut hash, b"plan-error");
            fold(&mut hash, e.to_string().as_bytes());
            return hash;
        }
    };
    if plan.combination_count() > config.max_combinations {
        // Generation would abort before touching the pool; the cap and the
        // combination count are all it depends on.
        fold(&mut hash, b"too-many-combinations");
        fold(&mut hash, &plan.combination_count().to_le_bytes());
        fold(&mut hash, &config.max_combinations.to_le_bytes());
        return hash;
    }
    let (resolved, unvalued) = resolve_candidates(&plan, descriptor, ontology, pool, config);
    for per_input in &resolved {
        fold(&mut hash, b"input");
        for partition in per_input {
            fold(&mut hash, partition.concept.as_bytes());
            for pick in &partition.picks {
                match pick {
                    Some(value) => fold(&mut hash, format!("{value:?}").as_bytes()),
                    None => fold(&mut hash, b"\0none"),
                }
            }
        }
    }
    for (input, concept) in &unvalued {
        fold(&mut hash, b"unvalued");
        fold(&mut hash, &input.to_le_bytes());
        fold(&mut hash, concept.as_bytes());
    }
    hash
}

/// One combination's planned invocations: which attempts actually need an
/// invocation (duplicate vectors dropped), with borrowed picks per input.
struct PlannedCombo<'p> {
    /// Partition index per input (combination coordinates).
    combo: Vec<usize>,
    /// Concept names per input, in input order.
    concept_names: Vec<String>,
    /// Deduplicated attempt vectors, in attempt order. Empty when some input
    /// partition has no realization (the combination can never be fed).
    attempts: Vec<Vec<&'p Value>>,
    /// Next unconsumed entry of `attempts`.
    next: usize,
    /// Planned attempts consumed so far (the report's `invocations` share).
    consumed: usize,
    /// The winning attempt's outcome, once one terminates normally.
    success: Option<(Vec<&'p Value>, Arc<InvocationOutcome>)>,
}

impl<'p> PlannedCombo<'p> {
    fn is_unresolved(&self) -> bool {
        self.success.is_none() && self.next < self.attempts.len()
    }
}

/// The whole generation's invocation plan: every `(combination, attempt)`
/// candidate vector, enumerated up front.
fn plan_invocations<'p>(
    plan: &PartitionPlan,
    resolved: &'p [Vec<ResolvedPartition<'p>>],
    ontology: &Ontology,
) -> Vec<PlannedCombo<'p>> {
    let _ = ontology;
    let mut combos = Vec::new();
    for combo in plan.combinations() {
        let concept_names: Vec<String> = combo
            .iter()
            .enumerate()
            .map(|(i, &pi)| resolved[i][pi].concept.clone())
            .collect();
        let complete = combo
            .iter()
            .enumerate()
            .all(|(i, &pi)| resolved[i][pi].picks[0].is_some());
        let mut attempts: Vec<Vec<&'p Value>> = Vec::new();
        if complete {
            let total = resolved
                .first()
                .and_then(|r| r.first())
                .map_or(1, |r| r.picks.len());
            for a in 0..total {
                let vector: Vec<&'p Value> = combo
                    .iter()
                    .enumerate()
                    .map(|(i, &pi)| resolved[i][pi].picks[a].expect("complete combination"))
                    .collect();
                // Retry dedup: a vector identical (same pool instances) to an
                // earlier attempt of this combination is skipped — the module
                // is deterministic, so re-invoking cannot change the outcome.
                let duplicate = attempts
                    .iter()
                    .any(|prev| prev.iter().zip(&vector).all(|(a, b)| std::ptr::eq(*a, *b)));
                if !duplicate {
                    attempts.push(vector);
                }
            }
        }
        combos.push(PlannedCombo {
            combo,
            concept_names,
            attempts,
            next: 0,
            consumed: 0,
            success: None,
        });
    }
    combos
}

/// Runs the full §3.2 procedure for one module:
///
/// 1. partition the domain of every input using its semantic annotation;
/// 2. for each partition select a structurally compatible realization from
///    the annotated pool;
/// 3. invoke the module on every combination of selected values;
/// 4. keep combinations that terminate normally as data examples.
///
/// Deterministic: same module, ontology, pool and config always produce the
/// same report — including under [`GenerationConfig::invoke_threads`]
/// parallelism, and byte-identical to [`generate_examples_sequential`].
pub fn generate_examples(
    module: &dyn BlackBox,
    ontology: &Ontology,
    pool: &InstancePool,
    config: &GenerationConfig,
) -> Result<GenerationReport, GenerationError> {
    generate_with(module, ontology, pool, config, None, None)
}

/// [`generate_examples`] through a shared [`InvocationCache`]: every distinct
/// `(module, input vector)` across all callers of the cache — other
/// generations, other value offsets, matcher replays, repair verification —
/// is invoked at most once process-wide. The report is byte-identical to the
/// uncached path; only the number of *actual* module invocations drops.
pub fn generate_examples_cached(
    module: &dyn BlackBox,
    ontology: &Ontology,
    pool: &InstancePool,
    config: &GenerationConfig,
    cache: &InvocationCache,
) -> Result<GenerationReport, GenerationError> {
    generate_with(module, ontology, pool, config, Some(cache), None)
}

/// [`generate_examples_cached`] with an explicit, shared [`Retrier`]: every
/// transient invocation failure is re-attempted under the retrier's policy
/// (and against its run-wide budget) before an attempt is recorded as
/// failed. Callers that share one retrier across many generations — the
/// experiment fleet, a `MatchSession` — get run-global retry accounting.
pub fn generate_examples_retrying(
    module: &dyn BlackBox,
    ontology: &Ontology,
    pool: &InstancePool,
    config: &GenerationConfig,
    cache: &InvocationCache,
    retrier: &Retrier,
) -> Result<GenerationReport, GenerationError> {
    generate_with(module, ontology, pool, config, Some(cache), Some(retrier))
}

fn generate_with(
    module: &dyn BlackBox,
    ontology: &Ontology,
    pool: &InstancePool,
    config: &GenerationConfig,
    cache: Option<&InvocationCache>,
    retrier: Option<&Retrier>,
) -> Result<GenerationReport, GenerationError> {
    let _timer = {
        static MODULE_NS: std::sync::OnceLock<dex_telemetry::Histo> = std::sync::OnceLock::new();
        MODULE_NS
            .get_or_init(|| dex_telemetry::histogram("dex.generate.module_ns"))
            .start()
    };
    let _span = dex_telemetry::span("generate.module");
    let descriptor = module.descriptor();
    let plan = input_partition_plan(descriptor, ontology)?;

    let combos = plan.combination_count();
    if combos > config.max_combinations {
        return Err(GenerationError::TooManyCombinations {
            combinations: combos,
            cap: config.max_combinations,
        });
    }

    let (resolved, unvalued) = resolve_candidates(&plan, descriptor, ontology, pool, config);
    let mut planned = plan_invocations(&plan, &resolved, ontology);

    // One invocation wave per planned attempt; transient-retry policy comes
    // either from the caller's shared retrier or from the config.
    let local_retrier;
    let retrier = match retrier {
        Some(shared) => shared,
        None => {
            local_retrier = Retrier::new(config.retry);
            &local_retrier
        }
    };
    let mut transient_failures = 0usize;

    // Execute in retry waves: wave `a` invokes each still-unresolved
    // combination's next planned vector. This invokes exactly the vectors
    // the sequential path would (attempts past the first success are never
    // materialized), while giving each wave a batch that can fan out over
    // threads and a shared cache.
    for _wave in 0..=config.retries_per_combination {
        let pending: Vec<usize> = planned
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_unresolved())
            .map(|(idx, _)| idx)
            .collect();
        if pending.is_empty() {
            break;
        }
        let vectors: Vec<Vec<Value>> = pending
            .iter()
            .map(|&idx| {
                planned[idx].attempts[planned[idx].next]
                    .iter()
                    .map(|&v| v.clone())
                    .collect()
            })
            .collect();
        let outcomes = invoke_all_retrying(module, &vectors, cache, retrier, config.invoke_threads);
        for (&idx, outcome) in pending.iter().zip(outcomes) {
            let combo = &mut planned[idx];
            combo.consumed += 1;
            if outcome.is_ok() {
                let winning = combo.attempts[combo.next].clone();
                combo.success = Some((winning, outcome));
            } else {
                if matches!(outcome.as_ref(), Err(e) if e.is_transient()) {
                    transient_failures += 1;
                }
                combo.next += 1;
            }
        }
    }

    // Telemetry-only coverage tracking, kept on the combination indices so
    // reporting needs no ontology lookups after the loop. `covered_flags`
    // is indexed by `input_offsets[input] + partition index`.
    let telemetry_on = dex_telemetry::is_enabled();
    let mut input_offsets: Vec<usize> = Vec::new();
    let mut covered_flags: Vec<bool> = Vec::new();
    if telemetry_on {
        let mut offset = 0;
        for parts in &plan.per_input {
            input_offsets.push(offset);
            offset += parts.len();
        }
        covered_flags = vec![false; offset];
    }

    // Assemble in combination order — identical to the sequential loop.
    let mut examples = ExampleSet::new(descriptor.id.clone());
    let mut failed: Vec<Vec<String>> = Vec::new();
    let mut invocations = 0usize;
    for combo in planned {
        invocations += combo.consumed;
        match combo.success {
            Some((picks, outcome)) => {
                if telemetry_on {
                    for (i, &pi) in combo.combo.iter().enumerate() {
                        covered_flags[input_offsets[i] + pi] = true;
                    }
                }
                let outputs = outcome.as_ref().as_ref().expect("successful outcome");
                let inputs = descriptor
                    .inputs
                    .iter()
                    .zip(picks)
                    .map(|(p, v)| Binding::new(p.name.clone(), v.clone()))
                    .collect();
                let outputs = descriptor
                    .outputs
                    .iter()
                    .zip(outputs)
                    .map(|(p, v)| Binding::new(p.name.clone(), v.clone()))
                    .collect();
                examples
                    .examples
                    .push(DataExample::new(inputs, outputs, combo.concept_names));
            }
            None => failed.push(combo.concept_names),
        }
    }

    let report = GenerationReport {
        examples,
        plan,
        unvalued_partitions: unvalued,
        failed_combinations: failed,
        invocations,
        transient_failures,
    };
    record_generation_telemetry(&report, telemetry_on, &covered_flags);
    Ok(report)
}

/// The legacy combination-by-combination execution order, kept as the
/// reference implementation: no waves, no cache, no cross-combination
/// batching — each combination's planned attempts are invoked inline until
/// one terminates normally.
///
/// The planned/cached paths are property-tested to produce byte-identical
/// reports to this function (see `tests/generation_equivalence.rs`); it is
/// also the uncached baseline `bench_invocation` measures against.
pub fn generate_examples_sequential(
    module: &dyn BlackBox,
    ontology: &Ontology,
    pool: &InstancePool,
    config: &GenerationConfig,
) -> Result<GenerationReport, GenerationError> {
    let descriptor = module.descriptor();
    let plan = input_partition_plan(descriptor, ontology)?;
    let combos = plan.combination_count();
    if combos > config.max_combinations {
        return Err(GenerationError::TooManyCombinations {
            combinations: combos,
            cap: config.max_combinations,
        });
    }

    let (resolved, unvalued) = resolve_candidates(&plan, descriptor, ontology, pool, config);
    let planned = plan_invocations(&plan, &resolved, ontology);

    let telemetry_on = dex_telemetry::is_enabled();
    let mut input_offsets: Vec<usize> = Vec::new();
    let mut covered_flags: Vec<bool> = Vec::new();
    if telemetry_on {
        let mut offset = 0;
        for parts in &plan.per_input {
            input_offsets.push(offset);
            offset += parts.len();
        }
        covered_flags = vec![false; offset];
    }

    let mut examples = ExampleSet::new(descriptor.id.clone());
    let mut failed: Vec<Vec<String>> = Vec::new();
    let mut invocations = 0usize;
    let mut transient_failures = 0usize;
    'combos: for combo in planned {
        if combo.attempts.is_empty() {
            failed.push(combo.concept_names);
            continue 'combos;
        }
        let last = combo.attempts.len() - 1;
        for (attempt, picks) in combo.attempts.iter().enumerate() {
            let values: Vec<Value> = picks.iter().map(|&v| v.clone()).collect();
            invocations += 1;
            match module.invoke(&values) {
                Ok(outputs) => {
                    if telemetry_on {
                        for (i, &pi) in combo.combo.iter().enumerate() {
                            covered_flags[input_offsets[i] + pi] = true;
                        }
                    }
                    let inputs = descriptor
                        .inputs
                        .iter()
                        .zip(values)
                        .map(|(p, v)| Binding::new(p.name.clone(), v))
                        .collect();
                    let outputs = descriptor
                        .outputs
                        .iter()
                        .zip(outputs)
                        .map(|(p, v)| Binding::new(p.name.clone(), v))
                        .collect();
                    examples
                        .examples
                        .push(DataExample::new(inputs, outputs, combo.concept_names));
                    continue 'combos;
                }
                Err(e) => {
                    if e.is_transient() {
                        transient_failures += 1;
                    }
                    if attempt < last {
                        continue;
                    }
                    failed.push(combo.concept_names);
                    continue 'combos;
                }
            }
        }
    }

    let report = GenerationReport {
        examples,
        plan,
        unvalued_partitions: unvalued,
        failed_combinations: failed,
        invocations,
        transient_failures,
    };
    record_generation_telemetry(&report, telemetry_on, &covered_flags);
    Ok(report)
}

/// Folds one finished generation into the process-global counters. Gated on
/// the loop-time flag so covered/total stay consistent even if telemetry was
/// toggled mid-generation.
fn record_generation_telemetry(
    report: &GenerationReport,
    telemetry_on: bool,
    covered_flags: &[bool],
) {
    if !telemetry_on {
        return;
    }
    let counters = generate_counters();
    counters.modules.add(1);
    counters.candidates_tried.add(report.invocations as u64);
    counters.examples_accepted.add(report.examples.len() as u64);
    counters
        .failed_combinations
        .add(report.failed_combinations.len() as u64);
    counters
        .unvalued_partitions
        .add(report.unvalued_partitions.len() as u64);
    // Partition-coverage progress: fraction covered is derivable from
    // these two monotonic counters at any point of a run.
    counters
        .partitions_total
        .add(report.plan.partition_count() as u64);
    counters
        .partitions_covered
        .add(covered_flags.iter().filter(|&&c| c).count() as u64);
}

/// Generation telemetry counters, interned once per process.
struct GenerateCounters {
    modules: dex_telemetry::Counter,
    candidates_tried: dex_telemetry::Counter,
    examples_accepted: dex_telemetry::Counter,
    failed_combinations: dex_telemetry::Counter,
    unvalued_partitions: dex_telemetry::Counter,
    partitions_total: dex_telemetry::Counter,
    partitions_covered: dex_telemetry::Counter,
}

fn generate_counters() -> &'static GenerateCounters {
    static COUNTERS: std::sync::OnceLock<GenerateCounters> = std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| GenerateCounters {
        modules: dex_telemetry::counter("dex.generate.modules"),
        candidates_tried: dex_telemetry::counter("dex.generate.candidates_tried"),
        examples_accepted: dex_telemetry::counter("dex.generate.examples_accepted"),
        failed_combinations: dex_telemetry::counter("dex.generate.failed_combinations"),
        unvalued_partitions: dex_telemetry::counter("dex.generate.unvalued_partitions"),
        partitions_total: dex_telemetry::counter("dex.generate.partitions_total"),
        partitions_covered: dex_telemetry::counter("dex.generate.partitions_covered"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_modules::{FnModule, InvocationError, ModuleDescriptor, ModuleKind, Parameter};
    use dex_ontology::mygrid;
    use dex_pool::{build_synthetic_pool, AnnotatedInstance};
    use dex_values::formats::sequence::{classify, SequenceKind};
    use dex_values::StructuralType;

    fn fixture() -> (Ontology, InstancePool) {
        let onto = mygrid::ontology();
        let pool = build_synthetic_pool(&onto, 5, 11);
        (onto, pool)
    }

    /// A module that reports the kind of the sequence it was given.
    fn seq_kind_module() -> FnModule {
        FnModule::new(
            ModuleDescriptor::new(
                "op:seqkind",
                "SeqKind",
                ModuleKind::LocalProgram,
                vec![Parameter::required(
                    "seq",
                    StructuralType::Text,
                    "BiologicalSequence",
                )],
                vec![Parameter::required(
                    "kind",
                    StructuralType::Text,
                    "Document",
                )],
            ),
            |inputs| {
                let s = inputs[0].as_text().expect("validated text");
                let kind =
                    classify(s).ok_or_else(|| InvocationError::rejected("not a sequence"))?;
                Ok(vec![Value::text(format!("{kind:?}"))])
            },
        )
    }

    #[test]
    fn generates_one_example_per_partition() {
        let (onto, pool) = fixture();
        let m = seq_kind_module();
        let report = generate_examples(&m, &onto, &pool, &GenerationConfig::default()).unwrap();
        assert_eq!(report.examples.len(), 4, "one per partition");
        assert!(report.failed_combinations.is_empty());
        assert!(report.unvalued_partitions.is_empty());
        assert_eq!(report.input_partition_coverage(&onto), 1.0);
        // Each example records the partition it covers.
        let partitions: Vec<&str> = report
            .examples
            .iter()
            .map(|e| e.input_partitions[0].as_str())
            .collect();
        assert_eq!(
            partitions,
            vec![
                "BiologicalSequence",
                "DNASequence",
                "RNASequence",
                "ProteinSequence"
            ]
        );
    }

    #[test]
    fn outputs_reflect_module_behavior() {
        let (onto, pool) = fixture();
        let m = seq_kind_module();
        let report = generate_examples(&m, &onto, &pool, &GenerationConfig::default()).unwrap();
        let by_partition: std::collections::HashMap<&str, &str> = report
            .examples
            .iter()
            .map(|e| {
                (
                    e.input_partitions[0].as_str(),
                    e.outputs[0].value.as_text().unwrap(),
                )
            })
            .collect();
        assert_eq!(by_partition["DNASequence"], "Dna");
        assert_eq!(by_partition["ProteinSequence"], "Protein");
        assert_eq!(by_partition["BiologicalSequence"], "Generic");
    }

    /// A module that rejects protein sequences: the protein partition must
    /// appear in `failed_combinations`, not as an example.
    #[test]
    fn rejected_combinations_are_recorded_not_exampled() {
        let (onto, pool) = fixture();
        let m = FnModule::new(
            ModuleDescriptor::new(
                "op:nuconly",
                "NucleotideOnly",
                ModuleKind::RestService,
                vec![Parameter::required(
                    "seq",
                    StructuralType::Text,
                    "BiologicalSequence",
                )],
                vec![Parameter::required("out", StructuralType::Text, "Document")],
            ),
            |inputs| {
                let s = inputs[0].as_text().unwrap();
                match classify(s) {
                    Some(SequenceKind::Protein) | None => {
                        Err(InvocationError::rejected("nucleotides only"))
                    }
                    Some(_) => Ok(vec![Value::text("ok")]),
                }
            },
        );
        let report = generate_examples(&m, &onto, &pool, &GenerationConfig::default()).unwrap();
        assert_eq!(report.examples.len(), 3);
        assert_eq!(report.failed_combinations.len(), 1);
        assert_eq!(report.failed_combinations[0], vec!["ProteinSequence"]);
        // Retries were attempted for the failing combination.
        assert!(report.invocations > 4);
    }

    /// Satellite regression: with a depth-1 pool every retry re-selects the
    /// same instance, so only the first attempt may be invoked (and counted).
    #[test]
    fn duplicate_retry_vectors_are_skipped_not_reinvoked() {
        let onto = mygrid::ontology();
        let mut pool = InstancePool::new("depth1");
        // Exactly one realization for the one partition in play.
        pool.add(AnnotatedInstance::synthetic(
            Value::text("not-a-sequence!"),
            "BiologicalSequence",
        ));
        let invoked = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let seen = std::sync::Arc::clone(&invoked);
        let m = FnModule::new(
            ModuleDescriptor::new(
                "op:reject",
                "RejectAll",
                ModuleKind::RestService,
                vec![Parameter::required(
                    "seq",
                    StructuralType::Text,
                    "BiologicalSequence",
                )],
                vec![Parameter::required("out", StructuralType::Text, "Document")],
            ),
            move |_| {
                seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Err(InvocationError::rejected("always"))
            },
        );
        let config = GenerationConfig {
            retries_per_combination: 3,
            ..GenerationConfig::default()
        };
        // Restrict to the root partition: the synthetic ontology gives
        // BiologicalSequence four partitions, three of which are unvalued
        // with this pool.
        let report = generate_examples(&m, &onto, &pool, &config).unwrap();
        let valued_combos = 1;
        assert_eq!(
            report.invocations, valued_combos,
            "duplicate retries must not be re-invoked or counted"
        );
        assert_eq!(
            invoked.load(std::sync::atomic::Ordering::Relaxed),
            valued_combos,
            "the module saw exactly one invocation"
        );
        // The sequential reference path agrees.
        let sequential = generate_examples_sequential(&m, &onto, &pool, &config).unwrap();
        assert_eq!(sequential.invocations, report.invocations);
    }

    #[test]
    fn combination_cap_enforced() {
        let (onto, pool) = fixture();
        let m = seq_kind_module();
        let config = GenerationConfig {
            max_combinations: 2,
            ..GenerationConfig::default()
        };
        assert!(matches!(
            generate_examples(&m, &onto, &pool, &config),
            Err(GenerationError::TooManyCombinations {
                combinations: 4,
                cap: 2
            })
        ));
    }

    #[test]
    fn generation_is_deterministic() {
        let (onto, pool) = fixture();
        let m = seq_kind_module();
        let a = generate_examples(&m, &onto, &pool, &GenerationConfig::default()).unwrap();
        let b = generate_examples(&m, &onto, &pool, &GenerationConfig::default()).unwrap();
        assert_eq!(a.examples, b.examples);
    }

    #[test]
    fn value_offset_changes_selected_values() {
        let (onto, pool) = fixture();
        let m = seq_kind_module();
        let a = generate_examples(&m, &onto, &pool, &GenerationConfig::default()).unwrap();
        let b = generate_examples(
            &m,
            &onto,
            &pool,
            &GenerationConfig {
                value_offset: 1,
                ..GenerationConfig::default()
            },
        )
        .unwrap();
        assert_eq!(a.examples.len(), b.examples.len());
        assert_ne!(
            a.examples.examples[0].inputs[0].value,
            b.examples.examples[0].inputs[0].value
        );
    }

    #[test]
    fn parallel_invocation_produces_identical_reports() {
        let (onto, pool) = fixture();
        let m = seq_kind_module();
        let serial = generate_examples(&m, &onto, &pool, &GenerationConfig::default()).unwrap();
        let parallel = generate_examples(
            &m,
            &onto,
            &pool,
            &GenerationConfig {
                invoke_threads: 8,
                ..GenerationConfig::default()
            },
        )
        .unwrap();
        assert_eq!(serial.examples, parallel.examples);
        assert_eq!(serial.failed_combinations, parallel.failed_combinations);
        assert_eq!(serial.invocations, parallel.invocations);
    }

    #[test]
    fn cached_generation_matches_uncached_and_hits_on_regeneration() {
        let (onto, pool) = fixture();
        let m = seq_kind_module();
        let cache = InvocationCache::new();
        let config = GenerationConfig::default();
        let plain = generate_examples(&m, &onto, &pool, &config).unwrap();
        let cached = generate_examples_cached(&m, &onto, &pool, &config, &cache).unwrap();
        assert_eq!(plain.examples, cached.examples);
        assert_eq!(plain.invocations, cached.invocations);
        let first = cache.stats();
        assert_eq!(first.hits, 0);
        assert_eq!(first.misses as usize, plain.invocations);
        // Regenerating is answered entirely from the cache.
        let again = generate_examples_cached(&m, &onto, &pool, &config, &cache).unwrap();
        assert_eq!(plain.examples, again.examples);
        let second = cache.stats();
        assert_eq!(second.misses, first.misses, "no new module invocations");
        assert_eq!(second.hits as usize, plain.invocations);
    }

    /// Multi-input module with an invalid combination (blastn × protein).
    #[test]
    fn multi_input_validity_filtering() {
        let (onto, pool) = fixture();
        let m = FnModule::new(
            ModuleDescriptor::new(
                "op:align",
                "Align",
                ModuleKind::SoapService,
                vec![
                    Parameter::required("seq", StructuralType::Text, "ProteinSequence"),
                    Parameter::required("program", StructuralType::Text, "AlgorithmName"),
                ],
                vec![Parameter::required(
                    "report",
                    StructuralType::Text,
                    "AlignmentReport",
                )],
            ),
            |inputs| {
                let program = inputs[1].as_text().unwrap();
                if program == "blastn" {
                    // Nucleotide program fed a protein: invalid combination.
                    return Err(InvocationError::rejected("blastn needs nucleotides"));
                }
                Ok(vec![Value::text(format!(
                    "PROGRAM  {program}\nDATABASE d\nQUERY    q\nHITS     0\n"
                ))])
            },
        );
        let report = generate_examples(&m, &onto, &pool, &GenerationConfig::default()).unwrap();
        // 1 × 1 partitions; whether it survives depends on the pooled
        // algorithm name value — with seed 11 and retries, a non-blastn pick
        // must eventually be found (pool holds 5 AlgorithmName values).
        assert_eq!(report.plan.combination_count(), 1);
        assert_eq!(report.examples.len() + report.failed_combinations.len(), 1);
    }

    #[test]
    fn unknown_annotation_surfaces_as_error() {
        let (onto, pool) = fixture();
        let m = FnModule::new(
            ModuleDescriptor::new(
                "op:ghost",
                "Ghost",
                ModuleKind::RestService,
                vec![Parameter::required(
                    "x",
                    StructuralType::Text,
                    "GhostConcept",
                )],
                vec![Parameter::required("y", StructuralType::Text, "Document")],
            ),
            |_| Ok(vec![Value::text("y")]),
        );
        assert!(matches!(
            generate_examples(&m, &onto, &pool, &GenerationConfig::default()),
            Err(GenerationError::UnknownConcept { .. })
        ));
    }
}
