//! The data-example generation heuristic (paper §3.2): partition → select →
//! invoke → construct.

use crate::error::GenerationError;
use crate::example::{Binding, DataExample, ExampleSet};
use crate::partition::{input_partition_plan, PartitionPlan};
use dex_modules::BlackBox;
use dex_ontology::Ontology;
use dex_pool::InstancePool;
use dex_values::Value;

/// Tuning knobs for the generator.
#[derive(Debug, Clone)]
pub struct GenerationConfig {
    /// Hard cap on the cartesian product of input partitions; exceeding it
    /// aborts generation with [`GenerationError::TooManyCombinations`]
    /// rather than hammering a (in the paper's world: remote, metered)
    /// module with thousands of invocations.
    pub max_combinations: usize,
    /// How many alternative value selections to try for a combination whose
    /// invocation is rejected, before recording the combination as failed.
    /// Each retry advances every input's pool pick by one.
    pub retries_per_combination: usize,
    /// Base offset into each partition's realization list. `0` picks the
    /// first conforming instance; the matcher uses identical offsets for two
    /// modules to obtain *aligned* examples (§6: "we choose the same values
    /// for both i and i′").
    pub value_offset: usize,
}

impl Default for GenerationConfig {
    fn default() -> Self {
        GenerationConfig {
            max_combinations: 4096,
            retries_per_combination: 3,
            value_offset: 0,
        }
    }
}

/// Everything the generator learned about a module.
#[derive(Debug, Clone)]
pub struct GenerationReport {
    /// The constructed data examples, `∆(m)`.
    pub examples: ExampleSet,
    /// The partition plan the examples were generated against.
    pub plan: PartitionPlan,
    /// Input partitions (input index, concept name) for which the pool held
    /// no structurally compatible realization.
    pub unvalued_partitions: Vec<(usize, String)>,
    /// Partition combinations whose every attempted invocation failed
    /// (concept names per input).
    pub failed_combinations: Vec<Vec<String>>,
    /// Total module invocations attempted.
    pub invocations: usize,
}

impl GenerationReport {
    /// Fraction of input partitions covered by at least one example,
    /// in `[0, 1]`; `1.0` for a module with no partitions.
    pub fn input_partition_coverage(&self, ontology: &Ontology) -> f64 {
        let total = self.plan.partition_count();
        if total == 0 {
            return 1.0;
        }
        // Keyed by (input, ConceptId): ids are Copy, so counting coverage
        // allocates nothing per example.
        let mut covered = std::collections::HashSet::new();
        for example in self.examples.iter() {
            for (input_idx, concept) in example.input_partitions.iter().enumerate() {
                if let Some(id) = ontology.id(concept) {
                    covered.insert((input_idx, id));
                }
            }
        }
        covered.len() as f64 / total as f64
    }
}

/// Runs the full §3.2 procedure for one module:
///
/// 1. partition the domain of every input using its semantic annotation;
/// 2. for each partition select a structurally compatible realization from
///    the annotated pool;
/// 3. invoke the module on every combination of selected values;
/// 4. keep combinations that terminate normally as data examples.
///
/// Deterministic: same module, ontology, pool and config always produce the
/// same report.
pub fn generate_examples(
    module: &dyn BlackBox,
    ontology: &Ontology,
    pool: &InstancePool,
    config: &GenerationConfig,
) -> Result<GenerationReport, GenerationError> {
    let _timer = {
        static MODULE_NS: std::sync::OnceLock<dex_telemetry::Histo> = std::sync::OnceLock::new();
        MODULE_NS
            .get_or_init(|| dex_telemetry::histogram("dex.generate.module_ns"))
            .start()
    };
    let descriptor = module.descriptor();
    let plan = input_partition_plan(descriptor, ontology)?;

    let combos = plan.combination_count();
    if combos > config.max_combinations {
        return Err(GenerationError::TooManyCombinations {
            combinations: combos,
            cap: config.max_combinations,
        });
    }

    // Phase 2: candidate values per (input, partition). For each we remember
    // whether *any* structurally compatible realization exists; individual
    // picks happen per attempt so retries can advance through the pool.
    let mut unvalued: Vec<(usize, String)> = Vec::new();
    for (i, parts) in plan.per_input.iter().enumerate() {
        for &p in parts {
            let concept = ontology.concept_name(p);
            if pool
                .get_instance(concept, &descriptor.inputs[i].structural, 0)
                .is_none()
            {
                unvalued.push((i, concept.to_string()));
            }
        }
    }

    let mut examples = ExampleSet::new(descriptor.id.clone());
    let mut failed: Vec<Vec<String>> = Vec::new();
    let mut invocations = 0usize;

    // Telemetry-only coverage tracking, kept on the combination indices so
    // reporting needs no ontology lookups after the loop. `covered_flags`
    // is indexed by `input_offsets[input] + partition index`.
    let telemetry_on = dex_telemetry::is_enabled();
    let mut input_offsets: Vec<usize> = Vec::new();
    let mut covered_flags: Vec<bool> = Vec::new();
    if telemetry_on {
        let mut offset = 0;
        for parts in &plan.per_input {
            input_offsets.push(offset);
            offset += parts.len();
        }
        covered_flags = vec![false; offset];
    }

    // Phases 3 + 4: invoke each combination, retrying with later pool picks
    // on rejection.
    'combos: for combo in plan.combinations() {
        let concept_names: Vec<String> = combo
            .iter()
            .enumerate()
            .map(|(i, &pi)| ontology.concept_name(plan.per_input[i][pi]).to_string())
            .collect();

        for attempt in 0..=config.retries_per_combination {
            let skip = config.value_offset + attempt;
            // Select borrowed candidates first; the owned input vector is
            // materialized once per attempt (invocation needs `&[Value]`),
            // and on success it is *moved* into the example's bindings
            // instead of being cloned a second time.
            let mut picks: Vec<&Value> = Vec::with_capacity(combo.len());
            let mut complete = true;
            for (i, concept) in concept_names.iter().enumerate() {
                // Fall back to the base offset and then to the first pick
                // when the pool is shallower than the requested depth, so a
                // non-zero `value_offset` never starves a partition that has
                // at least one realization.
                let inst = pool
                    .get_instance(concept, &descriptor.inputs[i].structural, skip)
                    .or_else(|| {
                        pool.get_instance(
                            concept,
                            &descriptor.inputs[i].structural,
                            config.value_offset,
                        )
                    })
                    .or_else(|| pool.get_instance(concept, &descriptor.inputs[i].structural, 0));
                match inst {
                    Some(inst) => picks.push(&inst.value),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if !complete {
                // Some partition has no realization at all; the combination
                // can never be fed.
                failed.push(concept_names);
                continue 'combos;
            }

            let values: Vec<Value> = picks.into_iter().cloned().collect();
            invocations += 1;
            match module.invoke(&values) {
                Ok(outputs) => {
                    if telemetry_on {
                        for (i, &pi) in combo.iter().enumerate() {
                            covered_flags[input_offsets[i] + pi] = true;
                        }
                    }
                    let inputs = descriptor
                        .inputs
                        .iter()
                        .zip(values)
                        .map(|(p, v)| Binding::new(p.name.clone(), v))
                        .collect();
                    let outputs = descriptor
                        .outputs
                        .iter()
                        .zip(outputs)
                        .map(|(p, v)| Binding::new(p.name.clone(), v))
                        .collect();
                    examples
                        .examples
                        .push(DataExample::new(inputs, outputs, concept_names));
                    continue 'combos;
                }
                Err(_) if attempt < config.retries_per_combination => continue,
                Err(_) => {
                    failed.push(concept_names);
                    continue 'combos;
                }
            }
        }
    }

    let report = GenerationReport {
        examples,
        plan,
        unvalued_partitions: unvalued,
        failed_combinations: failed,
        invocations,
    };
    // Gate on the loop-time flag so covered/total stay consistent even if
    // telemetry was toggled mid-generation.
    if telemetry_on {
        let counters = generate_counters();
        counters.modules.add(1);
        counters.candidates_tried.add(report.invocations as u64);
        counters.examples_accepted.add(report.examples.len() as u64);
        counters
            .failed_combinations
            .add(report.failed_combinations.len() as u64);
        counters
            .unvalued_partitions
            .add(report.unvalued_partitions.len() as u64);
        // Partition-coverage progress: fraction covered is derivable from
        // these two monotonic counters at any point of a run.
        counters
            .partitions_total
            .add(report.plan.partition_count() as u64);
        counters
            .partitions_covered
            .add(covered_flags.iter().filter(|&&c| c).count() as u64);
    }
    Ok(report)
}

/// Generation telemetry counters, interned once per process.
struct GenerateCounters {
    modules: dex_telemetry::Counter,
    candidates_tried: dex_telemetry::Counter,
    examples_accepted: dex_telemetry::Counter,
    failed_combinations: dex_telemetry::Counter,
    unvalued_partitions: dex_telemetry::Counter,
    partitions_total: dex_telemetry::Counter,
    partitions_covered: dex_telemetry::Counter,
}

fn generate_counters() -> &'static GenerateCounters {
    static COUNTERS: std::sync::OnceLock<GenerateCounters> = std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| GenerateCounters {
        modules: dex_telemetry::counter("dex.generate.modules"),
        candidates_tried: dex_telemetry::counter("dex.generate.candidates_tried"),
        examples_accepted: dex_telemetry::counter("dex.generate.examples_accepted"),
        failed_combinations: dex_telemetry::counter("dex.generate.failed_combinations"),
        unvalued_partitions: dex_telemetry::counter("dex.generate.unvalued_partitions"),
        partitions_total: dex_telemetry::counter("dex.generate.partitions_total"),
        partitions_covered: dex_telemetry::counter("dex.generate.partitions_covered"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_modules::{FnModule, InvocationError, ModuleDescriptor, ModuleKind, Parameter};
    use dex_ontology::mygrid;
    use dex_pool::build_synthetic_pool;
    use dex_values::formats::sequence::{classify, SequenceKind};
    use dex_values::StructuralType;

    fn fixture() -> (Ontology, InstancePool) {
        let onto = mygrid::ontology();
        let pool = build_synthetic_pool(&onto, 5, 11);
        (onto, pool)
    }

    /// A module that reports the kind of the sequence it was given.
    fn seq_kind_module() -> FnModule {
        FnModule::new(
            ModuleDescriptor::new(
                "op:seqkind",
                "SeqKind",
                ModuleKind::LocalProgram,
                vec![Parameter::required(
                    "seq",
                    StructuralType::Text,
                    "BiologicalSequence",
                )],
                vec![Parameter::required(
                    "kind",
                    StructuralType::Text,
                    "Document",
                )],
            ),
            |inputs| {
                let s = inputs[0].as_text().expect("validated text");
                let kind =
                    classify(s).ok_or_else(|| InvocationError::rejected("not a sequence"))?;
                Ok(vec![Value::text(format!("{kind:?}"))])
            },
        )
    }

    #[test]
    fn generates_one_example_per_partition() {
        let (onto, pool) = fixture();
        let m = seq_kind_module();
        let report = generate_examples(&m, &onto, &pool, &GenerationConfig::default()).unwrap();
        assert_eq!(report.examples.len(), 4, "one per partition");
        assert!(report.failed_combinations.is_empty());
        assert!(report.unvalued_partitions.is_empty());
        assert_eq!(report.input_partition_coverage(&onto), 1.0);
        // Each example records the partition it covers.
        let partitions: Vec<&str> = report
            .examples
            .iter()
            .map(|e| e.input_partitions[0].as_str())
            .collect();
        assert_eq!(
            partitions,
            vec![
                "BiologicalSequence",
                "DNASequence",
                "RNASequence",
                "ProteinSequence"
            ]
        );
    }

    #[test]
    fn outputs_reflect_module_behavior() {
        let (onto, pool) = fixture();
        let m = seq_kind_module();
        let report = generate_examples(&m, &onto, &pool, &GenerationConfig::default()).unwrap();
        let by_partition: std::collections::HashMap<&str, &str> = report
            .examples
            .iter()
            .map(|e| {
                (
                    e.input_partitions[0].as_str(),
                    e.outputs[0].value.as_text().unwrap(),
                )
            })
            .collect();
        assert_eq!(by_partition["DNASequence"], "Dna");
        assert_eq!(by_partition["ProteinSequence"], "Protein");
        assert_eq!(by_partition["BiologicalSequence"], "Generic");
    }

    /// A module that rejects protein sequences: the protein partition must
    /// appear in `failed_combinations`, not as an example.
    #[test]
    fn rejected_combinations_are_recorded_not_exampled() {
        let (onto, pool) = fixture();
        let m = FnModule::new(
            ModuleDescriptor::new(
                "op:nuconly",
                "NucleotideOnly",
                ModuleKind::RestService,
                vec![Parameter::required(
                    "seq",
                    StructuralType::Text,
                    "BiologicalSequence",
                )],
                vec![Parameter::required("out", StructuralType::Text, "Document")],
            ),
            |inputs| {
                let s = inputs[0].as_text().unwrap();
                match classify(s) {
                    Some(SequenceKind::Protein) | None => {
                        Err(InvocationError::rejected("nucleotides only"))
                    }
                    Some(_) => Ok(vec![Value::text("ok")]),
                }
            },
        );
        let report = generate_examples(&m, &onto, &pool, &GenerationConfig::default()).unwrap();
        assert_eq!(report.examples.len(), 3);
        assert_eq!(report.failed_combinations.len(), 1);
        assert_eq!(report.failed_combinations[0], vec!["ProteinSequence"]);
        // Retries were attempted for the failing combination.
        assert!(report.invocations > 4);
    }

    #[test]
    fn combination_cap_enforced() {
        let (onto, pool) = fixture();
        let m = seq_kind_module();
        let config = GenerationConfig {
            max_combinations: 2,
            ..GenerationConfig::default()
        };
        assert!(matches!(
            generate_examples(&m, &onto, &pool, &config),
            Err(GenerationError::TooManyCombinations {
                combinations: 4,
                cap: 2
            })
        ));
    }

    #[test]
    fn generation_is_deterministic() {
        let (onto, pool) = fixture();
        let m = seq_kind_module();
        let a = generate_examples(&m, &onto, &pool, &GenerationConfig::default()).unwrap();
        let b = generate_examples(&m, &onto, &pool, &GenerationConfig::default()).unwrap();
        assert_eq!(a.examples, b.examples);
    }

    #[test]
    fn value_offset_changes_selected_values() {
        let (onto, pool) = fixture();
        let m = seq_kind_module();
        let a = generate_examples(&m, &onto, &pool, &GenerationConfig::default()).unwrap();
        let b = generate_examples(
            &m,
            &onto,
            &pool,
            &GenerationConfig {
                value_offset: 1,
                ..GenerationConfig::default()
            },
        )
        .unwrap();
        assert_eq!(a.examples.len(), b.examples.len());
        assert_ne!(
            a.examples.examples[0].inputs[0].value,
            b.examples.examples[0].inputs[0].value
        );
    }

    /// Multi-input module with an invalid combination (blastn × protein).
    #[test]
    fn multi_input_validity_filtering() {
        let (onto, pool) = fixture();
        let m = FnModule::new(
            ModuleDescriptor::new(
                "op:align",
                "Align",
                ModuleKind::SoapService,
                vec![
                    Parameter::required("seq", StructuralType::Text, "ProteinSequence"),
                    Parameter::required("program", StructuralType::Text, "AlgorithmName"),
                ],
                vec![Parameter::required(
                    "report",
                    StructuralType::Text,
                    "AlignmentReport",
                )],
            ),
            |inputs| {
                let program = inputs[1].as_text().unwrap();
                if program == "blastn" {
                    // Nucleotide program fed a protein: invalid combination.
                    return Err(InvocationError::rejected("blastn needs nucleotides"));
                }
                Ok(vec![Value::text(format!(
                    "PROGRAM  {program}\nDATABASE d\nQUERY    q\nHITS     0\n"
                ))])
            },
        );
        let report = generate_examples(&m, &onto, &pool, &GenerationConfig::default()).unwrap();
        // 1 × 1 partitions; whether it survives depends on the pooled
        // algorithm name value — with seed 11 and retries, a non-blastn pick
        // must eventually be found (pool holds 5 AlgorithmName values).
        assert_eq!(report.plan.combination_count(), 1);
        assert_eq!(report.examples.len() + report.failed_combinations.len(), 1);
    }

    #[test]
    fn unknown_annotation_surfaces_as_error() {
        let (onto, pool) = fixture();
        let m = FnModule::new(
            ModuleDescriptor::new(
                "op:ghost",
                "Ghost",
                ModuleKind::RestService,
                vec![Parameter::required(
                    "x",
                    StructuralType::Text,
                    "GhostConcept",
                )],
                vec![Parameter::required("y", StructuralType::Text, "Document")],
            ),
            |_| Ok(vec![Value::text("y")]),
        );
        assert!(matches!(
            generate_examples(&m, &onto, &pool, &GenerationConfig::default()),
            Err(GenerationError::UnknownConcept { .. })
        ));
    }
}
