//! Output-partition coverage through inverse modules (paper §3.3).
//!
//! Input-driven generation covers output partitions only opportunistically.
//! The paper notes: "Where a module m′ that is known to implement the
//! inverse functionality of m exists, then it can be used to construct data
//! examples that cover the output partitions of the module m" — while
//! observing that inverses are rarely available, which is why the §4
//! evaluation relies on the opportunistic route. This module implements the
//! inverse route for the cases where an inverse *does* exist.
//!
//! For each partition `p` of `m`'s output domain: select a realization of
//! `p` from the pool, run it **backwards** through `m′` to obtain a
//! candidate input, then run that input **forwards** through `m` and keep
//! the invocation as a data example when it terminates normally. The
//! example covers `p` exactly when the forward output actually realizes `p`
//! (checked with the value classifier) — with a perfect inverse that is
//! always the case; with an approximate one, partitions can stay uncovered
//! and are reported.

use crate::coverage::ValueClassifier;
use crate::error::GenerationError;
use crate::example::{Binding, DataExample, ExampleSet};
use crate::partition::partitions_for;
use dex_modules::BlackBox;
use dex_ontology::Ontology;
use dex_pool::InstancePool;

/// Result of inverse-driven output coverage.
#[derive(Debug, Clone)]
pub struct InverseCoverageReport {
    /// Data examples constructed through the inverse.
    pub examples: ExampleSet,
    /// Output partitions (concept names) covered by those examples.
    pub covered: Vec<String>,
    /// Output partitions that could not be covered: no pool realization,
    /// inverse/forward invocation failed, or the forward output landed in a
    /// different partition (approximate inverse).
    pub uncovered: Vec<String>,
}

/// Runs the §3.3 inverse construction for a single-input, single-output
/// module `m` and its claimed inverse `m′` (output of `m′` feeds the input
/// of `m`).
///
/// Returns an error when the interfaces are not the single-in/single-out
/// shape inverse pairs have, or the output annotation is unknown.
pub fn cover_output_partitions(
    module: &dyn BlackBox,
    inverse: &dyn BlackBox,
    ontology: &Ontology,
    pool: &InstancePool,
    classifier: ValueClassifier,
) -> Result<InverseCoverageReport, GenerationError> {
    let descriptor = module.descriptor();
    let inverse_descriptor = inverse.descriptor();
    if descriptor.inputs.len() != 1 || descriptor.outputs.len() != 1 {
        return Err(GenerationError::BadDescriptor(format!(
            "inverse coverage needs a single-input single-output module, {} has {}×{}",
            descriptor.id,
            descriptor.inputs.len(),
            descriptor.outputs.len()
        )));
    }
    if inverse_descriptor.inputs.len() != 1 || inverse_descriptor.outputs.len() != 1 {
        return Err(GenerationError::BadDescriptor(format!(
            "claimed inverse {} is not single-input single-output",
            inverse_descriptor.id
        )));
    }

    let output_param = &descriptor.outputs[0];
    let partitions = partitions_for(output_param, ontology)?;

    let mut examples = ExampleSet::new(descriptor.id.clone());
    let mut covered = Vec::new();
    let mut uncovered = Vec::new();

    for partition in partitions {
        let concept = ontology.concept_name(partition).to_string();
        // 1. A value realizing the target output partition.
        let Some(instance) = pool.get_instance(&concept, &output_param.structural, 0) else {
            uncovered.push(concept);
            continue;
        };
        // 2. Backwards through the inverse.
        let Ok(candidate_inputs) = inverse.invoke(std::slice::from_ref(&instance.value)) else {
            uncovered.push(concept);
            continue;
        };
        // 3. Forwards through the module.
        let Ok(outputs) = module.invoke(&candidate_inputs) else {
            uncovered.push(concept);
            continue;
        };
        // 4. Did we actually land in the target partition?
        if classifier(&outputs[0]) == Some(concept.as_str()) {
            examples.examples.push(DataExample::new(
                vec![Binding::new(
                    descriptor.inputs[0].name.clone(),
                    candidate_inputs[0].clone(),
                )],
                vec![Binding::new(output_param.name.clone(), outputs[0].clone())],
                vec![classifier(&candidate_inputs[0])
                    .unwrap_or(&descriptor.inputs[0].semantic)
                    .to_string()],
            ));
            covered.push(concept);
        } else {
            uncovered.push(concept);
        }
    }

    Ok(InverseCoverageReport {
        examples,
        covered,
        uncovered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_modules::{FnModule, InvocationError, ModuleDescriptor, ModuleKind, Parameter};
    use dex_ontology::mygrid;
    use dex_pool::build_synthetic_pool;
    use dex_values::classify::classify_concept;
    use dex_values::formats::sequence::{classify, SequenceKind};
    use dex_values::{StructuralType, Value};

    fn transcribe() -> FnModule {
        FnModule::new(
            ModuleDescriptor::new(
                "t",
                "transcribe",
                ModuleKind::LocalProgram,
                vec![Parameter::required(
                    "dna",
                    StructuralType::Text,
                    "DNASequence",
                )],
                vec![Parameter::required(
                    "rna",
                    StructuralType::Text,
                    "RNASequence",
                )],
            ),
            |inputs| {
                let s = inputs[0].as_text().unwrap();
                if classify(s) != Some(SequenceKind::Dna) {
                    return Err(InvocationError::rejected("not DNA"));
                }
                Ok(vec![Value::text(s.replace('T', "U"))])
            },
        )
    }

    fn reverse_transcribe() -> FnModule {
        FnModule::new(
            ModuleDescriptor::new(
                "rt",
                "reverse_transcribe",
                ModuleKind::LocalProgram,
                vec![Parameter::required(
                    "rna",
                    StructuralType::Text,
                    "RNASequence",
                )],
                vec![Parameter::required(
                    "dna",
                    StructuralType::Text,
                    "DNASequence",
                )],
            ),
            |inputs| {
                let s = inputs[0].as_text().unwrap();
                Ok(vec![Value::text(s.replace('U', "T"))])
            },
        )
    }

    #[test]
    fn exact_inverse_covers_the_output_partition() {
        let onto = mygrid::ontology();
        let pool = build_synthetic_pool(&onto, 4, 5);
        let report = cover_output_partitions(
            &transcribe(),
            &reverse_transcribe(),
            &onto,
            &pool,
            classify_concept,
        )
        .unwrap();
        // RNASequence is a leaf: one partition, covered through the inverse.
        assert_eq!(report.covered, vec!["RNASequence"]);
        assert!(report.uncovered.is_empty());
        assert_eq!(report.examples.len(), 1);
        let example = &report.examples.examples[0];
        assert_eq!(
            classify(example.inputs[0].value.as_text().unwrap()),
            Some(SequenceKind::Dna)
        );
    }

    #[test]
    fn approximate_inverse_reports_uncovered_partitions() {
        // An "inverse" that returns protein junk: the forward run rejects it.
        let onto = mygrid::ontology();
        let pool = build_synthetic_pool(&onto, 4, 5);
        let bogus = FnModule::new(
            ModuleDescriptor::new(
                "bogus",
                "bogus",
                ModuleKind::LocalProgram,
                vec![Parameter::required(
                    "rna",
                    StructuralType::Text,
                    "RNASequence",
                )],
                vec![Parameter::required(
                    "dna",
                    StructuralType::Text,
                    "DNASequence",
                )],
            ),
            |_| Ok(vec![Value::text("MKVLHPQ")]),
        );
        let report =
            cover_output_partitions(&transcribe(), &bogus, &onto, &pool, classify_concept).unwrap();
        assert!(report.covered.is_empty());
        assert_eq!(report.uncovered, vec!["RNASequence"]);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let onto = mygrid::ontology();
        let pool = build_synthetic_pool(&onto, 2, 5);
        let two_out = FnModule::new(
            ModuleDescriptor::new(
                "two",
                "two",
                ModuleKind::LocalProgram,
                vec![Parameter::required(
                    "x",
                    StructuralType::Text,
                    "DNASequence",
                )],
                vec![
                    Parameter::required("a", StructuralType::Text, "RNASequence"),
                    Parameter::required("b", StructuralType::Text, "RNASequence"),
                ],
            ),
            |i| Ok(vec![i[0].clone(), i[0].clone()]),
        );
        assert!(matches!(
            cover_output_partitions(
                &two_out,
                &reverse_transcribe(),
                &onto,
                &pool,
                classify_concept
            ),
            Err(GenerationError::BadDescriptor(_))
        ));
    }

    #[test]
    fn broad_output_with_partial_inverse_mixes_covered_and_uncovered() {
        // Forward: echoes any biological sequence. Inverse: echoes too —
        // works for every partition, so everything is covered.
        let onto = mygrid::ontology();
        let pool = build_synthetic_pool(&onto, 4, 5);
        let echo = |id: &str| {
            FnModule::new(
                ModuleDescriptor::new(
                    id,
                    id,
                    ModuleKind::LocalProgram,
                    vec![Parameter::required(
                        "seq",
                        StructuralType::Text,
                        "BiologicalSequence",
                    )],
                    vec![Parameter::required(
                        "out",
                        StructuralType::Text,
                        "BiologicalSequence",
                    )],
                ),
                |i| Ok(vec![i[0].clone()]),
            )
        };
        let report =
            cover_output_partitions(&echo("fwd"), &echo("inv"), &onto, &pool, classify_concept)
                .unwrap();
        assert_eq!(report.covered.len(), 4, "{:?}", report.uncovered);
        assert_eq!(report.examples.len(), 4);
    }
}
