//! The data-example model (paper §2).

use dex_modules::ModuleId;
use dex_values::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One `⟨parameter, value⟩` binding inside a data example.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Binding {
    /// Parameter name.
    pub parameter: String,
    /// Concrete value.
    pub value: Value,
}

impl Binding {
    /// Creates a binding.
    pub fn new(parameter: impl Into<String>, value: Value) -> Self {
        Binding {
            parameter: parameter.into(),
            value,
        }
    }
}

/// A data example `δ = ⟨I, O⟩`: concrete input values a module consumed and
/// the output values it delivered as a result (paper §2).
///
/// `input_partitions` records which ontology partition each input value was
/// drawn from when the example was produced by the generator; it is empty
/// for examples reconstructed from provenance traces, where the partition is
/// unknown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataExample {
    /// Input bindings `I`, in the module's input declaration order.
    pub inputs: Vec<Binding>,
    /// Output bindings `O`, in the module's output declaration order.
    pub outputs: Vec<Binding>,
    /// Concept name of the partition each input value realizes (parallel to
    /// `inputs`), when known.
    pub input_partitions: Vec<String>,
}

impl DataExample {
    /// Builds an example with known partitions.
    pub fn new(inputs: Vec<Binding>, outputs: Vec<Binding>, input_partitions: Vec<String>) -> Self {
        debug_assert!(input_partitions.is_empty() || input_partitions.len() == inputs.len());
        DataExample {
            inputs,
            outputs,
            input_partitions,
        }
    }

    /// Builds an example with unknown partitions (provenance reconstruction).
    pub fn reconstructed(inputs: Vec<Binding>, outputs: Vec<Binding>) -> Self {
        DataExample {
            inputs,
            outputs,
            input_partitions: Vec::new(),
        }
    }

    /// Input values in declaration order.
    pub fn input_values(&self) -> Vec<&Value> {
        self.inputs.iter().map(|b| &b.value).collect()
    }

    /// Output values in declaration order.
    pub fn output_values(&self) -> Vec<&Value> {
        self.outputs.iter().map(|b| &b.value).collect()
    }

    /// Whether both examples have the same input values (ignoring parameter
    /// names) — the alignment relation `map∆` of §6 uses input-value
    /// equality.
    pub fn same_inputs(&self, other: &DataExample) -> bool {
        self.inputs.len() == other.inputs.len()
            && self
                .inputs
                .iter()
                .zip(&other.inputs)
                .all(|(a, b)| a.value == b.value)
    }

    /// Whether both examples produce the same output values.
    pub fn same_outputs(&self, other: &DataExample) -> bool {
        self.outputs.len() == other.outputs.len()
            && self
                .outputs
                .iter()
                .zip(&other.outputs)
                .all(|(a, b)| a.value == b.value)
    }
}

impl fmt::Display for DataExample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, b) in self.inputs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", b.parameter, b.value.preview(40))?;
        }
        write!(f, " ⟼ ")?;
        for (i, b) in self.outputs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", b.parameter, b.value.preview(40))?;
        }
        write!(f, "⟩")
    }
}

/// The set `∆(m)` of data examples describing one module's behavior.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExampleSet {
    /// The module the examples describe.
    pub module: ModuleId,
    /// The examples, in deterministic generation order.
    pub examples: Vec<DataExample>,
}

impl ExampleSet {
    /// An empty set for a module.
    pub fn new(module: ModuleId) -> Self {
        ExampleSet {
            module,
            examples: Vec::new(),
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Iterates the examples.
    pub fn iter(&self) -> impl Iterator<Item = &DataExample> {
        self.examples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example(input: &str, output: &str) -> DataExample {
        DataExample::new(
            vec![Binding::new("in", Value::text(input))],
            vec![Binding::new("out", Value::text(output))],
            vec!["SomeConcept".into()],
        )
    }

    #[test]
    fn alignment_relations() {
        let a = example("x", "1");
        let b = example("x", "2");
        let c = example("y", "1");
        assert!(a.same_inputs(&b));
        assert!(!a.same_inputs(&c));
        assert!(a.same_outputs(&c));
        assert!(!a.same_outputs(&b));
    }

    #[test]
    fn display_shows_bindings() {
        let e = example("P12345", "record");
        let s = e.to_string();
        assert!(s.contains("in=P12345"));
        assert!(s.contains("out=record"));
        assert!(s.contains('⟼'));
    }

    #[test]
    fn value_accessors() {
        let e = example("a", "b");
        assert_eq!(e.input_values(), vec![&Value::text("a")]);
        assert_eq!(e.output_values(), vec![&Value::text("b")]);
    }

    #[test]
    fn example_set_basics() {
        let mut set = ExampleSet::new(ModuleId::from("m"));
        assert!(set.is_empty());
        set.examples.push(example("a", "b"));
        assert_eq!(set.len(), 1);
        assert_eq!(set.iter().count(), 1);
    }

    #[test]
    fn reconstructed_examples_have_no_partitions() {
        let e = DataExample::reconstructed(
            vec![Binding::new("in", Value::text("x"))],
            vec![Binding::new("out", Value::text("y"))],
        );
        assert!(e.input_partitions.is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let e = example("in", "out");
        let json = serde_json::to_string(&e).unwrap();
        let back: DataExample = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
