//! Human-facing rendering of data examples.
//!
//! The §5 study showed users the module name, its annotated parameters and
//! the data examples. This module renders exactly that view — a markdown
//! document per module — so registries and CLIs can present examples the
//! way the study participants saw them.

use crate::example::ExampleSet;
use dex_modules::ModuleDescriptor;

/// Width at which long values are elided in tables.
const CELL_WIDTH: usize = 48;

/// Renders the study view of one module: header, annotated interface and
/// an examples table.
pub fn to_markdown(descriptor: &ModuleDescriptor, examples: &ExampleSet) -> String {
    let mut out = format!("## {}\n\n", descriptor.name);
    out.push_str(&format!("*supplied as a {}*\n\n", descriptor.kind));

    out.push_str("**Inputs**\n\n");
    for p in &descriptor.inputs {
        out.push_str(&format!(
            "- `{}`: {} ({}{})\n",
            p.name,
            p.semantic,
            p.structural,
            if p.optional { ", optional" } else { "" }
        ));
    }
    out.push_str("\n**Outputs**\n\n");
    for p in &descriptor.outputs {
        out.push_str(&format!(
            "- `{}`: {} ({})\n",
            p.name, p.semantic, p.structural
        ));
    }

    out.push_str(&format!("\n**Data examples ({})**\n\n", examples.len()));
    if examples.is_empty() {
        out.push_str("*none generated*\n");
        return out;
    }
    let headers: Vec<&str> = descriptor
        .inputs
        .iter()
        .chain(&descriptor.outputs)
        .map(|p| p.name.as_str())
        .collect();
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!(
        "|{}\n",
        headers.iter().map(|_| "---|").collect::<String>()
    ));
    for example in examples.iter() {
        let cells: Vec<String> = example
            .inputs
            .iter()
            .chain(&example.outputs)
            .map(|b| escape_cell(&b.value.preview(CELL_WIDTH)))
            .collect();
        out.push_str(&format!("| {} |\n", cells.join(" | ")));
    }
    out
}

fn escape_cell(s: &str) -> String {
    s.replace('|', "\\|")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::{Binding, DataExample};
    use dex_modules::{ModuleKind, Parameter};
    use dex_values::{StructuralType, Value};

    fn fixture() -> (ModuleDescriptor, ExampleSet) {
        let descriptor = ModuleDescriptor::new(
            "m",
            "GetRecord",
            ModuleKind::SoapService,
            vec![Parameter::required(
                "accession",
                StructuralType::Text,
                "UniprotAccession",
            )],
            vec![Parameter::required(
                "record",
                StructuralType::Text,
                "UniprotRecord",
            )],
        );
        let mut set = ExampleSet::new("m".into());
        set.examples.push(DataExample::new(
            vec![Binding::new("accession", Value::text("P12345"))],
            vec![Binding::new("record", Value::text("ID P12345 | protein"))],
            vec!["UniprotAccession".into()],
        ));
        (descriptor, set)
    }

    #[test]
    fn markdown_contains_interface_and_examples() {
        let (d, set) = fixture();
        let md = to_markdown(&d, &set);
        assert!(md.contains("## GetRecord"));
        assert!(md.contains("`accession`: UniprotAccession"));
        assert!(md.contains("| accession | record |"));
        assert!(md.contains("P12345"));
    }

    #[test]
    fn pipes_in_values_are_escaped() {
        let (d, set) = fixture();
        let md = to_markdown(&d, &set);
        assert!(md.contains("\\|"), "{md}");
    }

    #[test]
    fn empty_set_renders_placeholder() {
        let (d, _) = fixture();
        let md = to_markdown(&d, &ExampleSet::new("m".into()));
        assert!(md.contains("*none generated*"));
    }
}
