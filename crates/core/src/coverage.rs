//! Partition-coverage measurement (paper §3.3 and the *coverage* metric of
//! §4.2).

use crate::error::GenerationError;
use crate::example::ExampleSet;
use crate::partition::partitions_for;
use dex_modules::ModuleDescriptor;
use dex_ontology::Ontology;
use dex_values::Value;
use std::collections::HashSet;

/// Classifies a value into the name of the most specific concept it
/// instantiates, or `None` when unrecognizable. The default classifier for
/// the shipped universe is [`dex_values::classify::classify_concept`].
pub type ValueClassifier = fn(&Value) -> Option<&'static str>;

/// Coverage of a module's input *and* output partitions by a set of data
/// examples — the `coverage(m)` ratio of §4.2.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// Input partitions (input index, concept), covered ones flagged.
    pub input_partitions: Vec<(usize, String, bool)>,
    /// Output partitions (output index, concept), covered ones flagged.
    pub output_partitions: Vec<(usize, String, bool)>,
}

impl CoverageReport {
    /// Total partitions across inputs and outputs.
    pub fn total(&self) -> usize {
        self.input_partitions.len() + self.output_partitions.len()
    }

    /// Covered partitions across inputs and outputs.
    pub fn covered(&self) -> usize {
        self.input_partitions.iter().filter(|(_, _, c)| *c).count()
            + self.output_partitions.iter().filter(|(_, _, c)| *c).count()
    }

    /// The coverage ratio `#coveredPartitions / #partitions`; `1.0` when the
    /// module has no partitions.
    pub fn ratio(&self) -> f64 {
        if self.total() == 0 {
            1.0
        } else {
            self.covered() as f64 / self.total() as f64
        }
    }

    /// Whether every input partition is covered.
    pub fn inputs_fully_covered(&self) -> bool {
        self.input_partitions.iter().all(|(_, _, c)| *c)
    }

    /// Whether every output partition is covered.
    pub fn outputs_fully_covered(&self) -> bool {
        self.output_partitions.iter().all(|(_, _, c)| *c)
    }

    /// Names of uncovered output partitions (the §4.3 exceptions).
    pub fn uncovered_outputs(&self) -> Vec<&str> {
        self.output_partitions
            .iter()
            .filter(|(_, _, c)| !*c)
            .map(|(_, name, _)| name.as_str())
            .collect()
    }
}

/// Measures which input and output partitions `examples` cover.
///
/// * An **input** partition is covered when some example was generated from
///   it (recorded in [`DataExample::input_partitions`]) — or, for
///   reconstructed examples, when the classified input value realizes the
///   partition concept.
/// * An **output** partition is covered when some example's output value is
///   classified (by `classifier`) as exactly that concept — realization
///   semantics, mirroring the input side.
///
/// [`DataExample::input_partitions`]: crate::DataExample::input_partitions
pub fn measure_coverage(
    descriptor: &ModuleDescriptor,
    examples: &ExampleSet,
    ontology: &Ontology,
    classifier: ValueClassifier,
) -> Result<CoverageReport, GenerationError> {
    // Which (input index, concept) pairs do the examples witness?
    let mut witnessed_inputs: HashSet<(usize, String)> = HashSet::new();
    let mut witnessed_outputs: HashSet<(usize, String)> = HashSet::new();
    for example in examples.iter() {
        if example.input_partitions.is_empty() {
            // Reconstructed example: classify the raw values.
            for (i, binding) in example.inputs.iter().enumerate() {
                if let Some(concept) = classifier(&binding.value) {
                    witnessed_inputs.insert((i, concept.to_string()));
                }
            }
        } else {
            for (i, concept) in example.input_partitions.iter().enumerate() {
                witnessed_inputs.insert((i, concept.clone()));
            }
        }
        for (o, binding) in example.outputs.iter().enumerate() {
            if let Some(concept) = classifier(&binding.value) {
                witnessed_outputs.insert((o, concept.to_string()));
            }
        }
    }

    let mut input_partitions = Vec::new();
    for (i, param) in descriptor.inputs.iter().enumerate() {
        for concept in partitions_for(param, ontology)? {
            let name = ontology.concept_name(concept).to_string();
            let covered = witnessed_inputs.contains(&(i, name.clone()));
            input_partitions.push((i, name, covered));
        }
    }
    let mut output_partitions = Vec::new();
    for (o, param) in descriptor.outputs.iter().enumerate() {
        for concept in partitions_for(param, ontology)? {
            let name = ontology.concept_name(concept).to_string();
            let covered = witnessed_outputs.contains(&(o, name.clone()));
            output_partitions.push((o, name, covered));
        }
    }

    Ok(CoverageReport {
        input_partitions,
        output_partitions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::{Binding, DataExample};
    use dex_modules::{ModuleId, ModuleKind, Parameter};
    use dex_ontology::mygrid;
    use dex_values::classify::classify_concept;
    use dex_values::StructuralType;

    fn descriptor(in_sem: &str, out_sem: &str) -> ModuleDescriptor {
        ModuleDescriptor::new(
            "m",
            "M",
            ModuleKind::SoapService,
            vec![Parameter::required("in", StructuralType::Text, in_sem)],
            vec![Parameter::required("out", StructuralType::Text, out_sem)],
        )
    }

    fn example(partition: &str, in_v: &str, out_v: &str) -> DataExample {
        DataExample::new(
            vec![Binding::new("in", Value::text(in_v))],
            vec![Binding::new("out", Value::text(out_v))],
            vec![partition.to_string()],
        )
    }

    #[test]
    fn output_partitions_covered_by_classification() {
        let onto = mygrid::ontology();
        let d = descriptor("UniprotAccession", "BiologicalSequence");
        let mut set = ExampleSet::new(ModuleId::from("m"));
        // One example producing DNA; leaves RNA/protein/generic uncovered.
        set.examples
            .push(example("UniprotAccession", "P12345", "ACGTACGT"));
        let report = measure_coverage(&d, &set, &onto, classify_concept).unwrap();
        assert!(report.inputs_fully_covered());
        assert!(!report.outputs_fully_covered());
        assert_eq!(
            report.uncovered_outputs(),
            vec!["BiologicalSequence", "RNASequence", "ProteinSequence"]
        );
        assert_eq!(report.total(), 1 + 4);
        assert_eq!(report.covered(), 1 + 1);
        assert!((report.ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn full_coverage_ratio_is_one() {
        let onto = mygrid::ontology();
        let d = descriptor("GOTerm", "GOTerm");
        let mut set = ExampleSet::new(ModuleId::from("m"));
        set.examples
            .push(example("GOTerm", "GO:0008150", "GO:0001234"));
        let report = measure_coverage(&d, &set, &onto, classify_concept).unwrap();
        assert_eq!(report.ratio(), 1.0);
    }

    #[test]
    fn empty_example_set_covers_nothing() {
        let onto = mygrid::ontology();
        let d = descriptor("GOTerm", "GOTerm");
        let set = ExampleSet::new(ModuleId::from("m"));
        let report = measure_coverage(&d, &set, &onto, classify_concept).unwrap();
        assert_eq!(report.covered(), 0);
        assert_eq!(report.ratio(), 0.0);
    }

    #[test]
    fn reconstructed_examples_classify_inputs() {
        let onto = mygrid::ontology();
        let d = descriptor("BiologicalSequence", "GOTerm");
        let mut set = ExampleSet::new(ModuleId::from("m"));
        set.examples.push(DataExample::reconstructed(
            vec![Binding::new("in", Value::text("ACGT"))],
            vec![Binding::new("out", Value::text("GO:0008150"))],
        ));
        let report = measure_coverage(&d, &set, &onto, classify_concept).unwrap();
        let dna = report
            .input_partitions
            .iter()
            .find(|(_, n, _)| n == "DNASequence")
            .unwrap();
        assert!(dna.2, "DNA partition witnessed via classification");
        assert!(report.outputs_fully_covered());
    }
}
