//! Ontology-based equivalence partitioning of parameter domains (paper §3.1).

use crate::error::GenerationError;
use dex_modules::{ModuleDescriptor, Parameter};
use dex_ontology::{ConceptId, Ontology};

/// The partitions of every input parameter of one module, in declaration
/// order. Produced by [`input_partition_plan`].
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionPlan {
    /// `per_input[i]` lists the partitions (concept ids) of input `i`'s
    /// domain, in deterministic pre-order of the ontology.
    pub per_input: Vec<Vec<ConceptId>>,
}

impl PartitionPlan {
    /// Total number of partition combinations (the size of the cartesian
    /// product), saturating on overflow.
    pub fn combination_count(&self) -> usize {
        self.per_input
            .iter()
            .map(Vec::len)
            .fold(1usize, |acc, n| acc.saturating_mul(n))
    }

    /// Total number of input partitions across all inputs.
    pub fn partition_count(&self) -> usize {
        self.per_input.iter().map(Vec::len).sum()
    }

    /// Iterates all combinations as index vectors (`combo[i]` indexes into
    /// `per_input[i]`), in deterministic lexicographic order.
    pub fn combinations(&self) -> CombinationIter<'_> {
        CombinationIter {
            plan: self,
            next: if self.per_input.iter().any(|p| p.is_empty()) {
                None
            } else {
                Some(vec![0; self.per_input.len()])
            },
        }
    }
}

/// Lexicographic iterator over partition combinations.
pub struct CombinationIter<'a> {
    plan: &'a PartitionPlan,
    next: Option<Vec<usize>>,
}

impl Iterator for CombinationIter<'_> {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.next.clone()?;
        // Advance like an odometer, most significant digit first.
        let mut next = current.clone();
        let mut pos = next.len();
        loop {
            if pos == 0 {
                self.next = None;
                break;
            }
            pos -= 1;
            next[pos] += 1;
            if next[pos] < self.plan.per_input[pos].len() {
                self.next = Some(next);
                break;
            }
            next[pos] = 0;
        }
        Some(current)
    }
}

/// Partitions the domain of a single parameter: every realizable concept
/// subsumed by its semantic annotation (paper §3.1 / Example 3).
pub fn partitions_for(
    parameter: &Parameter,
    ontology: &Ontology,
) -> Result<Vec<ConceptId>, GenerationError> {
    let concept =
        ontology
            .id(&parameter.semantic)
            .ok_or_else(|| GenerationError::UnknownConcept {
                parameter: parameter.name.clone(),
                concept: parameter.semantic.clone(),
            })?;
    Ok(ontology.partitions_of(concept))
}

/// Builds the partition plan for all inputs of a module.
pub fn input_partition_plan(
    descriptor: &ModuleDescriptor,
    ontology: &Ontology,
) -> Result<PartitionPlan, GenerationError> {
    descriptor
        .validate()
        .map_err(GenerationError::BadDescriptor)?;
    let per_input = descriptor
        .inputs
        .iter()
        .map(|p| partitions_for(p, ontology))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(PartitionPlan { per_input })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_modules::ModuleKind;
    use dex_ontology::mygrid;
    use dex_values::StructuralType;

    fn descriptor(semantics: &[&str]) -> ModuleDescriptor {
        ModuleDescriptor::new(
            "m",
            "M",
            ModuleKind::SoapService,
            semantics
                .iter()
                .enumerate()
                .map(|(i, s)| Parameter::required(format!("in{i}"), StructuralType::Text, *s))
                .collect(),
            vec![Parameter::required("out", StructuralType::Text, "Report")],
        )
    }

    #[test]
    fn example3_partitioning() {
        // Paper Example 3: getAccession with a BiologicalSequence input.
        let onto = mygrid::ontology();
        let d = descriptor(&["BiologicalSequence"]);
        let plan = input_partition_plan(&d, &onto).unwrap();
        let names: Vec<&str> = plan.per_input[0]
            .iter()
            .map(|&c| onto.concept_name(c))
            .collect();
        assert_eq!(
            names,
            vec![
                "BiologicalSequence",
                "DNASequence",
                "RNASequence",
                "ProteinSequence"
            ]
        );
        assert_eq!(plan.combination_count(), 4);
        assert_eq!(plan.partition_count(), 4);
    }

    #[test]
    fn multi_input_combinations_are_lexicographic() {
        let onto = mygrid::ontology();
        let d = descriptor(&["BiologicalSequence", "OntologyTerm"]);
        let plan = input_partition_plan(&d, &onto).unwrap();
        assert_eq!(plan.per_input[1].len(), 3); // OntologyTerm, GOTerm, ECNumber
        let combos: Vec<Vec<usize>> = plan.combinations().collect();
        assert_eq!(combos.len(), 12);
        assert_eq!(combos[0], vec![0, 0]);
        assert_eq!(combos[1], vec![0, 1]);
        assert_eq!(combos[2], vec![0, 2]);
        assert_eq!(combos[3], vec![1, 0]);
        assert_eq!(combos[11], vec![3, 2]);
    }

    #[test]
    fn leaf_concept_yields_single_partition() {
        let onto = mygrid::ontology();
        let d = descriptor(&["UniprotAccession"]);
        let plan = input_partition_plan(&d, &onto).unwrap();
        assert_eq!(plan.combination_count(), 1);
        assert_eq!(plan.combinations().count(), 1);
    }

    #[test]
    fn unknown_concept_is_an_error() {
        let onto = mygrid::ontology();
        let d = descriptor(&["NotAConcept"]);
        assert!(matches!(
            input_partition_plan(&d, &onto),
            Err(GenerationError::UnknownConcept { .. })
        ));
    }

    #[test]
    fn empty_partition_list_yields_no_combinations() {
        let plan = PartitionPlan {
            per_input: vec![vec![], vec![ConceptId::from_index(0)]],
        };
        assert_eq!(plan.combinations().count(), 0);
        assert_eq!(plan.combination_count(), 0);
    }

    #[test]
    fn single_input_iteration_matches_partitions() {
        let onto = mygrid::ontology();
        let d = descriptor(&["Document"]);
        let plan = input_partition_plan(&d, &onto).unwrap();
        let combos: Vec<Vec<usize>> = plan.combinations().collect();
        assert_eq!(combos, vec![vec![0], vec![1], vec![2]]);
    }
}
