//! Completeness and conciseness of example sets (paper §4.2).
//!
//! Both metrics are defined against a module's ground-truth *classes of
//! behavior*. In the paper those were identified from module documentation
//! with a domain expert; here they are supplied by a [`BehaviorOracle`]
//! implemented by the synthetic universe. The oracle is used **only** for
//! scoring — the generator never sees it.

use crate::example::{DataExample, ExampleSet};
use std::collections::HashSet;

/// Ground truth about a module's classes of behavior.
///
/// "By classes of behavior, we refer to the different tasks that a given
/// module can perform" (§4.2) — not ontology classes. `class_of` assigns an
/// example's *inputs* to the behavior class they exercise.
pub trait BehaviorOracle {
    /// Total number of behavior classes of the module.
    fn class_count(&self) -> usize;

    /// The class the given example exercises, or `None` when the example
    /// falls outside every class (should not happen for examples produced by
    /// invoking the actual module).
    fn class_of(&self, example: &DataExample) -> Option<usize>;
}

/// Completeness + conciseness of one module's example set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModuleScore {
    /// `#classesCovered / #classes` — fraction of behavior classes that at
    /// least one data example characterizes.
    pub completeness: f64,
    /// `1 − #redundantExamples / #examples` — an example is redundant when an
    /// earlier example already describes its class.
    pub conciseness: f64,
    /// Distinct classes covered.
    pub classes_covered: usize,
    /// Total classes.
    pub classes_total: usize,
    /// Redundant examples.
    pub redundant: usize,
    /// Total examples.
    pub examples: usize,
}

/// Scores an example set against the oracle.
///
/// Edge cases: a module with zero classes is vacuously complete; an empty
/// example set has completeness 0 (unless there are no classes) and
/// conciseness 1 (no redundancy among zero examples).
pub fn score(examples: &ExampleSet, oracle: &dyn BehaviorOracle) -> ModuleScore {
    let classes_total = oracle.class_count();
    let mut seen: HashSet<usize> = HashSet::new();
    let mut redundant = 0usize;
    for example in examples.iter() {
        match oracle.class_of(example) {
            Some(class) => {
                if !seen.insert(class) {
                    redundant += 1;
                }
            }
            // An example exercising no known class cannot characterize any
            // behavior; it is redundant by definition.
            None => redundant += 1,
        }
    }
    let completeness = if classes_total == 0 {
        1.0
    } else {
        seen.len() as f64 / classes_total as f64
    };
    let conciseness = if examples.is_empty() {
        1.0
    } else {
        1.0 - redundant as f64 / examples.len() as f64
    };
    ModuleScore {
        completeness,
        conciseness,
        classes_covered: seen.len(),
        classes_total,
        redundant,
        examples: examples.len(),
    }
}

/// Convenience: just the completeness ratio.
pub fn completeness(examples: &ExampleSet, oracle: &dyn BehaviorOracle) -> f64 {
    score(examples, oracle).completeness
}

/// Convenience: just the conciseness ratio.
pub fn conciseness(examples: &ExampleSet, oracle: &dyn BehaviorOracle) -> f64 {
    score(examples, oracle).conciseness
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::Binding;
    use dex_modules::ModuleId;
    use dex_values::Value;

    /// Oracle: class = input integer modulo `classes`.
    struct ModOracle {
        classes: usize,
    }

    impl BehaviorOracle for ModOracle {
        fn class_count(&self) -> usize {
            self.classes
        }
        fn class_of(&self, example: &DataExample) -> Option<usize> {
            example.inputs[0]
                .value
                .as_i64()
                .map(|i| (i as usize) % self.classes)
        }
    }

    fn set(values: &[i64]) -> ExampleSet {
        let mut s = ExampleSet::new(ModuleId::from("m"));
        for &v in values {
            s.examples.push(DataExample::new(
                vec![Binding::new("in", Value::Integer(v))],
                vec![Binding::new("out", Value::Integer(v))],
                vec!["C".into()],
            ));
        }
        s
    }

    #[test]
    fn perfect_set_scores_one_one() {
        let oracle = ModOracle { classes: 3 };
        let s = score(&set(&[0, 1, 2]), &oracle);
        assert_eq!(s.completeness, 1.0);
        assert_eq!(s.conciseness, 1.0);
        assert_eq!(s.classes_covered, 3);
        assert_eq!(s.redundant, 0);
    }

    #[test]
    fn missing_class_lowers_completeness() {
        let oracle = ModOracle { classes: 4 };
        let s = score(&set(&[0, 1, 2]), &oracle);
        assert!((s.completeness - 0.75).abs() < 1e-12);
        assert_eq!(s.conciseness, 1.0);
    }

    #[test]
    fn duplicate_class_lowers_conciseness() {
        let oracle = ModOracle { classes: 2 };
        let s = score(&set(&[0, 2, 4, 1]), &oracle); // classes 0,0,0,1
        assert_eq!(s.completeness, 1.0);
        assert!((s.conciseness - 0.5).abs() < 1e-12);
        assert_eq!(s.redundant, 2);
    }

    #[test]
    fn empty_set_edge_cases() {
        let oracle = ModOracle { classes: 2 };
        let s = score(&set(&[]), &oracle);
        assert_eq!(s.completeness, 0.0);
        assert_eq!(s.conciseness, 1.0);
    }

    #[test]
    fn unclassifiable_examples_count_redundant() {
        struct NoneOracle;
        impl BehaviorOracle for NoneOracle {
            fn class_count(&self) -> usize {
                1
            }
            fn class_of(&self, _: &DataExample) -> Option<usize> {
                None
            }
        }
        let s = score(&set(&[1, 2]), &NoneOracle);
        assert_eq!(s.completeness, 0.0);
        assert_eq!(s.conciseness, 0.0);
    }

    #[test]
    fn convenience_wrappers_agree() {
        let oracle = ModOracle { classes: 2 };
        let examples = set(&[0, 1, 2]);
        assert_eq!(completeness(&examples, &oracle), 1.0);
        assert!((conciseness(&examples, &oracle) - (1.0 - 1.0 / 3.0)).abs() < 1e-12);
    }
}
