//! Data-example-guided module composition — the paper's second §8 future
//! work item ("how to use data examples to implicitly guide module
//! composition").
//!
//! Interface annotations alone over-approximate composability: an output
//! annotated `UniprotAccession` is *semantically* acceptable to any module
//! consuming `DatabaseAccession`, but the downstream module may still
//! reject the concrete values (wrong sub-syntax, out-of-range settings,
//! unparseable payloads). Data examples close that gap empirically: feed
//! the upstream module's example **outputs** into the downstream module's
//! input and count normal terminations.

use crate::example::ExampleSet;
use dex_modules::{BlackBox, ModuleCatalog, ModuleId};
use dex_ontology::Ontology;
use dex_values::Value;

/// Empirical composability of `upstream → downstream` on one input slot.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositionScore {
    /// Index of the upstream output feeding the downstream input.
    pub upstream_output: usize,
    /// Index of the downstream input being fed.
    pub downstream_input: usize,
    /// Example outputs attempted.
    pub attempted: usize,
    /// Normal terminations.
    pub accepted: usize,
}

impl CompositionScore {
    /// Acceptance ratio in `[0, 1]`; `0.0` when nothing was attempted.
    pub fn ratio(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.accepted as f64 / self.attempted as f64
        }
    }
}

/// Tests one candidate wiring empirically: every example output of the
/// upstream set is fed into `downstream`'s input slot (other inputs are
/// `Null`, so optional parameters default; modules with further mandatory
/// inputs are fed that slot's declared default-compatible value only when
/// optional — otherwise the probe invocation fails and scores accordingly).
pub fn composition_score(
    upstream_examples: &ExampleSet,
    upstream_output: usize,
    downstream: &dyn BlackBox,
    downstream_input: usize,
) -> CompositionScore {
    let inputs_len = downstream.descriptor().inputs.len();
    let mut attempted = 0usize;
    let mut accepted = 0usize;
    for example in upstream_examples.iter() {
        let Some(binding) = example.outputs.get(upstream_output) else {
            continue;
        };
        attempted += 1;
        let mut inputs = vec![Value::Null; inputs_len];
        inputs[downstream_input] = binding.value.clone();
        if downstream.invoke(&inputs).is_ok() {
            accepted += 1;
        }
    }
    CompositionScore {
        upstream_output,
        downstream_input,
        attempted,
        accepted,
    }
}

/// A downstream suggestion: a module and the best-scoring wiring found.
#[derive(Debug, Clone)]
pub struct CompositionSuggestion {
    /// The suggested downstream module.
    pub module: ModuleId,
    /// Best wiring found.
    pub score: CompositionScore,
}

/// Ranks every available catalog module as a downstream continuation of
/// `upstream_examples`, trying each (output, input) pair whose annotations
/// are subsumption-compatible, and keeping modules with at least one
/// accepted probe. Results are sorted by acceptance ratio (descending),
/// ties broken by module id for determinism.
pub fn suggest_downstream(
    upstream: &dyn BlackBox,
    upstream_examples: &ExampleSet,
    catalog: &ModuleCatalog,
    ontology: &Ontology,
) -> Vec<CompositionSuggestion> {
    let mut suggestions: Vec<CompositionSuggestion> = Vec::new();
    let upstream_outputs = &upstream.descriptor().outputs;
    for (id, candidate) in catalog.iter_available() {
        if id == &upstream.descriptor().id {
            continue;
        }
        let mut best: Option<CompositionScore> = None;
        for (o, out_param) in upstream_outputs.iter().enumerate() {
            for (i, in_param) in candidate.descriptor().inputs.iter().enumerate() {
                let semantic_ok = match (
                    ontology.id(&in_param.semantic),
                    ontology.id(&out_param.semantic),
                ) {
                    (Some(t), Some(s)) => ontology.subsumes(t, s),
                    _ => false,
                };
                if !semantic_ok || !in_param.structural.accepts(&out_param.structural) {
                    continue;
                }
                let score = composition_score(upstream_examples, o, candidate.as_ref(), i);
                if score.accepted > 0
                    && best
                        .as_ref()
                        .map(|b| score.ratio() > b.ratio())
                        .unwrap_or(true)
                {
                    best = Some(score);
                }
            }
        }
        if let Some(score) = best {
            suggestions.push(CompositionSuggestion {
                module: id.clone(),
                score,
            });
        }
    }
    suggestions.sort_by(|a, b| {
        b.score
            .ratio()
            .partial_cmp(&a.score.ratio())
            .expect("ratios are finite")
            .then_with(|| a.module.cmp(&b.module))
    });
    suggestions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_examples, GenerationConfig};
    use dex_pool::build_synthetic_pool;

    #[test]
    fn retrieval_feeds_conversion() {
        // get_uniprot_record's outputs (Uniprot records) must be accepted
        // by conv_uniprot_fasta.
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 4, 3);
        let up = universe
            .catalog
            .get(&"dr:get_uniprot_record".into())
            .unwrap();
        let report = generate_examples(
            up.as_ref(),
            &universe.ontology,
            &pool,
            &GenerationConfig::default(),
        )
        .unwrap();
        let down = universe
            .catalog
            .get(&"ft:conv_uniprot_fasta".into())
            .unwrap();
        let score = composition_score(&report.examples, 0, down.as_ref(), 0);
        assert_eq!(score.attempted, 1);
        assert_eq!(score.accepted, 1);
        assert_eq!(score.ratio(), 1.0);
    }

    #[test]
    fn mismatched_payload_scores_zero() {
        // Feeding a Uniprot *record* into a GenBank parser fails.
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 4, 3);
        let up = universe
            .catalog
            .get(&"dr:get_uniprot_record".into())
            .unwrap();
        let report = generate_examples(
            up.as_ref(),
            &universe.ontology,
            &pool,
            &GenerationConfig::default(),
        )
        .unwrap();
        let down = universe
            .catalog
            .get(&"ft:conv_genbank_fasta".into())
            .unwrap();
        let score = composition_score(&report.examples, 0, down.as_ref(), 0);
        assert_eq!(score.accepted, 0);
        assert_eq!(score.ratio(), 0.0);
    }

    #[test]
    fn suggestions_are_ranked_and_annotation_compatible() {
        let universe = dex_universe::build();
        let pool = build_synthetic_pool(&universe.ontology, 4, 3);
        let up = universe
            .catalog
            .get(&"da:get_most_similar_protein".into())
            .unwrap();
        let report = generate_examples(
            up.as_ref(),
            &universe.ontology,
            &pool,
            &GenerationConfig::default(),
        )
        .unwrap();
        let suggestions = suggest_downstream(
            up.as_ref(),
            &report.examples,
            &universe.catalog,
            &universe.ontology,
        );
        assert!(!suggestions.is_empty());
        // Ratios are sorted descending.
        for pair in suggestions.windows(2) {
            assert!(pair[0].score.ratio() >= pair[1].score.ratio());
        }
        // The obvious continuation (retrieve the record behind the
        // accession) is among the perfect-score suggestions.
        let perfect: Vec<&str> = suggestions
            .iter()
            .filter(|s| s.score.ratio() == 1.0)
            .map(|s| s.module.as_str())
            .collect();
        assert!(
            perfect.contains(&"dr:get_uniprot_record"),
            "perfect suggestions: {perfect:?}"
        );
    }

    #[test]
    fn empty_examples_attempt_nothing() {
        let universe = dex_universe::build();
        let down = universe
            .catalog
            .get(&"ft:conv_uniprot_fasta".into())
            .unwrap();
        let empty = ExampleSet::new("up".into());
        let score = composition_score(&empty, 0, down.as_ref(), 0);
        assert_eq!(score.attempted, 0);
        assert_eq!(score.ratio(), 0.0);
    }
}
