//! The delta model of the incremental re-annotation layer (ROADMAP item 4).
//!
//! Real registries change continuously — curators contribute pool
//! instances, providers withdraw and restore modules, the annotation
//! ontology grows new leaves — and the paper's pipeline answers every such
//! change with a full re-run. This module provides the *vocabulary* of
//! incremental recomputation: typed [`Delta`] events, the
//! [`DependencyIndex`] that maps an event to the set of modules whose
//! `(input, partition)` cells it can possibly dirty, and the accounting
//! ([`DeltaReport`], `dex.delta.*` telemetry) that makes the savings
//! auditable. The engine that applies deltas to live pipeline state lives
//! in `dex-experiments::incremental`, next to the fleet/matching executors
//! it reuses.
//!
//! Dirty-set derivation is two-staged and *sound per stage*:
//!
//! 1. **Candidate stage** (this module): a pool mutation on concept `c` can
//!    only affect modules with `c` among their planned input partitions
//!    (the pool is probed per `(input, partition)`, never scanned); an
//!    ontology leaf added under `p` can only affect modules with an input
//!    annotated by an ancestor-or-self of `p` (only their partition sets
//!    can change). Everything else is provably clean without looking at it.
//! 2. **Confirmation stage** (`generation_signature`): candidates are
//!    confirmed dirty only if the digest of their plan + resolved pool
//!    picks actually changed — e.g. an instance appended *behind* every
//!    probe window dirties nobody, and the signature proves it.

use crate::partition::input_partition_plan;
use dex_modules::{ModuleDescriptor, ModuleId};
use dex_ontology::Ontology;
use dex_pool::AnnotatedInstance;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// One registry change, as observed by the incremental layer.
///
/// The variants mirror the three change sources the paper's setting
/// exhibits: the curated instance pool (§4.1), module availability
/// (§6's withdrawn services, the fault model's flapping ones), and the
/// annotation ontology itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Delta {
    /// A curator contributed a new annotated instance to the pool.
    PoolInsert {
        /// The instance, annotation included.
        instance: AnnotatedInstance,
    },
    /// The `occurrence`-th instance annotated exactly `concept` (in
    /// insertion order) left the pool. A no-op when no such occurrence
    /// exists.
    PoolRemove {
        /// The exact annotation of the instance to remove.
        concept: String,
        /// Which of the concept's realizations, in insertion order.
        occurrence: usize,
    },
    /// A module became unavailable (provider withdrew it, or it flapped
    /// down).
    ModuleWithdraw {
        /// The withdrawn module.
        id: ModuleId,
    },
    /// A previously withdrawn module came back.
    ModuleRestore {
        /// The restored module.
        id: ModuleId,
    },
    /// The ontology grew a new concrete leaf concept under an existing
    /// parent.
    OntologyEdgeAdd {
        /// Name of the existing parent concept.
        parent: String,
        /// Name of the new leaf concept.
        child: String,
    },
}

/// What one batch of deltas cost, against what a cold run would have.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaReport {
    /// Delta events applied.
    pub events: usize,
    /// Modules the candidate stage flagged for signature re-checks.
    pub dirty_candidates: usize,
    /// Modules whose examples were actually regenerated (signature or
    /// availability change confirmed).
    pub regenerated_modules: usize,
    /// Total `(input, partition)` cells across available modules after the
    /// batch.
    pub cells_total: usize,
    /// Cells belonging to regenerated modules — the dirty fraction a cold
    /// run would have recomputed anyway, everything else being pure waste.
    pub cells_dirty: usize,
    /// Regenerated modules whose example set (or generation error) really
    /// differed from the previous state.
    pub examples_changed: usize,
    /// Modules whose partition fingerprint changed (bucket migration).
    pub fingerprints_changed: usize,
    /// Module pairs re-matched this batch.
    pub recomputed_pairs: usize,
    /// Verdicts carried forward unchanged from the previous matrix.
    pub carried_forward: usize,
    /// Stored verdicts dropped without replacement (withdrawn or migrated
    /// modules).
    pub dropped_pairs: usize,
}

impl DeltaReport {
    /// Dirty fraction of the cell population, in `[0, 1]` (`0` for an
    /// empty registry).
    pub fn dirty_cell_ratio(&self) -> f64 {
        if self.cells_total == 0 {
            0.0
        } else {
            self.cells_dirty as f64 / self.cells_total as f64
        }
    }

    /// Folds this batch's accounting into the process-wide `dex.delta.*`
    /// counters (no-op unless telemetry is enabled).
    pub fn publish_telemetry(&self) {
        if !dex_telemetry::is_enabled() {
            return;
        }
        let counters = delta_counters();
        counters.events.add(self.events as u64);
        counters.dirty_cells.add(self.cells_dirty as u64);
        counters.carried_forward.add(self.carried_forward as u64);
        counters.recomputed_pairs.add(self.recomputed_pairs as u64);
        counters
            .recomputed_modules
            .add(self.regenerated_modules as u64);
    }
}

/// The candidate-stage dependency graph: which tracked modules can a delta
/// on a given concept possibly affect.
///
/// Maintained per module (a module's entry is refreshed whenever its plan
/// may have changed), so ontology deltas cost one plan recomputation per
/// *affected* module, not a full rebuild.
#[derive(Debug, Clone, Default)]
pub struct DependencyIndex {
    /// Partition concept name → tracked module slots planning it.
    by_partition: HashMap<String, BTreeSet<usize>>,
    /// Per slot: the partition concept names currently indexed for it
    /// (needed to unindex before refreshing).
    planned: Vec<Vec<String>>,
    /// Per slot: the input annotation concept names of the descriptor.
    input_concepts: Vec<Vec<String>>,
    /// Per slot: `(input, partition)` cell count of the current plan (`0`
    /// when planning fails — a cold run would generate nothing either).
    cells: Vec<usize>,
}

impl DependencyIndex {
    /// An empty index.
    pub fn new() -> DependencyIndex {
        DependencyIndex::default()
    }

    /// (Re)indexes slot `idx` for `descriptor` under the current ontology,
    /// growing the index as needed. Call again after any ontology delta
    /// that may have changed the module's partition sets.
    pub fn set_module(&mut self, idx: usize, descriptor: &ModuleDescriptor, ontology: &Ontology) {
        if idx >= self.planned.len() {
            self.planned.resize_with(idx + 1, Vec::new);
            self.input_concepts.resize_with(idx + 1, Vec::new);
            self.cells.resize(idx + 1, 0);
        }
        for concept in self.planned[idx].drain(..) {
            if let Some(slots) = self.by_partition.get_mut(&concept) {
                slots.remove(&idx);
                if slots.is_empty() {
                    self.by_partition.remove(&concept);
                }
            }
        }
        self.input_concepts[idx] = descriptor
            .inputs
            .iter()
            .map(|p| p.semantic.clone())
            .collect();
        match input_partition_plan(descriptor, ontology) {
            Ok(plan) => {
                let mut planned = Vec::new();
                for parts in &plan.per_input {
                    for &p in parts {
                        let name = ontology.concept_name(p).to_string();
                        self.by_partition
                            .entry(name.clone())
                            .or_default()
                            .insert(idx);
                        planned.push(name);
                    }
                }
                self.cells[idx] = plan.partition_count();
                self.planned[idx] = planned;
            }
            Err(_) => {
                self.cells[idx] = 0;
            }
        }
    }

    /// Tracked slots whose plan references partition `concept` — the
    /// candidate dirty set of a pool delta on that concept.
    pub fn modules_for_concept(&self, concept: &str) -> Vec<usize> {
        self.by_partition
            .get(concept)
            .map(|slots| slots.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Tracked slots with an input annotated by an ancestor-or-self of
    /// `parent` — the candidate dirty set of a new ontology leaf under
    /// `parent`: only those modules' partition sets can gain the leaf.
    pub fn modules_with_input_subsuming(&self, parent: &str, ontology: &Ontology) -> Vec<usize> {
        let Some(parent_id) = ontology.id(parent) else {
            return Vec::new();
        };
        self.input_concepts
            .iter()
            .enumerate()
            .filter(|(_, concepts)| {
                concepts.iter().any(|c| {
                    ontology
                        .id(c)
                        .is_some_and(|cid| ontology.subsumes(cid, parent_id))
                })
            })
            .map(|(idx, _)| idx)
            .collect()
    }

    /// `(input, partition)` cell count of slot `idx`'s current plan.
    pub fn cells(&self, idx: usize) -> usize {
        self.cells.get(idx).copied().unwrap_or(0)
    }
}

/// The `dex.delta.*` telemetry counters, interned once per process and
/// surfaced generically by `RunReport::collect`.
pub struct DeltaCounters {
    /// `dex.delta.events` — delta events applied.
    pub events: dex_telemetry::Counter,
    /// `dex.delta.dirty_cells` — cells regenerated across all batches.
    pub dirty_cells: dex_telemetry::Counter,
    /// `dex.delta.carried_forward` — verdicts reused without re-matching.
    pub carried_forward: dex_telemetry::Counter,
    /// `dex.delta.recomputed_pairs` — pairs re-matched.
    pub recomputed_pairs: dex_telemetry::Counter,
    /// `dex.delta.recomputed_modules` — modules regenerated.
    pub recomputed_modules: dex_telemetry::Counter,
}

/// The interned [`DeltaCounters`] singleton.
pub fn delta_counters() -> &'static DeltaCounters {
    static COUNTERS: std::sync::OnceLock<DeltaCounters> = std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| DeltaCounters {
        events: dex_telemetry::counter("dex.delta.events"),
        dirty_cells: dex_telemetry::counter("dex.delta.dirty_cells"),
        carried_forward: dex_telemetry::counter("dex.delta.carried_forward"),
        recomputed_pairs: dex_telemetry::counter("dex.delta.recomputed_pairs"),
        recomputed_modules: dex_telemetry::counter("dex.delta.recomputed_modules"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_modules::{ModuleKind, Parameter};
    use dex_ontology::mygrid;
    use dex_values::StructuralType;

    fn descriptor(id: &str, input_concept: &str) -> ModuleDescriptor {
        ModuleDescriptor::new(
            id,
            id,
            ModuleKind::LocalProgram,
            vec![Parameter::required(
                "x",
                StructuralType::Text,
                input_concept,
            )],
            vec![Parameter::required("y", StructuralType::Text, "Document")],
        )
    }

    #[test]
    fn pool_deltas_hit_only_modules_planning_the_concept() {
        let onto = mygrid::ontology();
        let mut deps = DependencyIndex::new();
        deps.set_module(0, &descriptor("m0", "BiologicalSequence"), &onto);
        deps.set_module(1, &descriptor("m1", "AlgorithmName"), &onto);
        // BiologicalSequence partitions into itself + DNA/RNA/Protein.
        assert_eq!(deps.modules_for_concept("DNASequence"), vec![0]);
        assert_eq!(deps.modules_for_concept("AlgorithmName"), vec![1]);
        assert!(deps.modules_for_concept("Document").is_empty());
        assert_eq!(deps.cells(0), 4);
        assert_eq!(deps.cells(1), 1);
    }

    #[test]
    fn ontology_deltas_hit_only_modules_annotated_above_the_parent() {
        let onto = mygrid::ontology();
        let mut deps = DependencyIndex::new();
        deps.set_module(0, &descriptor("m0", "BiologicalSequence"), &onto);
        deps.set_module(1, &descriptor("m1", "AlgorithmName"), &onto);
        // A new leaf under DNASequence can only change m0's partitions.
        assert_eq!(deps.modules_with_input_subsuming("DNASequence", &onto), [0]);
        assert!(deps
            .modules_with_input_subsuming("AlignmentReport", &onto)
            .is_empty());
    }

    #[test]
    fn reindexing_a_module_unindexes_its_old_plan() {
        let onto = mygrid::ontology();
        let mut deps = DependencyIndex::new();
        deps.set_module(0, &descriptor("m0", "BiologicalSequence"), &onto);
        deps.set_module(0, &descriptor("m0", "AlgorithmName"), &onto);
        assert!(deps.modules_for_concept("DNASequence").is_empty());
        assert_eq!(deps.modules_for_concept("AlgorithmName"), vec![0]);
    }
}
