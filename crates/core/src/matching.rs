//! Comparing module behavior through aligned data examples (paper §6).

use crate::error::GenerationError;
use crate::example::ExampleSet;
use crate::generate::{
    generate_examples, generate_examples_retrying, GenerationConfig, GenerationReport,
};
use dex_modules::{
    BlackBox, InvocationCache, InvocationCacheStats, ModuleDescriptor, ModuleId, Retrier,
    RetryStats,
};
use dex_ontology::Ontology;
use dex_pool::InstancePool;
use dex_values::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How strictly parameters must correspond for two modules to be compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingMode {
    /// The paper's base requirement: a 1-to-1 mapping between parameters
    /// "that have the same semantic domain and structure".
    Strict,
    /// The relaxation behind the paper's Figure 7: a candidate may be usable
    /// even when its parameters are *not* semantically identical — its input
    /// concept must **subsume** the target's (it accepts everything the
    /// target accepted) and its output concept must be subsumption-related
    /// to the target's (the delivered values may simply be annotated more
    /// broadly, as with `GetBiologicalSequence` replacing
    /// `GetProteinSequence`).
    Subsuming,
}

/// A 1-to-1 correspondence between a target module's parameters and a
/// candidate's: `inputs[i]` is the candidate input index receiving the
/// target's input `i`; `outputs[o]` the candidate output compared against
/// the target's output `o`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamMapping {
    pub inputs: Vec<usize>,
    pub outputs: Vec<usize>,
}

/// The §6 classification of a module pair's behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchVerdict {
    /// All mapped data examples produce the same outputs ("eventually
    /// equivalent" — the heuristic may have missed corner cases).
    Equivalent { compared: usize },
    /// Some but not all mapped examples agree.
    Overlapping { agreeing: usize, compared: usize },
    /// No mapped example agrees.
    Disjoint { compared: usize },
}

impl MatchVerdict {
    /// Whether the verdict suggests the candidate can replace the target in
    /// at least part of the target's domain.
    pub fn is_usable(&self) -> bool {
        matches!(
            self,
            MatchVerdict::Equivalent { .. } | MatchVerdict::Overlapping { .. }
        )
    }
}

impl fmt::Display for MatchVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchVerdict::Equivalent { compared } => {
                write!(f, "equivalent ({compared} examples agree)")
            }
            MatchVerdict::Overlapping { agreeing, compared } => {
                write!(f, "overlapping ({agreeing}/{compared} examples agree)")
            }
            MatchVerdict::Disjoint { compared } => {
                write!(f, "disjoint (0/{compared} examples agree)")
            }
        }
    }
}

/// Finds a 1-to-1 parameter mapping from `target` to `candidate`, greedily
/// in declaration order, or explains why none exists.
pub fn map_parameters(
    target: &ModuleDescriptor,
    candidate: &ModuleDescriptor,
    ontology: &Ontology,
    mode: MappingMode,
) -> Result<ParamMapping, GenerationError> {
    if target.inputs.len() != candidate.inputs.len()
        || target.outputs.len() != candidate.outputs.len()
    {
        return Err(GenerationError::Incomparable(format!(
            "arity mismatch: {}×{} vs {}×{}",
            target.inputs.len(),
            target.outputs.len(),
            candidate.inputs.len(),
            candidate.outputs.len()
        )));
    }

    let input_ok = |t: &dex_modules::Parameter, c: &dex_modules::Parameter| match mode {
        MappingMode::Strict => t.compatible(c),
        MappingMode::Subsuming => {
            // The candidate must structurally accept the target's values and
            // semantically accept at least the target's domain.
            c.structural.accepts(&t.structural)
                && match (ontology.id(&c.semantic), ontology.id(&t.semantic)) {
                    (Some(cs), Some(ts)) => ontology.subsumes(cs, ts),
                    _ => false,
                }
        }
    };
    let output_ok = |t: &dex_modules::Parameter, c: &dex_modules::Parameter| match mode {
        MappingMode::Strict => t.compatible(c),
        MappingMode::Subsuming => {
            t.structural == c.structural
                && match (ontology.id(&c.semantic), ontology.id(&t.semantic)) {
                    (Some(cs), Some(ts)) => ontology.subsumes(cs, ts) || ontology.subsumes(ts, cs),
                    _ => false,
                }
        }
    };

    let inputs = greedy_assign(&target.inputs, &candidate.inputs, input_ok).ok_or_else(|| {
        GenerationError::Incomparable("no 1-to-1 input parameter mapping".to_string())
    })?;
    let outputs =
        greedy_assign(&target.outputs, &candidate.outputs, output_ok).ok_or_else(|| {
            GenerationError::Incomparable("no 1-to-1 output parameter mapping".to_string())
        })?;
    Ok(ParamMapping { inputs, outputs })
}

/// Greedy bipartite assignment with backtracking (parameter lists are tiny,
/// so the worst case is irrelevant in practice).
fn greedy_assign<T>(
    targets: &[T],
    candidates: &[T],
    compatible: impl Fn(&T, &T) -> bool,
) -> Option<Vec<usize>> {
    fn go<T>(
        i: usize,
        targets: &[T],
        candidates: &[T],
        used: &mut Vec<bool>,
        out: &mut Vec<usize>,
        compatible: &impl Fn(&T, &T) -> bool,
    ) -> bool {
        if i == targets.len() {
            return true;
        }
        for (j, cand) in candidates.iter().enumerate() {
            if !used[j] && compatible(&targets[i], cand) {
                used[j] = true;
                out.push(j);
                if go(i + 1, targets, candidates, used, out, compatible) {
                    return true;
                }
                out.pop();
                used[j] = false;
            }
        }
        false
    }
    let mut used = vec![false; candidates.len()];
    let mut out = Vec::with_capacity(targets.len());
    if go(0, targets, candidates, &mut used, &mut out, &compatible) {
        Some(out)
    } else {
        None
    }
}

/// Replays a set of data examples of a target module against a candidate:
/// the candidate is invoked on each example's input values (reordered by the
/// parameter mapping) and its outputs compared with the recorded ones.
///
/// This is exactly how decayed workflows are repaired in §6 — the target is
/// gone, only its (provenance-reconstructed) examples remain.
///
/// Returns an error if no parameter mapping exists or the example set is
/// empty (nothing to compare — no verdict can be honest).
pub fn match_against_examples(
    target: &ModuleDescriptor,
    examples: &ExampleSet,
    candidate: &dyn BlackBox,
    ontology: &Ontology,
    mode: MappingMode,
) -> Result<MatchVerdict, GenerationError> {
    match_with(target, examples, candidate, ontology, mode, None, None)
}

/// [`match_against_examples`] through a shared [`InvocationCache`]: each
/// distinct candidate input vector is invoked at most once across every
/// replay (and generation) sharing the cache. Same verdicts, fewer
/// invocations — the replay vectors of an aligned comparison are exactly the
/// vectors generation already fed the candidate.
pub fn match_against_examples_cached(
    target: &ModuleDescriptor,
    examples: &ExampleSet,
    candidate: &dyn BlackBox,
    ontology: &Ontology,
    mode: MappingMode,
    cache: &InvocationCache,
) -> Result<MatchVerdict, GenerationError> {
    match_with(
        target,
        examples,
        candidate,
        ontology,
        mode,
        Some(cache),
        None,
    )
}

/// [`match_against_examples_cached`] with an explicit, shared [`Retrier`]:
/// a replay invocation that fails *transiently* is re-attempted under the
/// retrier's policy before it is scored as a behavioral disagreement —
/// a flaky candidate must not look behaviorally different from a healthy
/// one. Permanent errors still count as disagreements immediately.
pub fn match_against_examples_retrying(
    target: &ModuleDescriptor,
    examples: &ExampleSet,
    candidate: &dyn BlackBox,
    ontology: &Ontology,
    mode: MappingMode,
    cache: &InvocationCache,
    retrier: &Retrier,
) -> Result<MatchVerdict, GenerationError> {
    match_with(
        target,
        examples,
        candidate,
        ontology,
        mode,
        Some(cache),
        Some(retrier),
    )
}

fn match_with(
    target: &ModuleDescriptor,
    examples: &ExampleSet,
    candidate: &dyn BlackBox,
    ontology: &Ontology,
    mode: MappingMode,
    cache: Option<&InvocationCache>,
    retrier: Option<&Retrier>,
) -> Result<MatchVerdict, GenerationError> {
    let mapping = map_parameters(target, candidate.descriptor(), ontology, mode)?;
    if examples.is_empty() {
        return Err(GenerationError::Incomparable(
            "no data examples to compare against".to_string(),
        ));
    }
    let mut compared = 0usize;
    let mut agreeing = 0usize;
    let local_retrier;
    let retrier = match retrier {
        Some(shared) => shared,
        None => {
            local_retrier = Retrier::none();
            &local_retrier
        }
    };
    for example in examples.iter() {
        compared += 1;
        // Build the candidate's input vector.
        let mut inputs: Vec<Value> = vec![Value::Null; candidate.descriptor().inputs.len()];
        for (t_idx, &c_idx) in mapping.inputs.iter().enumerate() {
            inputs[c_idx] = example.inputs[t_idx].value.clone();
        }
        let all_equal = |outputs: &[Value]| {
            mapping
                .outputs
                .iter()
                .enumerate()
                .all(|(t_idx, &c_idx)| outputs[c_idx] == example.outputs[t_idx].value)
        };
        // A failed invocation on inputs the target handled is a behavioral
        // disagreement on that example.
        let agreed = match cache {
            Some(cache) => match retrier.invoke_cached(cache, candidate, &inputs).as_ref() {
                Ok(outputs) => all_equal(outputs),
                Err(_) => false,
            },
            None => match retrier.invoke(candidate, &inputs) {
                Ok(outputs) => all_equal(&outputs),
                Err(_) => false,
            },
        };
        if agreed {
            agreeing += 1;
        }
    }
    Ok(if agreeing == compared {
        MatchVerdict::Equivalent { compared }
    } else if agreeing == 0 {
        MatchVerdict::Disjoint { compared }
    } else {
        MatchVerdict::Overlapping { agreeing, compared }
    })
}

/// Compares two live modules by generating *aligned* data examples for the
/// target (same pool, same value offsets — §6 requires "the same values for
/// both i and i′") and replaying them against the candidate.
///
/// For repeated comparisons over the same ontology/pool/config, build one
/// [`MatchSession`] instead: it memoizes the target-side generation, so each
/// module is invoked once per value offset rather than once per pair.
pub fn compare_modules(
    target: &dyn BlackBox,
    candidate: &dyn BlackBox,
    ontology: &Ontology,
    pool: &InstancePool,
    config: &GenerationConfig,
) -> Result<MatchVerdict, GenerationError> {
    let report = generate_examples(target, ontology, pool, config)?;
    match_against_examples(
        target.descriptor(),
        &report.examples,
        candidate,
        ontology,
        MappingMode::Strict,
    )
}

/// How one pair in an all-pairs matching run concluded: a behavioral verdict,
/// or the reason the pair could not be compared at all (no parameter mapping,
/// target generation failure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MatchOutcome {
    /// The pair was compared over the target's data examples.
    Verdict(MatchVerdict),
    /// The pair admits no honest verdict; the string is the
    /// [`GenerationError`] rendering.
    Incomparable(String),
}

/// One entry of an all-pairs matching run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchReport {
    /// The module whose data examples were replayed.
    pub target: ModuleId,
    /// The module the examples were replayed against.
    pub candidate: ModuleId,
    /// How the comparison concluded.
    pub outcome: MatchOutcome,
    /// Number of data examples the target side contributed (0 when
    /// incomparable before replay).
    pub examples: usize,
}

// ---------------------------------------------------------------------------
// Partition fingerprints: the blocking layer over all-pairs matching.
// ---------------------------------------------------------------------------

/// 64-bit FNV-1a — a tiny, dependency-free, *stable* hash. `DefaultHasher`'s
/// algorithm is explicitly unspecified and may change between std releases;
/// fingerprints are compared across runs (bench trajectories, serialized
/// reports), so they must be bit-identical forever.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv1a_u64(state: u64, v: u64) -> u64 {
    fnv1a(state, &v.to_le_bytes())
}

/// A structural summary of a module's interface that *provably* decides
/// strict comparability without invoking anything: two modules admit a
/// 1-to-1 [`MappingMode::Strict`] parameter mapping **iff** their input
/// (resp. output) parameter *multisets* of `(structural, semantic)` labels
/// are equal — strict compatibility is label equality, so a perfect matching
/// in the compatibility bipartite graph exists exactly when every label
/// class has the same cardinality on both sides.
///
/// The fingerprint hashes, per direction, the sorted label multiset, plus
/// the multiset of input *partition sets* (the §3.1 sub-domain partitions of
/// each input's annotation concept) — the partition component is implied by
/// the semantic labels under a fixed ontology, but keeping it explicit makes
/// the fingerprint the unit of bucketing for partition-aligned workloads
/// and catches ontology drift between index build and use.
///
/// Soundness is one-directional by construction: equal multisets always
/// produce equal fingerprints (the encoding is canonical — sorted, length
/// prefixed, separator-delimited), so *unequal* fingerprints prove the
/// multisets differ and therefore that `map_parameters` must fail. A hash
/// collision can only make two differing interfaces look compatible, which
/// costs a wasted full comparison but never a wrong verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PartitionFingerprint {
    /// Number of input parameters.
    pub inputs: usize,
    /// Number of output parameters.
    pub outputs: usize,
    /// FNV-1a over the sorted input `(structural, semantic)` label multiset.
    pub inputs_sig: u64,
    /// FNV-1a over the sorted output `(structural, semantic)` label multiset.
    pub outputs_sig: u64,
    /// FNV-1a over the multiset of per-input partition sets.
    pub partitions_sig: u64,
}

/// Canonical multiset signature of a parameter list: sort the rendered
/// labels, then fold them (length-prefixed) into FNV-1a.
fn param_multiset_sig(params: &[dex_modules::Parameter]) -> u64 {
    let mut labels: Vec<String> = params
        .iter()
        .map(|p| format!("{}\u{1f}{}", p.structural, p.semantic))
        .collect();
    labels.sort_unstable();
    let mut sig = fnv1a_u64(FNV_OFFSET, labels.len() as u64);
    for label in &labels {
        sig = fnv1a_u64(sig, label.len() as u64);
        sig = fnv1a(sig, label.as_bytes());
    }
    sig
}

impl PartitionFingerprint {
    /// Fingerprints a module interface against `ontology`.
    pub fn of(descriptor: &ModuleDescriptor, ontology: &Ontology) -> PartitionFingerprint {
        // Per-input partition-set hashes, combined as a sorted multiset so
        // parameter declaration order is irrelevant (mappings are 1-to-1,
        // not positional).
        let mut partition_sets: Vec<u64> = descriptor
            .inputs
            .iter()
            .map(|p| match ontology.id(&p.semantic) {
                Some(concept) => {
                    let mut h = fnv1a(FNV_OFFSET, b"partitions");
                    for part in ontology.partitions_of(concept) {
                        let name = ontology.concept_name(part);
                        h = fnv1a_u64(h, name.len() as u64);
                        h = fnv1a(h, name.as_bytes());
                    }
                    h
                }
                // Unknown concept: no partitions exist; key by the raw name
                // so two unknown-but-different annotations stay distinct.
                None => fnv1a(fnv1a(FNV_OFFSET, b"unknown"), p.semantic.as_bytes()),
            })
            .collect();
        partition_sets.sort_unstable();
        let partitions_sig = partition_sets
            .iter()
            .fold(FNV_OFFSET, |acc, &h| fnv1a_u64(acc, h));
        PartitionFingerprint {
            inputs: descriptor.inputs.len(),
            outputs: descriptor.outputs.len(),
            inputs_sig: param_multiset_sig(&descriptor.inputs),
            outputs_sig: param_multiset_sig(&descriptor.outputs),
            partitions_sig,
        }
    }

    /// Whether a strict 1-to-1 parameter mapping can exist between two
    /// modules carrying these fingerprints (in either direction — the
    /// relation is reflexive and symmetric). `false` is a *proof* of
    /// incomparability; `true` merely admits the full comparison.
    pub fn compatible(&self, other: &PartitionFingerprint) -> bool {
        self == other
    }

    /// Whether the two interfaces have the same arity. Arity mismatch is
    /// the one incomparability proof that holds for **every**
    /// [`MappingMode`] (the mapping is 1-to-1 in all of them), so this is
    /// the correct prefilter where the subsuming relaxation may apply.
    pub fn arity_compatible(&self, other: &PartitionFingerprint) -> bool {
        self.inputs == other.inputs && self.outputs == other.outputs
    }

    /// A single stable 64-bit digest of the whole fingerprint (for compact
    /// logging and cross-run comparison).
    pub fn stable_hash(&self) -> u64 {
        let mut h = fnv1a_u64(FNV_OFFSET, self.inputs as u64);
        h = fnv1a_u64(h, self.outputs as u64);
        h = fnv1a_u64(h, self.inputs_sig);
        h = fnv1a_u64(h, self.outputs_sig);
        fnv1a_u64(h, self.partitions_sig)
    }
}

/// Aggregate accounting of one blocked all-pairs run, serialized into
/// `BENCH_blocking.json` and telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockingStats {
    /// Ordered module pairs in the sweep (`n·(n−1)`).
    pub pairs_total: usize,
    /// Pairs whose fingerprints were compatible — the full memoized
    /// aligned-example comparison ran on exactly these.
    pub pairs_compared: usize,
    /// Pairs proven incomparable by fingerprints alone (no invocation).
    pub pairs_pruned: usize,
    /// Pairs skipped because a module was unavailable (withdrawn ids).
    pub pairs_unavailable: usize,
    /// Distinct fingerprint buckets among the available modules.
    pub buckets: usize,
    /// Largest bucket's module count (the worst-case comparison hotspot).
    pub largest_bucket: usize,
}

impl BlockingStats {
    /// Fraction of pairs pruned without comparison, in `[0, 1]`.
    pub fn prune_ratio(&self) -> f64 {
        if self.pairs_total == 0 {
            0.0
        } else {
            (self.pairs_total - self.pairs_compared) as f64 / self.pairs_total as f64
        }
    }
}

/// Fingerprint buckets over a module list: index `i` of the constructed
/// slice corresponds to the `i`-th descriptor handed to [`build`].
///
/// The index is *incrementally maintainable*: [`insert`] and [`remove`]
/// update a single slot without re-fingerprinting the rest of the
/// population, and the resulting bucket map is identical to a fresh
/// [`build`] over the equivalent descriptor list (property-tested in
/// `tests/matching_properties.rs`). The canonical bucket order is
/// ascending-by-smallest-member-index, which coincides with `build`'s
/// first-seen order because a bucket's first-seen member *is* its smallest
/// index during the ascending build scan.
///
/// [`build`]: FingerprintIndex::build
/// [`insert`]: FingerprintIndex::insert
/// [`remove`]: FingerprintIndex::remove
#[derive(Debug, Clone)]
pub struct FingerprintIndex {
    /// One fingerprint per module, `None` where no descriptor was available.
    fingerprints: Vec<Option<PartitionFingerprint>>,
    /// Bucket membership per fingerprint, each member list kept sorted
    /// ascending (the canonical form shared by built and mutated indexes).
    members: HashMap<PartitionFingerprint, Vec<usize>>,
}

impl FingerprintIndex {
    /// Builds the index from per-module descriptors (a `None` descriptor —
    /// e.g. a withdrawn module — lands in no bucket and compares with
    /// nothing).
    pub fn build<'d>(
        descriptors: impl IntoIterator<Item = Option<&'d ModuleDescriptor>>,
        ontology: &Ontology,
    ) -> FingerprintIndex {
        let fingerprints: Vec<Option<PartitionFingerprint>> = descriptors
            .into_iter()
            .map(|d| d.map(|d| PartitionFingerprint::of(d, ontology)))
            .collect();
        let mut members: HashMap<PartitionFingerprint, Vec<usize>> = HashMap::new();
        for (idx, fp) in fingerprints.iter().enumerate() {
            let Some(fp) = fp else { continue };
            // Ascending scan: pushes keep every member list sorted.
            members.entry(*fp).or_default().push(idx);
        }
        FingerprintIndex {
            fingerprints,
            members,
        }
    }

    /// Number of module slots the index spans (bucketed or not).
    pub fn len(&self) -> usize {
        self.fingerprints.len()
    }

    /// Whether the index spans no module slots.
    pub fn is_empty(&self) -> bool {
        self.fingerprints.is_empty()
    }

    /// The fingerprint of module `idx`, if it had a descriptor.
    pub fn fingerprint(&self, idx: usize) -> Option<&PartitionFingerprint> {
        self.fingerprints.get(idx).and_then(|fp| fp.as_ref())
    }

    /// Sets slot `idx` to `descriptor`'s fingerprint, moving it between
    /// buckets as needed (growing the index when `idx` is past the end).
    /// This is the single-slot analogue of rebuilding with the descriptor
    /// list changed at `idx` — a provider re-registering a module, or an
    /// ontology edit changing one module's partition sets.
    pub fn insert(&mut self, idx: usize, descriptor: &ModuleDescriptor, ontology: &Ontology) {
        self.set(idx, Some(PartitionFingerprint::of(descriptor, ontology)));
    }

    /// Clears slot `idx` (a withdrawn module): it leaves its bucket and
    /// compares with nothing until re-inserted. No-op past the end.
    pub fn remove(&mut self, idx: usize) {
        if idx < self.fingerprints.len() {
            self.set(idx, None);
        }
    }

    fn set(&mut self, idx: usize, fp: Option<PartitionFingerprint>) {
        if idx >= self.fingerprints.len() {
            self.fingerprints.resize(idx + 1, None);
        }
        let old = self.fingerprints[idx];
        if old == fp {
            return;
        }
        if let Some(old) = old {
            if let Some(bucket) = self.members.get_mut(&old) {
                if let Ok(pos) = bucket.binary_search(&idx) {
                    bucket.remove(pos);
                }
                if bucket.is_empty() {
                    self.members.remove(&old);
                }
            }
        }
        if let Some(new) = fp {
            let bucket = self.members.entry(new).or_default();
            if let Err(pos) = bucket.binary_search(&idx) {
                bucket.insert(pos, idx);
            }
        }
        self.fingerprints[idx] = fp;
    }

    /// The member lists in canonical order: ascending by smallest member
    /// index (== first-seen order for a freshly built index).
    fn ordered_buckets(&self) -> Vec<&[usize]> {
        let mut buckets: Vec<&[usize]> = self.members.values().map(Vec::as_slice).collect();
        buckets.sort_unstable_by_key(|b| b[0]);
        buckets
    }

    /// The fingerprint buckets, each a set of mutually comparable module
    /// indices, in canonical (first-seen) order.
    pub fn buckets(&self) -> impl Iterator<Item = &[usize]> {
        self.ordered_buckets().into_iter()
    }

    /// The bucket containing `idx` — every module it is mutually comparable
    /// with (including `idx` itself). Empty when the slot is vacant.
    pub fn peers(&self, idx: usize) -> &[usize] {
        self.fingerprint(idx)
            .and_then(|fp| self.members.get(fp))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of distinct fingerprints observed.
    pub fn bucket_count(&self) -> usize {
        self.members.len()
    }

    /// Size of the largest bucket (`0` for an empty index).
    pub fn largest_bucket(&self) -> usize {
        self.members.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Every ordered pair `(t, c)`, `t ≠ c`, whose fingerprints are
    /// compatible — exactly the pairs the full comparison must run on, in
    /// deterministic bucket-major order.
    pub fn comparable_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for bucket in self.ordered_buckets() {
            for &t in bucket {
                for &c in bucket {
                    if t != c {
                        pairs.push((t, c));
                    }
                }
            }
        }
        pairs
    }

    /// [`comparable_pairs`](FingerprintIndex::comparable_pairs) interleaved
    /// round-robin across buckets: consecutive pairs come from *different*
    /// buckets wherever possible, so a fixed-size chunk of the worklist
    /// spans many buckets instead of sitting inside one giant one. The pair
    /// *set* is identical to `comparable_pairs` — only the order differs —
    /// and the order is deterministic.
    ///
    /// This is the worklist order the batched executor wants: with
    /// bucket-major order, one oversized bucket (the 25k sweep has a
    /// 391-module bucket, ~152k consecutive pairs) occupies a long run of
    /// consecutive chunks whose claims all replay the same few memoized
    /// targets, while interleaving spreads every bucket's pairs evenly
    /// across the sweep.
    pub fn comparable_pairs_interleaved(&self) -> Vec<(usize, usize)> {
        let buckets = self.ordered_buckets();
        let mut per_bucket: Vec<std::iter::Peekable<PairIter>> = buckets
            .iter()
            .map(|b| PairIter::new(b).peekable())
            .collect();
        let total: usize = buckets
            .iter()
            .map(|b| b.len() * b.len().saturating_sub(1))
            .sum();
        let mut pairs = Vec::with_capacity(total);
        while pairs.len() < total {
            for it in &mut per_bucket {
                if let Some(pair) = it.next() {
                    pairs.push(pair);
                }
            }
        }
        pairs
    }

    /// Whether the ordered pair `(t, c)` survives blocking (both modules
    /// present and fingerprint-compatible).
    pub fn is_comparable(&self, t: usize, c: usize) -> bool {
        match (self.fingerprint(t), self.fingerprint(c)) {
            (Some(a), Some(b)) => a.compatible(b),
            _ => false,
        }
    }
}

/// Ordered `(t, c)` pairs of one bucket, `t ≠ c`, in the same nested order
/// `comparable_pairs` emits them.
struct PairIter<'b> {
    bucket: &'b [usize],
    t: usize,
    c: usize,
}

impl<'b> PairIter<'b> {
    fn new(bucket: &'b [usize]) -> PairIter<'b> {
        PairIter { bucket, t: 0, c: 0 }
    }
}

impl Iterator for PairIter<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        while self.t < self.bucket.len() {
            if self.c >= self.bucket.len() {
                self.t += 1;
                self.c = 0;
                continue;
            }
            let (t, c) = (self.bucket[self.t], self.bucket[self.c]);
            self.c += 1;
            if t != c {
                return Some((t, c));
            }
        }
        None
    }
}

/// A memoized generation result, shared between all readers of a session.
/// Public so executors can resolve a target's report once and hand it to
/// [`MatchSession::compare_report_prepared`] for every candidate, keeping
/// the per-pair hot path free of the session's memo lock.
pub type CachedGeneration = Arc<Result<GenerationReport, GenerationError>>;

/// A snapshot of a [`MatchSession`]'s memoization behavior — the cache used
/// to be a mutex-guarded black box; this is its flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// `report_at` calls answered from the cache.
    pub hits: u64,
    /// `report_at` calls that had to generate.
    pub misses: u64,
    /// Memoized `(module, value_offset)` entries currently held.
    pub entries: usize,
    /// Rough heap footprint of the memoized reports, bytes (value payloads
    /// and concept names; allocator overhead not modeled).
    pub memoized_bytes_estimate: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Rough heap bytes of one memoized generation result.
/// Matching telemetry counters, interned once per process.
struct MatchCounters {
    hits: dex_telemetry::Counter,
    misses: dex_telemetry::Counter,
    pairs: dex_telemetry::Counter,
    equivalent: dex_telemetry::Counter,
    overlapping: dex_telemetry::Counter,
    disjoint: dex_telemetry::Counter,
    incomparable: dex_telemetry::Counter,
    pruned: dex_telemetry::Counter,
}

fn match_counters() -> &'static MatchCounters {
    static COUNTERS: std::sync::OnceLock<MatchCounters> = std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| MatchCounters {
        hits: dex_telemetry::counter("dex.match.cache_hits"),
        misses: dex_telemetry::counter("dex.match.cache_misses"),
        pairs: dex_telemetry::counter("dex.match.pairs"),
        equivalent: dex_telemetry::counter("dex.match.verdict.equivalent"),
        overlapping: dex_telemetry::counter("dex.match.verdict.overlapping"),
        disjoint: dex_telemetry::counter("dex.match.verdict.disjoint"),
        incomparable: dex_telemetry::counter("dex.match.verdict.incomparable"),
        pruned: dex_telemetry::counter("dex.match.pairs_pruned"),
    })
}

fn approx_cached_bytes(cached: &Result<GenerationReport, GenerationError>) -> u64 {
    match cached {
        Ok(report) => {
            let mut bytes = 0usize;
            for example in report.examples.iter() {
                for binding in example.inputs.iter().chain(example.outputs.iter()) {
                    bytes += binding.parameter.len() + binding.value.approx_heap_bytes();
                }
                bytes += example
                    .input_partitions
                    .iter()
                    .map(String::len)
                    .sum::<usize>();
            }
            bytes as u64
        }
        Err(e) => e.to_string().len() as u64,
    }
}

/// A matching context that memoizes target-side example generation.
///
/// `compare_modules` regenerates the target's data examples on every call, so
/// matching all pairs of an N-module registry invokes each module O(N) times.
/// A session caches one [`GenerationReport`] per `(module, value_offset)`
/// (behind `Arc`, shared with all readers), collapsing that to a single
/// generation per module per offset. The cache is internally synchronized —
/// a session can be shared by reference across the threads of a parallel
/// all-pairs run.
///
/// Below the report memo sits a shared [`InvocationCache`]: every generation
/// and every candidate replay the session performs routes through it, so a
/// distinct `(module, input vector)` is invoked at most once per session —
/// aligned generation at offsets `0..k` shares the vectors the offsets have
/// in common, and replaying a candidate against an aligned target hits the
/// vectors its own generation already produced.
pub struct MatchSession<'a> {
    ontology: &'a Ontology,
    pool: &'a InstancePool,
    config: GenerationConfig,
    cache: Mutex<HashMap<(ModuleId, usize), CachedGeneration>>,
    invocations: InvocationCache,
    retrier: Retrier,
    hits: AtomicU64,
    misses: AtomicU64,
    memoized_bytes: AtomicU64,
}

impl<'a> MatchSession<'a> {
    /// Creates a session over fixed ontology, pool, and generation config.
    /// The session owns one [`Retrier`] built from the config's
    /// [`retry`](GenerationConfig::retry) policy, shared by every generation
    /// and replay it performs — so the retry budget is session-wide.
    pub fn new(ontology: &'a Ontology, pool: &'a InstancePool, config: GenerationConfig) -> Self {
        let retrier = Retrier::new(config.retry);
        MatchSession {
            ontology,
            pool,
            config,
            cache: Mutex::new(HashMap::new()),
            invocations: InvocationCache::new(),
            retrier,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            memoized_bytes: AtomicU64::new(0),
        }
    }

    /// The generation config this session aligns examples with.
    pub fn config(&self) -> &GenerationConfig {
        &self.config
    }

    /// The session-wide invocation memo. Exposed so callers that mix session
    /// comparisons with their own invocations (repair verification, ad-hoc
    /// replays) can share the same memo.
    pub fn invocation_cache(&self) -> &InvocationCache {
        &self.invocations
    }

    /// Snapshot of the underlying invocation cache: how many *module
    /// invocations* the session actually performed vs. answered from memory
    /// (the [`cache_stats`](MatchSession::cache_stats) report memo sits one
    /// level up and counts whole generations, not invocations).
    pub fn invocation_stats(&self) -> InvocationCacheStats {
        self.invocations.stats()
    }

    /// Snapshot of the session's transient-retry accounting (zero everywhere
    /// unless the config enabled a retry policy and transients occurred).
    pub fn retry_stats(&self) -> RetryStats {
        self.retrier.stats()
    }

    /// Number of memoized `(module, value_offset)` generation results.
    pub fn cached_reports(&self) -> usize {
        self.cache.lock().expect("no poisoning").len()
    }

    /// Snapshot of the session's cache behavior. Counting is per-session,
    /// always on (plain atomics, no global telemetry required), so the cache
    /// is inspectable even in otherwise un-instrumented runs.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.cached_reports(),
            memoized_bytes_estimate: self.memoized_bytes.load(Ordering::Relaxed),
        }
    }

    /// The memoized generation result for `module` at the session's base
    /// value offset, generating it on first use.
    ///
    /// (Session-level cache counters live on `self`; the process-global
    /// telemetry counters below are cached handles so the per-pair cost is
    /// one atomic add each.)
    pub fn report_for(&self, module: &dyn BlackBox) -> CachedGeneration {
        self.report_at(module, self.config.value_offset)
    }

    /// The memoized generation result for `module` at an explicit value
    /// offset (ablations vary the offset to probe value sensitivity).
    pub fn report_at(&self, module: &dyn BlackBox, value_offset: usize) -> CachedGeneration {
        let key = (module.descriptor().id.clone(), value_offset);
        if let Some(hit) = self.cache.lock().expect("no poisoning").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            match_counters().hits.add(1);
            return Arc::clone(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        match_counters().misses.add(1);
        // Generate outside the lock: generation invokes the module, which can
        // be arbitrarily slow, and concurrent misses on *different* modules
        // must not serialize. A racing duplicate of the same key is harmless
        // (generation is deterministic) and the second insert wins.
        let config = GenerationConfig {
            value_offset,
            ..self.config.clone()
        };
        let report = Arc::new(generate_examples_retrying(
            module,
            self.ontology,
            self.pool,
            &config,
            &self.invocations,
            &self.retrier,
        ));
        let bytes = approx_cached_bytes(&report);
        let displaced = self
            .cache
            .lock()
            .expect("no poisoning")
            .insert(key, Arc::clone(&report));
        self.memoized_bytes.fetch_add(bytes, Ordering::Relaxed);
        if let Some(prev) = displaced {
            // A racing duplicate generation: keep the byte estimate honest.
            self.memoized_bytes
                .fetch_sub(approx_cached_bytes(&prev), Ordering::Relaxed);
        }
        report
    }

    /// [`compare_modules`] through the cache: the target's examples are
    /// generated at most once per value offset across the whole session.
    pub fn compare(
        &self,
        target: &dyn BlackBox,
        candidate: &dyn BlackBox,
    ) -> Result<MatchVerdict, GenerationError> {
        match self.report_for(target).as_ref() {
            Ok(report) => match_against_examples_retrying(
                target.descriptor(),
                &report.examples,
                candidate,
                self.ontology,
                MappingMode::Strict,
                &self.invocations,
                &self.retrier,
            ),
            Err(e) => Err(e.clone()),
        }
    }

    /// Like [`compare`](MatchSession::compare), but always yields a
    /// [`MatchReport`] — incomparability becomes data instead of an error,
    /// which is what an all-pairs sweep wants.
    pub fn compare_report(&self, target: &dyn BlackBox, candidate: &dyn BlackBox) -> MatchReport {
        let report = self.report_for(target);
        self.compare_report_prepared(target, &report, candidate)
    }

    /// [`compare_report`](MatchSession::compare_report) with the target's
    /// memoized report already in hand. The per-pair cost drops to the
    /// candidate replay itself: no memo-lock acquisition, no key clone, no
    /// second `report_for` — which is what lets an all-pairs executor resolve
    /// each target's report once per bucket and then fan candidates out
    /// across threads without serializing on the session cache.
    pub fn compare_report_prepared(
        &self,
        target: &dyn BlackBox,
        report: &CachedGeneration,
        candidate: &dyn BlackBox,
    ) -> MatchReport {
        let _timer = {
            static PAIR_NS: std::sync::OnceLock<dex_telemetry::Histo> = std::sync::OnceLock::new();
            PAIR_NS
                .get_or_init(|| dex_telemetry::histogram("dex.match.pair_ns"))
                .start()
        };
        let (examples, outcome) = match report.as_ref() {
            Ok(report) => {
                let outcome = match match_against_examples_retrying(
                    target.descriptor(),
                    &report.examples,
                    candidate,
                    self.ontology,
                    MappingMode::Strict,
                    &self.invocations,
                    &self.retrier,
                ) {
                    Ok(verdict) => MatchOutcome::Verdict(verdict),
                    Err(e) => MatchOutcome::Incomparable(e.to_string()),
                };
                (report.examples.len(), outcome)
            }
            Err(e) => (0, MatchOutcome::Incomparable(e.to_string())),
        };
        if dex_telemetry::is_enabled() {
            let counters = match_counters();
            counters.pairs.add(1);
            let verdict = match &outcome {
                MatchOutcome::Verdict(MatchVerdict::Equivalent { .. }) => &counters.equivalent,
                MatchOutcome::Verdict(MatchVerdict::Overlapping { .. }) => &counters.overlapping,
                MatchOutcome::Verdict(MatchVerdict::Disjoint { .. }) => &counters.disjoint,
                MatchOutcome::Incomparable(_) => &counters.incomparable,
            };
            verdict.add(1);
        }
        MatchReport {
            target: target.descriptor().id.clone(),
            candidate: candidate.descriptor().id.clone(),
            outcome,
            examples,
        }
    }

    /// The [`MatchReport`] for a pair whose [`PartitionFingerprint`]s are
    /// *incompatible*, produced **without a single candidate invocation**:
    /// incompatible fingerprints prove `map_parameters` must fail, so the
    /// outcome is the mapping error (or the target's generation error, which
    /// takes precedence in [`compare`](MatchSession::compare) too).
    ///
    /// Byte-identical to what [`compare_report`](MatchSession::compare_report)
    /// would return for the same pair — the equivalence property suite in
    /// `tests/properties.rs` pins this. If a caller hands in a pair whose
    /// parameters *do* map (a blocking-layer bug, or a deliberate misuse),
    /// this falls back to the full comparison rather than fabricating an
    /// incomparability.
    pub fn pruned_report(&self, target: &dyn BlackBox, candidate: &dyn BlackBox) -> MatchReport {
        let report = self.report_for(target);
        self.pruned_report_prepared(target, &report, candidate)
    }

    /// [`pruned_report`](MatchSession::pruned_report) with the target's
    /// memoized report already in hand — the lock-free counterpart used by
    /// the prepared executor.
    pub fn pruned_report_prepared(
        &self,
        target: &dyn BlackBox,
        report: &CachedGeneration,
        candidate: &dyn BlackBox,
    ) -> MatchReport {
        let examples = match report.as_ref() {
            Ok(report) => report.examples.len(),
            Err(_) => 0,
        };
        let outcome = match report.as_ref() {
            Err(e) => MatchOutcome::Incomparable(e.to_string()),
            Ok(_) => match map_parameters(
                target.descriptor(),
                candidate.descriptor(),
                self.ontology,
                MappingMode::Strict,
            ) {
                Err(e) => MatchOutcome::Incomparable(e.to_string()),
                Ok(_) => {
                    debug_assert!(
                        false,
                        "pruned_report on a mappable pair: {} vs {}",
                        target.descriptor().id,
                        candidate.descriptor().id
                    );
                    return self.compare_report_prepared(target, report, candidate);
                }
            },
        };
        if dex_telemetry::is_enabled() {
            let counters = match_counters();
            counters.pairs.add(1);
            counters.incomparable.add(1);
            counters.pruned.add(1);
        }
        MatchReport {
            target: target.descriptor().id.clone(),
            candidate: candidate.descriptor().id.clone(),
            outcome,
            examples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_modules::{FnModule, InvocationError, ModuleKind, Parameter};
    use dex_ontology::mygrid;
    use dex_pool::build_synthetic_pool;
    use dex_values::formats::sequence::{classify, SequenceKind};
    use dex_values::StructuralType;

    fn seq_echo(id: &str, semantic_in: &str, semantic_out: &str, upper_dna: bool) -> FnModule {
        FnModule::new(
            ModuleDescriptor::new(
                id,
                id,
                ModuleKind::SoapService,
                vec![Parameter::required(
                    "seq",
                    StructuralType::Text,
                    semantic_in,
                )],
                vec![Parameter::required(
                    "out",
                    StructuralType::Text,
                    semantic_out,
                )],
            ),
            move |inputs| {
                let s = inputs[0].as_text().unwrap();
                if classify(s).is_none() {
                    return Err(InvocationError::rejected("not a sequence"));
                }
                // Optionally behave differently on DNA to create overlap.
                if upper_dna && classify(s) == Some(SequenceKind::Dna) {
                    Ok(vec![Value::text(format!("DNA:{s}"))])
                } else {
                    Ok(vec![Value::text(s.to_string())])
                }
            },
        )
    }

    fn fixture() -> (Ontology, InstancePool) {
        let onto = mygrid::ontology();
        (onto.clone(), build_synthetic_pool(&onto, 4, 3))
    }

    #[test]
    fn identical_modules_are_equivalent() {
        let (onto, pool) = fixture();
        let a = seq_echo("a", "BiologicalSequence", "BiologicalSequence", false);
        let b = seq_echo("b", "BiologicalSequence", "BiologicalSequence", false);
        let v = compare_modules(&a, &b, &onto, &pool, &GenerationConfig::default()).unwrap();
        assert_eq!(v, MatchVerdict::Equivalent { compared: 4 });
        assert!(v.is_usable());
    }

    #[test]
    fn partially_differing_modules_overlap() {
        let (onto, pool) = fixture();
        let a = seq_echo("a", "BiologicalSequence", "BiologicalSequence", false);
        let b = seq_echo("b", "BiologicalSequence", "BiologicalSequence", true);
        let v = compare_modules(&a, &b, &onto, &pool, &GenerationConfig::default()).unwrap();
        assert_eq!(
            v,
            MatchVerdict::Overlapping {
                agreeing: 3,
                compared: 4
            }
        );
    }

    #[test]
    fn totally_different_modules_are_disjoint() {
        let (onto, pool) = fixture();
        let a = seq_echo("a", "ProteinSequence", "ProteinSequence", false);
        let b = FnModule::new(
            ModuleDescriptor::new(
                "b",
                "Constant",
                ModuleKind::RestService,
                vec![Parameter::required(
                    "seq",
                    StructuralType::Text,
                    "ProteinSequence",
                )],
                vec![Parameter::required(
                    "out",
                    StructuralType::Text,
                    "ProteinSequence",
                )],
            ),
            |_| Ok(vec![Value::text("MKVLHHH")]),
        );
        let v = compare_modules(&a, &b, &onto, &pool, &GenerationConfig::default()).unwrap();
        assert!(matches!(v, MatchVerdict::Disjoint { compared: 1 }));
        assert!(!v.is_usable());
    }

    #[test]
    fn strict_mapping_requires_same_concepts() {
        let (onto, _) = fixture();
        let a = seq_echo("a", "ProteinSequence", "ProteinSequence", false);
        let b = seq_echo("b", "BiologicalSequence", "BiologicalSequence", false);
        assert!(
            map_parameters(a.descriptor(), b.descriptor(), &onto, MappingMode::Strict).is_err()
        );
    }

    /// The Figure 7 scenario: GetBiologicalSequence substitutes
    /// GetProteinSequence under the subsuming mode.
    #[test]
    fn subsuming_mapping_accepts_figure7_shape() {
        let (onto, _) = fixture();
        let target = seq_echo("t", "ProteinSequence", "ProteinSequence", false);
        let candidate = seq_echo("c", "BiologicalSequence", "BiologicalSequence", false);
        let mapping = map_parameters(
            target.descriptor(),
            candidate.descriptor(),
            &onto,
            MappingMode::Subsuming,
        )
        .unwrap();
        assert_eq!(mapping.inputs, vec![0]);
        // The reverse direction must fail: a protein-only candidate does not
        // accept the full biological-sequence domain.
        assert!(map_parameters(
            candidate.descriptor(),
            target.descriptor(),
            &onto,
            MappingMode::Subsuming
        )
        .is_err());
    }

    #[test]
    fn subsuming_replay_detects_equivalence_on_subdomain() {
        let (onto, pool) = fixture();
        let target = seq_echo("t", "ProteinSequence", "ProteinSequence", false);
        let candidate = seq_echo("c", "BiologicalSequence", "BiologicalSequence", false);
        let report =
            generate_examples(&target, &onto, &pool, &GenerationConfig::default()).unwrap();
        let v = match_against_examples(
            target.descriptor(),
            &report.examples,
            &candidate,
            &onto,
            MappingMode::Subsuming,
        )
        .unwrap();
        assert_eq!(v, MatchVerdict::Equivalent { compared: 1 });
    }

    #[test]
    fn arity_mismatch_is_incomparable() {
        let (onto, _) = fixture();
        let a = seq_echo("a", "ProteinSequence", "ProteinSequence", false);
        let b = FnModule::new(
            ModuleDescriptor::new(
                "b",
                "TwoIn",
                ModuleKind::RestService,
                vec![
                    Parameter::required("x", StructuralType::Text, "ProteinSequence"),
                    Parameter::required("y", StructuralType::Text, "ProteinSequence"),
                ],
                vec![Parameter::required(
                    "out",
                    StructuralType::Text,
                    "ProteinSequence",
                )],
            ),
            |i| Ok(vec![i[0].clone()]),
        );
        assert!(matches!(
            map_parameters(a.descriptor(), b.descriptor(), &onto, MappingMode::Strict),
            Err(GenerationError::Incomparable(_))
        ));
    }

    #[test]
    fn empty_example_set_cannot_conclude() {
        let (onto, _) = fixture();
        let a = seq_echo("a", "ProteinSequence", "ProteinSequence", false);
        let b = seq_echo("b", "ProteinSequence", "ProteinSequence", false);
        let empty = ExampleSet::new(dex_modules::ModuleId::from("a"));
        assert!(
            match_against_examples(a.descriptor(), &empty, &b, &onto, MappingMode::Strict).is_err()
        );
    }

    /// A seq_echo clone whose invocations are counted, to observe caching.
    fn counted_echo(
        id: &str,
        semantic: &str,
    ) -> (FnModule, std::sync::Arc<std::sync::atomic::AtomicUsize>) {
        let count = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let seen = std::sync::Arc::clone(&count);
        let module = FnModule::new(
            ModuleDescriptor::new(
                id,
                id,
                ModuleKind::SoapService,
                vec![Parameter::required("seq", StructuralType::Text, semantic)],
                vec![Parameter::required("out", StructuralType::Text, semantic)],
            ),
            move |inputs| {
                seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let s = inputs[0].as_text().unwrap();
                if classify(s).is_none() {
                    return Err(InvocationError::rejected("not a sequence"));
                }
                Ok(vec![Value::text(s.to_string())])
            },
        );
        (module, count)
    }

    #[test]
    fn session_memoizes_target_generation() {
        let (onto, pool) = fixture();
        let (target, invocations) = counted_echo("t", "BiologicalSequence");
        let candidates: Vec<FnModule> = (0..4)
            .map(|i| {
                seq_echo(
                    &format!("c{i}"),
                    "BiologicalSequence",
                    "BiologicalSequence",
                    i % 2 == 0,
                )
            })
            .collect();
        let session = MatchSession::new(&onto, &pool, GenerationConfig::default());
        for c in &candidates {
            session.compare(&target, c).unwrap();
        }
        // One generation pass for four comparisons: 4 partitions invoked once.
        assert_eq!(invocations.load(std::sync::atomic::Ordering::Relaxed), 4);
        assert_eq!(session.cached_reports(), 1);
        // A different offset is a different cache entry.
        assert!(session.report_at(&target, 1).is_ok());
        assert_eq!(session.cached_reports(), 2);
    }

    /// Replaying a candidate against an aligned target hits the invocation
    /// cache: generation already fed the candidate the exact same vectors.
    #[test]
    fn session_shares_invocations_between_generation_and_replay() {
        let (onto, pool) = fixture();
        let (target, target_count) = counted_echo("t", "BiologicalSequence");
        let (candidate, candidate_count) = counted_echo("c", "BiologicalSequence");
        let session = MatchSession::new(&onto, &pool, GenerationConfig::default());

        // Generate both sides (as an all-pairs sweep would), then replay.
        session.report_for(&target);
        session.report_for(&candidate);
        let gen_t = target_count.load(std::sync::atomic::Ordering::Relaxed);
        let gen_c = candidate_count.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!((gen_t, gen_c), (4, 4));

        let v = session.compare(&target, &candidate).unwrap();
        assert_eq!(v, MatchVerdict::Equivalent { compared: 4 });
        // The replay performed zero fresh invocations: all four vectors were
        // already in the session's invocation cache.
        assert_eq!(
            candidate_count.load(std::sync::atomic::Ordering::Relaxed),
            gen_c
        );
        let stats = session.invocation_stats();
        assert_eq!(stats.misses, 8, "two generations of four vectors");
        assert!(stats.hits >= 4, "replay answered from the memo");
        // Repeating the comparison costs nothing at all.
        session.compare(&target, &candidate).unwrap();
        assert_eq!(
            candidate_count.load(std::sync::atomic::Ordering::Relaxed),
            gen_c
        );
        assert_eq!(
            target_count.load(std::sync::atomic::Ordering::Relaxed),
            gen_t
        );
    }

    #[test]
    fn cache_stats_track_hits_misses_and_bytes() {
        let (onto, pool) = fixture();
        let session = MatchSession::new(&onto, &pool, GenerationConfig::default());
        let fresh = session.cache_stats();
        assert_eq!((fresh.hits, fresh.misses, fresh.entries), (0, 0, 0));
        assert_eq!(fresh.memoized_bytes_estimate, 0);
        assert_eq!(fresh.hit_rate(), 0.0);

        let target = seq_echo("t", "BiologicalSequence", "BiologicalSequence", false);
        let candidates: Vec<FnModule> = (0..3)
            .map(|i| {
                seq_echo(
                    &format!("c{i}"),
                    "BiologicalSequence",
                    "BiologicalSequence",
                    false,
                )
            })
            .collect();
        for c in &candidates {
            session.compare(&target, c).unwrap();
        }
        let stats = session.cache_stats();
        assert_eq!(stats.misses, 1, "one generation for three comparisons");
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.entries, 1);
        assert!(
            stats.memoized_bytes_estimate > 0,
            "memoized examples occupy heap"
        );
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-9);

        // A different module is a fresh entry and a fresh miss.
        let ghost = seq_echo("g", "BiologicalSequence", "BiologicalSequence", false);
        let _ = session.report_at(&ghost, 0);
        assert_eq!(session.cache_stats().entries, 2);
        assert_eq!(session.cache_stats().misses, 2);
    }

    #[test]
    fn session_compare_agrees_with_compare_modules() {
        let (onto, pool) = fixture();
        let config = GenerationConfig::default();
        let session = MatchSession::new(&onto, &pool, config.clone());
        let modules = [
            seq_echo("a", "BiologicalSequence", "BiologicalSequence", false),
            seq_echo("b", "BiologicalSequence", "BiologicalSequence", true),
            seq_echo("c", "ProteinSequence", "ProteinSequence", false),
        ];
        for t in &modules {
            for c in &modules {
                let direct = compare_modules(t, c, &onto, &pool, &config);
                let cached = session.compare(t, c);
                assert_eq!(
                    direct,
                    cached,
                    "{:?} vs {:?}",
                    t.descriptor().id,
                    c.descriptor().id
                );
            }
        }
    }

    #[test]
    fn compare_report_surfaces_incomparability_as_data() {
        let (onto, pool) = fixture();
        let session = MatchSession::new(&onto, &pool, GenerationConfig::default());
        let a = seq_echo("a", "BiologicalSequence", "BiologicalSequence", false);
        let b = seq_echo("b", "ProteinSequence", "ProteinSequence", false);
        let report = session.compare_report(&a, &b);
        assert_eq!(report.target, dex_modules::ModuleId::from("a"));
        assert_eq!(report.candidate, dex_modules::ModuleId::from("b"));
        assert!(matches!(report.outcome, MatchOutcome::Incomparable(_)));
        assert_eq!(report.examples, 4);
        let same = session.compare_report(&a, &a);
        assert!(matches!(
            same.outcome,
            MatchOutcome::Verdict(MatchVerdict::Equivalent { compared: 4 })
        ));
    }

    fn descriptor_with(
        id: &str,
        inputs: Vec<(&str, StructuralType, &str)>,
        outputs: Vec<(&str, StructuralType, &str)>,
    ) -> ModuleDescriptor {
        ModuleDescriptor::new(
            id,
            id,
            ModuleKind::SoapService,
            inputs
                .into_iter()
                .map(|(n, s, c)| Parameter::required(n, s, c))
                .collect(),
            outputs
                .into_iter()
                .map(|(n, s, c)| Parameter::required(n, s, c))
                .collect(),
        )
    }

    #[test]
    fn fingerprint_compatibility_is_reflexive_and_symmetric() {
        let onto = mygrid::ontology();
        let descriptors = [
            descriptor_with(
                "a",
                vec![("s", StructuralType::Text, "ProteinSequence")],
                vec![("o", StructuralType::Text, "ProteinSequence")],
            ),
            descriptor_with(
                "b",
                vec![
                    ("x", StructuralType::Text, "DNASequence"),
                    ("y", StructuralType::Integer, "ScoreThreshold"),
                ],
                vec![("o", StructuralType::Text, "BlastReport")],
            ),
            descriptor_with(
                "c",
                vec![("acc", StructuralType::Text, "UniprotAccession")],
                vec![("rec", StructuralType::Text, "UniprotRecord")],
            ),
        ];
        let fps: Vec<_> = descriptors
            .iter()
            .map(|d| PartitionFingerprint::of(d, &onto))
            .collect();
        for (i, a) in fps.iter().enumerate() {
            assert!(a.compatible(a), "reflexive");
            assert!(a.arity_compatible(a));
            for b in &fps {
                assert_eq!(a.compatible(b), b.compatible(a), "symmetric");
                assert_eq!(a.arity_compatible(b), b.arity_compatible(a));
            }
            for (j, b) in fps.iter().enumerate() {
                if i != j {
                    assert!(!a.compatible(b), "distinct interfaces stay apart");
                }
            }
        }
    }

    /// The fingerprint digest is pinned to an exact value: the hash is
    /// hand-rolled FNV-1a precisely so it can never drift with a std
    /// `DefaultHasher` change, and this test is the tripwire. Computing the
    /// same descriptor twice (fresh allocations, fresh ontology) must land
    /// on the same bits every run, on every platform.
    #[test]
    fn fingerprint_hash_is_stable_across_constructions() {
        let d = || {
            descriptor_with(
                "m",
                vec![("seq", StructuralType::Text, "ProteinSequence")],
                vec![("out", StructuralType::Text, "ProteinSequence")],
            )
        };
        let a = PartitionFingerprint::of(&d(), &mygrid::ontology());
        let b = PartitionFingerprint::of(&d(), &mygrid::ontology());
        assert_eq!(a, b);
        assert_eq!(a.stable_hash(), b.stable_hash());
        // Pinned digest: fails loudly if the encoding ever changes. Update
        // deliberately (it invalidates cross-run fingerprint comparisons).
        assert_eq!(
            a.stable_hash(),
            0xe3dc_f42d_716e_5c91,
            "{:#x}",
            a.stable_hash()
        );
        // Parameter *names* must not affect the fingerprint (mappings are
        // name-blind), but order-insensitivity must hold too.
        let renamed = descriptor_with(
            "other",
            vec![("sequence_in", StructuralType::Text, "ProteinSequence")],
            vec![("result", StructuralType::Text, "ProteinSequence")],
        );
        assert_eq!(PartitionFingerprint::of(&renamed, &mygrid::ontology()), a);
    }

    #[test]
    fn fingerprint_ignores_parameter_declaration_order() {
        let onto = mygrid::ontology();
        let ab = descriptor_with(
            "ab",
            vec![
                ("a", StructuralType::Text, "DNASequence"),
                ("b", StructuralType::Integer, "ScoreThreshold"),
            ],
            vec![("o", StructuralType::Text, "BlastReport")],
        );
        let ba = descriptor_with(
            "ba",
            vec![
                ("b", StructuralType::Integer, "ScoreThreshold"),
                ("a", StructuralType::Text, "DNASequence"),
            ],
            vec![("o", StructuralType::Text, "BlastReport")],
        );
        let fa = PartitionFingerprint::of(&ab, &onto);
        let fb = PartitionFingerprint::of(&ba, &onto);
        assert!(fa.compatible(&fb), "permuted parameters still map 1-to-1");
        assert!(
            map_parameters(&ab, &ba, &onto, MappingMode::Strict).is_ok(),
            "and the mapping indeed exists"
        );
    }

    /// Adversarial pairs: wherever fingerprints rule a pair *out*, the
    /// strict mapping must actually be impossible — a pruned pair may never
    /// be one the matcher could have compared. (The converse is allowed:
    /// a compatible fingerprint is only an admission ticket.)
    #[test]
    fn incompatible_fingerprints_imply_no_strict_mapping() {
        let onto = mygrid::ontology();
        let adversarial = [
            // Same arity, same structurals, one semantic differs.
            descriptor_with(
                "p1",
                vec![("s", StructuralType::Text, "ProteinSequence")],
                vec![("o", StructuralType::Text, "ProteinSequence")],
            ),
            descriptor_with(
                "p2",
                vec![("s", StructuralType::Text, "DNASequence")],
                vec![("o", StructuralType::Text, "ProteinSequence")],
            ),
            // Duplicate-concept counts differ: {A,A,B} vs {A,B,B}.
            descriptor_with(
                "p3",
                vec![
                    ("x", StructuralType::Text, "DNASequence"),
                    ("y", StructuralType::Text, "DNASequence"),
                    ("z", StructuralType::Text, "ProteinSequence"),
                ],
                vec![("o", StructuralType::Text, "BlastReport")],
            ),
            descriptor_with(
                "p4",
                vec![
                    ("x", StructuralType::Text, "DNASequence"),
                    ("y", StructuralType::Text, "ProteinSequence"),
                    ("z", StructuralType::Text, "ProteinSequence"),
                ],
                vec![("o", StructuralType::Text, "BlastReport")],
            ),
            // Same semantics, structural type differs.
            descriptor_with(
                "p5",
                vec![("s", StructuralType::Integer, "ScoreThreshold")],
                vec![("o", StructuralType::Text, "BlastReport")],
            ),
            descriptor_with(
                "p6",
                vec![("s", StructuralType::Float, "ScoreThreshold")],
                vec![("o", StructuralType::Text, "BlastReport")],
            ),
            // Outputs differ, inputs identical.
            descriptor_with(
                "p7",
                vec![("s", StructuralType::Text, "ProteinSequence")],
                vec![("o", StructuralType::Text, "FastaRecord")],
            ),
            // Arity differs.
            descriptor_with(
                "p8",
                vec![
                    ("s", StructuralType::Text, "ProteinSequence"),
                    ("t", StructuralType::Text, "ProteinSequence"),
                ],
                vec![("o", StructuralType::Text, "FastaRecord")],
            ),
            // Concept unknown to the ontology.
            descriptor_with(
                "p9",
                vec![("s", StructuralType::Text, "NotAConcept")],
                vec![("o", StructuralType::Text, "ProteinSequence")],
            ),
        ];
        for t in &adversarial {
            for c in &adversarial {
                let ft = PartitionFingerprint::of(t, &onto);
                let fc = PartitionFingerprint::of(c, &onto);
                if !ft.compatible(&fc) {
                    assert!(
                        map_parameters(t, c, &onto, MappingMode::Strict).is_err(),
                        "{} vs {}: pruned but strict-mappable",
                        t.id,
                        c.id
                    );
                }
                if !ft.arity_compatible(&fc) {
                    for mode in [MappingMode::Strict, MappingMode::Subsuming] {
                        assert!(
                            map_parameters(t, c, &onto, mode).is_err(),
                            "{} vs {}: arity-pruned but mappable under {mode:?}",
                            t.id,
                            c.id
                        );
                    }
                }
                // And the mirror obligation: whenever a mapping exists, the
                // fingerprints must admit it.
                if map_parameters(t, c, &onto, MappingMode::Strict).is_ok() {
                    assert!(
                        ft.compatible(&fc),
                        "{} vs {}: mappable but pruned",
                        t.id,
                        c.id
                    );
                }
            }
        }
    }

    #[test]
    fn fingerprint_index_buckets_deterministically() {
        let onto = mygrid::ontology();
        let descriptors = [
            descriptor_with(
                "a",
                vec![("s", StructuralType::Text, "ProteinSequence")],
                vec![("o", StructuralType::Text, "ProteinSequence")],
            ),
            descriptor_with(
                "b",
                vec![("s", StructuralType::Text, "DNASequence")],
                vec![("o", StructuralType::Text, "DNASequence")],
            ),
            descriptor_with(
                "c",
                vec![("in", StructuralType::Text, "ProteinSequence")],
                vec![("out", StructuralType::Text, "ProteinSequence")],
            ),
        ];
        let index = FingerprintIndex::build(
            [
                Some(&descriptors[0]),
                Some(&descriptors[1]),
                None,
                Some(&descriptors[2]),
            ],
            &onto,
        );
        assert_eq!(index.bucket_count(), 2);
        assert_eq!(index.largest_bucket(), 2);
        assert!(index.fingerprint(2).is_none(), "withdrawn slot");
        let buckets: Vec<&[usize]> = index.buckets().collect();
        assert_eq!(buckets, vec![&[0usize, 3][..], &[1usize][..]]);
        assert_eq!(index.comparable_pairs(), vec![(0, 3), (3, 0)]);
        assert!(index.is_comparable(0, 3) && index.is_comparable(3, 0));
        assert!(!index.is_comparable(0, 1));
        assert!(!index.is_comparable(0, 2), "no descriptor, no comparison");
    }

    /// `pruned_report` must be indistinguishable from `compare_report` on
    /// every fingerprint-incompatible pair — same outcome string, same
    /// example count — while replaying nothing.
    #[test]
    fn pruned_report_is_byte_identical_to_compare_report() {
        let (onto, pool) = fixture();
        let a = seq_echo("a", "BiologicalSequence", "BiologicalSequence", false);
        let b = seq_echo("b", "ProteinSequence", "ProteinSequence", false);
        let (c, c_count) = counted_echo("c", "DNASequence");
        let full_session = MatchSession::new(&onto, &pool, GenerationConfig::default());
        let pruned_session = MatchSession::new(&onto, &pool, GenerationConfig::default());
        let modules: [&dyn BlackBox; 3] = [&a, &b, &c];
        for t in &modules {
            for cand in &modules {
                let ft = PartitionFingerprint::of(t.descriptor(), &onto);
                let fc = PartitionFingerprint::of(cand.descriptor(), &onto);
                if ft.compatible(&fc) {
                    continue;
                }
                let full = full_session.compare_report(*t, *cand);
                let candidate_invocations_before =
                    c_count.load(std::sync::atomic::Ordering::Relaxed);
                let pruned = pruned_session.pruned_report(*t, *cand);
                assert_eq!(full, pruned);
                if !std::ptr::eq(*cand as *const dyn BlackBox, &c as &dyn BlackBox) {
                    continue;
                }
                // Candidate "c" was generated once (as a target) but its
                // pruned replays must never have invoked it again.
                assert_eq!(
                    c_count.load(std::sync::atomic::Ordering::Relaxed),
                    candidate_invocations_before,
                    "pruned replay invoked the candidate"
                );
            }
        }
    }

    #[test]
    fn blocking_stats_prune_ratio() {
        let stats = BlockingStats {
            pairs_total: 100,
            pairs_compared: 25,
            pairs_pruned: 70,
            pairs_unavailable: 5,
            buckets: 4,
            largest_bucket: 5,
        };
        assert!((stats.prune_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(BlockingStats::default().prune_ratio(), 0.0);
    }

    #[test]
    fn failing_candidate_counts_as_disagreement() {
        let (onto, pool) = fixture();
        let target = seq_echo("t", "BiologicalSequence", "BiologicalSequence", false);
        // Candidate rejects proteins entirely.
        let candidate = FnModule::new(
            ModuleDescriptor::new(
                "c",
                "NucOnly",
                ModuleKind::SoapService,
                vec![Parameter::required(
                    "seq",
                    StructuralType::Text,
                    "BiologicalSequence",
                )],
                vec![Parameter::required(
                    "out",
                    StructuralType::Text,
                    "BiologicalSequence",
                )],
            ),
            |inputs| {
                let s = inputs[0].as_text().unwrap();
                if classify(s) == Some(SequenceKind::Protein) {
                    Err(InvocationError::rejected("no proteins"))
                } else {
                    Ok(vec![Value::text(s.to_string())])
                }
            },
        );
        let v = compare_modules(
            &target,
            &candidate,
            &onto,
            &pool,
            &GenerationConfig::default(),
        )
        .unwrap();
        assert_eq!(
            v,
            MatchVerdict::Overlapping {
                agreeing: 3,
                compared: 4
            }
        );
    }
}
