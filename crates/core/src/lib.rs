//! # dex-core
//!
//! The paper's contribution: **annotating the behavior of black-box
//! scientific modules with automatically generated data examples**, plus the
//! two downstream uses the paper evaluates — understanding and matching.
//!
//! The pipeline mirrors §3 of the paper exactly:
//!
//! 1. [`partition`] — divide the domain of every annotated parameter into
//!    sub-domains using the subsumption hierarchy of the annotation ontology
//!    (ontology-based *equivalence partitioning*, adapted from software
//!    testing).
//! 2. [`generate`] — select values realizing each input partition from a
//!    pool of annotated instances, invoke the module on all combinations,
//!    and keep the combinations that terminate normally as
//!    [`DataExample`]s.
//! 3. [`coverage`] — measure which input *and output* partitions the
//!    examples cover (§3.3: output partitions are covered opportunistically
//!    by input-driven examples).
//! 4. [`metrics`] — score example sets for *completeness* and *conciseness*
//!    against a ground-truth behavior oracle (§4.2).
//! 5. [`matching`] — compare two modules by generating *aligned* examples
//!    (same input values) and classifying the pair as equivalent /
//!    overlapping / disjoint (§6).
//!
//! [`baseline`] implements the two comparison baselines used by the
//! ablations: random (non-partitioned) example selection, and the
//! provenance-trace similarity matching of the author's earlier work.
//!
//! Two modules implement the paper's §8 *future work*: [`dedupe`]
//! (record-linkage-style detection of redundant data examples) and
//! [`compose`] (data-example-guided module composition); [`inverse`]
//! implements the §3.3 inverse-module route to output-partition coverage.
//!
//! ```
//! use dex_core::{generate_examples, GenerationConfig};
//! use dex_modules::{FnModule, ModuleDescriptor, ModuleKind, Parameter};
//! use dex_ontology::Ontology;
//! use dex_pool::{AnnotatedInstance, InstancePool};
//! use dex_values::{StructuralType, Value};
//!
//! // A two-partition domain…
//! let mut builder = Ontology::builder("demo");
//! builder.root("Sequence").unwrap();
//! builder.child("DNA", "Sequence").unwrap();
//! let onto = builder.build().unwrap();
//!
//! // …a pool with one realization per partition…
//! let mut pool = InstancePool::new("demo");
//! pool.add(AnnotatedInstance::synthetic(Value::text("NNNN"), "Sequence"));
//! pool.add(AnnotatedInstance::synthetic(Value::text("ACGT"), "DNA"));
//!
//! // …and a black-box module annotated with the broad concept.
//! let module = FnModule::new(
//!     ModuleDescriptor::new(
//!         "demo:len",
//!         "SequenceLength",
//!         ModuleKind::LocalProgram,
//!         vec![Parameter::required("seq", StructuralType::Text, "Sequence")],
//!         vec![Parameter::required("len", StructuralType::Integer, "Sequence")],
//!     ),
//!     |inputs| Ok(vec![Value::Integer(inputs[0].as_text().unwrap().len() as i64)]),
//! );
//!
//! // One data example per partition of the input domain.
//! let report =
//!     generate_examples(&module, &onto, &pool, &GenerationConfig::default()).unwrap();
//! assert_eq!(report.examples.len(), 2);
//! ```

pub mod baseline;
pub mod compose;
pub mod coverage;
pub mod dedupe;
pub mod delta;
pub mod display;
pub mod error;
pub mod example;
pub mod generate;
pub mod inverse;
pub mod matching;
pub mod metrics;
pub mod partition;

pub use compose::{composition_score, suggest_downstream, CompositionScore};
pub use coverage::{CoverageReport, ValueClassifier};
pub use dedupe::{detect_redundant, DedupeConfig, DedupeReport};
pub use delta::{Delta, DeltaReport, DependencyIndex};
pub use display::to_markdown;
pub use error::GenerationError;
pub use example::{Binding, DataExample, ExampleSet};
pub use generate::{
    generate_examples, generate_examples_cached, generate_examples_retrying,
    generate_examples_sequential, generation_signature, GenerationConfig, GenerationReport,
};
pub use inverse::{cover_output_partitions, InverseCoverageReport};
pub use matching::{
    compare_modules, match_against_examples, match_against_examples_cached,
    match_against_examples_retrying, BlockingStats, CacheStats, CachedGeneration, FingerprintIndex,
    MappingMode, MatchOutcome, MatchReport, MatchSession, MatchVerdict, PartitionFingerprint,
};
pub use metrics::{completeness, conciseness, BehaviorOracle, ModuleScore};
pub use partition::{input_partition_plan, partitions_for, PartitionPlan};
