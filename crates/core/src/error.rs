//! Errors of the generation pipeline.

use std::fmt;

/// Why data-example generation could not run (distinct from individual
/// invocation failures, which generation tolerates and records).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerationError {
    /// A parameter's semantic annotation names a concept absent from the
    /// annotation ontology.
    UnknownConcept { parameter: String, concept: String },
    /// The cartesian product of input partitions exceeds the configured cap.
    TooManyCombinations { combinations: usize, cap: usize },
    /// The module's descriptor is malformed.
    BadDescriptor(String),
    /// The two modules cannot be mapped parameter-to-parameter (matching).
    Incomparable(String),
}

impl fmt::Display for GenerationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerationError::UnknownConcept { parameter, concept } => write!(
                f,
                "parameter `{parameter}` is annotated with unknown concept `{concept}`"
            ),
            GenerationError::TooManyCombinations { combinations, cap } => write!(
                f,
                "input partitioning yields {combinations} combinations, above the cap of {cap}"
            ),
            GenerationError::BadDescriptor(msg) => write!(f, "malformed module interface: {msg}"),
            GenerationError::Incomparable(msg) => {
                write!(f, "modules cannot be compared: {msg}")
            }
        }
    }
}

impl std::error::Error for GenerationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = GenerationError::UnknownConcept {
            parameter: "seq".into(),
            concept: "Ghost".into(),
        };
        assert!(e.to_string().contains("Ghost"));
        assert!(GenerationError::TooManyCombinations {
            combinations: 1000,
            cap: 100
        }
        .to_string()
        .contains("1000"));
        assert!(GenerationError::BadDescriptor("x".into())
            .to_string()
            .contains("x"));
        assert!(GenerationError::Incomparable("y".into())
            .to_string()
            .contains("y"));
    }
}
