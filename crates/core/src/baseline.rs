//! Comparison baselines for the ablation benches.
//!
//! * [`generate_random_examples`] — example construction *without* ontology
//!   partitioning: input values are drawn uniformly from all pool instances
//!   of the annotated concept (any sub-concept), the way a naive curator
//!   would sample. Ablations compare its completeness/conciseness against
//!   the partition-driven generator.
//! * [`trace_similarity`] — the module-comparison method of the author's
//!   earlier work (reference \[4\] of the paper, discussed in §7.4): no alignment, just
//!   "do the two modules have traces with similar inputs and outputs?",
//!   approximated by Jaccard similarity over classified value concepts.

use crate::error::GenerationError;
use crate::example::{Binding, DataExample, ExampleSet};
use dex_modules::BlackBox;
use dex_ontology::Ontology;
use dex_pool::InstancePool;
use dex_values::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Generates up to `count` data examples by sampling input values uniformly
/// from the pool's instances of each input's annotated concept (instance-of
/// semantics — no partitioning, no realization targeting).
///
/// Combinations that fail to terminate normally are skipped; the function
/// stops after `count * 4` attempts to bound work on picky modules.
pub fn generate_random_examples(
    module: &dyn BlackBox,
    ontology: &Ontology,
    pool: &InstancePool,
    count: usize,
    seed: u64,
) -> Result<ExampleSet, GenerationError> {
    let descriptor = module.descriptor();
    descriptor
        .validate()
        .map_err(GenerationError::BadDescriptor)?;

    // Materialize the candidate lists once per input.
    let mut candidates: Vec<Vec<&Value>> = Vec::with_capacity(descriptor.inputs.len());
    for param in &descriptor.inputs {
        if ontology.id(&param.semantic).is_none() {
            return Err(GenerationError::UnknownConcept {
                parameter: param.name.clone(),
                concept: param.semantic.clone(),
            });
        }
        let values: Vec<&Value> = pool
            .instances_of(&param.semantic, ontology)
            .map(|inst| &inst.value)
            .filter(|v| v.conforms_to(&param.structural))
            .collect();
        candidates.push(values);
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = ExampleSet::new(descriptor.id.clone());
    if candidates.iter().any(Vec::is_empty) {
        return Ok(set);
    }
    let mut attempts = 0usize;
    while set.len() < count && attempts < count.saturating_mul(4) {
        attempts += 1;
        let values: Vec<Value> = candidates
            .iter()
            .map(|pool_vals| (*pool_vals[rng.gen_range(0..pool_vals.len())]).clone())
            .collect();
        if let Ok(outputs) = module.invoke(&values) {
            let inputs = descriptor
                .inputs
                .iter()
                .zip(&values)
                .map(|(p, v)| Binding::new(p.name.clone(), v.clone()))
                .collect();
            let outputs = descriptor
                .outputs
                .iter()
                .zip(outputs)
                .map(|(p, v)| Binding::new(p.name.clone(), v))
                .collect();
            set.examples
                .push(DataExample::reconstructed(inputs, outputs));
        }
    }
    Ok(set)
}

/// Trace-similarity score in `[0, 1]` between two example (or trace) sets:
/// the mean of the Jaccard similarities of their input-concept sets and
/// output-concept sets, with values classified by `classifier`.
///
/// This deliberately ignores value identity and alignment — that is the
/// weakness of the earlier method the paper improves on.
pub fn trace_similarity(
    a: &ExampleSet,
    b: &ExampleSet,
    classifier: crate::coverage::ValueClassifier,
) -> f64 {
    let concepts = |set: &ExampleSet, outputs: bool| -> HashSet<&'static str> {
        set.iter()
            .flat_map(|e| if outputs { &e.outputs } else { &e.inputs })
            .filter_map(|binding| classifier(&binding.value))
            .collect()
    };
    let jaccard = |x: &HashSet<&str>, y: &HashSet<&str>| -> f64 {
        if x.is_empty() && y.is_empty() {
            return 1.0;
        }
        let inter = x.intersection(y).count() as f64;
        let union = x.union(y).count() as f64;
        inter / union
    };
    let ia = concepts(a, false);
    let ib = concepts(b, false);
    let oa = concepts(a, true);
    let ob = concepts(b, true);
    (jaccard(&ia, &ib) + jaccard(&oa, &ob)) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_modules::{FnModule, ModuleDescriptor, ModuleKind, Parameter};
    use dex_ontology::mygrid;
    use dex_pool::build_synthetic_pool;
    use dex_values::classify::classify_concept;
    use dex_values::StructuralType;

    fn echo() -> FnModule {
        FnModule::new(
            ModuleDescriptor::new(
                "e",
                "Echo",
                ModuleKind::LocalProgram,
                vec![Parameter::required(
                    "seq",
                    StructuralType::Text,
                    "BiologicalSequence",
                )],
                vec![Parameter::required(
                    "out",
                    StructuralType::Text,
                    "BiologicalSequence",
                )],
            ),
            |i| Ok(vec![i[0].clone()]),
        )
    }

    #[test]
    fn random_generation_produces_requested_count() {
        let onto = mygrid::ontology();
        let pool = build_synthetic_pool(&onto, 5, 2);
        let set = generate_random_examples(&echo(), &onto, &pool, 10, 99).unwrap();
        assert_eq!(set.len(), 10);
        // Inputs are drawn from the whole BiologicalSequence domain.
        for e in set.iter() {
            assert!(classify_concept(&e.inputs[0].value).is_some());
        }
    }

    #[test]
    fn random_generation_is_seeded() {
        let onto = mygrid::ontology();
        let pool = build_synthetic_pool(&onto, 5, 2);
        let a = generate_random_examples(&echo(), &onto, &pool, 5, 1).unwrap();
        let b = generate_random_examples(&echo(), &onto, &pool, 5, 1).unwrap();
        let c = generate_random_examples(&echo(), &onto, &pool, 5, 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_candidate_list_yields_empty_set() {
        let onto = mygrid::ontology();
        let pool = InstancePool::new("empty");
        let set = generate_random_examples(&echo(), &onto, &pool, 5, 1).unwrap();
        assert!(set.is_empty());
    }

    #[test]
    fn trace_similarity_of_identical_sets_is_one() {
        let onto = mygrid::ontology();
        let pool = build_synthetic_pool(&onto, 5, 2);
        let a = generate_random_examples(&echo(), &onto, &pool, 5, 1).unwrap();
        assert_eq!(trace_similarity(&a, &a, classify_concept), 1.0);
    }

    #[test]
    fn trace_similarity_of_disjoint_concept_sets_is_zero() {
        let mut a = ExampleSet::new("a".into());
        a.examples.push(DataExample::reconstructed(
            vec![Binding::new("in", Value::text("P12345"))],
            vec![Binding::new("out", Value::text("GO:0008150"))],
        ));
        let mut b = ExampleSet::new("b".into());
        b.examples.push(DataExample::reconstructed(
            vec![Binding::new("in", Value::text("ACGT"))],
            vec![Binding::new("out", Value::text("1ABC"))],
        ));
        assert_eq!(trace_similarity(&a, &b, classify_concept), 0.0);
    }

    #[test]
    fn trace_similarity_empty_sets_is_one() {
        let a = ExampleSet::new("a".into());
        let b = ExampleSet::new("b".into());
        assert_eq!(trace_similarity(&a, &b, classify_concept), 1.0);
    }
}
