//! Property tests: the planned/cached/parallel generation paths produce
//! reports identical to the legacy sequential reference path
//! (`generate_examples_sequential`) across random module behaviors, pool
//! depths/seeds, value offsets, and retry budgets.
//!
//! This is the determinism contract of the invocation planner: caching and
//! parallelism may only change *how many times* a module is actually
//! invoked, never what the generation report says.

use dex_core::{
    generate_examples, generate_examples_cached, generate_examples_sequential, GenerationConfig,
    GenerationReport,
};
use dex_modules::{
    FnModule, InvocationCache, InvocationError, ModuleDescriptor, ModuleKind, Parameter,
};
use dex_ontology::mygrid;
use dex_pool::build_synthetic_pool;
use dex_values::{StructuralType, Value};
use proptest::prelude::*;

/// Text-valued concepts of the mygrid ontology the synthetic pool can
/// realize — input annotations are drawn from these.
const CONCEPTS: &[&str] = &[
    "BiologicalSequence",
    "DNASequence",
    "RNASequence",
    "ProteinSequence",
    "AlgorithmName",
];

/// A deterministic black box whose accept/reject behavior is scrambled by
/// `salt`: an input vector is rejected iff its salted digest lands under
/// `reject_pct`. Every value of `salt` is a different module "behavior".
fn arb_module(inputs: &[usize], salt: u64, reject_pct: u64) -> FnModule {
    let params: Vec<Parameter> = inputs
        .iter()
        .enumerate()
        .map(|(i, &c)| Parameter::required(format!("in{i}"), StructuralType::Text, CONCEPTS[c]))
        .collect();
    FnModule::new(
        ModuleDescriptor::new(
            format!("prop:m{salt:x}"),
            "PropModule",
            ModuleKind::RestService,
            params,
            vec![Parameter::required(
                "digest",
                StructuralType::Text,
                "Document",
            )],
        ),
        move |values| {
            let mut acc = salt;
            for v in values {
                if let Some(t) = v.as_text() {
                    for b in t.bytes() {
                        acc = acc.wrapping_mul(1099511628211).wrapping_add(u64::from(b));
                    }
                }
            }
            if acc % 100 < reject_pct {
                return Err(InvocationError::rejected("salted rejection"));
            }
            Ok(vec![Value::text(format!("{acc:016x}"))])
        },
    )
}

fn assert_reports_identical(label: &str, a: &GenerationReport, b: &GenerationReport) {
    assert_eq!(a.examples, b.examples, "{label}: examples differ");
    assert_eq!(
        a.failed_combinations, b.failed_combinations,
        "{label}: failed combinations differ"
    );
    assert_eq!(
        a.unvalued_partitions, b.unvalued_partitions,
        "{label}: unvalued partitions differ"
    );
    assert_eq!(
        a.invocations, b.invocations,
        "{label}: logical invocation counts differ"
    );
}

proptest! {
    #[test]
    fn planned_cached_and_parallel_paths_match_the_sequential_oracle(
        inputs in proptest::collection::vec(0usize..CONCEPTS.len(), 1..3),
        salt in any::<u64>(),
        reject_pct in 0u64..101,
        depth in 1usize..7,
        pool_seed in 0u64..1025,
        value_offset in 0usize..5,
        retries in 0usize..5,
    ) {
        let ontology = mygrid::ontology();
        let pool = build_synthetic_pool(&ontology, depth, pool_seed);
        let module = arb_module(&inputs, salt, reject_pct);
        let config = GenerationConfig {
            value_offset,
            retries_per_combination: retries,
            ..GenerationConfig::default()
        };

        let oracle = generate_examples_sequential(&module, &ontology, &pool, &config).unwrap();

        // Planned (wave) execution, single-threaded.
        let planned = generate_examples(&module, &ontology, &pool, &config).unwrap();
        assert_reports_identical("planned", &planned, &oracle);

        // Planned execution with the opt-in parallel executor.
        let threaded = generate_examples(
            &module,
            &ontology,
            &pool,
            &GenerationConfig { invoke_threads: 4, ..config.clone() },
        )
        .unwrap();
        assert_reports_identical("threaded", &threaded, &oracle);

        // Cached execution on a cold cache…
        let cache = InvocationCache::new();
        let cold = generate_examples_cached(&module, &ontology, &pool, &config, &cache).unwrap();
        assert_reports_identical("cached/cold", &cold, &oracle);

        // …and again on the now-warm cache: zero fresh module invocations,
        // still the identical report.
        let misses_before = cache.stats().misses;
        let warm = generate_examples_cached(&module, &ontology, &pool, &config, &cache).unwrap();
        assert_reports_identical("cached/warm", &warm, &oracle);
        prop_assert_eq!(
            cache.stats().misses, misses_before,
            "warm regeneration must not invoke the module"
        );

        // Cached + parallel at a different offset shares whatever vectors the
        // offsets have in common and still matches its own oracle.
        let shifted = GenerationConfig {
            value_offset: value_offset + 1,
            invoke_threads: 4,
            ..config.clone()
        };
        let shifted_oracle =
            generate_examples_sequential(&module, &ontology, &pool, &shifted).unwrap();
        let shifted_cached =
            generate_examples_cached(&module, &ontology, &pool, &shifted, &cache).unwrap();
        assert_reports_identical("cached/shifted", &shifted_cached, &shifted_oracle);
    }

    /// The planner never performs *more* real invocations than the report
    /// claims, and a bounded cache (evictions!) still yields the exact
    /// report — capacity pressure may cost re-invocations, never wrong data.
    #[test]
    fn bounded_cache_stays_correct_under_eviction(
        salt in any::<u64>(),
        reject_pct in 0u64..101,
        capacity in 1usize..9,
    ) {
        let ontology = mygrid::ontology();
        let pool = build_synthetic_pool(&ontology, 3, 99);
        let module = arb_module(&[0, 4], salt, reject_pct);
        let config = GenerationConfig::default();
        let oracle = generate_examples_sequential(&module, &ontology, &pool, &config).unwrap();
        let cache = InvocationCache::with_capacity(capacity);
        for round in 0..3 {
            let report =
                generate_examples_cached(&module, &ontology, &pool, &config, &cache).unwrap();
            assert_reports_identical(&format!("bounded round {round}"), &report, &oracle);
        }
    }
}
