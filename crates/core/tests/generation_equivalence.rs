//! Property tests: the planned/cached/parallel generation paths produce
//! reports identical to the legacy sequential reference path
//! (`generate_examples_sequential`) across random module behaviors, pool
//! depths/seeds, value offsets, and retry budgets.
//!
//! This is the determinism contract of the invocation planner: caching and
//! parallelism may only change *how many times* a module is actually
//! invoked, never what the generation report says.

use dex_core::{
    generate_examples, generate_examples_cached, generate_examples_retrying,
    generate_examples_sequential, GenerationConfig, GenerationReport,
};
use dex_modules::{
    FaultPlan, FaultyModule, FnModule, InvocationCache, InvocationError, ModuleDescriptor,
    ModuleKind, Parameter, Retrier, RetryPolicy, SharedModule,
};
use dex_ontology::mygrid;
use dex_pool::build_synthetic_pool;
use dex_values::{StructuralType, Value};
use proptest::prelude::*;
use std::sync::Arc;

/// Text-valued concepts of the mygrid ontology the synthetic pool can
/// realize — input annotations are drawn from these.
const CONCEPTS: &[&str] = &[
    "BiologicalSequence",
    "DNASequence",
    "RNASequence",
    "ProteinSequence",
    "AlgorithmName",
];

/// A deterministic black box whose accept/reject behavior is scrambled by
/// `salt`: an input vector is rejected iff its salted digest lands under
/// `reject_pct`. Every value of `salt` is a different module "behavior".
fn arb_module(inputs: &[usize], salt: u64, reject_pct: u64) -> FnModule {
    let params: Vec<Parameter> = inputs
        .iter()
        .enumerate()
        .map(|(i, &c)| Parameter::required(format!("in{i}"), StructuralType::Text, CONCEPTS[c]))
        .collect();
    FnModule::new(
        ModuleDescriptor::new(
            format!("prop:m{salt:x}"),
            "PropModule",
            ModuleKind::RestService,
            params,
            vec![Parameter::required(
                "digest",
                StructuralType::Text,
                "Document",
            )],
        ),
        move |values| {
            let mut acc = salt;
            for v in values {
                if let Some(t) = v.as_text() {
                    for b in t.bytes() {
                        acc = acc.wrapping_mul(1099511628211).wrapping_add(u64::from(b));
                    }
                }
            }
            if acc % 100 < reject_pct {
                return Err(InvocationError::rejected("salted rejection"));
            }
            Ok(vec![Value::text(format!("{acc:016x}"))])
        },
    )
}

fn assert_reports_identical(label: &str, a: &GenerationReport, b: &GenerationReport) {
    assert_eq!(a.examples, b.examples, "{label}: examples differ");
    assert_eq!(
        a.failed_combinations, b.failed_combinations,
        "{label}: failed combinations differ"
    );
    assert_eq!(
        a.unvalued_partitions, b.unvalued_partitions,
        "{label}: unvalued partitions differ"
    );
    assert_eq!(
        a.invocations, b.invocations,
        "{label}: logical invocation counts differ"
    );
    assert_eq!(
        a.transient_failures, b.transient_failures,
        "{label}: transient failure counts differ"
    );
}

proptest! {
    #[test]
    fn planned_cached_and_parallel_paths_match_the_sequential_oracle(
        inputs in proptest::collection::vec(0usize..CONCEPTS.len(), 1..3),
        salt in any::<u64>(),
        reject_pct in 0u64..101,
        depth in 1usize..7,
        pool_seed in 0u64..1025,
        value_offset in 0usize..5,
        retries in 0usize..5,
    ) {
        let ontology = mygrid::ontology();
        let pool = build_synthetic_pool(&ontology, depth, pool_seed);
        let module = arb_module(&inputs, salt, reject_pct);
        let config = GenerationConfig {
            value_offset,
            retries_per_combination: retries,
            ..GenerationConfig::default()
        };

        let oracle = generate_examples_sequential(&module, &ontology, &pool, &config).unwrap();

        // Planned (wave) execution, single-threaded.
        let planned = generate_examples(&module, &ontology, &pool, &config).unwrap();
        assert_reports_identical("planned", &planned, &oracle);

        // Planned execution with the opt-in parallel executor.
        let threaded = generate_examples(
            &module,
            &ontology,
            &pool,
            &GenerationConfig { invoke_threads: 4, ..config.clone() },
        )
        .unwrap();
        assert_reports_identical("threaded", &threaded, &oracle);

        // Cached execution on a cold cache…
        let cache = InvocationCache::new();
        let cold = generate_examples_cached(&module, &ontology, &pool, &config, &cache).unwrap();
        assert_reports_identical("cached/cold", &cold, &oracle);

        // …and again on the now-warm cache: zero fresh module invocations,
        // still the identical report.
        let misses_before = cache.stats().misses;
        let warm = generate_examples_cached(&module, &ontology, &pool, &config, &cache).unwrap();
        assert_reports_identical("cached/warm", &warm, &oracle);
        prop_assert_eq!(
            cache.stats().misses, misses_before,
            "warm regeneration must not invoke the module"
        );

        // Cached + parallel at a different offset shares whatever vectors the
        // offsets have in common and still matches its own oracle.
        let shifted = GenerationConfig {
            value_offset: value_offset + 1,
            invoke_threads: 4,
            ..config.clone()
        };
        let shifted_oracle =
            generate_examples_sequential(&module, &ontology, &pool, &shifted).unwrap();
        let shifted_cached =
            generate_examples_cached(&module, &ontology, &pool, &shifted, &cache).unwrap();
        assert_reports_identical("cached/shifted", &shifted_cached, &shifted_oracle);
    }

    /// Fault tolerance contract: a module population injected with bounded
    /// transient fault bursts, generated through cache + retry, produces a
    /// report *byte-identical* to the fault-free sequential oracle — and the
    /// cache never memoizes a transient outcome along the way.
    #[test]
    fn faulted_retried_generation_matches_the_fault_free_oracle(
        inputs in proptest::collection::vec(0usize..CONCEPTS.len(), 1..3),
        salt in any::<u64>(),
        reject_pct in 0u64..101,
        fault_rate_pct in 0u32..41,
        fault_seed in any::<u64>(),
        value_offset in 0usize..3,
    ) {
        let ontology = mygrid::ontology();
        let pool = build_synthetic_pool(&ontology, 3, 7);
        let config = GenerationConfig {
            value_offset,
            ..GenerationConfig::default()
        };
        let plain = arb_module(&inputs, salt, reject_pct);
        let oracle = generate_examples_sequential(&plain, &ontology, &pool, &config).unwrap();

        // Same behavior, wrapped in seeded fault injection: bursts of up to
        // 2 consecutive transient faults per key, under a policy granting 3
        // retries — every key converges to its true outcome.
        let faulty = FaultyModule::new(
            Arc::new(arb_module(&inputs, salt, reject_pct)) as SharedModule,
            FaultPlan {
                seed: fault_seed,
                fault_rate_millis: fault_rate_pct * 10,
                max_consecutive: 2,
                latency_ticks: 1,
                flaps: Vec::new(),
            },
        );
        let retry_config = GenerationConfig {
            retry: RetryPolicy::transient(4),
            ..config.clone()
        };
        let cache = InvocationCache::new();
        let retrier = Retrier::new(retry_config.retry);
        let report = generate_examples_retrying(
            &faulty, &ontology, &pool, &retry_config, &cache, &retrier,
        )
        .unwrap();
        assert_reports_identical("faulted+retried", &report, &oracle);
        let stats = cache.stats();
        prop_assert_eq!(stats.memoized_transients, 0, "no transient was memoized");
        if faulty.stats().injected_faults > 0 {
            prop_assert!(retrier.stats().retries > 0, "faults imply retries");
        }

        // Disabling faults (rate 0) keeps the retried path equal to the
        // oracle too — retry machinery is inert on a healthy module.
        let healthy = FaultyModule::new(
            Arc::new(arb_module(&inputs, salt, reject_pct)) as SharedModule,
            FaultPlan::none(fault_seed),
        );
        let inert = generate_examples_retrying(
            &healthy, &ontology, &pool, &retry_config, &InvocationCache::new(), &retrier,
        )
        .unwrap();
        assert_reports_identical("faults-disabled", &inert, &oracle);
    }

    /// The planner never performs *more* real invocations than the report
    /// claims, and a bounded cache (evictions!) still yields the exact
    /// report — capacity pressure may cost re-invocations, never wrong data.
    #[test]
    fn bounded_cache_stays_correct_under_eviction(
        salt in any::<u64>(),
        reject_pct in 0u64..101,
        capacity in 1usize..9,
    ) {
        let ontology = mygrid::ontology();
        let pool = build_synthetic_pool(&ontology, 3, 99);
        let module = arb_module(&[0, 4], salt, reject_pct);
        let config = GenerationConfig::default();
        let oracle = generate_examples_sequential(&module, &ontology, &pool, &config).unwrap();
        let cache = InvocationCache::with_capacity(capacity);
        for round in 0..3 {
            let report =
                generate_examples_cached(&module, &ontology, &pool, &config, &cache).unwrap();
            assert_reports_identical(&format!("bounded round {round}"), &report, &oracle);
        }
    }
}

/// [`arb_module`]'s digest behavior under an explicit module id, so a target
/// and a behaviorally identical candidate can carry distinct identities.
fn digest_module(id: &str, salt: u64, reject_pct: u64) -> FnModule {
    FnModule::new(
        ModuleDescriptor::new(
            id,
            "FlapModule",
            ModuleKind::SoapService,
            vec![
                Parameter::required("in0", StructuralType::Text, CONCEPTS[0]),
                Parameter::required("in1", StructuralType::Text, CONCEPTS[4]),
            ],
            vec![Parameter::required(
                "digest",
                StructuralType::Text,
                "Document",
            )],
        ),
        move |values| {
            let mut acc = salt;
            for v in values {
                if let Some(t) = v.as_text() {
                    for b in t.bytes() {
                        acc = acc.wrapping_mul(1099511628211).wrapping_add(u64::from(b));
                    }
                }
            }
            if acc % 100 < reject_pct {
                return Err(InvocationError::rejected("salted rejection"));
            }
            Ok(vec![Value::text(format!("{acc:016x}"))])
        },
    )
}

/// Acceptance scenario for the fault-tolerance subsystem: under a seeded
/// flap schedule (provider withdraws, then restores — `Unavailable` inside
/// the window), the cached pipeline's example *and* matching reports are
/// byte-identical to the fault-free sequential oracle, and the invocation
/// cache holds zero memoized transient outcomes.
#[test]
fn flap_schedule_converges_to_the_fault_free_reports() {
    use dex_core::{compare_modules, MatchSession};

    let ontology = mygrid::ontology();
    let pool = build_synthetic_pool(&ontology, 3, 42);
    let no_retry = GenerationConfig::default();
    let retry_config = GenerationConfig {
        // Backoff 8 ticks on first retry: longer than the 4-tick flap
        // window below, so one retry always escapes the outage.
        retry: RetryPolicy {
            max_attempts: 4,
            base_backoff_ticks: 8,
            max_backoff_ticks: 64,
            retry_budget: Some(10_000),
        },
        ..GenerationConfig::default()
    };
    let flap = |seed: u64| FaultPlan::none(seed).with_flap(2, 6);

    // --- Generation: faulted target vs fault-free oracle -----------------
    let target = digest_module("flap:target", 77, 20);
    let oracle = generate_examples_sequential(&target, &ontology, &pool, &no_retry).unwrap();
    let faulted_target = FaultyModule::new(
        Arc::new(digest_module("flap:target", 77, 20)) as SharedModule,
        flap(1),
    );
    let cache = InvocationCache::new();
    let retrier = Retrier::new(retry_config.retry);
    let report = generate_examples_retrying(
        &faulted_target,
        &ontology,
        &pool,
        &retry_config,
        &cache,
        &retrier,
    )
    .unwrap();
    assert_reports_identical("flap/generation", &report, &oracle);
    assert!(
        faulted_target.stats().injected_unavailable > 0,
        "the schedule actually flapped"
    );
    assert!(
        retrier.stats().retries > 0,
        "the outage was retried through"
    );
    assert_eq!(retrier.stats().budget_denied, 0, "budget was not exceeded");
    assert_eq!(cache.stats().memoized_transients, 0);

    // --- Matching: flapping candidate vs fault-free oracle ----------------
    let candidate = digest_module("flap:candidate", 77, 20);
    let oracle_verdict = compare_modules(&target, &candidate, &ontology, &pool, &no_retry).unwrap();
    let faulted_candidate = FaultyModule::new(
        Arc::new(digest_module("flap:candidate", 77, 20)) as SharedModule,
        flap(2),
    );
    let session = MatchSession::new(&ontology, &pool, retry_config.clone());
    let verdict = session.compare(&target, &faulted_candidate).unwrap();
    assert_eq!(verdict, oracle_verdict, "flap must not change the verdict");
    assert_eq!(session.invocation_stats().memoized_transients, 0);
}
