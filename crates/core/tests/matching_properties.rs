//! Matching invariants checked across the whole synthetic universe.

use dex_core::matching::{map_parameters, MappingMode};
use dex_core::{compare_modules, GenerationConfig, MatchVerdict};
use dex_pool::build_synthetic_pool;

/// Reflexivity: every module is (eventually) equivalent to itself.
#[test]
fn every_module_is_equivalent_to_itself() {
    let universe = dex_universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 4, 17);
    let config = GenerationConfig::default();
    for id in universe.available_ids() {
        let module = universe.catalog.get(&id).expect("available");
        let verdict = compare_modules(
            module.as_ref(),
            module.as_ref(),
            &universe.ontology,
            &pool,
            &config,
        )
        .unwrap_or_else(|e| panic!("{id}: {e}"));
        assert!(
            matches!(verdict, MatchVerdict::Equivalent { .. }),
            "{id}: {verdict}"
        );
    }
}

/// Strict parameter mapping is symmetric; the subsuming relaxation is not
/// (direction matters: the candidate must accept the broader domain).
#[test]
fn strict_mapping_is_symmetric_subsuming_is_directed() {
    let universe = dex_universe::build();
    let ontology = &universe.ontology;
    let ids = universe.available_ids();
    let mut checked = 0;
    for a in ids.iter().take(60) {
        for b in ids.iter().take(60) {
            let da = universe.catalog.descriptor(a).unwrap();
            let db = universe.catalog.descriptor(b).unwrap();
            let ab = map_parameters(da, db, ontology, MappingMode::Strict).is_ok();
            let ba = map_parameters(db, da, ontology, MappingMode::Strict).is_ok();
            assert_eq!(ab, ba, "strict mapping must be symmetric: {a} vs {b}");
            // Strict implies subsuming.
            if ab {
                assert!(
                    map_parameters(da, db, ontology, MappingMode::Subsuming).is_ok(),
                    "{a} vs {b}"
                );
            }
            checked += 1;
        }
    }
    assert!(checked > 0);
    // Directedness witness: GetBiologicalSequence subsumes
    // get_protein_sequence_ebi's interface but not vice versa.
    let broad = universe
        .catalog
        .descriptor(&"dr:get_biological_sequence".into())
        .unwrap();
    let narrow = universe
        .catalog
        .descriptor(&"dr:get_protein_sequence_ebi".into())
        .unwrap();
    assert!(map_parameters(narrow, broad, ontology, MappingMode::Subsuming).is_ok());
    assert!(map_parameters(broad, narrow, ontology, MappingMode::Subsuming).is_err());
}

/// The matcher's verdict is stable under regeneration (same pool, same
/// config → same verdict), for a sample of module pairs.
#[test]
fn verdicts_are_deterministic() {
    let universe = dex_universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 4, 17);
    let config = GenerationConfig::default();
    let pairs = [
        ("dr:get_uniprot_record", "dr:get_uniprot_record_ebi"),
        ("da:align_seq_ebi", "da:align_seq_ddbj"),
        ("mi:map_uniprot_go", "mi:map_uniprot_go_ebi"),
    ];
    for (a, b) in pairs {
        let ma = universe.catalog.get(&a.into()).unwrap();
        let mb = universe.catalog.get(&b.into()).unwrap();
        let v1 =
            compare_modules(ma.as_ref(), mb.as_ref(), &universe.ontology, &pool, &config).unwrap();
        let v2 =
            compare_modules(ma.as_ref(), mb.as_ref(), &universe.ontology, &pool, &config).unwrap();
        assert_eq!(v1, v2, "{a} vs {b}");
    }
}

/// Provider variants that share a backend are pairwise equivalent — the
/// §6 KEGG claim, checked for every planted equivalence pair.
#[test]
fn planted_equivalences_hold_pairwise() {
    let universe = dex_universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 4, 17);
    let config = GenerationConfig::default();
    for (legacy, expected) in &universe.expected_match {
        let dex_universe::ExpectedMatch::Equivalent(target) = expected else {
            continue;
        };
        let a = universe.catalog.get(legacy).expect("pre-decay: available");
        let b = universe.catalog.get(target).expect("available");
        let verdict = compare_modules(a.as_ref(), b.as_ref(), &universe.ontology, &pool, &config)
            .unwrap_or_else(|e| panic!("{legacy} vs {target}: {e}"));
        assert!(
            matches!(verdict, MatchVerdict::Equivalent { .. }),
            "{legacy} vs {target}: {verdict}"
        );
    }
}
