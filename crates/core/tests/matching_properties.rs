//! Matching invariants checked across the whole synthetic universe.

use dex_core::matching::{map_parameters, MappingMode};
use dex_core::{compare_modules, FingerprintIndex, GenerationConfig, MatchVerdict};
use dex_modules::{ModuleDescriptor, ModuleKind, Parameter};
use dex_pool::build_synthetic_pool;
use dex_values::StructuralType;
use proptest::prelude::*;

/// Reflexivity: every module is (eventually) equivalent to itself.
#[test]
fn every_module_is_equivalent_to_itself() {
    let universe = dex_universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 4, 17);
    let config = GenerationConfig::default();
    for id in universe.available_ids() {
        let module = universe.catalog.get(&id).expect("available");
        let verdict = compare_modules(
            module.as_ref(),
            module.as_ref(),
            &universe.ontology,
            &pool,
            &config,
        )
        .unwrap_or_else(|e| panic!("{id}: {e}"));
        assert!(
            matches!(verdict, MatchVerdict::Equivalent { .. }),
            "{id}: {verdict}"
        );
    }
}

/// Strict parameter mapping is symmetric; the subsuming relaxation is not
/// (direction matters: the candidate must accept the broader domain).
#[test]
fn strict_mapping_is_symmetric_subsuming_is_directed() {
    let universe = dex_universe::build();
    let ontology = &universe.ontology;
    let ids = universe.available_ids();
    let mut checked = 0;
    for a in ids.iter().take(60) {
        for b in ids.iter().take(60) {
            let da = universe.catalog.descriptor(a).unwrap();
            let db = universe.catalog.descriptor(b).unwrap();
            let ab = map_parameters(da, db, ontology, MappingMode::Strict).is_ok();
            let ba = map_parameters(db, da, ontology, MappingMode::Strict).is_ok();
            assert_eq!(ab, ba, "strict mapping must be symmetric: {a} vs {b}");
            // Strict implies subsuming.
            if ab {
                assert!(
                    map_parameters(da, db, ontology, MappingMode::Subsuming).is_ok(),
                    "{a} vs {b}"
                );
            }
            checked += 1;
        }
    }
    assert!(checked > 0);
    // Directedness witness: GetBiologicalSequence subsumes
    // get_protein_sequence_ebi's interface but not vice versa.
    let broad = universe
        .catalog
        .descriptor(&"dr:get_biological_sequence".into())
        .unwrap();
    let narrow = universe
        .catalog
        .descriptor(&"dr:get_protein_sequence_ebi".into())
        .unwrap();
    assert!(map_parameters(narrow, broad, ontology, MappingMode::Subsuming).is_ok());
    assert!(map_parameters(broad, narrow, ontology, MappingMode::Subsuming).is_err());
}

/// The matcher's verdict is stable under regeneration (same pool, same
/// config → same verdict), for a sample of module pairs.
#[test]
fn verdicts_are_deterministic() {
    let universe = dex_universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 4, 17);
    let config = GenerationConfig::default();
    let pairs = [
        ("dr:get_uniprot_record", "dr:get_uniprot_record_ebi"),
        ("da:align_seq_ebi", "da:align_seq_ddbj"),
        ("mi:map_uniprot_go", "mi:map_uniprot_go_ebi"),
    ];
    for (a, b) in pairs {
        let ma = universe.catalog.get(&a.into()).unwrap();
        let mb = universe.catalog.get(&b.into()).unwrap();
        let v1 =
            compare_modules(ma.as_ref(), mb.as_ref(), &universe.ontology, &pool, &config).unwrap();
        let v2 =
            compare_modules(ma.as_ref(), mb.as_ref(), &universe.ontology, &pool, &config).unwrap();
        assert_eq!(v1, v2, "{a} vs {b}");
    }
}

/// Concepts the descriptor generator draws interface shapes from.
const SHAPE_CONCEPTS: &[&str] = &[
    "BiologicalSequence",
    "DNASequence",
    "RNASequence",
    "ProteinSequence",
    "AlgorithmName",
];

/// A descriptor whose fingerprint is a function of `shape`: arity and
/// per-input concepts are decoded from the shape bits, so a small number
/// of shapes yields colliding buckets while distinct shapes migrate slots
/// across buckets.
fn shaped_descriptor(slot: usize, shape: u64) -> ModuleDescriptor {
    let arity = 1 + (shape % 3) as usize;
    let params: Vec<Parameter> = (0..arity)
        .map(|i| {
            let concept = SHAPE_CONCEPTS[((shape >> (8 * i)) as usize) % SHAPE_CONCEPTS.len()];
            Parameter::required(format!("in{i}"), StructuralType::Text, concept)
        })
        .collect();
    ModuleDescriptor::new(
        format!("prop:slot{slot}"),
        "ShapeModule",
        ModuleKind::RestService,
        params,
        vec![Parameter::required("out", StructuralType::Text, "Document")],
    )
}

proptest! {
    /// Incremental maintenance contract (ISSUE 7): any interleaving of
    /// `FingerprintIndex::insert` / `remove` calls leaves the index
    /// observationally identical to a fresh `build` over the same final
    /// slot assignment — per-slot fingerprints, canonical bucket order,
    /// bucket stats, and both pair worklists included.
    #[test]
    fn incremental_index_matches_fresh_rebuild(
        slots in 2usize..9,
        ops in proptest::collection::vec(any::<u64>(), 1..25),
    ) {
        let ontology = dex_ontology::mygrid::ontology();
        // Each raw op word decodes into a (slot selector, shape) pair.
        let ops: Vec<(u64, u64)> = ops
            .iter()
            .map(|&w| (w, w.rotate_left(23).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            .collect();
        // Start from a built index over an arbitrary initial assignment
        // (the first `slots` ops seed it; `None` for odd shapes).
        let initial: Vec<Option<ModuleDescriptor>> = (0..slots)
            .map(|i| {
                let (a, _) = ops[i % ops.len()];
                (a % 3 != 0).then(|| shaped_descriptor(i, a))
            })
            .collect();
        let mut live = FingerprintIndex::build(
            initial.iter().map(|d| d.as_ref()),
            &ontology,
        );
        let mut assigned = initial;

        for &(sel, shape) in &ops {
            let slot = (sel as usize) % slots;
            if shape % 4 == 0 {
                live.remove(slot);
                assigned[slot] = None;
            } else {
                let d = shaped_descriptor(slot, shape);
                live.insert(slot, &d, &ontology);
                assigned[slot] = Some(d);
            }

            let fresh = FingerprintIndex::build(
                assigned.iter().map(|d| d.as_ref()),
                &ontology,
            );
            prop_assert_eq!(live.len(), fresh.len());
            for i in 0..slots {
                prop_assert_eq!(
                    live.fingerprint(i), fresh.fingerprint(i),
                    "slot {} fingerprint diverged", i
                );
                prop_assert_eq!(live.peers(i), fresh.peers(i), "slot {} peers", i);
            }
            let live_buckets: Vec<&[usize]> = live.buckets().collect();
            let fresh_buckets: Vec<&[usize]> = fresh.buckets().collect();
            prop_assert_eq!(live_buckets, fresh_buckets, "bucket order diverged");
            prop_assert_eq!(live.bucket_count(), fresh.bucket_count());
            prop_assert_eq!(live.largest_bucket(), fresh.largest_bucket());
            prop_assert_eq!(live.comparable_pairs(), fresh.comparable_pairs());
            // The interleaved worklist is a permutation of the bucket-major
            // one — same pair *set*, scheduler-friendly order.
            let mut inter = live.comparable_pairs_interleaved();
            inter.sort_unstable();
            let mut major = fresh.comparable_pairs();
            major.sort_unstable();
            prop_assert_eq!(inter, major, "interleaved pair set diverged");
        }
    }
}

/// Provider variants that share a backend are pairwise equivalent — the
/// §6 KEGG claim, checked for every planted equivalence pair.
#[test]
fn planted_equivalences_hold_pairwise() {
    let universe = dex_universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 4, 17);
    let config = GenerationConfig::default();
    for (legacy, expected) in &universe.expected_match {
        let dex_universe::ExpectedMatch::Equivalent(target) = expected else {
            continue;
        };
        let a = universe.catalog.get(legacy).expect("pre-decay: available");
        let b = universe.catalog.get(target).expect("available");
        let verdict = compare_modules(a.as_ref(), b.as_ref(), &universe.ontology, &pool, &config)
            .unwrap_or_else(|e| panic!("{legacy} vs {target}: {e}"));
        assert!(
            matches!(verdict, MatchVerdict::Equivalent { .. }),
            "{legacy} vs {target}: {verdict}"
        );
    }
}
