//! Measures the overhead of the `dex-telemetry` subscriber on the two
//! parallel hot paths, and emits a machine-readable `BENCH_telemetry.json`.
//!
//! Usage: `cargo run --release -p dex-bench --bin bench_telemetry [OUT.json]`
//! (default output path: `BENCH_telemetry.json` in the working directory).
//!
//! Each workload runs several interleaved repetitions with the subscriber
//! off and on; the reported overhead compares the medians. The ISSUE budget
//! is ~5% when enabled — when *disabled* the instrumentation is a single
//! relaxed atomic load per site and should be unmeasurable.

use dex_core::GenerationConfig;
use dex_experiments::parallel::{generate_all_parallel, match_pairs_parallel};
use dex_modules::ModuleId;
use dex_pool::build_synthetic_pool;
use std::fmt::Write as _;
use std::time::Instant;

/// Per-call milliseconds for one timed batch of `batch` calls.
fn batch_ms(batch: usize, f: &mut impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..batch {
        f();
    }
    start.elapsed().as_secs_f64() * 1_000.0 / batch as f64
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_telemetry.json".to_string());
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let (reps, batch): (usize, usize) = if cfg!(debug_assertions) {
        (3, 1)
    } else {
        (15, 4)
    };

    let universe = dex_universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 4, 42);
    let config = GenerationConfig::default();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    let match_ids: Vec<ModuleId> = universe.available_ids().into_iter().step_by(11).collect();

    let mut json = String::from("{\n");
    writeln!(json, "  \"profile\": \"{profile}\",").unwrap();
    writeln!(json, "  \"threads\": {threads},").unwrap();

    // Off and on batches alternate so slow machine drift (frequency
    // scaling, background load) hits both sides equally instead of biasing
    // whichever side ran later.
    let section = |name: &str, mut run: Box<dyn FnMut() + '_>| -> (f64, f64) {
        let mut off = Vec::with_capacity(reps);
        let mut on = Vec::with_capacity(reps);
        for _ in 0..reps {
            dex_telemetry::disable();
            off.push(batch_ms(batch, &mut run));
            dex_telemetry::enable();
            on.push(batch_ms(batch, &mut run));
        }
        dex_telemetry::disable();
        dex_telemetry::reset();
        let (off_ms, on_ms) = (median(off), median(on));
        eprintln!("{name}: off {off_ms:.2} ms, on {on_ms:.2} ms");
        (off_ms, on_ms)
    };

    let (gen_off, gen_on) = section(
        "generate_all_parallel",
        Box::new(|| {
            std::hint::black_box(generate_all_parallel(&universe, &pool, &config, threads));
        }),
    );
    let (match_off, match_on) = section(
        "match_pairs_parallel",
        Box::new(|| {
            std::hint::black_box(match_pairs_parallel(
                &universe, &match_ids, &pool, &config, threads,
            ));
        }),
    );

    let pct = |off: f64, on: f64| (on - off) / off * 100.0;
    writeln!(
        json,
        "  \"generate_all\": {{\"off_ms\": {gen_off:.2}, \"on_ms\": {gen_on:.2}, \
         \"overhead_pct\": {:.2}}},",
        pct(gen_off, gen_on)
    )
    .unwrap();
    writeln!(
        json,
        "  \"match_pairs\": {{\"modules\": {}, \"off_ms\": {match_off:.2}, \
         \"on_ms\": {match_on:.2}, \"overhead_pct\": {:.2}}}",
        match_ids.len(),
        pct(match_off, match_on)
    )
    .unwrap();
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write summary");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
