//! Measures the overhead of the `dex-telemetry` subscriber on the two
//! parallel hot paths — plus per-call microcosts of the span guard and the
//! flight recorder — and emits a machine-readable `BENCH_telemetry.json`.
//!
//! Usage: `cargo run --release -p dex-bench --bin bench_telemetry [OUT.json]`
//! (default output path: `BENCH_telemetry.json` in the working directory).
//!
//! Each workload runs several interleaved repetitions with the subscriber
//! off and on; the reported overhead compares the medians. Release builds
//! **gate** the results: enabled tracing must cost at most
//! [`OVERHEAD_BUDGET_PCT`] on the workload medians, and a *disabled* span
//! site — one relaxed atomic load and an early return, no allocation — must
//! stay under [`DISABLED_SPAN_BUDGET_NS`] per call. Breaching either budget
//! exits nonzero so CI treats instrumentation creep as a regression.

use dex_core::GenerationConfig;
use dex_experiments::parallel::{generate_all_parallel, match_pairs_parallel};
use dex_modules::ModuleId;
use dex_pool::build_synthetic_pool;
use std::fmt::Write as _;
use std::time::Instant;

/// Maximum median slowdown tracing may inflict on an instrumented workload.
const OVERHEAD_BUDGET_PCT: f64 = 10.0;

/// Ceiling for a disabled span site, per call. The guard is a single
/// relaxed load (~1 ns on current hardware); the budget leaves headroom for
/// noisy CI hosts while still catching an accidental allocation or clock
/// read on the disabled path, which would cost 20–60 ns.
const DISABLED_SPAN_BUDGET_NS: f64 = 20.0;

/// Per-call milliseconds for one timed batch of `batch` calls.
fn batch_ms(batch: usize, f: &mut impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..batch {
        f();
    }
    start.elapsed().as_secs_f64() * 1_000.0 / batch as f64
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    samples[samples.len() / 2]
}

/// Median nanoseconds per call of `f` over `reps` batches of `calls`.
fn ns_per_call(reps: usize, calls: usize, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..calls {
            f();
        }
        samples.push(start.elapsed().as_secs_f64() * 1e9 / calls as f64);
    }
    median(samples)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_telemetry.json".to_string());
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let (reps, batch): (usize, usize) = if cfg!(debug_assertions) {
        (3, 1)
    } else {
        (15, 4)
    };

    let universe = dex_universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 4, 42);
    let config = GenerationConfig::default();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    let match_ids: Vec<ModuleId> = universe.available_ids().into_iter().step_by(11).collect();

    let mut json = String::from("{\n");
    writeln!(json, "  \"profile\": \"{profile}\",").unwrap();
    writeln!(json, "  \"threads\": {threads},").unwrap();
    writeln!(json, "  \"overhead_budget_pct\": {OVERHEAD_BUDGET_PCT},").unwrap();

    // Off and on batches alternate so slow machine drift (frequency
    // scaling, background load) hits both sides equally instead of biasing
    // whichever side ran later.
    let section = |name: &str, mut run: Box<dyn FnMut() + '_>| -> (f64, f64) {
        let mut off = Vec::with_capacity(reps);
        let mut on = Vec::with_capacity(reps);
        for _ in 0..reps {
            dex_telemetry::disable();
            off.push(batch_ms(batch, &mut run));
            dex_telemetry::enable();
            on.push(batch_ms(batch, &mut run));
        }
        dex_telemetry::disable();
        dex_telemetry::reset();
        let (off_ms, on_ms) = (median(off), median(on));
        eprintln!("{name}: off {off_ms:.2} ms, on {on_ms:.2} ms");
        (off_ms, on_ms)
    };

    let (gen_off, gen_on) = section(
        "generate_all_parallel",
        Box::new(|| {
            std::hint::black_box(generate_all_parallel(&universe, &pool, &config, threads));
        }),
    );
    let (match_off, match_on) = section(
        "match_pairs_parallel",
        Box::new(|| {
            std::hint::black_box(match_pairs_parallel(
                &universe, &match_ids, &pool, &config, threads,
            ));
        }),
    );

    // Microcosts. Disabled sites must be inert: the span guard is a relaxed
    // load + None, the flight gate a pair of relaxed loads — no clock read,
    // no allocation, no formatting (call sites gate on `flight_on()` before
    // building the detail string).
    let micro_calls = if cfg!(debug_assertions) {
        10_000
    } else {
        1_000_000
    };
    dex_telemetry::disable();
    let span_off_ns = ns_per_call(reps, micro_calls, || {
        drop(std::hint::black_box(dex_telemetry::span("bench.micro")));
    });
    let flight_off_ns = ns_per_call(reps, micro_calls, || {
        if std::hint::black_box(dex_telemetry::flight_on()) {
            dex_telemetry::flight(
                dex_telemetry::FlightKind::Invocation,
                "bench.micro",
                "never reached while disabled".to_string(),
                0,
            );
        }
    });
    dex_telemetry::enable();
    // Enabled spans fold into the root list; keep batches modest and reset
    // between them so the forest doesn't grow monotonically.
    let span_calls = micro_calls / 10;
    let span_on_ns = ns_per_call(reps, span_calls.max(1), || {
        drop(std::hint::black_box(dex_telemetry::span("bench.micro")));
    });
    dex_telemetry::reset();
    // The flight ring overwrites in place, so volume is free; each recorded
    // event costs one format + one boxed slot swap.
    let flight_on_ns = ns_per_call(reps, span_calls.max(1), || {
        if dex_telemetry::flight_on() {
            dex_telemetry::flight(
                dex_telemetry::FlightKind::Invocation,
                "bench.micro",
                "ok (1 outputs)".to_string(),
                1,
            );
        }
    });
    dex_telemetry::disable();
    dex_telemetry::reset();
    eprintln!(
        "span: disabled {span_off_ns:.1} ns/call, enabled {span_on_ns:.1} ns/call; \
         flight: disabled {flight_off_ns:.1} ns/call, enabled {flight_on_ns:.1} ns/call"
    );

    let pct = |off: f64, on: f64| (on - off) / off * 100.0;
    let gen_pct = pct(gen_off, gen_on);
    let match_pct = pct(match_off, match_on);
    writeln!(
        json,
        "  \"generate_all\": {{\"off_ms\": {gen_off:.2}, \"on_ms\": {gen_on:.2}, \
         \"overhead_pct\": {gen_pct:.2}}},",
    )
    .unwrap();
    writeln!(
        json,
        "  \"match_pairs\": {{\"modules\": {}, \"off_ms\": {match_off:.2}, \
         \"on_ms\": {match_on:.2}, \"overhead_pct\": {match_pct:.2}}},",
        match_ids.len(),
    )
    .unwrap();
    writeln!(
        json,
        "  \"span_call\": {{\"disabled_ns\": {span_off_ns:.1}, \"enabled_ns\": {span_on_ns:.1}, \
         \"disabled_budget_ns\": {DISABLED_SPAN_BUDGET_NS}}},"
    )
    .unwrap();
    writeln!(
        json,
        "  \"flight_event\": {{\"disabled_ns\": {flight_off_ns:.1}, \
         \"enabled_ns\": {flight_on_ns:.1}}},"
    )
    .unwrap();

    // Gate only in release: debug medians measure the lack of optimization,
    // not the instrumentation.
    let mut violations: Vec<String> = Vec::new();
    if !cfg!(debug_assertions) {
        if gen_pct > OVERHEAD_BUDGET_PCT {
            violations.push(format!(
                "generate_all enabled overhead {gen_pct:.2}% > {OVERHEAD_BUDGET_PCT}%"
            ));
        }
        if match_pct > OVERHEAD_BUDGET_PCT {
            violations.push(format!(
                "match_pairs enabled overhead {match_pct:.2}% > {OVERHEAD_BUDGET_PCT}%"
            ));
        }
        if span_off_ns > DISABLED_SPAN_BUDGET_NS {
            violations.push(format!(
                "disabled span site costs {span_off_ns:.1} ns/call > {DISABLED_SPAN_BUDGET_NS} ns"
            ));
        }
        if flight_off_ns > DISABLED_SPAN_BUDGET_NS {
            violations.push(format!(
                "disabled flight site costs {flight_off_ns:.1} ns/call > \
                 {DISABLED_SPAN_BUDGET_NS} ns"
            ));
        }
    }
    writeln!(
        json,
        "  \"gate\": \"{}\"",
        if violations.is_empty() {
            "pass"
        } else {
            "fail"
        }
    )
    .unwrap();
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write summary");
    print!("{json}");
    eprintln!("wrote {out_path}");
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("bench_telemetry: BUDGET VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}
