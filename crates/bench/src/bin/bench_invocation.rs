//! Emits `BENCH_invocation.json`: before/after numbers for the invocation
//! planner + shared invocation cache, measured on the aligned-matching
//! workload (generation at value offsets `0..k` over a module sample, then
//! all-pairs example replay — the §6 matching pipeline).
//!
//! The "uncached" baseline reproduces the pre-planner pipeline: per-offset
//! memoized generation via the sequential reference path, with every replay
//! invoking the candidate afresh. The "cached" run is today's pipeline: one
//! [`MatchSession`] whose generations and replays share an
//! [`InvocationCache`].
//!
//! Exits nonzero if the cache records zero hits on this workload — that
//! would mean the planner's sharing is broken, and CI treats it as a
//! regression.
//!
//! Usage: `cargo run --release -p dex-bench --bin bench_invocation [OUT.json]`

use dex_core::{
    generate_examples_sequential, match_against_examples, GenerationConfig, GenerationReport,
    MappingMode, MatchSession,
};
use dex_modules::{BlackBox, InvocationError, ModuleDescriptor, ModuleId, SharedModule};
use dex_pool::build_synthetic_pool;
use dex_values::Value;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Wraps a catalog module, counting every invocation that actually reaches
/// the black box (cache hits never get here).
struct Counted {
    inner: SharedModule,
    invocations: Arc<AtomicU64>,
}

impl BlackBox for Counted {
    fn descriptor(&self) -> &ModuleDescriptor {
        self.inner.descriptor()
    }

    fn invoke(&self, inputs: &[Value]) -> Result<Vec<Value>, InvocationError> {
        self.invocations.fetch_add(1, Ordering::Relaxed);
        self.inner.invoke(inputs)
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_invocation.json".to_string());
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };

    let universe = dex_universe::build();
    let pool = build_synthetic_pool(
        &universe.ontology,
        dex_experiments::POOL_PER_CONCEPT,
        dex_experiments::POOL_SEED,
    );
    let config = GenerationConfig::default();
    let offsets = 3usize;

    // Sample lookalike families: modules sharing an input-concept signature
    // are the pairs aligned matching actually replays against each other (a
    // uniformly thinned sample is almost entirely incomparable pairs, which
    // exercises neither the baseline nor the cache).
    let mut families: BTreeMap<Vec<String>, Vec<ModuleId>> = BTreeMap::new();
    for id in universe.available_ids() {
        let module = universe.catalog.get(&id).expect("available");
        let mut signature: Vec<String> = module
            .descriptor()
            .inputs
            .iter()
            .map(|p| p.semantic.clone())
            .collect();
        signature.sort();
        families.entry(signature).or_default().push(id);
    }
    let mut families: Vec<Vec<ModuleId>> = families
        .into_values()
        .filter(|members| members.len() >= 2)
        .collect();
    families.sort_by_key(|members| std::cmp::Reverse(members.len()));
    let ids: Vec<ModuleId> = families.into_iter().flatten().take(16).collect();
    let counter = Arc::new(AtomicU64::new(0));
    let modules: Vec<Counted> = ids
        .iter()
        .map(|id| Counted {
            inner: universe.catalog.get(id).expect("available").clone(),
            invocations: Arc::clone(&counter),
        })
        .collect();
    let pairs = ids.len() * (ids.len() - 1);

    // Each measured run starts from scratch (fresh report memo / fresh
    // session+cache); wall-clock is the median of `REPS` runs, invocation
    // counts come from the last run (they are identical across runs).
    const REPS: usize = 5;
    let median_ms = |times: &mut Vec<f64>| {
        times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        times[times.len() / 2]
    };

    // --- Baseline: pre-planner pipeline ----------------------------------
    // Generation memoized per (module, offset) — the old MatchSession did
    // that much — but produced by the sequential loop, and every replay
    // re-invokes the candidate.
    let mut uncached_times = Vec::with_capacity(REPS);
    let mut uncached_invocations = 0;
    for _ in 0..REPS {
        counter.store(0, Ordering::Relaxed);
        let start = Instant::now();
        let mut reports: HashMap<(usize, usize), GenerationReport> = HashMap::new();
        for offset in 0..offsets {
            let config = GenerationConfig {
                value_offset: offset,
                ..config.clone()
            };
            for (i, module) in modules.iter().enumerate() {
                let report =
                    generate_examples_sequential(module, &universe.ontology, &pool, &config)
                        .unwrap_or_else(|e| panic!("{}: {e}", ids[i]));
                reports.insert((offset, i), report);
            }
            for (t, target) in modules.iter().enumerate() {
                for (c, candidate) in modules.iter().enumerate() {
                    if t == c {
                        continue;
                    }
                    let _ = match_against_examples(
                        target.descriptor(),
                        &reports[&(offset, t)].examples,
                        candidate,
                        &universe.ontology,
                        MappingMode::Strict,
                    );
                }
            }
        }
        uncached_times.push(start.elapsed().as_secs_f64() * 1_000.0);
        uncached_invocations = counter.load(Ordering::Relaxed);
    }
    let uncached_ms = median_ms(&mut uncached_times);

    // --- Cached: the planner pipeline ------------------------------------
    let mut cached_times = Vec::with_capacity(REPS);
    let mut cached_invocations = 0;
    let mut stats = dex_modules::InvocationCacheStats::default();
    for _ in 0..REPS {
        counter.store(0, Ordering::Relaxed);
        let start = Instant::now();
        let session = MatchSession::new(&universe.ontology, &pool, config.clone());
        for offset in 0..offsets {
            for (t, target) in modules.iter().enumerate() {
                let report = session.report_at(target, offset);
                let Ok(report) = report.as_ref() else {
                    panic!("{}: generation failed", ids[t])
                };
                for (c, candidate) in modules.iter().enumerate() {
                    if t == c {
                        continue;
                    }
                    let _ = dex_core::match_against_examples_cached(
                        target.descriptor(),
                        &report.examples,
                        candidate,
                        &universe.ontology,
                        MappingMode::Strict,
                        session.invocation_cache(),
                    );
                }
            }
        }
        cached_times.push(start.elapsed().as_secs_f64() * 1_000.0);
        cached_invocations = counter.load(Ordering::Relaxed);
        stats = session.invocation_stats();
    }
    let cached_ms = median_ms(&mut cached_times);

    let drop_pct = if uncached_invocations > 0 {
        100.0 * (uncached_invocations.saturating_sub(cached_invocations)) as f64
            / uncached_invocations as f64
    } else {
        0.0
    };

    let mut json = String::from("{\n");
    writeln!(json, "  \"profile\": \"{profile}\",").unwrap();
    writeln!(json, "  \"aligned_matching\": {{").unwrap();
    writeln!(
        json,
        "    \"modules\": {}, \"offsets\": {offsets}, \"ordered_pairs\": {pairs},",
        ids.len()
    )
    .unwrap();
    writeln!(
        json,
        "    \"uncached\": {{\"module_invocations\": {uncached_invocations}, \"ms\": {uncached_ms:.2}}},"
    )
    .unwrap();
    writeln!(
        json,
        "    \"cached\": {{\"module_invocations\": {cached_invocations}, \"ms\": {cached_ms:.2}, \
         \"cache_hits\": {}, \"cache_misses\": {}, \"cache_entries\": {}, \"hit_rate_pct\": {:.1}}},",
        stats.hits,
        stats.misses,
        stats.entries,
        stats.hit_rate() * 100.0
    )
    .unwrap();
    writeln!(json, "    \"invocation_drop_pct\": {drop_pct:.1}").unwrap();
    writeln!(json, "  }}").unwrap();
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write summary");
    print!("{json}");
    eprintln!("wrote {out_path}");

    if stats.hits == 0 {
        eprintln!(
            "FAIL: invocation cache recorded zero hits on the aligned-matching workload — \
             cross-invocation sharing is broken"
        );
        std::process::exit(1);
    }
}
