//! Emits `BENCH_blocking.json`: the fingerprint-blocking + batched-executor
//! numbers of ISSUE 6 — all-pairs vs blocked matching, serial vs
//! batched-parallel vs the per-pair channel executor it replaced, and the
//! pair-pruning ratio — at paper scale (252 modules, the catalog size of
//! Belhajjame et al.'s EDBT 2014 evaluation) and at 2.5k / 25k synthetic
//! registry scale.
//!
//! Usage:
//!   cargo run --release -p dex-bench --bin bench_blocking [--ci] [OUT.json]
//!
//! `--ci` skips the 25k catalog and shortens the crossover sweep so the
//! smoke step stays within CI budget; the default output path is
//! `BENCH_blocking.json` in the working directory.
//!
//! Methodology (DESIGN.md §12):
//! - Every timed configuration gets a warm-up run first, and serial/batched
//!   runs alternate A/B with the minimum reported — mass allocation in one
//!   run otherwise bleeds into the next run's wall clock through the
//!   allocator, which on this workload can inflate a timing by 10x.
//! - The all-pairs baseline tallies verdicts without materializing the
//!   dense matrix (at 2.5k that matrix holds 6.25M reports, and building
//!   then dropping it poisons every timing that follows). Its tallies must
//!   equal the blocked summary's — the bench doubles as an equivalence
//!   check at a scale the proptest suite cannot afford.
//! - `perpair_parallel_ms` reproduces the executor this PR replaced:
//!   per-pair atomic claiming, one mpsc send per report, dense collection.
//!   That is the `cached_parallel` that *lost* to `cached_serial` at every
//!   catalog size in the pre-PR BENCH_matching.json.
//! - `blocked_serial_ms` times the *unprepared* summary path forced onto
//!   one thread — the executor as it shipped before the prepared rework:
//!   two catalog lookups and a session memo-lock acquisition (with a
//!   `ModuleId` key clone) on every pair. `blocked_parallel_ms` times the
//!   prepared executor at the host's thread count: handles resolved once
//!   per id, each target's report parked in a lock-free cell, workers
//!   running only the candidate replay. The columns measure *different
//!   code* by construction (the `serial_path`/`parallel_path` fields say
//!   which), so `parallel_speedup` is a real end-to-end win even on a
//!   single-core host — lock/hash/clone traffic removed from the hot loop —
//!   and on multi-core hosts additionally reflects thread fan-out, which
//!   the old global-memo-lock path serialized away (the
//!   `blocked_parallel_ms == blocked_serial_ms` collapse this PR fixes).
//!   At 25k the bench asserts `parallel_speedup >= 1.0`.
//!
//! The synthetic registries amplify the shipped 252-module universe: one
//! base module per fingerprint bucket (up to 64 distinct interface shapes)
//! is cloned under fresh ids, and every third clone's text outputs are
//! perturbed so same-shape pairs split across equivalent / overlapping /
//! disjoint verdicts instead of collapsing into one class.

use dex_bench::amplified_universe;
use dex_core::{
    FingerprintIndex, GenerationConfig, MatchOutcome, MatchReport, MatchSession, MatchVerdict,
};
use dex_experiments::parallel::{
    match_pairs_blocked, match_pairs_blocked_summary, match_pairs_blocked_summary_unprepared,
    match_pairs_exhaustive,
};
use dex_experiments::BatchConfig;
use dex_modules::ModuleId;
use dex_pool::{build_synthetic_pool, InstancePool};
use dex_universe::Universe;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1_000.0
}

/// Measured cost of standing up and tearing down `workers` scoped threads —
/// the fixed overhead the batched executor pays before any pair is matched.
/// Minimum over many reps: spawn cost has a heavy scheduling tail, and the
/// crossover model wants the floor, not the tail.
fn spawn_overhead_ms(workers: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..200 {
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| std::hint::black_box(0u64));
            }
        });
        best = best.min(ms(start));
    }
    best
}

/// `(equivalent, overlapping, disjoint, incomparable)` slot of an outcome.
fn verdict_slot(outcome: &MatchOutcome) -> usize {
    match outcome {
        MatchOutcome::Verdict(MatchVerdict::Equivalent { .. }) => 0,
        MatchOutcome::Verdict(MatchVerdict::Overlapping { .. }) => 1,
        MatchOutcome::Verdict(MatchVerdict::Disjoint { .. }) => 2,
        MatchOutcome::Incomparable(_) => 3,
    }
}

/// The exhaustive all-pairs baseline, tallying verdicts without
/// materializing the dense matrix: every ordered pair runs the full
/// comparison serially through one shared session, no blocking.
fn allpairs_tally(
    universe: &Universe,
    ids: &[ModuleId],
    pool: &InstancePool,
    config: &GenerationConfig,
) -> [usize; 4] {
    let session = MatchSession::new(&universe.ontology, pool, config.clone());
    let mut tally = [0usize; 4];
    for t in 0..ids.len() {
        for c in 0..ids.len() {
            if t == c {
                continue;
            }
            let target = universe.catalog.get(&ids[t]).expect("available");
            let candidate = universe.catalog.get(&ids[c]).expect("available");
            let report = session.compare_report(target.as_ref(), candidate.as_ref());
            tally[verdict_slot(&report.outcome)] += 1;
        }
    }
    tally
}

/// The executor this PR replaced, reproduced faithfully for comparison:
/// workers claim ONE pair per atomic fetch and ship every report over an
/// mpsc channel to a dense `BTreeMap` collector. Run over the same blocked
/// pair list so the difference is pure executor overhead.
fn perpair_channel(
    universe: &Universe,
    ids: &[ModuleId],
    pairs: &[(usize, usize)],
    pool: &InstancePool,
    config: &GenerationConfig,
    threads: usize,
) -> BTreeMap<(ModuleId, ModuleId), MatchReport> {
    let session = MatchSession::new(&universe.ontology, pool, config.clone());
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<((ModuleId, ModuleId), MatchReport)>();
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            let tx = tx.clone();
            let session = &session;
            let cursor = &cursor;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= pairs.len() {
                    break;
                }
                let (t, c) = pairs[i];
                let key = (ids[t].clone(), ids[c].clone());
                let target = universe.catalog.get(&ids[t]).expect("available");
                let candidate = universe.catalog.get(&ids[c]).expect("available");
                let report = session.compare_report(target.as_ref(), candidate.as_ref());
                tx.send((key, report)).expect("collector alive");
            });
        }
        drop(tx);
        rx.into_iter().collect()
    })
}

fn main() {
    let mut ci = false;
    let mut out_path = "BENCH_blocking.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--ci" {
            ci = true;
        } else {
            out_path = arg;
        }
    }
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    // The crossover sweep's whole point is exercising the spawn path, so it
    // forces at least two workers even on a single-core host.
    let crossover_threads = threads.max(2);
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };

    let mut json = String::from("{\n");
    writeln!(json, "  \"profile\": \"{profile}\",").unwrap();
    writeln!(json, "  \"threads\": {threads},").unwrap();

    // --- Catalog-scale sweep ---------------------------------------------
    // 252 = the paper's catalog (natural shape diversity); 2.5k and 25k =
    // amplified registries. The all-pairs baseline and the per-pair
    // executor column are only feasible through 2.5k (6.25M mapping
    // attempts / 95k channel sends); at 25k (625M ordered pairs) only the
    // blocked summary paths run, which is rather the point of this PR.
    let config = GenerationConfig::default();
    let sizes: &[usize] = if ci {
        &[252, 2_500]
    } else {
        &[252, 2_500, 25_000]
    };
    writeln!(json, "  \"blocked_matching_by_catalog\": [").unwrap();
    for (row, &n) in sizes.iter().enumerate() {
        let universe = if n == 252 {
            dex_universe::build()
        } else {
            amplified_universe(n)
        };
        let pool = build_synthetic_pool(&universe.ontology, 3, 42);
        let ids = universe.available_ids();
        assert_eq!(ids.len(), n);
        let index = FingerprintIndex::build(
            ids.iter()
                .map(|id| universe.catalog.get(id).map(|m| m.descriptor())),
            &universe.ontology,
        );
        let pairs = index.comparable_pairs();

        let serial = BatchConfig {
            threads: 1,
            serial_cutoff: BatchConfig::SERIAL_CUTOFF_PAIRS,
            chunk: BatchConfig::CHUNK_PAIRS,
        };
        let batched = BatchConfig::with_threads(threads);

        // Warm-up, then alternate the unprepared-serial baseline and the
        // prepared batched executor, keeping each one's minimum.
        let warm = match_pairs_blocked_summary(&universe, &ids, &pool, &config, &serial);
        let rounds = if n <= 2_500 { 3 } else { 2 };
        let mut blocked_serial_ms = f64::INFINITY;
        let mut blocked_parallel_ms = f64::INFINITY;
        let mut summary = warm;
        for round in 0..rounds {
            // Alternate which executor goes first each round: whatever
            // position-dependent cost a round carries (page cache, frequency
            // ramp) lands on both sides equally.
            for leg in 0..2 {
                if (round + leg) % 2 == 0 {
                    let start = Instant::now();
                    let s = match_pairs_blocked_summary_unprepared(
                        &universe, &ids, &pool, &config, &serial,
                    );
                    blocked_serial_ms = blocked_serial_ms.min(ms(start));
                    assert_eq!(warm.tallies(), s.tallies(), "serial sweep unstable at {n}");
                } else {
                    let start = Instant::now();
                    let p = match_pairs_blocked_summary(&universe, &ids, &pool, &config, &batched);
                    blocked_parallel_ms = blocked_parallel_ms.min(ms(start));
                    assert_eq!(
                        warm.tallies(),
                        p.tallies(),
                        "serial and batched disagree at {n}"
                    );
                    summary = p;
                }
            }
        }

        // The replaced executor, over the same compared pairs.
        let perpair_parallel_ms = if n <= 2_500 {
            let _ = perpair_channel(&universe, &ids, &pairs, &pool, &config, threads);
            let mut best = f64::INFINITY;
            for _ in 0..2 {
                let start = Instant::now();
                let dense = perpair_channel(&universe, &ids, &pairs, &pool, &config, threads);
                best = best.min(ms(start));
                assert_eq!(dense.len(), pairs.len());
            }
            Some(best)
        } else {
            None
        };

        // The all-pairs baseline, last in the row so its long serial sweep
        // cannot bleed into the executor timings. Its verdict tally must
        // agree with the blocked summary exactly.
        let allpairs_serial_ms = if n <= 2_500 {
            let start = Instant::now();
            let tally = allpairs_tally(&universe, &ids, &pool, &config);
            let elapsed = ms(start);
            assert_eq!(
                (tally[0], tally[1], tally[2], tally[3]),
                summary.tallies(),
                "blocked summary diverged from the exhaustive sweep at {n}"
            );
            Some(elapsed)
        } else {
            None
        };

        let stats = summary.stats;
        // The two columns time *different code paths* by construction —
        // the unprepared pre-rework executor pinned to one thread vs the
        // prepared executor at the host's thread count — so the ratio is a
        // real end-to-end speedup, not pooled-identical-code noise (the old
        // report pooled the samples exactly because both columns used to
        // resolve to the same code on this host).
        let parallel_speedup = blocked_serial_ms / blocked_parallel_ms.max(1e-9);
        // The 25k regression pin (ISSUE 7, tightened by ISSUE 9): the
        // prepared executor must never lose to the unprepared serial
        // baseline at the largest scale — and with per-pair lock/lookup
        // traffic gone it is expected to genuinely win (> 1.0).
        if n == 25_000 {
            assert!(
                parallel_speedup >= 1.0,
                "parallel regression at 25k: speedup {parallel_speedup:.3} < 1.0 \
                 (serial {blocked_serial_ms:.1}ms vs batched {blocked_parallel_ms:.1}ms)"
            );
        }
        let comma = if row + 1 < sizes.len() { "," } else { "" };
        let fmt_opt = |v: Option<f64>| {
            v.map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "null".to_string())
        };
        writeln!(
            json,
            "    {{\"modules\": {n}, \"pairs_total\": {}, \"pairs_compared\": {}, \
             \"pairs_pruned\": {}, \"prune_ratio\": {:.4}, \"buckets\": {}, \
             \"largest_bucket\": {}, \"allpairs_serial_ms\": {}, \
             \"blocked_serial_ms\": {blocked_serial_ms:.2}, \
             \"serial_path\": \"unprepared_1_thread\", \
             \"blocked_parallel_ms\": {blocked_parallel_ms:.2}, \
             \"parallel_path\": \"prepared_{threads}_threads\", \
             \"perpair_parallel_ms\": {}, \
             \"parallel_speedup\": {:.2}, \
             \"batched_vs_perpair_speedup\": {}, \
             \"verdicts\": {{\"equivalent\": {}, \"overlapping\": {}, \"disjoint\": {}, \
             \"incomparable\": {}}}}}{comma}",
            stats.pairs_total,
            stats.pairs_compared,
            stats.pairs_pruned,
            stats.prune_ratio(),
            stats.buckets,
            stats.largest_bucket,
            fmt_opt(allpairs_serial_ms),
            fmt_opt(perpair_parallel_ms),
            parallel_speedup,
            fmt_opt(perpair_parallel_ms.map(|v| v / blocked_parallel_ms.max(1e-9))),
            summary.equivalent,
            summary.overlapping,
            summary.disjoint,
            summary.incomparable,
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();

    // --- Serial/parallel crossover sweep ---------------------------------
    // Slices of the 2.5k registry with growing compared-pair counts, each
    // timed with the executor forced serial and forced batched (at least
    // two workers, so the spawn path actually runs). The smallest
    // compared-pair count where batched wins is the measured crossover
    // behind `BatchConfig::SERIAL_CUTOFF_PAIRS`; on a single-core host no
    // such count exists and the sweep reports `null`.
    let universe = amplified_universe(2_500);
    let pool = build_synthetic_pool(&universe.ontology, 3, 42);
    let all_ids = universe.available_ids();
    // Slices start at 128: the first 64 ids cover each of the 64 shapes
    // exactly once, a degenerate all-singleton-buckets plan with zero
    // compared pairs and nothing to time.
    let slice_sizes: &[usize] = if ci {
        &[128, 384]
    } else {
        &[128, 192, 256, 384, 512, 768]
    };
    writeln!(json, "  \"crossover_threads\": {crossover_threads},").unwrap();
    writeln!(json, "  \"crossover\": [").unwrap();
    let mut crossover_pairs: Option<usize> = None;
    let mut best_perpair: Option<(usize, f64)> = None;
    for (row, &m) in slice_sizes.iter().enumerate() {
        let ids: Vec<ModuleId> = all_ids.iter().take(m).cloned().collect();
        let forced_serial = BatchConfig {
            threads: 1,
            serial_cutoff: usize::MAX,
            chunk: BatchConfig::CHUNK_PAIRS,
        };
        let forced_batched = BatchConfig {
            threads: crossover_threads,
            serial_cutoff: 0,
            chunk: BatchConfig::CHUNK_PAIRS,
        };
        // Warm the generation memo out of the timings with a throwaway run,
        // then alternate the executors and keep each one's minimum.
        let warm = match_pairs_blocked_summary(&universe, &ids, &pool, &config, &forced_serial);
        let mut serial_ms = f64::INFINITY;
        let mut batched_ms = f64::INFINITY;
        for round in 0..2 {
            for leg in 0..2 {
                if (round + leg) % 2 == 0 {
                    let start = Instant::now();
                    let serial = match_pairs_blocked_summary(
                        &universe,
                        &ids,
                        &pool,
                        &config,
                        &forced_serial,
                    );
                    serial_ms = serial_ms.min(ms(start));
                    assert_eq!(warm.tallies(), serial.tallies());
                } else {
                    let start = Instant::now();
                    let batched = match_pairs_blocked_summary(
                        &universe,
                        &ids,
                        &pool,
                        &config,
                        &forced_batched,
                    );
                    batched_ms = batched_ms.min(ms(start));
                    assert_eq!(warm.tallies(), batched.tallies());
                }
            }
        }
        let pairs = warm.stats.pairs_compared;
        if pairs > 0 && batched_ms < serial_ms && crossover_pairs.is_none() {
            crossover_pairs = Some(pairs);
        }
        // Warm per-pair cost from the largest sweep row: the denominator of
        // the overhead-model fallback below.
        if pairs > 0 && best_perpair.is_none_or(|(p, _)| pairs > p) {
            best_perpair = Some((pairs, serial_ms / pairs as f64));
        }
        let comma = if row + 1 < slice_sizes.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"modules\": {m}, \"pairs_compared\": {pairs}, \
             \"serial_ms\": {serial_ms:.2}, \"batched_ms\": {batched_ms:.2}}}{comma}"
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();

    // --- Crossover derivation (ISSUE 7 satellite) -------------------------
    // `measured_crossover_pairs` must be NON-NULL: either the first sweep
    // size where batched actually beat serial ("observed"), or — when no
    // such size exists, the unavoidable outcome on a single-core host where
    // extra workers add overhead and no parallelism — a spawn-overhead
    // model ("overhead_model"): batched pays a fixed measured spawn/join
    // cost and, with `w` workers, removes a `1 - 1/w` fraction of the
    // serial work, so it breaks even at
    //   spawn_ms / (per_pair_ms * (1 - 1/w))
    // compared pairs. If neither derivation is computable the bench FAILS
    // rather than emitting null.
    let spawn_ms = spawn_overhead_ms(crossover_threads);
    let (derived_crossover, crossover_basis) = match crossover_pairs {
        Some(observed) => (observed, "observed"),
        None => {
            let Some((_, per_pair_ms)) = best_perpair.filter(|&(_, t)| t > 0.0) else {
                eprintln!("bench_blocking: no crossover observed and no per-pair cost measured");
                std::process::exit(1);
            };
            let workers = crossover_threads as f64;
            let modeled = spawn_ms / (per_pair_ms * (1.0 - 1.0 / workers));
            if !modeled.is_finite() {
                eprintln!("bench_blocking: overhead model not computable");
                std::process::exit(1);
            }
            (modeled.ceil() as usize, "overhead_model")
        }
    };
    // Regression pin: the shipped cutoff must sit at or above the derived
    // crossover — a constant below it would fan out in a measured-loss
    // region on this host.
    assert!(
        BatchConfig::SERIAL_CUTOFF_PAIRS >= derived_crossover,
        "stale serial cutoff: shipped {} < derived crossover {} ({crossover_basis})",
        BatchConfig::SERIAL_CUTOFF_PAIRS,
        derived_crossover
    );
    writeln!(json, "  \"spawn_overhead_ms\": {spawn_ms:.4},").unwrap();
    writeln!(json, "  \"measured_crossover_pairs\": {derived_crossover},").unwrap();
    writeln!(json, "  \"crossover_basis\": \"{crossover_basis}\",").unwrap();
    writeln!(
        json,
        "  \"serial_cutoff_pairs\": {}",
        BatchConfig::SERIAL_CUTOFF_PAIRS
    )
    .unwrap();
    json.push_str("}\n");

    // Sanity tie-back to the dense path at paper scale: the matrix agrees
    // with the exhaustive oracle (the proptest suite covers this broadly;
    // this keeps the bench itself honest about what it measures).
    let universe = dex_universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 3, 42);
    let ids: Vec<ModuleId> = universe.available_ids().into_iter().step_by(9).collect();
    let oracle = match_pairs_exhaustive(&universe, &ids, &pool, &config);
    let blocked = match_pairs_blocked(
        &universe,
        &ids,
        &pool,
        &config,
        &BatchConfig::with_threads(threads),
    );
    assert_eq!(oracle, blocked.reports, "dense blocked matrix diverged");

    std::fs::write(&out_path, &json).expect("write summary");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
