//! Emits `BENCH_delta.json`: the incremental-recomputation numbers of
//! ISSUE 7 — delta-driven re-annotation via `IncrementalPipeline` against
//! the cold full-pipeline baseline, at paper scale (252 modules) and at
//! 2.5k / 25k synthetic registry scale.
//!
//! Usage:
//!   cargo run --release -p dex-bench --bin bench_delta [--ci] [OUT.json]
//!
//! `--ci` skips the 25k catalog so the smoke step stays within CI budget;
//! the default output path is `BENCH_delta.json` in the working directory.
//!
//! Workloads, applied to one live engine per catalog size:
//! - **single_insert** — one pool instance appended to one concept bucket.
//!   The engine signature-checks the concept's dependent modules; with the
//!   bench's depth-6 pool the append lands beyond every candidate-probe
//!   window, so the signatures *prove* zero cells dirty and the whole
//!   matrix carries forward. This is the gated workload: apply must beat
//!   the cold run by >= 10x at 2.5k while recomputing < 5% of cells.
//! - **churn_1pct** — ~1% of pool instances removed at occurrence 0 and
//!   replaced with fresh values: bucket heads shift, signatures really
//!   change, dirty modules regenerate (through the warm invocation cache)
//!   and re-match their rows.
//! - **flap_window** — ~1% of modules withdraw (substitutes are captured
//!   from the live matrix) and then restore in a second apply; signatures
//!   are unchanged, so the cost is pure matrix maintenance — dropped rows,
//!   then recomputed bucket rows/columns.
//!
//! The cold baseline (`cold_full_ms`) is what a delta-less pipeline redoes
//! per change: full fleet generation plus the blocked matching summary over
//! the current state. At 252 modules the bench also replays the final
//! engine state through the cold dense path and asserts the maintained
//! matrix is byte-identical — the proptest contract, re-checked at bench
//! scale.

use dex_bench::amplified_universe;
use dex_core::delta::{Delta, DeltaReport};
use dex_core::GenerationConfig;
use dex_experiments::parallel::{generate_fleet, match_pairs_blocked, match_pairs_blocked_summary};
use dex_experiments::{BatchConfig, IncrementalPipeline};
use dex_modules::Retrier;
use dex_pool::{build_synthetic_pool, AnnotatedInstance};
use dex_values::Value;
use std::fmt::Write as _;
use std::time::Instant;

/// Pool depth for the delta bench: deep enough that appending an instance
/// to a bucket's tail sits beyond the generator's candidate-probe window
/// (base pick + 3 retry skips), which is exactly the case the signature
/// check is supposed to prove clean.
const POOL_DEPTH: usize = 6;

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1_000.0
}

fn workload_json(name: &str, apply_ms: f64, cold_ms: f64, r: &DeltaReport) -> String {
    format!(
        "{{\"workload\": \"{name}\", \"apply_ms\": {apply_ms:.2}, \
         \"speedup_vs_cold\": {:.1}, \"events\": {}, \"dirty_candidates\": {}, \
         \"regenerated_modules\": {}, \"cells_total\": {}, \"cells_dirty\": {}, \
         \"dirty_cell_ratio\": {:.4}, \"examples_changed\": {}, \
         \"fingerprints_changed\": {}, \"recomputed_pairs\": {}, \
         \"carried_forward\": {}, \"dropped_pairs\": {}}}",
        cold_ms / apply_ms.max(1e-9),
        r.events,
        r.dirty_candidates,
        r.regenerated_modules,
        r.cells_total,
        r.cells_dirty,
        r.dirty_cell_ratio(),
        r.examples_changed,
        r.fingerprints_changed,
        r.recomputed_pairs,
        r.carried_forward,
        r.dropped_pairs,
    )
}

fn main() {
    let mut ci = false;
    let mut out_path = "BENCH_delta.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--ci" {
            ci = true;
        } else {
            out_path = arg;
        }
    }
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let config = GenerationConfig::default();
    let batch = BatchConfig::with_threads(threads);
    let sizes: &[usize] = if ci {
        &[252, 2_500]
    } else {
        &[252, 2_500, 25_000]
    };

    let mut json = String::from("{\n");
    writeln!(json, "  \"profile\": \"{profile}\",").unwrap();
    writeln!(json, "  \"threads\": {threads},").unwrap();
    writeln!(json, "  \"pool_depth\": {POOL_DEPTH},").unwrap();
    writeln!(json, "  \"delta_by_catalog\": [").unwrap();

    let mut gate_failures: Vec<String> = Vec::new();
    for (row, &n) in sizes.iter().enumerate() {
        let universe = if n == 252 {
            dex_universe::build()
        } else {
            amplified_universe(n)
        };
        let pool = build_synthetic_pool(&universe.ontology, POOL_DEPTH, 42);
        let ids = universe.available_ids();
        assert_eq!(ids.len(), n);

        // Cold full-run baseline over the same state: fleet generation plus
        // the blocked matching summary. Two reps at small sizes (min), one
        // at 25k.
        let reps = if n <= 2_500 { 2 } else { 1 };
        let mut cold_full_ms = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            let retrier = Retrier::new(config.retry);
            let fleet = generate_fleet(&universe, &pool, &config, threads, &retrier, true);
            let summary = match_pairs_blocked_summary(&universe, &ids, &pool, &config, &batch);
            cold_full_ms = cold_full_ms.min(ms(start));
            assert!(!fleet.reports.is_empty());
            assert!(summary.stats.pairs_total > 0);
        }

        let start = Instant::now();
        let mut engine = IncrementalPipeline::bootstrap(universe, pool, config.clone());
        let bootstrap_ms = ms(start);

        let concepts: Vec<String> = engine
            .pool()
            .covered_concepts()
            .into_iter()
            .map(str::to_string)
            .collect();

        // --- single_insert ------------------------------------------------
        let deltas = [Delta::PoolInsert {
            instance: AnnotatedInstance::synthetic(Value::text("GATTACA-delta-0"), "DNASequence"),
        }];
        let start = Instant::now();
        let single = engine.apply(&deltas);
        let single_ms = ms(start);

        // --- churn_1pct ---------------------------------------------------
        let churn = (engine.pool().len() / 100).max(1);
        let mut deltas = Vec::with_capacity(churn * 2);
        for k in 0..churn {
            let concept = concepts[k % concepts.len()].clone();
            deltas.push(Delta::PoolRemove {
                concept: concept.clone(),
                occurrence: 0,
            });
            deltas.push(Delta::PoolInsert {
                instance: AnnotatedInstance::synthetic(
                    Value::text(format!("CHURN-{k:04}")),
                    concept,
                ),
            });
        }
        let start = Instant::now();
        let churn_report = engine.apply(&deltas);
        let churn_ms = ms(start);

        // --- flap_window --------------------------------------------------
        let flapping: Vec<_> = engine
            .tracked_ids()
            .iter()
            .step_by((n / (n / 100).max(1)).max(1))
            .take((n / 100).max(1))
            .cloned()
            .collect();
        let withdraw: Vec<Delta> = flapping
            .iter()
            .map(|id| Delta::ModuleWithdraw { id: id.clone() })
            .collect();
        let restore: Vec<Delta> = flapping
            .iter()
            .map(|id| Delta::ModuleRestore { id: id.clone() })
            .collect();
        let start = Instant::now();
        let down = engine.apply(&withdraw);
        let up = engine.apply(&restore);
        let flap_ms = ms(start);
        let flap_report = DeltaReport {
            events: down.events + up.events,
            dirty_candidates: down.dirty_candidates + up.dirty_candidates,
            regenerated_modules: down.regenerated_modules + up.regenerated_modules,
            cells_total: up.cells_total,
            cells_dirty: down.cells_dirty + up.cells_dirty,
            examples_changed: down.examples_changed + up.examples_changed,
            fingerprints_changed: down.fingerprints_changed + up.fingerprints_changed,
            recomputed_pairs: down.recomputed_pairs + up.recomputed_pairs,
            carried_forward: up.carried_forward,
            dropped_pairs: down.dropped_pairs + up.dropped_pairs,
        };

        // Gates (enforced at 2.5k, the acceptance scale): a single pool
        // insert must beat the cold run by >= 10x while recomputing < 5%
        // of cells.
        if n == 2_500 {
            let speedup = cold_full_ms / single_ms.max(1e-9);
            if speedup < 10.0 {
                gate_failures.push(format!(
                    "single_insert at 2.5k: {speedup:.1}x < 10x (apply {single_ms:.1}ms \
                     vs cold {cold_full_ms:.1}ms)"
                ));
            }
            if single.dirty_cell_ratio() >= 0.05 {
                gate_failures.push(format!(
                    "single_insert at 2.5k recomputed {:.2}% of cells (>= 5%)",
                    single.dirty_cell_ratio() * 100.0
                ));
            }
        }

        // Equivalence tie-back at paper scale: the maintained matrix equals
        // a cold dense run over the engine's final state.
        if n == 252 {
            let ids = engine.universe().available_ids();
            let cold = match_pairs_blocked(engine.universe(), &ids, engine.pool(), &config, &batch);
            assert_eq!(
                engine.matrix(),
                cold.reports,
                "incremental matrix diverged from cold run at {n}"
            );
        }

        let comma = if row + 1 < sizes.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"modules\": {n}, \"bootstrap_ms\": {bootstrap_ms:.2}, \
             \"cold_full_ms\": {cold_full_ms:.2}, \"workloads\": [\n      {},\n      {},\n      {}\n    ]}}{comma}",
            workload_json("single_insert", single_ms, cold_full_ms, &single),
            workload_json("churn_1pct", churn_ms, cold_full_ms, &churn_report),
            workload_json("flap_window", flap_ms, cold_full_ms, &flap_report),
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    json.push_str("}\n");

    if !gate_failures.is_empty() {
        print!("{json}");
        for failure in &gate_failures {
            eprintln!("bench_delta gate failed: {failure}");
        }
        std::process::exit(1);
    }

    std::fs::write(&out_path, &json).expect("write summary");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
