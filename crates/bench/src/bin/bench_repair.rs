//! Emits `BENCH_repair.json`: the continuous decay-and-repair numbers of
//! ISSUE 9 — scaled universes decay wave by wave through the incremental
//! delta pipeline while the repair engine substitutes matched modules into
//! every workflow each wave breaks.
//!
//! Usage:
//!   cargo run --release -p dex-bench --bin bench_repair [--ci] [OUT.json]
//!
//! `--ci` runs only the 10k scale so the smoke step stays within CI budget;
//! the default output path is `BENCH_repair.json` in the working directory.
//!
//! Each scale runs [`dex_experiments::run_continuous`]: build a heavy-tailed
//! `build_scaled` universe, bootstrap the `IncrementalPipeline`, stream the
//! pre-decay provenance harvest through a `HarvestSink`, then withdraw 10%
//! of the surviving modules per wave (3 waves) as `Delta::ModuleWithdraw`
//! batches and repair every currently broken workflow — the wave's own
//! victims plus the carried-forward broken set from earlier waves (so
//! `re_repaired` tracks recoveries the old per-wave driver missed).
//! Reported per wave: throughput (repairs/s) and p50/p95/p99 per-workflow
//! repair latency from the telemetry histogram buckets.
//!
//! SLO self-gates (checked at the CI scale, 10k modules):
//! - every wave must report **zero** cold regenerations (the withdraw-only
//!   contract of the incremental engine — decay never re-runs modules);
//! - per-wave repair throughput must stay >= 500 repairs/s;
//! - overall p99 per-workflow repair latency must stay <= 50 ms;
//! - every affected workflow must be accounted full/partial/unrepaired.

use dex_experiments::{run_continuous, ContinuousConfig};
use std::fmt::Write as _;
use std::time::Instant;

/// Decay waves per scale.
const WAVES: usize = 3;
/// Percentage of surviving modules withdrawn per wave.
const FAULT_PCT: u32 = 10;
/// Gate floor: per-wave repair throughput (repairs/s).
const MIN_REPAIRS_PER_SEC: f64 = 500.0;
/// Gate ceiling: overall p99 per-workflow repair latency (ms).
const MAX_P99_MS: f64 = 50.0;

fn main() {
    let mut ci = false;
    let mut out_path = "BENCH_repair.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--ci" {
            ci = true;
        } else {
            out_path = arg;
        }
    }
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let sizes: &[usize] = if ci {
        &[10_000]
    } else {
        &[10_000, 50_000, 100_000]
    };

    let mut json = String::from("{\n");
    writeln!(json, "  \"profile\": \"{profile}\",").unwrap();
    writeln!(json, "  \"threads\": {threads},").unwrap();
    writeln!(json, "  \"waves\": {WAVES},").unwrap();
    writeln!(json, "  \"fault_pct\": {FAULT_PCT},").unwrap();
    writeln!(json, "  \"repair_by_scale\": [").unwrap();

    let mut gate_failures: Vec<String> = Vec::new();
    for (row, &n) in sizes.iter().enumerate() {
        let cfg = ContinuousConfig::at_scale(n, WAVES, 42);
        let start = Instant::now();
        let report = run_continuous(&cfg);
        let total_ms = start.elapsed().as_secs_f64() * 1_000.0;

        let p = &report.prepare;
        let mut wave_rows: Vec<String> = Vec::new();
        for w in &report.waves {
            // Withdraw-only decay must never trigger a cold re-run; the
            // driver asserts this too, but the gate keeps the guarantee
            // visible in the artifact.
            if w.delta.regenerated_modules != 0 {
                gate_failures.push(format!(
                    "scale {n} wave {}: {} cold regenerations (expected 0)",
                    w.wave, w.delta.regenerated_modules
                ));
            }
            if w.affected_workflows != w.fully_repaired + w.partially_repaired + w.unrepaired {
                gate_failures.push(format!(
                    "scale {n} wave {}: affected {} != full {} + partial {} + none {}",
                    w.wave,
                    w.affected_workflows,
                    w.fully_repaired,
                    w.partially_repaired,
                    w.unrepaired
                ));
            }
            if n == 10_000 && w.repairs_per_sec < MIN_REPAIRS_PER_SEC {
                gate_failures.push(format!(
                    "scale {n} wave {}: {:.1} repairs/s < {MIN_REPAIRS_PER_SEC} floor",
                    w.wave, w.repairs_per_sec
                ));
            }
            wave_rows.push(format!(
                "      {{\"wave\": {}, \"withdrawals\": {}, \"affected_workflows\": {}, \
                 \"carried_broken\": {}, \"re_repaired\": {}, \
                 \"fully_repaired\": {}, \"partially_repaired\": {}, \"unrepaired\": {}, \
                 \"substitutions\": {}, \"broken_after\": {}, \"regenerated_modules\": {}, \
                 \"repair_ms\": {:.2}, \"repairs_per_sec\": {:.1}, \
                 \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}}}",
                w.wave,
                w.withdrawals,
                w.affected_workflows,
                w.carried_broken,
                w.re_repaired,
                w.fully_repaired,
                w.partially_repaired,
                w.unrepaired,
                w.substitutions,
                w.broken_after,
                w.delta.regenerated_modules,
                w.repair_ms,
                w.repairs_per_sec,
                w.latency.p50_ns as f64 / 1e6,
                w.latency.p95_ns as f64 / 1e6,
                w.latency.p99_ns as f64 / 1e6,
            ));
        }
        let overall_p99_ms = report.latency_overall.p99_ns as f64 / 1e6;
        if n == 10_000 && overall_p99_ms > MAX_P99_MS {
            gate_failures.push(format!(
                "scale {n}: overall p99 {overall_p99_ms:.3} ms > {MAX_P99_MS} ms ceiling"
            ));
        }

        let comma = if row + 1 < sizes.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"modules\": {n}, \"families\": {}, \"concepts\": {}, \
             \"workflows\": {}, \"build_ms\": {:.2}, \"bootstrap_ms\": {:.2}, \
             \"harvest_ms\": {:.2}, \"harvested_instances\": {}, \"total_ms\": {total_ms:.2}, \
             \"total_substitutions\": {}, \"total_re_repaired\": {}, \"min_repairs_per_sec\": {:.1}, \
             \"overall_p50_ms\": {:.4}, \"overall_p95_ms\": {:.4}, \"overall_p99_ms\": {:.4}, \
             \"waves\": [\n{}\n    ]}}{comma}",
            p.families,
            p.concepts,
            p.workflows,
            p.build_ms,
            p.bootstrap_ms,
            p.harvest_ms,
            p.harvested_instances,
            report.total_substitutions(),
            report.total_re_repaired(),
            report.min_repairs_per_sec(),
            report.latency_overall.p50_ns as f64 / 1e6,
            report.latency_overall.p95_ns as f64 / 1e6,
            overall_p99_ms,
            wave_rows.join(",\n"),
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    json.push_str("}\n");

    if !gate_failures.is_empty() {
        print!("{json}");
        for failure in &gate_failures {
            eprintln!("bench_repair gate failed: {failure}");
        }
        std::process::exit(1);
    }

    std::fs::write(&out_path, &json).expect("write summary");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
