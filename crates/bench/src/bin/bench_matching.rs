//! Emits a machine-readable `BENCH_matching.json` summary of the
//! performance-pass hot paths, so successive PRs can track the trajectory
//! without parsing criterion output.
//!
//! Usage: `cargo run --release -p dex-bench --bin bench_matching [OUT.json]`
//! (default output path: `BENCH_matching.json` in the working directory).
//! Sample counts are sized for a few seconds of wall clock in release mode;
//! debug-mode numbers are labeled as such in the `profile` field.

use dex_core::{compare_modules, GenerationConfig, MatchSession};
use dex_experiments::parallel::match_pairs_parallel;
use dex_modules::ModuleId;
use dex_ontology::{ConceptId, Ontology};
use dex_pool::build_synthetic_pool;
use std::fmt::Write as _;
use std::time::Instant;

/// Median nanoseconds per call of `f` over `samples` timed batches of
/// `batch` calls each.
fn median_ns(samples: usize, batch: usize, mut f: impl FnMut()) -> f64 {
    let mut per_call: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        per_call.push(start.elapsed().as_nanos() as f64 / batch as f64);
    }
    per_call.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    per_call[per_call.len() / 2]
}

fn chain_ontology(depth: usize) -> Ontology {
    let mut b = Ontology::builder(format!("chain{depth}"));
    b.root("N0").unwrap();
    for i in 1..depth {
        b.child(&format!("N{i}"), &format!("N{}", i - 1)).unwrap();
    }
    b.child("Leaf", &format!("N{}", depth - 1)).unwrap();
    b.build().unwrap()
}

fn subsumes_walk(o: &Ontology, general: ConceptId, specific: ConceptId) -> bool {
    let dg = o.depth(general);
    let mut cur = specific;
    while o.depth(cur) > dg {
        cur = match o.parent(cur) {
            Some(p) => p,
            None => return false,
        };
    }
    cur == general
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_matching.json".to_string());
    let mut json = String::from("{\n");
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    writeln!(json, "  \"profile\": \"{profile}\",").unwrap();

    // --- Subsumption across ontology depth -------------------------------
    writeln!(json, "  \"subsumes_ns_by_depth\": [").unwrap();
    let depths = [4usize, 16, 64, 256];
    for (i, &depth) in depths.iter().enumerate() {
        let o = chain_ontology(depth);
        let root = o.id("N0").unwrap();
        let leaf = o.id("Leaf").unwrap();
        let interval = median_ns(21, 100_000, || {
            std::hint::black_box(o.subsumes(std::hint::black_box(root), leaf));
        });
        let walk = median_ns(21, 10_000, || {
            std::hint::black_box(subsumes_walk(&o, std::hint::black_box(root), leaf));
        });
        let comma = if i + 1 < depths.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"depth\": {depth}, \"interval_ns\": {interval:.1}, \"walk_ns\": {walk:.1}}}{comma}"
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();

    // --- Pool lookups across pool size -----------------------------------
    let onto = dex_ontology::mygrid::ontology();
    let identifier = onto.id("Identifier").unwrap();
    writeln!(json, "  \"instances_of_ns_by_pool_size\": [").unwrap();
    let sizes = [2usize, 8, 32];
    for (i, &per_concept) in sizes.iter().enumerate() {
        let pool = build_synthetic_pool(&onto, per_concept, 42);
        let indexed = median_ns(11, 2_000, || {
            std::hint::black_box(pool.instances_of("Identifier", &onto).count());
        });
        let scan = median_ns(11, 500, || {
            std::hint::black_box(
                pool.iter()
                    .filter(|inst| {
                        onto.id(&inst.concept)
                            .is_some_and(|c| onto.subsumes(identifier, c))
                    })
                    .count(),
            );
        });
        let comma = if i + 1 < sizes.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"pool_size\": {}, \"indexed_ns\": {indexed:.1}, \"scan_ns\": {scan:.1}}}{comma}",
            pool.len()
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();

    // --- All-pairs matching across catalog size --------------------------
    let universe = dex_universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 4, 42);
    let config = GenerationConfig::default();
    let all_ids = universe.available_ids();
    writeln!(json, "  \"all_pairs_ms_by_catalog\": [").unwrap();
    let catalog_sizes = [8usize, 16, 32];
    for (i, &n) in catalog_sizes.iter().enumerate() {
        let ids: Vec<ModuleId> = all_ids
            .iter()
            .step_by((all_ids.len() / n).max(1))
            .take(n)
            .cloned()
            .collect();

        let start = Instant::now();
        let mut serial_pairs = 0usize;
        for t in &ids {
            for c in &ids {
                if t == c {
                    continue;
                }
                let target = universe.catalog.get(t).unwrap();
                let candidate = universe.catalog.get(c).unwrap();
                let _ = compare_modules(
                    target.as_ref(),
                    candidate.as_ref(),
                    &universe.ontology,
                    &pool,
                    &config,
                );
                serial_pairs += 1;
            }
        }
        let serial_ms = start.elapsed().as_secs_f64() * 1_000.0;

        let session = MatchSession::new(&universe.ontology, &pool, config.clone());
        let start = Instant::now();
        for t in &ids {
            for c in &ids {
                if t == c {
                    continue;
                }
                let target = universe.catalog.get(t).unwrap();
                let candidate = universe.catalog.get(c).unwrap();
                let _ = session.compare_report(target.as_ref(), candidate.as_ref());
            }
        }
        let cached_ms = start.elapsed().as_secs_f64() * 1_000.0;

        // The deployment configuration: one worker per hardware thread.
        // Below the crossover (or on a single-core host) the batched
        // executor runs the sweep on the calling thread by design.
        let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
        let start = Instant::now();
        let matrix = match_pairs_parallel(&universe, &ids, &pool, &config, threads);
        let parallel_ms = start.elapsed().as_secs_f64() * 1_000.0;
        assert_eq!(matrix.len(), serial_pairs);

        let comma = if i + 1 < catalog_sizes.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"modules\": {n}, \"pairs\": {serial_pairs}, \
             \"serial_uncached_ms\": {serial_ms:.2}, \"cached_serial_ms\": {cached_ms:.2}, \
             \"cached_parallel_ms\": {parallel_ms:.2}}}{comma}"
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write summary");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
