//! Criterion benchmark support crate (benches live in `benches/`).
