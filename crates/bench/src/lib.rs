//! Criterion benchmark support crate (benches live in `benches/`) plus
//! helpers shared by the `bench_*` report binaries.

use dex_core::FingerprintIndex;
use dex_modules::{FnModule, ModuleCatalog, ModuleId, SharedModule};
use dex_universe::Universe;
use dex_values::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Max distinct interface shapes in an amplified registry.
pub const MAX_SHAPES: usize = 64;

/// Builds an `n`-module synthetic registry by amplifying the shipped
/// universe: clones cycle over one representative module per fingerprint
/// bucket, so the registry has at most [`MAX_SHAPES`] interface shapes and
/// blocking has real work to do. Every third clone perturbs its text
/// outputs, so same-shape pairs split into equivalent (same variant) and
/// disjoint/overlapping (different variant) verdicts instead of collapsing
/// into one class.
pub fn amplified_universe(n: usize) -> Universe {
    let base = dex_universe::build();
    let ids = base.available_ids();
    let index = FingerprintIndex::build(
        ids.iter()
            .map(|id| base.catalog.get(id).map(|m| m.descriptor())),
        &base.ontology,
    );
    // One representative per bucket, first-seen order: deterministic.
    let representatives: Vec<SharedModule> = index
        .buckets()
        .take(MAX_SHAPES)
        .map(|bucket| Arc::clone(base.catalog.get(&ids[bucket[0]]).expect("available")))
        .collect();

    let mut catalog = ModuleCatalog::new();
    for i in 0..n {
        let source = Arc::clone(&representatives[i % representatives.len()]);
        let mut descriptor = source.descriptor().clone();
        descriptor.id = ModuleId::new(format!("syn:{i:05}"));
        descriptor.name = format!("Synthetic{i}");
        let perturb = i % 3 == 0;
        catalog.register(Arc::new(FnModule::new(descriptor, move |inputs| {
            let mut outputs = source.invoke(inputs)?;
            if perturb {
                for value in &mut outputs {
                    if let Some(text) = value.as_text() {
                        *value = Value::text(format!("{text}~"));
                    }
                }
            }
            Ok(outputs)
        })));
    }
    Universe {
        catalog,
        ontology: base.ontology,
        categories: BTreeMap::new(),
        specs: BTreeMap::new(),
        legacy: Vec::new(),
        expected_match: BTreeMap::new(),
        popular: Default::default(),
        unfamiliar_output: Default::default(),
        partial_output: Default::default(),
    }
}
