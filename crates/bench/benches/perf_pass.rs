//! Parameterized old-vs-new benchmarks for the performance pass: interval
//! subsumption vs parent walks across ontology depth, indexed pool lookups
//! vs linear scans across pool size, and cached+parallel all-pairs matching
//! vs the uncached serial baseline across catalog size.
//!
//! The "old" sides re-state the pre-optimization algorithms against the
//! public API (parent-pointer walk, full-pool scan, per-pair
//! `compare_modules`), so each pair of curves isolates exactly the change
//! being measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dex_core::{compare_modules, GenerationConfig};
use dex_experiments::parallel::match_pairs_parallel;
use dex_modules::ModuleId;
use dex_ontology::{ConceptId, Ontology};
use dex_pool::build_synthetic_pool;
use dex_values::StructuralType;
use std::hint::black_box;

/// A root chain of `depth` concepts with `fanout` leaf children at the
/// bottom: subsumption from the root to a leaf must cross `depth` edges, so
/// any depth-dependence of `subsumes` shows as a rising curve.
fn chain_ontology(depth: usize, fanout: usize) -> Ontology {
    let mut b = Ontology::builder(format!("chain{depth}"));
    b.root("N0").unwrap();
    for i in 1..depth {
        b.child(&format!("N{i}"), &format!("N{}", i - 1)).unwrap();
    }
    for j in 0..fanout {
        b.child(&format!("L{j}"), &format!("N{}", depth - 1))
            .unwrap();
    }
    b.build().unwrap()
}

/// The pre-optimization subsumption algorithm: depth-guided parent walk over
/// the public accessors.
fn subsumes_walk(o: &Ontology, general: ConceptId, specific: ConceptId) -> bool {
    let dg = o.depth(general);
    let mut cur = specific;
    while o.depth(cur) > dg {
        cur = match o.parent(cur) {
            Some(p) => p,
            None => return false,
        };
    }
    cur == general
}

fn bench_subsumption_by_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("subsumes_depth");
    for depth in [4usize, 16, 64, 256] {
        let o = chain_ontology(depth, 4);
        let root = o.id("N0").unwrap();
        let leaf = o.id("L3").unwrap();
        group.bench_with_input(BenchmarkId::new("interval", depth), &depth, |b, _| {
            b.iter(|| o.subsumes(black_box(root), black_box(leaf)))
        });
        group.bench_with_input(BenchmarkId::new("walk", depth), &depth, |b, _| {
            b.iter(|| subsumes_walk(&o, black_box(root), black_box(leaf)))
        });
    }
    group.finish();
}

fn bench_pool_by_size(c: &mut Criterion) {
    let onto = dex_ontology::mygrid::ontology();
    let identifier = onto.id("Identifier").unwrap();
    let mut group = c.benchmark_group("pool_size");
    for per_concept in [2usize, 8, 32] {
        let pool = build_synthetic_pool(&onto, per_concept, 42);
        let size = pool.len();
        group.bench_with_input(
            BenchmarkId::new("instances_of_indexed", size),
            &size,
            |b, _| b.iter(|| pool.instances_of(black_box("Identifier"), &onto).count()),
        );
        // The pre-optimization algorithm: scan every instance, resolve its
        // concept by name, walk subsumption.
        group.bench_with_input(
            BenchmarkId::new("instances_of_scan", size),
            &size,
            |b, _| {
                b.iter(|| {
                    pool.iter()
                        .filter(|inst| {
                            onto.id(&inst.concept)
                                .is_some_and(|c| onto.subsumes(identifier, c))
                        })
                        .count()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("get_instance_deep", size),
            &size,
            |b, _| {
                b.iter(|| {
                    pool.get_instance(
                        black_box("UniprotAccession"),
                        black_box(&StructuralType::Text),
                        per_concept - 1,
                    )
                })
            },
        );
        let bound = pool.bind(&onto);
        group.bench_with_input(
            BenchmarkId::new("get_instance_bound", size),
            &size,
            |b, _| {
                b.iter(|| {
                    bound.get_instance(
                        black_box(onto.id("UniprotAccession").unwrap()),
                        black_box(&StructuralType::Text),
                        per_concept - 1,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_matching_by_catalog(c: &mut Criterion) {
    let universe = dex_universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 4, 42);
    let config = GenerationConfig::default();
    let all_ids = universe.available_ids();
    let mut group = c.benchmark_group("all_pairs");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        let ids: Vec<ModuleId> = all_ids
            .iter()
            .step_by((all_ids.len() / n).max(1))
            .take(n)
            .cloned()
            .collect();
        group.bench_with_input(BenchmarkId::new("serial_uncached", n), &n, |b, _| {
            b.iter(|| {
                let mut verdicts = 0usize;
                for t in &ids {
                    for cand in &ids {
                        if t == cand {
                            continue;
                        }
                        let target = universe.catalog.get(t).unwrap();
                        let candidate = universe.catalog.get(cand).unwrap();
                        if compare_modules(
                            target.as_ref(),
                            candidate.as_ref(),
                            &universe.ontology,
                            &pool,
                            &config,
                        )
                        .is_ok()
                        {
                            verdicts += 1;
                        }
                    }
                }
                verdicts
            })
        });
        group.bench_with_input(BenchmarkId::new("cached_parallel", n), &n, |b, _| {
            b.iter(|| match_pairs_parallel(&universe, &ids, &pool, &config, 8).len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_subsumption_by_depth,
    bench_pool_by_size,
    bench_matching_by_catalog
);
criterion_main!(benches);
