//! Benchmarks of module matching and workflow repair — the machinery behind
//! Figure 8 and the §6 repair numbers.
//!
//! * `map_parameters/*` — 1-to-1 parameter-mapping cost (strict vs
//!   subsuming).
//! * `compare/aligned_examples` — the paper's method: aligned example
//!   generation + replay.
//! * `compare/trace_similarity_baseline` — the earlier provenance-trace
//!   similarity method ([4] in the paper) as an ablation.
//! * `figure8_matching_study` — the full 72-legacy matching study on a
//!   reduced corpus.
//! * `repair_small_repository` — end-to-end decay + repair on a small plan.

use criterion::{criterion_group, criterion_main, Criterion};
use dex_core::baseline::trace_similarity;
use dex_core::matching::{compare_modules, map_parameters, MappingMode};
use dex_core::{generate_examples, GenerationConfig};
use dex_pool::build_synthetic_pool;
use dex_repair::{
    build_corpus, generate_repository, repair_repository, run_matching_study, RepositoryPlan,
};
use dex_values::classify::classify_concept;
use std::hint::black_box;

fn bench_mapping(c: &mut Criterion) {
    let universe = dex_universe::build();
    let ontology = &universe.ontology;
    let target = universe
        .catalog
        .descriptor(&"dr:get_protein_sequence_ebi".into())
        .unwrap();
    let strict_candidate = universe
        .catalog
        .descriptor(&"dr:get_protein_sequence_ddbj".into())
        .unwrap();
    let subsuming_candidate = universe
        .catalog
        .descriptor(&"dr:get_biological_sequence".into())
        .unwrap();
    let mut group = c.benchmark_group("map_parameters");
    group.bench_function("strict", |b| {
        b.iter(|| {
            map_parameters(
                black_box(target),
                black_box(strict_candidate),
                ontology,
                MappingMode::Strict,
            )
            .unwrap()
        })
    });
    group.bench_function("subsuming", |b| {
        b.iter(|| {
            map_parameters(
                black_box(target),
                black_box(subsuming_candidate),
                ontology,
                MappingMode::Subsuming,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_compare(c: &mut Criterion) {
    let universe = dex_universe::build();
    let ontology = &universe.ontology;
    let pool = build_synthetic_pool(ontology, 6, 42);
    let config = GenerationConfig::default();
    let a = universe
        .catalog
        .get(&"da:align_seq_ebi".into())
        .unwrap()
        .clone();
    let b_mod = universe
        .catalog
        .get(&"da:align_seq_ddbj".into())
        .unwrap()
        .clone();

    let mut group = c.benchmark_group("compare");
    group.bench_function("aligned_examples", |bench| {
        bench.iter(|| {
            compare_modules(
                black_box(a.as_ref()),
                black_box(b_mod.as_ref()),
                ontology,
                &pool,
                &config,
            )
            .unwrap()
        })
    });

    let ea = generate_examples(a.as_ref(), ontology, &pool, &config)
        .unwrap()
        .examples;
    let eb = generate_examples(b_mod.as_ref(), ontology, &pool, &config)
        .unwrap()
        .examples;
    group.bench_function("trace_similarity_baseline", |bench| {
        bench.iter(|| trace_similarity(black_box(&ea), black_box(&eb), classify_concept))
    });
    group.finish();
}

fn bench_repair(c: &mut Criterion) {
    let mut universe = dex_universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 40, 77);
    let plan = RepositoryPlan::small(1);
    let repository = generate_repository(&universe, &pool, &plan);
    let corpus = build_corpus(&universe, &repository, &pool);
    universe.decay();

    let mut group = c.benchmark_group("repair");
    group.sample_size(10);
    group.bench_function("figure8_matching_study", |b| {
        b.iter(|| {
            run_matching_study(
                black_box(&universe.catalog),
                black_box(&corpus),
                &universe.ontology,
            )
        })
    });
    let study = run_matching_study(&universe.catalog, &corpus, &universe.ontology);
    group.bench_function("repair_small_repository", |b| {
        b.iter(|| {
            repair_repository(
                black_box(&repository),
                &universe.catalog,
                &study,
                &corpus,
                &universe.ontology,
            )
        })
    });
    group.finish();

    // Keep the un-decayed path benchmarked too: repository + corpus builds.
    let universe2 = dex_universe::build();
    let mut group = c.benchmark_group("corpus");
    group.sample_size(10);
    group.bench_function("generate_small_repository", |b| {
        b.iter(|| generate_repository(black_box(&universe2), &pool, &plan))
    });
    group.bench_function("build_corpus_small", |b| {
        b.iter(|| build_corpus(black_box(&universe2), &repository, &pool))
    });
    group.finish();
}

criterion_group!(benches, bench_mapping, bench_compare, bench_repair);
criterion_main!(benches);
