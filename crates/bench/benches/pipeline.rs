//! Benchmarks of the data-example pipeline — the machinery behind Tables
//! 1–2 and the §4.3 coverage result.
//!
//! * `partition_plan/*` — ontology-based equivalence partitioning cost as
//!   the annotation concept widens (the combination-explosion axis).
//! * `generate/*` — end-to-end example generation for a leaf-annotated
//!   module, a broad-annotation module (19 partitions), and a multi-input
//!   module.
//! * `generate/random_baseline` — ablation: the non-partitioned random
//!   generator from the related work, at equal example count.
//! * `table1_table2_scoring` — scoring all 252 modules against their
//!   behavior oracles (the evaluation loop of §4.3).
//! * `coverage_measurement` — output-partition classification cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dex_core::baseline::generate_random_examples;
use dex_core::coverage::measure_coverage;
use dex_core::metrics::score;
use dex_core::{generate_examples, input_partition_plan, GenerationConfig};
use dex_pool::build_synthetic_pool;
use dex_universe::SpecOracle;
use dex_values::classify::classify_concept;
use std::hint::black_box;

fn bench_partition_plan(c: &mut Criterion) {
    let universe = dex_universe::build();
    let ontology = &universe.ontology;
    let mut group = c.benchmark_group("partition_plan");
    for module in [
        "dr:get_uniprot_record",      // leaf input: 1 partition
        "da:align_seq_ebi",           // BiologicalSequence: 4 partitions
        "dr:get_genes_by_enzyme",     // leaf in, broad out
        "mi:normalize_identifier_v0", // Identifier: 19 partitions
    ] {
        let descriptor = universe.catalog.descriptor(&module.into()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(module), &descriptor, |b, d| {
            b.iter(|| input_partition_plan(black_box(d), black_box(ontology)).unwrap())
        });
    }
    group.finish();
}

fn bench_generate(c: &mut Criterion) {
    let universe = dex_universe::build();
    let ontology = &universe.ontology;
    let pool = build_synthetic_pool(ontology, 6, 42);
    let config = GenerationConfig::default();
    let mut group = c.benchmark_group("generate");
    for module in [
        "dr:get_uniprot_record",
        "da:align_seq_ebi",
        "mi:normalize_identifier_v0",
        "da:search_simple", // 3 inputs
    ] {
        let handle = universe.catalog.get(&module.into()).unwrap().clone();
        group.bench_function(BenchmarkId::from_parameter(module), |b| {
            b.iter(|| {
                generate_examples(
                    black_box(handle.as_ref()),
                    black_box(ontology),
                    black_box(&pool),
                    black_box(&config),
                )
                .unwrap()
            })
        });
    }
    // Ablation: random (non-partitioned) selection at matched example count.
    let handle = universe
        .catalog
        .get(&"mi:normalize_identifier_v0".into())
        .unwrap()
        .clone();
    group.bench_function("random_baseline_19_examples", |b| {
        b.iter(|| {
            generate_random_examples(
                black_box(handle.as_ref()),
                black_box(ontology),
                black_box(&pool),
                19,
                7,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_scoring(c: &mut Criterion) {
    let universe = dex_universe::build();
    let ontology = &universe.ontology;
    let pool = build_synthetic_pool(ontology, 6, 42);
    let config = GenerationConfig::default();
    // Pre-generate all example sets once (the expensive part is scored
    // separately above).
    let reports: Vec<_> = universe
        .available_ids()
        .into_iter()
        .map(|id| {
            let handle = universe.catalog.get(&id).unwrap();
            let report = generate_examples(handle.as_ref(), ontology, &pool, &config).unwrap();
            (id, report)
        })
        .collect();

    let mut group = c.benchmark_group("evaluation");
    group.sample_size(20);
    group.bench_function("table1_table2_scoring_252_modules", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for (id, report) in &reports {
                let oracle = SpecOracle::new(&universe.specs[id]);
                let s = score(&report.examples, &oracle);
                acc += s.completeness + s.conciseness;
            }
            black_box(acc)
        })
    });
    group.bench_function("coverage_measurement_252_modules", |b| {
        b.iter(|| {
            let mut covered = 0usize;
            for (id, report) in &reports {
                let descriptor = universe.catalog.descriptor(id).unwrap();
                let cov =
                    measure_coverage(descriptor, &report.examples, ontology, classify_concept)
                        .unwrap();
                covered += cov.covered();
            }
            black_box(covered)
        })
    });
    group.bench_function("generate_all_252_modules", |b| {
        b.iter(|| {
            let mut produced = 0usize;
            for id in universe.available_ids() {
                let handle = universe.catalog.get(&id).unwrap();
                let report = generate_examples(handle.as_ref(), ontology, &pool, &config).unwrap();
                produced += report.examples.len();
            }
            black_box(produced)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_partition_plan, bench_generate, bench_scoring);
criterion_main!(benches);
