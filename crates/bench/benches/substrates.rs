//! Benchmarks of the substrates: ontology queries, pool lookups, value
//! synthesis/classification, workflow enactment and the user study (the
//! machinery behind Table 3, Figure 5 and every other experiment's inner
//! loops).

use criterion::{criterion_group, criterion_main, Criterion};
use dex_core::GenerationConfig;
use dex_ontology::mygrid;
use dex_pool::build_synthetic_pool;
use dex_registry::annotate_catalog;
use dex_study::run_user_study;
use dex_values::{synth, StructuralType};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_ontology(c: &mut Criterion) {
    let onto = mygrid::ontology();
    let root = onto.id("BioinformaticsData").unwrap();
    let dna = onto.id("DNASequence").unwrap();
    let go = onto.id("GOTerm").unwrap();
    let identifier = onto.id("Identifier").unwrap();
    let mut group = c.benchmark_group("ontology");
    group.bench_function("subsumes", |b| {
        b.iter(|| onto.subsumes(black_box(root), black_box(dna)))
    });
    group.bench_function("partitions_of_identifier", |b| {
        b.iter(|| onto.partitions_of(black_box(identifier)))
    });
    group.bench_function("lca", |b| {
        b.iter(|| onto.lca(black_box(dna), black_box(go)))
    });
    group.bench_function("parse_mygrid_text", |b| {
        b.iter(|| dex_ontology::text::parse(black_box(mygrid::MYGRID_TEXT)).unwrap())
    });
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    let onto = mygrid::ontology();
    let mut group = c.benchmark_group("pool");
    group.bench_function("build_synthetic_6_per_concept", |b| {
        b.iter(|| build_synthetic_pool(black_box(&onto), 6, 42))
    });
    let pool = build_synthetic_pool(&onto, 6, 42);
    group.bench_function("get_instance_realization", |b| {
        b.iter(|| {
            pool.get_instance(
                black_box("UniprotAccession"),
                black_box(&StructuralType::Text),
                0,
            )
        })
    });
    group.bench_function("instances_of_subsumption", |b| {
        b.iter(|| pool.instances_of(black_box("Identifier"), &onto).count())
    });
    group.finish();
}

fn bench_values(c: &mut Criterion) {
    let mut group = c.benchmark_group("values");
    group.bench_function("synthesize_uniprot_record", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| synth::synthesize(black_box("UniprotRecord"), &mut rng).unwrap())
    });
    let mut rng = StdRng::seed_from_u64(7);
    let record = synth::synthesize("UniprotRecord", &mut rng).unwrap();
    group.bench_function("classify_record", |b| {
        b.iter(|| dex_values::classify::classify_concept(black_box(&record)))
    });
    let acc = synth::synthesize("GOTerm", &mut rng).unwrap();
    group.bench_function("classify_accession", |b| {
        b.iter(|| dex_values::classify::classify_concept(black_box(&acc)))
    });
    group.finish();
}

fn bench_study_and_universe(c: &mut Criterion) {
    let mut group = c.benchmark_group("universe");
    group.sample_size(10);
    group.bench_function("build_324_modules", |b| b.iter(dex_universe::build));
    group.finish();

    let universe = dex_universe::build();
    let pool = build_synthetic_pool(&universe.ontology, 4, 9);
    let (registry, _) = annotate_catalog(
        &universe.catalog,
        &universe.ontology,
        &pool,
        &GenerationConfig::default(),
    );
    let examples: std::collections::BTreeMap<_, _> = registry
        .entries()
        .filter_map(|(id, e)| e.examples.clone().map(|x| (id.clone(), x)))
        .collect();
    let mut group = c.benchmark_group("study");
    group.sample_size(20);
    group.bench_function("figure5_user_study", |b| {
        b.iter(|| run_user_study(black_box(&universe), black_box(&examples)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ontology,
    bench_pool,
    bench_values,
    bench_study_and_universe
);
criterion_main!(benches);
