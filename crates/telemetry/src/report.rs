//! The per-run telemetry artifact.

use crate::event::{dropped_events, snapshot_events, EventRecord};
use crate::metrics::{snapshot_counters, snapshot_gauges, snapshot_histograms, HistogramSnapshot};
use crate::span::{snapshot_roots, SpanRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Everything one run recorded: a span forest, metric snapshots, events,
/// and wall-clock totals. Serialized to `TELEMETRY.json` by the experiment
/// binaries (analogous to `BENCH_matching.json` for the perf trajectory).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Caller-chosen run label (usually the binary name).
    pub label: String,
    /// Milliseconds from [`crate::enable`] (or last [`crate::reset`]) to
    /// [`collect`].
    pub wall_ms: f64,
    /// Monotonic counters, name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauges, name → last set value.
    pub gauges: BTreeMap<String, i64>,
    /// Fixed-bucket histograms, name → snapshot.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Completed root spans across all threads, each with nested children;
    /// cross-thread subtrees are stitched under their spawning span.
    pub spans: Vec<SpanRecord>,
    /// Flamegraph folded stacks over `spans`:
    /// `"root;child;leaf" -> exclusive nanoseconds`.
    pub folded: BTreeMap<String, u64>,
    /// Recorded events in emission order.
    pub events: Vec<EventRecord>,
    /// Events discarded after the buffer cap was hit.
    pub events_dropped: u64,
}

impl RunReport {
    /// Total spans across the whole forest.
    pub fn span_count(&self) -> usize {
        self.spans.iter().map(SpanRecord::tree_size).sum()
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a report back from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<RunReport> {
        serde_json::from_str(json)
    }
}

/// Snapshots the current telemetry state into a [`RunReport`]. Non-
/// destructive: recording continues and a later `collect` sees a superset.
pub fn collect(label: &str) -> RunReport {
    let spans = snapshot_roots();
    let folded = crate::trace::folded_stacks(&spans);
    RunReport {
        label: label.to_string(),
        wall_ms: crate::wall_ms(),
        counters: snapshot_counters(),
        gauges: snapshot_gauges(),
        histograms: snapshot_histograms(),
        spans,
        folded,
        events: snapshot_events(),
        events_dropped: dropped_events(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;
    use crate::Level;

    #[test]
    fn run_report_round_trips_through_json() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        crate::counter_add("r.test.invocations", 42);
        crate::gauge_set("r.test.threads", 8);
        crate::observe_ns("r.test.pair_ns", 1_500);
        crate::observe_ns("r.test.pair_ns", 900_000);
        crate::emit(Level::Info, "r.test", "hello".into());
        {
            let _outer = crate::span("r.outer");
            let _inner = crate::span("r.inner");
        }
        let report = collect("round-trip");
        assert_eq!(report.label, "round-trip");
        assert!(report.wall_ms >= 0.0);
        assert_eq!(report.counters["r.test.invocations"], 42);
        assert_eq!(report.gauges["r.test.threads"], 8);
        assert_eq!(report.histograms["r.test.pair_ns"].count, 2);
        assert_eq!(report.span_count(), 2);
        assert!(report.folded.contains_key("r.outer;r.inner"));
        assert!(report.histograms["r.test.pair_ns"].p50_ns > 0);

        let json = report.to_json().unwrap();
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back, report);
        // Spot-check the JSON shape is readable, not an opaque blob.
        assert!(json.contains("\"r.outer\""));
        assert!(json.contains("duration_ns"));
        crate::disable();
    }

    #[test]
    fn collect_is_non_destructive() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        crate::counter_add("r.test.twice", 1);
        let first = collect("a");
        crate::counter_add("r.test.twice", 1);
        let second = collect("b");
        assert_eq!(first.counters["r.test.twice"], 1);
        assert_eq!(second.counters["r.test.twice"], 2);
        crate::disable();
    }
}
