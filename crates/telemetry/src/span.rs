//! Lightweight spans over a thread-local stack.
//!
//! [`span`] opens a span and returns an RAII [`SpanGuard`]; dropping the
//! guard closes the span, attaching its timed [`SpanRecord`] to the
//! enclosing span (or to the process-global root list when the stack
//! empties). The guard remembers the stack depth it opened at, so spans
//! close correctly even when a panic unwinds through several guards or an
//! inner guard is leaked with `mem::forget` — descendants still on the
//! stack above the closing guard are folded in as its children.
//!
//! Each thread owns its own stack: spans opened on a worker thread become
//! independent roots rather than children of whatever the spawning thread
//! had open. Cross-thread parenting would need ids plumbed through spawn
//! sites, which the embarrassingly parallel workloads here don't justify.

use crate::{is_enabled, lock};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::Mutex;
use std::time::Instant;

/// One completed span: a name, a monotonic duration, and nested children.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// The name given to [`span`].
    pub name: String,
    /// Wall-clock duration, nanoseconds (monotonic clock).
    pub duration_ns: u64,
    /// Spans opened and closed while this one was open, in completion order.
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// Total number of spans in this subtree, including `self`.
    pub fn tree_size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanRecord::tree_size)
            .sum::<usize>()
    }
}

struct OpenSpan {
    name: String,
    start: Instant,
    children: Vec<SpanRecord>,
}

impl OpenSpan {
    fn finish(self) -> SpanRecord {
        SpanRecord {
            name: self.name,
            duration_ns: self.start.elapsed().as_nanos() as u64,
            children: self.children,
        }
    }
}

thread_local! {
    static STACK: RefCell<Vec<OpenSpan>> = const { RefCell::new(Vec::new()) };
}

static ROOTS: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

/// Closes the span opened by the matching [`span`] call when dropped.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    /// Stack index this guard's span occupies; `None` for the inert guard
    /// handed out while telemetry is disabled.
    depth: Option<usize>,
}

/// Opens a span. Returns an inert guard while telemetry is disabled.
pub fn span(name: impl Into<String>) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { depth: None };
    }
    let depth = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(OpenSpan {
            name: name.into(),
            start: Instant::now(),
            children: Vec::new(),
        });
        stack.len() - 1
    });
    SpanGuard { depth: Some(depth) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(depth) = self.depth else { return };
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Fold any still-open descendants (leaked guards) into their
            // parents, innermost first, until this guard's span is on top.
            while stack.len() > depth + 1 {
                let leaked = stack.pop().expect("len checked").finish();
                stack
                    .last_mut()
                    .expect("depth+1 remains")
                    .children
                    .push(leaked);
            }
            if stack.len() == depth + 1 {
                let record = stack.pop().expect("len checked").finish();
                match stack.last_mut() {
                    Some(parent) => parent.children.push(record),
                    None => lock(&ROOTS).push(record),
                }
            }
            // stack.len() <= depth means an outer guard already folded this
            // span away — nothing left to do.
        });
    }
}

/// Clones the completed root spans recorded so far (completed = their
/// guards were dropped and their thread's stack emptied back to them).
pub(crate) fn snapshot_roots() -> Vec<SpanRecord> {
    lock(&ROOTS).clone()
}

pub(crate) fn reset() {
    lock(&ROOTS).clear();
    STACK.with(|stack| stack.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;

    #[test]
    fn nesting_builds_a_tree() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        {
            let _outer = span("outer");
            {
                let _a = span("a");
                let _deep = span("deep");
            }
            let _b = span("b");
        }
        let roots = snapshot_roots();
        assert_eq!(roots.len(), 1);
        let outer = &roots[0];
        assert_eq!(outer.name, "outer");
        let names: Vec<&str> = outer.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(outer.children[0].children.len(), 1);
        assert_eq!(outer.children[0].children[0].name, "deep");
        assert_eq!(outer.tree_size(), 4);
        crate::disable();
    }

    #[test]
    fn sibling_roots_accumulate() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        {
            let _x = span("x");
        }
        {
            let _y = span("y");
        }
        let names: Vec<String> = snapshot_roots().into_iter().map(|r| r.name).collect();
        assert_eq!(names, ["x", "y"]);
        crate::disable();
    }

    #[test]
    fn panic_unwinding_closes_spans() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        let result = std::panic::catch_unwind(|| {
            let _outer = span("panicky-outer");
            let _inner = span("panicky-inner");
            panic!("boom");
        });
        assert!(result.is_err());
        let roots = snapshot_roots();
        assert_eq!(roots.len(), 1, "unwind closed both spans: {roots:?}");
        assert_eq!(roots[0].name, "panicky-outer");
        assert_eq!(roots[0].children[0].name, "panicky-inner");
        // The stack is clean: a fresh span still works.
        {
            let _after = span("after-panic");
        }
        assert_eq!(snapshot_roots().len(), 2);
        crate::disable();
    }

    #[test]
    fn leaked_guard_is_folded_by_outer_drop() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        {
            let _outer = span("leak-outer");
            std::mem::forget(span("leak-inner"));
        }
        let roots = snapshot_roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].children[0].name, "leak-inner");
        crate::disable();
    }

    #[test]
    fn disabled_span_is_inert() {
        let _g = testing::guard();
        crate::disable();
        crate::reset();
        {
            let _s = span("never-recorded");
        }
        assert!(snapshot_roots().is_empty());
    }

    #[test]
    fn worker_thread_spans_become_roots() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        {
            let _main = span("main-span");
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _w = span("worker-span");
                });
            });
        }
        let mut names: Vec<String> = snapshot_roots().into_iter().map(|r| r.name).collect();
        names.sort();
        assert_eq!(names, ["main-span", "worker-span"]);
        crate::disable();
    }
}
