//! Causal spans over a thread-local stack.
//!
//! [`span`] opens a span and returns an RAII [`SpanGuard`]; dropping the
//! guard closes the span. Every span carries a process-unique id, its
//! parent's id, a monotonic start offset from the process trace origin, and
//! the id of the thread that opened it. The guard remembers the stack depth
//! it opened at, so spans close correctly even when a panic unwinds through
//! several guards or an inner guard is leaked with `mem::forget` —
//! descendants still on the stack above the closing guard are folded in as
//! its children.
//!
//! Each thread owns its own stack. Spans opened on a worker thread become
//! independent roots *unless* the spawn site hands the worker a
//! [`TraceContext`] captured with [`current_context`]: a context remembers
//! the spawning span's id, and [`TraceContext::span`] opens the worker's
//! outermost span with that id as its parent. Completed cross-thread
//! subtrees are stitched under their remote parents at snapshot time, so
//! the exported forest shows worker spans nested under the sweep span that
//! spawned them instead of as orphan roots.

use crate::{is_enabled, lock};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One completed span: identity, timing, and nested children.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Process-unique span id, allocated at open time from a monotonic
    /// counter (so `id` order is open order, and a parent's id is always
    /// smaller than any descendant's).
    pub id: u64,
    /// Id of the enclosing span (local stack parent, or the remote parent
    /// captured in a [`TraceContext`]); `0` for a true root.
    pub parent_id: u64,
    /// The name given to [`span`].
    pub name: String,
    /// Nanoseconds from the process trace origin to this span's open.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds (monotonic clock).
    pub duration_ns: u64,
    /// Small dense id of the thread that opened the span (trace track).
    pub thread: u64,
    /// Spans that closed while this one was open, in open (= id) order.
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// Total number of spans in this subtree, including `self`.
    pub fn tree_size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanRecord::tree_size)
            .sum::<usize>()
    }
}

/// The instant all `start_ns` offsets are measured from. Process-wide and
/// never rebased: offsets stay mutually comparable across [`crate::reset`]
/// (the exporter normalizes to the earliest span when writing a trace).
fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

fn origin_ns() -> u64 {
    origin().elapsed().as_nanos() as u64
}

/// Span ids start at 1; 0 is the "no parent" sentinel.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// Dense per-thread id used as the trace track. Stable for the thread's
/// lifetime; scoped worker threads each get a fresh one.
pub fn thread_track() -> u64 {
    THREAD_ID.with(|t| *t)
}

struct OpenSpan {
    id: u64,
    parent_id: u64,
    name: String,
    start: Instant,
    start_ns: u64,
    children: Vec<SpanRecord>,
}

impl OpenSpan {
    fn finish(self) -> SpanRecord {
        SpanRecord {
            id: self.id,
            parent_id: self.parent_id,
            name: self.name,
            start_ns: self.start_ns,
            duration_ns: self.start.elapsed().as_nanos() as u64,
            thread: thread_track(),
            children: self.children,
        }
    }
}

thread_local! {
    static STACK: RefCell<Vec<OpenSpan>> = const { RefCell::new(Vec::new()) };
}

/// Completed thread-root subtrees, possibly carrying a remote `parent_id`;
/// stitched into a single forest by [`snapshot_roots`].
static ROOTS: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

/// Closes the span opened by the matching [`span`] call when dropped.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    /// Stack index this guard's span occupies; `None` for the inert guard
    /// handed out while telemetry is disabled.
    depth: Option<usize>,
}

impl SpanGuard {
    /// The id of this guard's span, `0` for an inert guard.
    pub fn id(&self) -> u64 {
        self.depth
            .map(|depth| STACK.with(|stack| stack.borrow()[depth].id))
            .unwrap_or(0)
    }
}

/// A cheap `Copy` handle carrying the id of the span that was open when the
/// context was captured. Spawn sites capture one with [`current_context`]
/// and hand it to workers; [`TraceContext::span`] then parents the worker's
/// outermost span under the spawning span instead of leaving it an orphan
/// root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    parent: u64,
}

impl TraceContext {
    /// A context with no parent: spans opened through it behave exactly
    /// like plain [`span`] calls.
    pub const fn none() -> TraceContext {
        TraceContext { parent: 0 }
    }

    /// A context adopting an explicit parent span id — for callers that
    /// carry ids across process boundaries (e.g. a request id minted by a
    /// service front-end) rather than capturing a live span.
    pub const fn with_parent(parent: u64) -> TraceContext {
        TraceContext { parent }
    }

    /// The captured parent span id (`0` when none).
    pub fn parent_id(&self) -> u64 {
        self.parent
    }

    /// Opens a span parented under this context when the calling thread has
    /// no span of its own open; nested calls parent locally as usual.
    /// Returns an inert guard while telemetry is disabled.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        open_span(name, self.parent)
    }
}

/// Captures the innermost open span on this thread as a [`TraceContext`]
/// to hand to spawned workers. Cheap (one relaxed load) while disabled.
pub fn current_context() -> TraceContext {
    if !is_enabled() {
        return TraceContext::none();
    }
    let parent = STACK.with(|stack| stack.borrow().last().map(|s| s.id).unwrap_or(0));
    TraceContext { parent }
}

/// Opens a span. Returns an inert guard while telemetry is disabled.
pub fn span(name: impl Into<String>) -> SpanGuard {
    open_span(name, 0)
}

fn open_span(name: impl Into<String>, remote_parent: u64) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { depth: None };
    }
    let depth = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent_id = stack.last().map(|s| s.id).unwrap_or(remote_parent);
        stack.push(OpenSpan {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            parent_id,
            name: name.into(),
            start: Instant::now(),
            start_ns: origin_ns(),
            children: Vec::new(),
        });
        stack.len() - 1
    });
    SpanGuard { depth: Some(depth) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(depth) = self.depth else { return };
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Fold any still-open descendants (leaked guards) into their
            // parents, innermost first, until this guard's span is on top.
            while stack.len() > depth + 1 {
                let leaked = stack.pop().expect("len checked").finish();
                stack
                    .last_mut()
                    .expect("depth+1 remains")
                    .children
                    .push(leaked);
            }
            if stack.len() == depth + 1 {
                let record = stack.pop().expect("len checked").finish();
                match stack.last_mut() {
                    Some(parent) => parent.children.push(record),
                    None => lock(&ROOTS).push(record),
                }
            }
            // stack.len() <= depth means an outer guard already folded this
            // span away — nothing left to do.
        });
    }
}

/// Depth-first search for the node with `id` across a forest.
fn find_mut(forest: &mut [SpanRecord], id: u64) -> Option<&mut SpanRecord> {
    for tree in forest {
        if tree.id == id {
            return Some(tree);
        }
        if let Some(found) = find_mut(&mut tree.children, id) {
            return Some(found);
        }
    }
    None
}

fn sort_children_by_id(forest: &mut [SpanRecord]) {
    for tree in forest {
        tree.children.sort_by_key(|c| c.id);
        sort_children_by_id(&mut tree.children);
    }
}

/// Clones the completed root subtrees recorded so far and stitches
/// cross-thread parents: a subtree whose root carries a remote `parent_id`
/// is attached under that node when it exists in the forest (ids are
/// monotonic, so sorting roots by id places every parent before its remote
/// children). Subtrees whose parent never completed stay roots. Children
/// end up in id (= open) order, which for same-thread siblings coincides
/// with the old completion order.
pub(crate) fn snapshot_roots() -> Vec<SpanRecord> {
    let mut pending = lock(&ROOTS).clone();
    pending.sort_by_key(|r| r.id);
    let mut forest: Vec<SpanRecord> = Vec::new();
    for tree in pending {
        if tree.parent_id != 0 {
            if let Some(parent) = find_mut(&mut forest, tree.parent_id) {
                parent.children.push(tree);
                continue;
            }
        }
        forest.push(tree);
    }
    sort_children_by_id(&mut forest);
    forest
}

pub(crate) fn reset() {
    lock(&ROOTS).clear();
    STACK.with(|stack| stack.borrow_mut().clear());
    // Restart ids for readable traces. Spans still open across a reset
    // would alias new ids; the experiment harness resets only between runs.
    NEXT_ID.store(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;

    #[test]
    fn nesting_builds_a_tree() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        {
            let _outer = span("outer");
            {
                let _a = span("a");
                let _deep = span("deep");
            }
            let _b = span("b");
        }
        let roots = snapshot_roots();
        assert_eq!(roots.len(), 1);
        let outer = &roots[0];
        assert_eq!(outer.name, "outer");
        let names: Vec<&str> = outer.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(outer.children[0].children.len(), 1);
        assert_eq!(outer.children[0].children[0].name, "deep");
        assert_eq!(outer.tree_size(), 4);
        crate::disable();
    }

    #[test]
    fn ids_parents_and_offsets_are_causal() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        let roots = snapshot_roots();
        let outer = &roots[0];
        let inner = &outer.children[0];
        assert!(outer.id >= 1);
        assert_eq!(outer.parent_id, 0);
        assert_eq!(inner.parent_id, outer.id);
        assert!(inner.id > outer.id, "ids are allocated in open order");
        assert!(inner.start_ns >= outer.start_ns, "children start later");
        assert_eq!(outer.thread, inner.thread);
        crate::disable();
    }

    #[test]
    fn sibling_roots_accumulate() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        {
            let _x = span("x");
        }
        {
            let _y = span("y");
        }
        let names: Vec<String> = snapshot_roots().into_iter().map(|r| r.name).collect();
        assert_eq!(names, ["x", "y"]);
        crate::disable();
    }

    #[test]
    fn panic_unwinding_closes_spans() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        let result = std::panic::catch_unwind(|| {
            let _outer = span("panicky-outer");
            let _inner = span("panicky-inner");
            panic!("boom");
        });
        assert!(result.is_err());
        let roots = snapshot_roots();
        assert_eq!(roots.len(), 1, "unwind closed both spans: {roots:?}");
        assert_eq!(roots[0].name, "panicky-outer");
        assert_eq!(roots[0].children[0].name, "panicky-inner");
        // The stack is clean: a fresh span still works.
        {
            let _after = span("after-panic");
        }
        assert_eq!(snapshot_roots().len(), 2);
        crate::disable();
    }

    #[test]
    fn leaked_guard_is_folded_by_outer_drop() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        {
            let _outer = span("leak-outer");
            std::mem::forget(span("leak-inner"));
        }
        let roots = snapshot_roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].children[0].name, "leak-inner");
        crate::disable();
    }

    #[test]
    fn disabled_span_is_inert() {
        let _g = testing::guard();
        crate::disable();
        crate::reset();
        {
            let _s = span("never-recorded");
        }
        assert!(snapshot_roots().is_empty());
        assert_eq!(current_context(), TraceContext::none());
    }

    #[test]
    fn worker_thread_spans_become_roots_without_context() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        {
            let _main = span("main-span");
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _w = span("worker-span");
                });
            });
        }
        let mut names: Vec<String> = snapshot_roots().into_iter().map(|r| r.name).collect();
        names.sort();
        assert_eq!(names, ["main-span", "worker-span"]);
        crate::disable();
    }

    #[test]
    fn trace_context_parents_worker_spans_under_spawner() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        {
            let _sweep = span("sweep");
            let ctx = current_context();
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    scope.spawn(move || {
                        let _w = ctx.span("worker");
                        let _inner = span("worker-inner");
                    });
                }
            });
        }
        let roots = snapshot_roots();
        assert_eq!(roots.len(), 1, "workers stitched under sweep: {roots:?}");
        let sweep = &roots[0];
        assert_eq!(sweep.name, "sweep");
        assert_eq!(sweep.children.len(), 2);
        for worker in &sweep.children {
            assert_eq!(worker.name, "worker");
            assert_eq!(worker.parent_id, sweep.id);
            assert_ne!(worker.thread, sweep.thread);
            assert_eq!(worker.children[0].name, "worker-inner");
            assert_eq!(worker.children[0].parent_id, worker.id);
        }
        // Children are stitched in open order.
        assert!(sweep.children[0].id < sweep.children[1].id);
        crate::disable();
    }

    #[test]
    fn orphaned_context_child_stays_a_root() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        let ctx = {
            let _parent = span("short-lived");
            current_context()
        };
        // Parent already closed and its subtree is in the forest; a late
        // worker still stitches under it.
        {
            let _late = ctx.span("late-worker");
        }
        let roots = snapshot_roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].children[0].name, "late-worker");
        // A context whose parent was never recorded (e.g. pruned by reset)
        // leaves the child a root instead of losing it.
        crate::reset();
        let stale = TraceContext::with_parent(987_654);
        {
            let _orphan = stale.span("orphan");
        }
        let roots = snapshot_roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "orphan");
        crate::disable();
    }
}
