//! Process-global metrics registry: atomic counters, gauges, and
//! fixed-bucket histograms.
//!
//! The registry is read-mostly: the first touch of a name takes a write
//! lock to intern the metric, every subsequent update takes a read lock and
//! a relaxed atomic op. Updates therefore never lose increments under the
//! scoped-thread parallelism used by the experiment harness, and never
//! block each other once a metric exists.

use crate::is_enabled;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Histogram bucket upper bounds in nanoseconds (geometric, ~×4). A final
/// implicit overflow bucket catches everything above the last bound, so a
/// snapshot always has `BUCKET_BOUNDS_NS.len() + 1` bucket counts.
pub const BUCKET_BOUNDS_NS: [u64; 12] = [
    250,
    1_000,
    4_000,
    16_000,
    64_000,
    250_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    250_000_000,
    1_000_000_000,
];

/// A fixed-bucket duration histogram.
#[derive(Debug, Default)]
struct Histogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    buckets: [AtomicU64; BUCKET_BOUNDS_NS.len() + 1],
}

impl Histogram {
    fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(BUCKET_BOUNDS_NS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            p50_ns: 0,
            p95_ns: 0,
            p99_ns: 0,
        }
        .with_percentiles()
    }

    fn zero(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time view of one histogram, as exported in [`crate::RunReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations, nanoseconds.
    pub sum_ns: u64,
    /// Per-bucket counts; index `i` counts observations `<=
    /// BUCKET_BOUNDS_NS[i]`, the final entry is the overflow bucket.
    pub buckets: Vec<u64>,
    /// Median estimate, rounded nanoseconds (see [`percentile`](Self::percentile)).
    pub p50_ns: u64,
    /// 95th-percentile estimate, rounded nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile estimate, rounded nanoseconds.
    pub p99_ns: u64,
}

impl HistogramSnapshot {
    /// Mean observation in nanoseconds, `0.0` when empty.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`, clamped) by walking the
    /// cumulative bucket counts and interpolating linearly inside the
    /// log-spaced bucket the rank lands in — the standard
    /// `histogram_quantile` scheme. The first bucket interpolates from 0;
    /// the overflow bucket continues the geometric progression (its upper
    /// edge is 4× the last finite bound), so extreme quantiles stay finite
    /// but are only as precise as the bucketing. Returns `0.0` when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &in_bucket) in self.buckets.iter().enumerate() {
            if in_bucket == 0 {
                continue;
            }
            if (cum + in_bucket) as f64 >= rank {
                let lo = if i == 0 { 0 } else { BUCKET_BOUNDS_NS[i - 1] };
                let hi = if i < BUCKET_BOUNDS_NS.len() {
                    BUCKET_BOUNDS_NS[i]
                } else {
                    BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1] * 4
                };
                let frac = (rank - cum as f64) / in_bucket as f64;
                return lo as f64 + frac * (hi - lo) as f64;
            }
            cum += in_bucket;
        }
        // Unreachable when count matches the bucket sums; degrade gracefully
        // if a racy snapshot undercounted a bucket.
        BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1] as f64 * 4.0
    }

    fn with_percentiles(mut self) -> Self {
        self.p50_ns = self.percentile(0.50).round() as u64;
        self.p95_ns = self.percentile(0.95).round() as u64;
        self.p99_ns = self.percentile(0.99).round() as u64;
        self
    }
}

/// One interned shard of the registry.
struct Shard<T> {
    map: RwLock<HashMap<String, Arc<T>>>,
}

impl<T: Default> Shard<T> {
    fn new() -> Self {
        Shard {
            map: RwLock::new(HashMap::new()),
        }
    }

    fn get(&self, name: &str) -> Arc<T> {
        if let Some(found) = self
            .map
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(name)
        {
            return Arc::clone(found);
        }
        let mut map = self
            .map
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(T::default())),
        )
    }

    fn clear(&self) {
        self.map
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }

    fn for_each(&self, f: impl Fn(&T)) {
        for v in self
            .map
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            f(v);
        }
    }

    fn snapshot_with<U>(&self, f: impl Fn(&T) -> U) -> std::collections::BTreeMap<String, U> {
        self.map
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), f(v)))
            .collect()
    }
}

struct Registry {
    counters: Shard<AtomicU64>,
    gauges: Shard<AtomicI64>,
    histograms: Shard<Histogram>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Shard::new(),
        gauges: Shard::new(),
        histograms: Shard::new(),
    })
}

/// A cached handle to one counter: the name is resolved against the
/// registry once, at [`counter`] time; every [`add`](Counter::add) after
/// that is a gate check plus one relaxed atomic increment — cheap enough
/// for per-invocation hot paths where [`counter_add`]'s name lookup (string
/// hash under a read lock) would dominate.
///
/// Handles survive [`crate::reset`]: reset zeroes counters in place rather
/// than dropping them, so a cached handle never silently detaches from the
/// registry.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `delta`. No-op while telemetry is disabled.
    #[inline]
    pub fn add(&self, delta: u64) {
        if is_enabled() && delta != 0 {
            self.cell.fetch_add(delta, Ordering::Relaxed);
        }
    }
}

/// Interns `name` and returns a cached [`Counter`] handle for it.
pub fn counter(name: &str) -> Counter {
    Counter {
        cell: registry().counters.get(name),
    }
}

/// A cached handle to one histogram, analogous to [`Counter`]: resolved
/// once, then every observation is bucket math on pre-resolved atomics.
#[derive(Clone)]
pub struct Histo {
    cell: Arc<Histogram>,
}

impl Histo {
    /// Records one duration observation. No-op while disabled.
    #[inline]
    pub fn observe_ns(&self, ns: u64) {
        if is_enabled() {
            self.cell.record(ns);
        }
    }

    /// Starts a [`TimedGuard`] recording into this histogram on drop,
    /// without the per-call name allocation of [`timed`].
    pub fn start(&self) -> TimedGuard {
        if !is_enabled() {
            return TimedGuard {
                target: None,
                start: None,
            };
        }
        TimedGuard {
            target: Some(TimerTarget::Handle(Arc::clone(&self.cell))),
            start: Some(Instant::now()),
        }
    }
}

/// Interns `name` and returns a cached [`Histo`] handle for it.
pub fn histogram(name: &str) -> Histo {
    Histo {
        cell: registry().histograms.get(name),
    }
}

/// Adds `delta` to the named monotonic counter. No-op while telemetry is
/// disabled.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if !is_enabled() || delta == 0 {
        return;
    }
    registry()
        .counters
        .get(name)
        .fetch_add(delta, Ordering::Relaxed);
}

/// Current value of a counter (0 if never touched). Works regardless of the
/// enabled flag, for tests and report assembly.
pub fn counter_value(name: &str) -> u64 {
    registry().counters.get(name).load(Ordering::Relaxed)
}

/// Sets the named gauge to an absolute value. No-op while disabled.
#[inline]
pub fn gauge_set(name: &str, value: i64) {
    if !is_enabled() {
        return;
    }
    registry().gauges.get(name).store(value, Ordering::Relaxed);
}

/// Current value of a gauge (0 if never set).
pub fn gauge_value(name: &str) -> i64 {
    registry().gauges.get(name).load(Ordering::Relaxed)
}

/// Records one duration observation into the named histogram. No-op while
/// disabled.
#[inline]
pub fn observe_ns(name: &str, ns: u64) {
    if !is_enabled() {
        return;
    }
    registry().histograms.get(name).record(ns);
}

enum TimerTarget {
    Named(String),
    Handle(Arc<Histogram>),
}

/// RAII timer: records the guarded scope's duration into the named
/// histogram on drop. Inert (never calls `Instant::now`) while disabled.
#[must_use = "the timer records on drop"]
pub struct TimedGuard {
    target: Option<TimerTarget>,
    start: Option<Instant>,
}

impl Drop for TimedGuard {
    fn drop(&mut self) {
        if let (Some(target), Some(start)) = (self.target.take(), self.start) {
            // Record even if telemetry was disabled mid-scope: the
            // observation was armed while enabled.
            let ns = start.elapsed().as_nanos() as u64;
            match target {
                TimerTarget::Named(name) => registry().histograms.get(&name).record(ns),
                TimerTarget::Handle(hist) => hist.record(ns),
            }
        }
    }
}

/// Starts a [`TimedGuard`] over the named histogram.
pub fn timed(name: &str) -> TimedGuard {
    if !is_enabled() {
        return TimedGuard {
            target: None,
            start: None,
        };
    }
    TimedGuard {
        target: Some(TimerTarget::Named(name.to_string())),
        start: Some(Instant::now()),
    }
}

pub(crate) fn snapshot_counters() -> std::collections::BTreeMap<String, u64> {
    let mut counters = registry()
        .counters
        .snapshot_with(|c| c.load(Ordering::Relaxed));
    // Zero-valued counters are indistinguishable from never-touched ones
    // (reset zeroes in place); keep reports free of them.
    counters.retain(|_, v| *v != 0);
    counters
}

pub(crate) fn snapshot_gauges() -> std::collections::BTreeMap<String, i64> {
    registry()
        .gauges
        .snapshot_with(|g| g.load(Ordering::Relaxed))
}

pub(crate) fn snapshot_histograms() -> std::collections::BTreeMap<String, HistogramSnapshot> {
    let mut histograms = registry().histograms.snapshot_with(Histogram::snapshot);
    histograms.retain(|_, v| v.count != 0);
    histograms
}

pub(crate) fn reset() {
    let r = registry();
    // Counters and histograms are zeroed in place so cached [`Counter`]
    // handles stay attached; gauges have no handle API and are dropped.
    r.counters.for_each(|c| c.store(0, Ordering::Relaxed));
    r.histograms.for_each(Histogram::zero);
    r.gauges.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;

    #[test]
    fn counters_and_gauges_record_when_enabled_only() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        counter_add("m.test.counter", 2);
        counter_add("m.test.counter", 3);
        gauge_set("m.test.gauge", -7);
        assert_eq!(counter_value("m.test.counter"), 5);
        assert_eq!(gauge_value("m.test.gauge"), -7);
        crate::disable();
        counter_add("m.test.counter", 100);
        gauge_set("m.test.gauge", 100);
        assert_eq!(counter_value("m.test.counter"), 5, "disabled adds ignored");
        assert_eq!(gauge_value("m.test.gauge"), -7);
    }

    #[test]
    fn histogram_buckets_are_cumulative_boundaries() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        // One observation exactly on each bound, plus one overflow.
        for bound in BUCKET_BOUNDS_NS {
            observe_ns("m.test.hist", bound);
        }
        observe_ns(
            "m.test.hist",
            BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1] + 1,
        );
        let snap = snapshot_histograms().remove("m.test.hist").unwrap();
        assert_eq!(snap.count, BUCKET_BOUNDS_NS.len() as u64 + 1);
        assert_eq!(snap.buckets.len(), BUCKET_BOUNDS_NS.len() + 1);
        assert!(snap.buckets.iter().all(|&b| b == 1), "{:?}", snap.buckets);
        assert!(snap.mean_ns() > 0.0);
        crate::disable();
    }

    /// A snapshot with `per_bucket` observations in every bucket (including
    /// overflow), for pinning interpolation arithmetic exactly.
    fn synthetic_snapshot(per_bucket: u64) -> HistogramSnapshot {
        let buckets = vec![per_bucket; BUCKET_BOUNDS_NS.len() + 1];
        HistogramSnapshot {
            count: per_bucket * buckets.len() as u64,
            sum_ns: 0,
            buckets,
            p50_ns: 0,
            p95_ns: 0,
            p99_ns: 0,
        }
    }

    #[test]
    fn percentile_of_empty_histogram_is_zero() {
        let snap = HistogramSnapshot {
            count: 0,
            sum_ns: 0,
            buckets: vec![0; BUCKET_BOUNDS_NS.len() + 1],
            p50_ns: 0,
            p95_ns: 0,
            p99_ns: 0,
        };
        assert_eq!(snap.percentile(0.5), 0.0);
        assert_eq!(snap.percentile(0.99), 0.0);
    }

    #[test]
    fn percentile_interpolates_and_pins_bucket_edges() {
        // All mass in one bucket (4_000, 16_000]: quantiles sweep linearly
        // across exactly that bucket, pinning both edges.
        let mut snap = synthetic_snapshot(0);
        snap.buckets[3] = 8;
        snap.count = 8;
        assert_eq!(snap.percentile(0.0), 4_000.0, "q=0 pins the lower edge");
        assert_eq!(snap.percentile(1.0), 16_000.0, "q=1 pins the upper edge");
        assert_eq!(snap.percentile(0.5), 10_000.0, "midpoint of the bucket");

        // One observation per bucket across the first two buckets: the
        // boundary rank lands exactly on the shared edge.
        let mut snap = synthetic_snapshot(0);
        snap.buckets[0] = 1;
        snap.buckets[1] = 1;
        snap.count = 2;
        assert_eq!(snap.percentile(0.5), 250.0, "rank on the bucket boundary");
        assert_eq!(snap.percentile(0.25), 125.0);
        assert_eq!(snap.percentile(0.75), 625.0);

        // Quantiles are clamped and monotonic in q.
        assert_eq!(snap.percentile(-1.0), snap.percentile(0.0));
        assert_eq!(snap.percentile(2.0), snap.percentile(1.0));
    }

    #[test]
    fn percentile_overflow_bucket_continues_geometric() {
        let last = BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1];
        let mut snap = synthetic_snapshot(0);
        *snap.buckets.last_mut().unwrap() = 4;
        snap.count = 4;
        assert_eq!(snap.percentile(0.0), last as f64);
        assert_eq!(
            snap.percentile(1.0),
            (last * 4) as f64,
            "overflow upper edge extends the ×4 progression"
        );
        assert_eq!(snap.percentile(0.5), (last * 2) as f64 + last as f64 / 2.0);
    }

    #[test]
    fn snapshot_populates_percentile_fields() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        for _ in 0..100 {
            observe_ns("m.test.pct", 500); // bucket (250, 1_000]
        }
        let snap = snapshot_histograms().remove("m.test.pct").unwrap();
        assert_eq!(snap.p50_ns, 625, "250 + 0.5 * 750");
        assert_eq!(
            snap.p95_ns,
            (250.0 + 0.95 * 750.0f64).round() as u64,
            "interpolated within the occupied bucket"
        );
        assert!(snap.p99_ns > snap.p95_ns);
        assert_eq!(snap.p50_ns as f64, snap.percentile(0.5).round());
        crate::disable();
    }

    #[test]
    fn timed_guard_records_scope_duration() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        {
            let _t = timed("m.test.timer");
            std::hint::black_box(1 + 1);
        }
        let snap = snapshot_histograms().remove("m.test.timer").unwrap();
        assert_eq!(snap.count, 1);
        crate::disable();
        {
            let _t = timed("m.test.timer");
        }
        let snap = snapshot_histograms().remove("m.test.timer").unwrap();
        assert_eq!(snap.count, 1, "disabled timer is inert");
    }
}
