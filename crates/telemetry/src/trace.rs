//! Chrome trace-event export and folded-stack aggregation over the span
//! forest.
//!
//! [`chrome_trace`] flattens a [`RunReport`]'s stitched span forest into
//! the Chrome trace-event *JSON array format* (a bare array of `ph:"X"`
//! complete events), which Perfetto and `chrome://tracing` both load
//! directly. Timestamps are microseconds, normalized so the earliest span
//! starts at 0; each thread's dense track id becomes the `tid`, and the
//! span/parent ids ride along in `args` so external tools (and the CI
//! validator) can rebuild causality without re-parsing nesting.
//!
//! [`folded_stacks`] aggregates the same forest into flamegraph folded
//! form: `"root;child;leaf" -> exclusive (self) nanoseconds`, directly
//! consumable by `inferno`/`flamegraph.pl`-style renderers.

use crate::span::SpanRecord;
use crate::RunReport;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One Chrome trace-event, always a `ph:"X"` complete event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Span name.
    pub name: String,
    /// Event category (always `"span"`).
    pub cat: String,
    /// Phase: `"X"` (complete event with inline duration).
    pub ph: String,
    /// Start, microseconds from the trace origin.
    pub ts: f64,
    /// Duration, microseconds.
    pub dur: f64,
    /// Process id (always 1: the pipeline is single-process).
    pub pid: u64,
    /// Track: the dense thread id the span was opened on.
    pub tid: u64,
    /// Causal identity, for tools that want edges rather than nesting.
    pub args: TraceArgs,
}

/// The `args` payload carrying span identity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceArgs {
    /// Span id (process-unique, monotonic in open order).
    pub id: u64,
    /// Parent span id, `0` for roots.
    pub parent: u64,
}

fn min_start_ns(spans: &[SpanRecord]) -> u64 {
    // Roots are the earliest spans of their subtrees (children open later),
    // so scanning roots suffices.
    spans.iter().map(|s| s.start_ns).min().unwrap_or(0)
}

fn push_events(spans: &[SpanRecord], origin_ns: u64, out: &mut Vec<TraceEvent>) {
    for span in spans {
        out.push(TraceEvent {
            name: span.name.clone(),
            cat: "span".to_string(),
            ph: "X".to_string(),
            ts: (span.start_ns - origin_ns) as f64 / 1_000.0,
            dur: span.duration_ns as f64 / 1_000.0,
            pid: 1,
            tid: span.thread,
            args: TraceArgs {
                id: span.id,
                parent: span.parent_id,
            },
        });
        push_events(&span.children, origin_ns, out);
    }
}

/// Flattens a report's span forest into Chrome trace events (pre-order, so
/// every track's timestamps are non-decreasing in file order).
pub fn chrome_trace(report: &RunReport) -> Vec<TraceEvent> {
    let origin = min_start_ns(&report.spans);
    let mut out = Vec::with_capacity(report.span_count());
    push_events(&report.spans, origin, &mut out);
    out
}

/// Serializes a report's span forest as Chrome trace JSON (array format),
/// loadable in Perfetto.
pub fn chrome_trace_json(report: &RunReport) -> serde_json::Result<String> {
    serde_json::to_string_pretty(&chrome_trace(report))
}

/// Parses trace events back from [`chrome_trace_json`] output.
pub fn chrome_trace_from_json(json: &str) -> serde_json::Result<Vec<TraceEvent>> {
    serde_json::from_str(json)
}

/// A structural defect found by [`validate_chrome_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceDefect {
    /// An event references a parent id that exists nowhere in the trace.
    UnresolvedParent { id: u64, parent: u64 },
    /// Two events claim the same span id.
    DuplicateId { id: u64 },
    /// A track's timestamps go backwards in file order.
    NonMonotonicTrack { tid: u64, at_id: u64 },
}

impl std::fmt::Display for TraceDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceDefect::UnresolvedParent { id, parent } => {
                write!(f, "span {id} references missing parent {parent}")
            }
            TraceDefect::DuplicateId { id } => write!(f, "span id {id} appears twice"),
            TraceDefect::NonMonotonicTrack { tid, at_id } => {
                write!(f, "track {tid} timestamps regress at span {at_id}")
            }
        }
    }
}

/// Checks the causal invariants the exporter guarantees: unique span ids,
/// every non-zero parent resolving to some event, and per-track timestamps
/// non-decreasing in file order. Returns every defect found.
pub fn validate_chrome_trace(events: &[TraceEvent]) -> Vec<TraceDefect> {
    let mut defects = Vec::new();
    let mut ids = std::collections::BTreeSet::new();
    for event in events {
        if !ids.insert(event.args.id) {
            defects.push(TraceDefect::DuplicateId { id: event.args.id });
        }
    }
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    for event in events {
        if event.args.parent != 0 && !ids.contains(&event.args.parent) {
            defects.push(TraceDefect::UnresolvedParent {
                id: event.args.id,
                parent: event.args.parent,
            });
        }
        if let Some(&prev) = last_ts.get(&event.tid) {
            if event.ts < prev {
                defects.push(TraceDefect::NonMonotonicTrack {
                    tid: event.tid,
                    at_id: event.args.id,
                });
            }
        }
        last_ts.insert(event.tid, event.ts);
    }
    defects
}

fn fold_into(spans: &[SpanRecord], prefix: &str, out: &mut BTreeMap<String, u64>) {
    for span in spans {
        let path = if prefix.is_empty() {
            span.name.clone()
        } else {
            format!("{prefix};{}", span.name)
        };
        let child_ns: u64 = span.children.iter().map(|c| c.duration_ns).sum();
        // Exclusive (self) time; clamped because a cross-thread child's
        // wall time can exceed the portion its parent spent waiting.
        let self_ns = span.duration_ns.saturating_sub(child_ns);
        *out.entry(path.clone()).or_insert(0) += self_ns;
        fold_into(&span.children, &path, out);
    }
}

/// Aggregates a span forest into flamegraph folded-stack form:
/// `"root;child;leaf" -> summed exclusive nanoseconds`.
pub fn folded_stacks(spans: &[SpanRecord]) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    fold_into(spans, "", &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;

    fn leaf(id: u64, parent: u64, name: &str, start: u64, dur: u64, thread: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent_id: parent,
            name: name.to_string(),
            start_ns: start,
            duration_ns: dur,
            thread,
            children: Vec::new(),
        }
    }

    #[test]
    fn chrome_trace_flattens_normalizes_and_round_trips() {
        let _g = testing::guard();
        let mut root = leaf(1, 0, "sweep", 5_000, 10_000, 1);
        root.children.push(leaf(2, 1, "worker", 6_000, 3_000, 2));
        let report = RunReport {
            spans: vec![root],
            ..crate::collect("trace-test")
        };
        let events = chrome_trace(&report);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "sweep");
        assert_eq!(events[0].ts, 0.0, "earliest span normalized to origin");
        assert_eq!(events[0].dur, 10.0);
        assert_eq!(events[1].ts, 1.0);
        assert_eq!(events[1].tid, 2);
        assert_eq!(events[1].args.parent, 1);
        assert!(events.iter().all(|e| e.ph == "X" && e.pid == 1));

        let json = chrome_trace_json(&report).unwrap();
        let back = chrome_trace_from_json(&json).unwrap();
        assert_eq!(back, events);
        assert!(validate_chrome_trace(&back).is_empty());
    }

    #[test]
    fn validator_flags_broken_traces() {
        let orphan = TraceEvent {
            name: "x".into(),
            cat: "span".into(),
            ph: "X".into(),
            ts: 10.0,
            dur: 1.0,
            pid: 1,
            tid: 1,
            args: TraceArgs { id: 2, parent: 99 },
        };
        let regressed = TraceEvent {
            ts: 5.0,
            args: TraceArgs { id: 2, parent: 0 },
            ..orphan.clone()
        };
        let defects = validate_chrome_trace(std::slice::from_ref(&orphan));
        assert_eq!(
            defects,
            vec![TraceDefect::UnresolvedParent { id: 2, parent: 99 }]
        );
        let defects = validate_chrome_trace(&[
            TraceEvent {
                args: TraceArgs { id: 1, parent: 0 },
                ..orphan.clone()
            },
            regressed,
        ]);
        assert!(defects.contains(&TraceDefect::NonMonotonicTrack { tid: 1, at_id: 2 }));
        let defects = validate_chrome_trace(&[orphan.clone(), orphan]);
        assert!(defects.contains(&TraceDefect::DuplicateId { id: 2 }));
    }

    #[test]
    fn folded_stacks_sum_exclusive_time() {
        let mut root = leaf(1, 0, "outer", 0, 10_000, 1);
        let mut mid = leaf(2, 1, "mid", 1_000, 6_000, 1);
        mid.children.push(leaf(3, 2, "leaf", 2_000, 2_000, 1));
        root.children.push(mid);
        // A second root with the same path accumulates.
        let other = leaf(4, 0, "outer", 20_000, 3_000, 1);
        let folded = folded_stacks(&[root, other]);
        assert_eq!(folded["outer"], 4_000 + 3_000);
        assert_eq!(folded["outer;mid"], 4_000);
        assert_eq!(folded["outer;mid;leaf"], 2_000);
    }

    #[test]
    fn folded_stacks_clamp_overcommitted_parents() {
        let mut root = leaf(1, 0, "sweep", 0, 1_000, 1);
        // Two parallel workers whose summed wall time exceeds the parent's.
        root.children.push(leaf(2, 1, "w", 100, 800, 2));
        root.children.push(leaf(3, 1, "w", 100, 800, 3));
        let folded = folded_stacks(&[root]);
        assert_eq!(folded["sweep"], 0, "clamped, not underflowed");
        assert_eq!(folded["sweep;w"], 1_600);
    }
}
