//! # dex-telemetry
//!
//! Observability substrate for the data-examples pipeline: lightweight
//! spans, a process-global metrics registry, structured events behind a
//! verbosity level, and a JSON-exportable [`RunReport`].
//!
//! The whole crate is gated on one process-global `enabled` flag. When
//! telemetry is **off** (the default) every instrumentation call reduces to
//! a single relaxed atomic load and an early return, so instrumented hot
//! paths pay effectively nothing. When it is **on**:
//!
//! * [`span`] pushes onto a thread-local span stack and, on RAII-guard drop,
//!   folds the timed [`SpanRecord`] into its parent (or the global root list
//!   when the stack empties). Spans carry stable ids, parent ids, and
//!   monotonic start offsets; spawn sites capture a [`TraceContext`] with
//!   [`current_context`] and hand it to workers so their spans stitch under
//!   the spawning span instead of becoming orphan roots.
//! * [`flight`] records structured moments (invocation outcomes, retries,
//!   evictions, fault injections, deltas) into a fixed-capacity lock-free
//!   ring; [`dump_flight`] writes the recent window to `FLIGHT.json` as a
//!   post-mortem on panic or module withdrawal.
//! * [`trace::chrome_trace_json`] exports the stitched span forest as
//!   Perfetto-loadable Chrome trace JSON; [`RunReport`] additionally carries
//!   flamegraph folded stacks and p50/p95/p99 histogram percentiles.
//! * [`counter_add`] / [`gauge_set`] / [`observe_ns`] update atomics inside
//!   a read-mostly registry, so concurrent increments from scoped threads
//!   never lose updates.
//! * [`event!`] records a structured message when its level is within the
//!   configured verbosity, optionally echoing to stderr.
//!
//! [`collect`] snapshots everything into a serde-serializable [`RunReport`];
//! the experiment binaries write it to `TELEMETRY.json`.
//!
//! Zero external dependencies beyond the workspace's serde/serde_json shims,
//! matching the offline build constraint.

mod event;
mod flight;
mod metrics;
mod report;
mod span;
pub mod trace;

pub use event::{
    emit, event_enabled, set_stderr_echo, set_verbosity, verbosity, EventRecord, Level,
};
pub use flight::{
    dump_flight, dump_flight_fallback, flight, flight_on, flight_snapshot, flight_total,
    set_flight_enabled, set_flight_path, FlightDump, FlightEvent, FlightKind, FLIGHT_CAPACITY,
};
pub use metrics::{
    counter, counter_add, counter_value, gauge_set, gauge_value, histogram, observe_ns, timed,
    Counter, Histo, HistogramSnapshot, TimedGuard, BUCKET_BOUNDS_NS,
};
pub use report::{collect, RunReport};
pub use span::{current_context, span, thread_track, SpanGuard, SpanRecord, TraceContext};
pub use trace::{chrome_trace, chrome_trace_from_json, chrome_trace_json, validate_chrome_trace};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static STARTED_AT: Mutex<Option<Instant>> = Mutex::new(None);

/// Turns telemetry on. Also stamps the wall-clock origin reported as
/// `wall_ms` by [`collect`]. Idempotent; re-enabling does not reset state
/// (use [`reset`] for that).
pub fn enable() {
    let mut started = lock(&STARTED_AT);
    if started.is_none() {
        *started = Some(Instant::now());
    }
    ENABLED.store(true, Ordering::Release);
}

/// Turns telemetry off. Already-recorded data is kept and still collectable;
/// spans opened while enabled finish recording even if dropped after
/// disabling, so the span stack cannot be corrupted by a mid-run toggle.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether telemetry is currently recording.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears every metric, span, and event, and restarts the wall clock.
/// The enabled flag and verbosity are left as-is.
pub fn reset() {
    metrics::reset();
    span::reset();
    event::reset();
    flight::reset();
    *lock(&STARTED_AT) = Some(Instant::now());
}

/// Milliseconds since [`enable`] (or the last [`reset`]); `0.0` if telemetry
/// was never enabled.
pub fn wall_ms() -> f64 {
    lock(&STARTED_AT)
        .map(|t| t.elapsed().as_secs_f64() * 1_000.0)
        .unwrap_or(0.0)
}

/// Locks a mutex, riding through poisoning: telemetry must never turn a
/// panicking test into a cascade of secondary panics.
pub(crate) fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
pub(crate) mod testing {
    use std::sync::Mutex;

    /// All unit tests touching the process-global subscriber serialize on
    /// this lock (the test harness runs them on parallel threads).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    pub fn guard() -> std::sync::MutexGuard<'static, ()> {
        super::lock(&TEST_LOCK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_toggles() {
        let _g = testing::guard();
        disable();
        assert!(!is_enabled());
        enable();
        assert!(is_enabled());
        assert!(wall_ms() >= 0.0);
        disable();
        assert!(!is_enabled());
    }

    #[test]
    fn reset_clears_all_stores() {
        let _g = testing::guard();
        enable();
        reset();
        counter_add("lib.reset.c", 3);
        gauge_set("lib.reset.g", -2);
        observe_ns("lib.reset.h", 500);
        emit(Level::Error, "lib.reset", "boom".into());
        {
            let _s = span("lib.reset.span");
        }
        let before = collect("before-reset");
        assert_eq!(before.counters.get("lib.reset.c"), Some(&3));
        reset();
        let report = collect("after-reset");
        assert!(report.counters.is_empty());
        assert!(report.gauges.is_empty());
        assert!(report.histograms.is_empty());
        assert!(report.spans.is_empty());
        assert!(report.events.is_empty());
        disable();
    }
}
