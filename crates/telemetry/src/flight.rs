//! Flight recorder: a fixed-capacity lock-free ring of recent structured
//! events, kept cheap enough to leave on during fault-injected runs and
//! dumped as a post-mortem (`FLIGHT.json`) when something goes wrong — a
//! panic, or graceful degradation withdrawing a module.
//!
//! The ring is a slot array of `AtomicPtr<FlightEvent>`. A writer claims a
//! ticket from a shared cursor with one `fetch_add`, boxes its event, and
//! `swap`s it into `slot[ticket % capacity]`, dropping whatever older event
//! it displaced — wait-free, no locks, and safe for the `String`-carrying
//! payloads a seqlock could not hold. A snapshot swaps each slot out,
//! clones the event, and CAS-restores the pointer; if a writer raced in
//! meanwhile the older event is simply dropped (its clone survives in the
//! snapshot). Under concurrency a snapshot is best-effort: an event whose
//! ticket was claimed but not yet published can be missed while later
//! tickets are present.
//!
//! Recording is gated on the global telemetry flag *and* a recorder flag
//! ([`set_flight_enabled`], default on): when either is off, [`flight_on`]
//! is false and call sites skip even the `String` formatting, so disabled
//! runs stay allocation-free.

use crate::{is_enabled, lock};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Ring capacity. 1024 events cover the recent-history window that makes a
/// seeded-fault post-mortem readable (at the pipeline's observed event
/// rates, several full retry storms plus the deltas and evictions around
/// them) while bounding worst-case memory to ~100 KiB of boxed events.
pub const FLIGHT_CAPACITY: usize = 1024;

/// What kind of moment the recorder captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlightKind {
    /// A module invocation completed (the miss path of the cache; `detail`
    /// carries the outcome).
    Invocation,
    /// A retry was scheduled after a transient failure (`value` = attempt).
    Retry,
    /// Retries gave up: policy or budget exhausted on a transient failure.
    RetryExhausted,
    /// The invocation cache evicted a completed entry (`value` = live size).
    CacheEviction,
    /// The fault injector fired (`detail` says what it injected).
    FaultInjected,
    /// Graceful degradation withdrew a module from the run.
    ModuleWithdrawn,
    /// The incremental pipeline applied a registry delta.
    DeltaApplied,
    /// A panic unwound through the telemetry panic hook.
    Panic,
}

/// One recorded moment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Ring ticket: process-wide claim order across threads.
    pub seq: u64,
    /// Event category.
    pub kind: FlightKind,
    /// The entity involved, usually a module id.
    pub target: String,
    /// Free-form context (outcome, injected error, delta description…).
    pub detail: String,
    /// Kind-specific magnitude (attempt number, tick, cache size…).
    pub value: u64,
}

/// The serialized post-mortem artifact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightDump {
    /// Why the dump was taken ("panic", "module withdrawn", "run end"…).
    pub reason: String,
    /// Total events ever recorded; anything beyond the ring capacity was
    /// overwritten before this dump.
    pub total_recorded: u64,
    /// The surviving window, in `seq` order.
    pub events: Vec<FlightEvent>,
}

impl FlightDump {
    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a dump back from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<FlightDump> {
        serde_json::from_str(json)
    }
}

static FLIGHT_ENABLED: AtomicBool = AtomicBool::new(true);
static CURSOR: AtomicU64 = AtomicU64::new(0);
static DUMP_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);
static DUMPED: AtomicBool = AtomicBool::new(false);

fn slots() -> &'static [AtomicPtr<FlightEvent>] {
    static SLOTS: OnceLock<Vec<AtomicPtr<FlightEvent>>> = OnceLock::new();
    SLOTS.get_or_init(|| (0..FLIGHT_CAPACITY).map(|_| AtomicPtr::default()).collect())
}

/// Toggles the recorder independently of the main telemetry flag (both must
/// be on for [`flight`] to record).
pub fn set_flight_enabled(on: bool) {
    FLIGHT_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether a [`flight`] call would record right now. Call sites that must
/// format a `detail` string check this first so disabled runs skip the
/// allocation entirely.
#[inline]
pub fn flight_on() -> bool {
    is_enabled() && FLIGHT_ENABLED.load(Ordering::Relaxed)
}

/// Records one event into the ring, displacing the oldest once the ring is
/// full. Wait-free; no-op unless [`flight_on`].
pub fn flight(kind: FlightKind, target: &str, detail: String, value: u64) {
    if !flight_on() {
        return;
    }
    let seq = CURSOR.fetch_add(1, Ordering::Relaxed);
    let fresh = Box::into_raw(Box::new(FlightEvent {
        seq,
        kind,
        target: target.to_string(),
        detail,
        value,
    }));
    let old = slots()[seq as usize % FLIGHT_CAPACITY].swap(fresh, Ordering::AcqRel);
    if !old.is_null() {
        // SAFETY: the swap transferred exclusive ownership of `old` to us;
        // no other thread can reach it again.
        drop(unsafe { Box::from_raw(old) });
    }
}

/// Total events ever recorded (including overwritten ones).
pub fn flight_total() -> u64 {
    CURSOR.load(Ordering::Relaxed)
}

/// Clones the surviving window in `seq` order. Non-destructive and safe to
/// run concurrently with writers (see the module docs for the race window).
pub fn flight_snapshot() -> Vec<FlightEvent> {
    let mut events = Vec::new();
    for slot in slots() {
        let taken = slot.swap(ptr::null_mut(), Ordering::AcqRel);
        if taken.is_null() {
            continue;
        }
        // SAFETY: we own `taken` exclusively between the swap and either
        // the CAS-restore or the drop below; events are never mutated
        // after publication.
        events.push(unsafe { (*taken).clone() });
        if slot
            .compare_exchange(ptr::null_mut(), taken, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            // A writer published a newer event while we held this one; the
            // older event leaves the ring but lives on in the snapshot.
            // SAFETY: the failed CAS means we still own `taken`.
            drop(unsafe { Box::from_raw(taken) });
        }
    }
    events.sort_by_key(|e| e.seq);
    events
}

/// Sets (or clears) the file the next [`dump_flight`] writes to.
pub fn set_flight_path(path: Option<PathBuf>) {
    *lock(&DUMP_PATH) = path;
}

/// Writes the current window to the configured dump path as a
/// [`FlightDump`]. Returns `true` when a non-empty dump was written.
/// No-op (returns `false`) when no path is configured or no events exist —
/// post-mortems are only useful when there is history to show.
///
/// This function runs inside the chained panic hook, so it is *infallible
/// by construction*: any serialization or IO failure is reported to stderr
/// (best-effort — even the report cannot panic) and swallowed, because a
/// panic here would turn a recoverable unwind into a double-panic abort
/// that loses the post-mortem entirely.
pub fn dump_flight(reason: &str) -> bool {
    let Some(path) = lock(&DUMP_PATH).clone() else {
        return false;
    };
    let events = flight_snapshot();
    if events.is_empty() {
        return false;
    }
    let dump = FlightDump {
        reason: reason.to_string(),
        total_recorded: flight_total(),
        events,
    };
    let json = match dump.to_json() {
        Ok(json) => json,
        Err(e) => {
            best_effort_stderr(&format!("flight recorder: cannot serialize dump: {e}"));
            return false;
        }
    };
    match std::fs::write(&path, json) {
        Ok(()) => {
            DUMPED.store(true, Ordering::Relaxed);
            true
        }
        Err(e) => {
            best_effort_stderr(&format!(
                "flight recorder: cannot write {}: {e}",
                path.display()
            ));
            false
        }
    }
}

/// Stderr reporting that can never panic: `eprintln!` panics when stderr is
/// unwritable, which on the dump path would escalate into an abort.
fn best_effort_stderr(msg: &str) {
    use std::io::Write as _;
    let _ = writeln!(std::io::stderr(), "{msg}");
}

/// Run-end variant of [`dump_flight`] that never clobbers an earlier
/// post-mortem: a dump taken at a panic or withdrawal holds the window
/// *around the incident*, which a later run-end window would overwrite.
pub fn dump_flight_fallback(reason: &str) -> bool {
    if DUMPED.load(Ordering::Relaxed) {
        return false;
    }
    dump_flight(reason)
}

pub(crate) fn reset() {
    for slot in slots() {
        let taken = slot.swap(ptr::null_mut(), Ordering::AcqRel);
        if !taken.is_null() {
            // SAFETY: swap transferred ownership.
            drop(unsafe { Box::from_raw(taken) });
        }
    }
    CURSOR.store(0, Ordering::Relaxed);
    DUMPED.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;

    #[test]
    fn records_in_order_and_snapshots_nondestructively() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        set_flight_enabled(true);
        for i in 0..5 {
            flight(FlightKind::Invocation, "m1", format!("ok {i}"), i);
        }
        let first = flight_snapshot();
        assert_eq!(first.len(), 5);
        assert!(first.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(first[4].detail, "ok 4");
        // Snapshot left the ring intact.
        let second = flight_snapshot();
        assert_eq!(first, second);
        assert_eq!(flight_total(), 5);
        crate::disable();
    }

    #[test]
    fn ring_keeps_only_the_newest_window() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        set_flight_enabled(true);
        let extra = 7u64;
        for i in 0..(FLIGHT_CAPACITY as u64 + extra) {
            flight(FlightKind::Retry, "m", String::new(), i);
        }
        let events = flight_snapshot();
        assert_eq!(events.len(), FLIGHT_CAPACITY);
        assert_eq!(events[0].seq, extra, "oldest events were displaced");
        assert_eq!(flight_total(), FLIGHT_CAPACITY as u64 + extra);
        crate::disable();
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        set_flight_enabled(false);
        assert!(!flight_on());
        flight(FlightKind::Panic, "x", "dropped".into(), 0);
        assert!(flight_snapshot().is_empty());
        assert_eq!(flight_total(), 0);
        set_flight_enabled(true);
        crate::disable();
        assert!(!flight_on(), "telemetry off also gates the recorder");
    }

    #[test]
    fn concurrent_writers_lose_no_slots() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        set_flight_enabled(true);
        let threads = 8;
        let per_thread = 100; // total 800 < capacity: nothing displaced
        std::thread::scope(|scope| {
            for t in 0..threads {
                scope.spawn(move || {
                    for i in 0..per_thread {
                        flight(FlightKind::Invocation, "t", String::new(), t * 1000 + i);
                    }
                });
            }
        });
        let events = flight_snapshot();
        assert_eq!(events.len(), (threads * per_thread) as usize);
        // Every ticket exactly once.
        assert!(events.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        crate::disable();
    }

    #[test]
    fn dump_writes_configured_path() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        set_flight_enabled(true);
        let path = std::env::temp_dir().join("dex_flight_test.json");
        set_flight_path(Some(path.clone()));
        assert!(!dump_flight("empty"), "no events, no dump");
        flight(FlightKind::FaultInjected, "m7", "injected fault".into(), 3);
        flight(FlightKind::ModuleWithdrawn, "m7", "gave up".into(), 0);
        assert!(dump_flight("module withdrawn"));
        let dump = FlightDump::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(dump.reason, "module withdrawn");
        assert_eq!(dump.total_recorded, 2);
        assert_eq!(dump.events.len(), 2);
        assert_eq!(dump.events[0].kind, FlightKind::FaultInjected);
        assert_eq!(dump.events[1].kind, FlightKind::ModuleWithdrawn);
        let _ = std::fs::remove_file(&path);
        set_flight_path(None);
        crate::disable();
    }

    #[test]
    fn dump_into_unwritable_directory_fails_without_panicking() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        set_flight_enabled(true);
        flight(FlightKind::Panic, "m", "incident".into(), 0);
        // Point the dump at a directory that does not exist: the write must
        // fail, be reported, and leave the sticky dump flag unset so a
        // later dump to a good path still lands.
        let bad = std::env::temp_dir()
            .join("dex_flight_no_such_dir")
            .join("FLIGHT.json");
        set_flight_path(Some(bad));
        assert!(!dump_flight("panic"), "unwritable path cannot dump");
        let good = std::env::temp_dir().join("dex_flight_recovered.json");
        set_flight_path(Some(good.clone()));
        assert!(
            dump_flight_fallback("run end"),
            "failed dump must not mark the incident as dumped"
        );
        let dump = FlightDump::from_json(&std::fs::read_to_string(&good).unwrap()).unwrap();
        assert_eq!(dump.reason, "run end");
        let _ = std::fs::remove_file(&good);
        set_flight_path(None);
        crate::disable();
    }
}
