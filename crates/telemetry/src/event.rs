//! Structured events behind a verbosity level — the replacement for ad-hoc
//! `eprintln!` debugging across the workspace.
//!
//! Library code calls the [`crate::event!`] macro, which skips even the
//! message formatting unless telemetry is enabled *and* the event's level is
//! within the configured verbosity. Recorded events ride along in the
//! [`crate::RunReport`]; optionally they are echoed to stderr for live runs
//! ([`set_stderr_echo`]).

use crate::{is_enabled, lock};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// Event severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Level {
    /// Unrecoverable or data-corrupting conditions.
    Error,
    /// Suspicious but survivable conditions.
    Warn,
    /// Run milestones (default verbosity records up to here).
    Info,
    /// Per-entity detail (module registrations, step failures…).
    Debug,
    /// Firehose.
    Trace,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }

    /// Parses "error" | "warn" | "info" | "debug" | "trace" (any case).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Global sequence number (process-wide order across threads).
    pub seq: u64,
    /// Severity the event was emitted at.
    pub level: Level,
    /// Subsystem tag, e.g. `"catalog"` or `"universe"`.
    pub target: String,
    /// The formatted message.
    pub message: String,
}

/// Hard cap on buffered events; beyond it events are counted but dropped so
/// a chatty Trace run cannot exhaust memory.
const MAX_EVENTS: usize = 4096;

static VERBOSITY: AtomicU8 = AtomicU8::new(Level::Info as u8);
static STDERR_ECHO: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);
static EVENTS: Mutex<Vec<EventRecord>> = Mutex::new(Vec::new());
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Sets the maximum level that gets recorded (default [`Level::Info`]).
pub fn set_verbosity(level: Level) {
    VERBOSITY.store(level as u8, Ordering::Relaxed);
}

/// The current verbosity ceiling.
pub fn verbosity() -> Level {
    Level::from_u8(VERBOSITY.load(Ordering::Relaxed))
}

/// When `true`, recorded events are also printed to stderr as
/// `[LEVEL target] message`.
pub fn set_stderr_echo(echo: bool) {
    STDERR_ECHO.store(echo, Ordering::Relaxed);
}

/// Whether an event at `level` would currently be recorded. The
/// [`crate::event!`] macro checks this before formatting the message.
#[inline]
pub fn event_enabled(level: Level) -> bool {
    is_enabled() && (level as u8) <= VERBOSITY.load(Ordering::Relaxed)
}

/// Records a pre-formatted event. Prefer the [`crate::event!`] macro, which
/// avoids the formatting cost when the event would be discarded.
pub fn emit(level: Level, target: &str, message: String) {
    if !event_enabled(level) {
        return;
    }
    if STDERR_ECHO.load(Ordering::Relaxed) {
        eprintln!("[{} {}] {}", level.label(), target, message);
    }
    let mut events = lock(&EVENTS);
    if events.len() >= MAX_EVENTS {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    events.push(EventRecord {
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        level,
        target: target.to_string(),
        message,
    });
}

/// Records a structured event, formatting the message only when it would be
/// kept: `event!(Level::Info, "universe", "built {n} modules")`.
#[macro_export]
macro_rules! event {
    ($level:expr, $target:expr, $($arg:tt)+) => {
        if $crate::event_enabled($level) {
            $crate::emit($level, $target, format!($($arg)+));
        }
    };
}

pub(crate) fn snapshot_events() -> Vec<EventRecord> {
    lock(&EVENTS).clone()
}

pub(crate) fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

pub(crate) fn reset() {
    lock(&EVENTS).clear();
    SEQ.store(0, Ordering::Relaxed);
    DROPPED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;

    #[test]
    fn verbosity_gates_recording() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        set_verbosity(Level::Info);
        event!(Level::Info, "test", "kept {}", 1);
        event!(Level::Debug, "test", "dropped {}", 2);
        let events = snapshot_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].message, "kept 1");
        assert_eq!(events[0].target, "test");
        set_verbosity(Level::Debug);
        event!(Level::Debug, "test", "now kept");
        assert_eq!(snapshot_events().len(), 2);
        set_verbosity(Level::Info);
        crate::disable();
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let _g = testing::guard();
        crate::disable();
        crate::reset();
        event!(Level::Error, "test", "even errors are skipped");
        assert!(snapshot_events().is_empty());
    }

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Trace);
        assert_eq!(Level::parse("DeBuG"), Some(Level::Debug));
        assert_eq!(Level::parse("nope"), None);
        for l in [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::from_u8(l as u8), l);
        }
    }

    #[test]
    fn event_buffer_is_capped() {
        let _g = testing::guard();
        crate::enable();
        crate::reset();
        for i in 0..(MAX_EVENTS + 10) {
            emit(Level::Info, "flood", format!("e{i}"));
        }
        assert_eq!(snapshot_events().len(), MAX_EVENTS);
        assert_eq!(dropped_events(), 10);
        crate::reset();
        assert_eq!(dropped_events(), 0);
        crate::disable();
    }
}
