//! Concurrency guarantees of the metrics registry: counters hammered from
//! scoped threads (the same parallelism shape as `match_pairs_parallel` and
//! `generate_all_parallel`) must not lose a single increment, and first-touch
//! interning races must resolve to one shared atomic per name.

use std::sync::Mutex;

/// The registry is process-global and the harness runs tests on parallel
/// threads, so tests that reset or assert absolute values serialize here.
static TEST_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn counters_survive_scoped_thread_hammering() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    dex_telemetry::enable();
    dex_telemetry::reset();

    const THREADS: usize = 8;
    const INCREMENTS: usize = 10_000;

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..INCREMENTS {
                    // Shared counter: every thread races on one atomic.
                    dex_telemetry::counter_add("hammer.shared", 1);
                    // Per-thread counter: exercises the interning write path
                    // concurrently with other threads' read path.
                    dex_telemetry::counter_add(&format!("hammer.thread.{t}"), 1);
                    // Histograms share the same shard machinery.
                    if i % 100 == 0 {
                        dex_telemetry::observe_ns("hammer.hist", (i as u64 + 1) * 10);
                    }
                }
            });
        }
    });

    assert_eq!(
        dex_telemetry::counter_value("hammer.shared"),
        (THREADS * INCREMENTS) as u64,
        "no increment may be lost"
    );
    for t in 0..THREADS {
        assert_eq!(
            dex_telemetry::counter_value(&format!("hammer.thread.{t}")),
            INCREMENTS as u64
        );
    }
    let report = dex_telemetry::collect("hammer");
    assert_eq!(
        report.histograms["hammer.hist"].count,
        (THREADS * INCREMENTS / 100) as u64
    );
    dex_telemetry::disable();
}

#[test]
fn same_name_interns_to_one_counter_under_races() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    dex_telemetry::enable();
    dex_telemetry::reset();

    const THREADS: usize = 16;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                // All threads race to create the same fresh name.
                dex_telemetry::counter_add("intern.race", 1);
            });
        }
    });
    assert_eq!(dex_telemetry::counter_value("intern.race"), THREADS as u64);
    dex_telemetry::disable();
}
