//! Module identity and interface description.

use crate::param::Parameter;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier of a module — the `id` of the paper's `m = ⟨id, name⟩`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModuleId(pub String);

impl ModuleId {
    /// Creates a module id.
    pub fn new(id: impl Into<String>) -> Self {
        ModuleId(id.into())
    }

    /// The raw id string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `pad` (not `write_str`) so callers' width/alignment flags work.
        f.pad(&self.0)
    }
}

impl From<&str> for ModuleId {
    fn from(s: &str) -> Self {
        ModuleId(s.to_string())
    }
}

/// How a module is supplied — the three supply forms of the paper's corpus
/// (§4.1: 56 Java/Python programs, 60 REST services, 136 SOAP services).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ModuleKind {
    /// Locally hosted Java/Python-style program.
    LocalProgram,
    /// REST web service.
    RestService,
    /// SOAP web service.
    SoapService,
}

impl fmt::Display for ModuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ModuleKind::LocalProgram => "local program",
            ModuleKind::RestService => "rest service",
            ModuleKind::SoapService => "soap service",
        })
    }
}

/// The externally visible interface of a scientific module.
///
/// This is everything a curator, a registry, or the data-example generator is
/// allowed to know about a module: identity, supply kind, and annotated
/// parameters. Descriptions of *behavior* are deliberately absent — behavior
/// is what data examples exist to convey.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleDescriptor {
    /// Stable identifier.
    pub id: ModuleId,
    /// Human-given name. Often vague or auto-generated in practice (the
    /// paper's Example 2 warns names like `SoapLab`-derived ones carry little
    /// meaning), so nothing downstream may interpret it.
    pub name: String,
    /// Supply form.
    pub kind: ModuleKind,
    /// Ordered input parameters — `inputs(m)`.
    pub inputs: Vec<Parameter>,
    /// Ordered output parameters — `outputs(m)`.
    pub outputs: Vec<Parameter>,
}

impl ModuleDescriptor {
    /// Creates a descriptor.
    pub fn new(
        id: impl Into<ModuleId>,
        name: impl Into<String>,
        kind: ModuleKind,
        inputs: Vec<Parameter>,
        outputs: Vec<Parameter>,
    ) -> Self {
        ModuleDescriptor {
            id: id.into(),
            name: name.into(),
            kind,
            inputs,
            outputs,
        }
    }

    /// Looks up an input parameter by name.
    pub fn input(&self, name: &str) -> Option<(usize, &Parameter)> {
        self.inputs.iter().enumerate().find(|(_, p)| p.name == name)
    }

    /// Looks up an output parameter by name.
    pub fn output(&self, name: &str) -> Option<(usize, &Parameter)> {
        self.outputs
            .iter()
            .enumerate()
            .find(|(_, p)| p.name == name)
    }

    /// Validates the descriptor: non-empty interface, unique parameter names
    /// per direction.
    pub fn validate(&self) -> Result<(), String> {
        if self.inputs.is_empty() {
            return Err(format!("module {} has no inputs", self.id));
        }
        if self.outputs.is_empty() {
            return Err(format!("module {} has no outputs", self.id));
        }
        for params in [&self.inputs, &self.outputs] {
            for (i, p) in params.iter().enumerate() {
                if params[..i].iter().any(|q| q.name == p.name) {
                    return Err(format!(
                        "module {} has duplicate parameter `{}`",
                        self.id, p.name
                    ));
                }
            }
        }
        Ok(())
    }

    /// The one-line interface signature used in registry listings.
    pub fn signature(&self) -> String {
        let ins: Vec<String> = self.inputs.iter().map(|p| p.to_string()).collect();
        let outs: Vec<String> = self.outputs.iter().map(|p| p.to_string()).collect();
        format!("{}({}) -> ({})", self.name, ins.join(", "), outs.join(", "))
    }
}

impl From<String> for ModuleId {
    fn from(s: String) -> Self {
        ModuleId(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_values::StructuralType;

    fn descriptor() -> ModuleDescriptor {
        ModuleDescriptor::new(
            "op:getrecord",
            "GetRecord",
            ModuleKind::SoapService,
            vec![Parameter::required(
                "accession",
                StructuralType::Text,
                "UniprotAccession",
            )],
            vec![Parameter::required(
                "record",
                StructuralType::Text,
                "UniprotRecord",
            )],
        )
    }

    #[test]
    fn lookup_by_name() {
        let d = descriptor();
        assert_eq!(d.input("accession").unwrap().0, 0);
        assert!(d.input("nope").is_none());
        assert_eq!(d.output("record").unwrap().0, 0);
    }

    #[test]
    fn validate_accepts_wellformed() {
        assert!(descriptor().validate().is_ok());
    }

    #[test]
    fn validate_rejects_empty_interface() {
        let mut d = descriptor();
        d.outputs.clear();
        assert!(d.validate().is_err());
        let mut d2 = descriptor();
        d2.inputs.clear();
        assert!(d2.validate().is_err());
    }

    #[test]
    fn validate_rejects_duplicate_params() {
        let mut d = descriptor();
        d.inputs.push(d.inputs[0].clone());
        assert!(d.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn signature_renders() {
        let s = descriptor().signature();
        assert!(s.starts_with("GetRecord("));
        assert!(s.contains("UniprotAccession"));
    }

    #[test]
    fn module_id_conversions() {
        let a: ModuleId = "x".into();
        let b: ModuleId = String::from("x").into();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "x");
        assert_eq!(a.as_str(), "x");
    }
}
