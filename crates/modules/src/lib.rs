//! # dex-modules
//!
//! The scientific-module model of the paper's §2: a module `m = ⟨id, name⟩`
//! with ordered input and output parameters, each carrying a structural type
//! `str(i)` and a semantic type `sem(i)` (an ontology concept).
//!
//! Modules are **black boxes**: the only thing the rest of the system may do
//! with one is read its interface ([`ModuleDescriptor`]) and invoke it
//! ([`BlackBox::invoke`]). No code here exposes a module's implementation or
//! specification — that separation is the whole point of the paper, and the
//! evaluation crates enforce it by keeping ground-truth behavior specs in a
//! side table the generator never sees.
//!
//! [`ModuleCatalog`] models the (volatile!) population of available modules:
//! third-party providers can withdraw a module at any time, after which
//! invocations fail with [`InvocationError::Unavailable`] — the workflow
//! decay phenomenon of §6.
//!
//! ```
//! use dex_modules::{FnModule, ModuleDescriptor, ModuleKind, Parameter};
//! use dex_values::{StructuralType, Value};
//!
//! let echo = FnModule::new(
//!     ModuleDescriptor::new(
//!         "demo:echo",
//!         "Echo",
//!         ModuleKind::RestService,
//!         vec![Parameter::required("in", StructuralType::Text, "Document")],
//!         vec![Parameter::required("out", StructuralType::Text, "Document")],
//!     ),
//!     |inputs| Ok(vec![inputs[0].clone()]),
//! );
//! use dex_modules::BlackBox;
//! let out = echo.invoke(&[Value::text("hello")]).unwrap();
//! assert_eq!(out, vec![Value::text("hello")]);
//! ```

pub mod blackbox;
pub mod cache;
pub mod catalog;
pub mod fault;
pub mod invoke;
pub mod module;
pub mod param;
pub mod retry;

pub use blackbox::{BlackBox, FnModule, SharedModule};
pub use cache::{invoke_all_cached, InvocationCache, InvocationCacheStats, InvocationOutcome};
pub use catalog::ModuleCatalog;
pub use fault::{FaultInjector, FaultPlan, FaultStats, FaultyModule, FlapWindow};
pub use invoke::InvocationError;
pub use module::{ModuleDescriptor, ModuleId, ModuleKind};
pub use param::Parameter;
pub use retry::{invoke_all_retrying, Retrier, RetryPolicy, RetryStats};
