//! Deterministic, seeded fault injection around any [`BlackBox`].
//!
//! Real BioCatalogue-style services fail transiently all the time; the
//! pipeline must keep its reports reproducible anyway. A [`FaultyModule`]
//! wraps a module and injects *transient* errors ([`InvocationError::Fault`]
//! and, during flap windows, [`InvocationError::Unavailable`]) according to
//! a [`FaultPlan`]:
//!
//! * **No wall clock.** Time is a per-module tick counter advanced by
//!   simulated invocation latency and by retry backoff (through
//!   [`BlackBox::advance_ticks`]), so runs are byte-for-byte reproducible.
//! * **Keyed, not sequenced.** Whether a given `(module, input vector)`
//!   faults — and how many consecutive attempts fail — is a pure hash of
//!   the seed, module id and inputs. Injection is therefore independent of
//!   invocation order, thread interleaving and cache hits, which is what
//!   lets a faulted run converge to the fault-free reports once every key's
//!   bounded fault burst is retried through.
//! * **Flap schedules.** [`FlapWindow`]s model a provider withdrawing and
//!   restoring a module: any invocation landing on a tick inside a window
//!   fails `Unavailable`, exactly like catalog withdrawal.

use crate::blackbox::{BlackBox, SharedModule};
use crate::invoke::InvocationError;
use crate::module::ModuleDescriptor;
use dex_values::Value;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A half-open interval `[from_tick, until_tick)` of the wrapped module's
/// simulated clock during which every invocation fails `Unavailable` — a
/// scripted withdraw → restore episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlapWindow {
    /// First unavailable tick.
    pub from_tick: u64,
    /// First tick available again.
    pub until_tick: u64,
}

impl FlapWindow {
    /// Whether `tick` falls inside the window.
    pub fn contains(&self, tick: u64) -> bool {
        tick >= self.from_tick && tick < self.until_tick
    }
}

/// What faults to inject, fully determined by the seed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed mixed into every per-key fault decision.
    pub seed: u64,
    /// Per-mill (‰) probability that a distinct `(module, inputs)` key
    /// faults at all. `100` ≈ 10% of keys.
    pub fault_rate_millis: u32,
    /// A faulting key fails between 1 and this many consecutive attempts
    /// before succeeding. Keep it below a retry policy's `max_attempts` and
    /// every key converges to its true outcome.
    pub max_consecutive: u32,
    /// Simulated ticks each invocation advances the module clock by.
    pub latency_ticks: u64,
    /// Scripted unavailability windows on the module clock.
    pub flaps: Vec<FlapWindow>,
}

impl FaultPlan {
    /// A plan injecting nothing (useful as a baseline with the wrapper on).
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            fault_rate_millis: 0,
            max_consecutive: 0,
            latency_ticks: 1,
            flaps: Vec::new(),
        }
    }

    /// A plan faulting roughly `rate_pct`% of keys for up to 2 consecutive
    /// attempts, with one tick of latency per invocation and no flaps.
    pub fn rate_pct(seed: u64, rate_pct: u32) -> FaultPlan {
        FaultPlan {
            seed,
            fault_rate_millis: (rate_pct * 10).min(1000),
            max_consecutive: 2,
            latency_ticks: 1,
            flaps: Vec::new(),
        }
    }

    /// This plan with a flap window appended.
    pub fn with_flap(mut self, from_tick: u64, until_tick: u64) -> FaultPlan {
        self.flaps.push(FlapWindow {
            from_tick,
            until_tick,
        });
        self
    }
}

/// Snapshot of injected-fault accounting, aggregated across every module an
/// injector wrapped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Invocations that reached a faulty wrapper.
    pub invocations: u64,
    /// Injected `Fault` errors.
    pub injected_faults: u64,
    /// Injected `Unavailable` errors (flap windows).
    pub injected_unavailable: u64,
}

impl FaultStats {
    /// All injected transient errors.
    pub fn injected_total(&self) -> u64 {
        self.injected_faults + self.injected_unavailable
    }
}

#[derive(Debug, Default)]
struct FaultStatsInner {
    invocations: AtomicU64,
    injected_faults: AtomicU64,
    injected_unavailable: AtomicU64,
}

impl FaultStatsInner {
    fn snapshot(&self) -> FaultStats {
        FaultStats {
            invocations: self.invocations.load(Ordering::Relaxed),
            injected_faults: self.injected_faults.load(Ordering::Relaxed),
            injected_unavailable: self.injected_unavailable.load(Ordering::Relaxed),
        }
    }
}

/// Process-global telemetry counters for injected faults, interned once.
fn fault_counters() -> &'static (dex_telemetry::Counter, dex_telemetry::Counter) {
    static COUNTERS: OnceLock<(dex_telemetry::Counter, dex_telemetry::Counter)> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        (
            dex_telemetry::counter("dex.fault.injected"),
            dex_telemetry::counter("dex.fault.unavailable"),
        )
    })
}

/// Wraps a whole module population with one [`FaultPlan`], aggregating the
/// injection stats across all wrapped modules.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    stats: Arc<FaultStatsInner>,
}

impl FaultInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            stats: Arc::default(),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Wraps `module` in a [`FaultyModule`] sharing this injector's stats.
    pub fn wrap(&self, module: SharedModule) -> SharedModule {
        Arc::new(FaultyModule {
            inner: module,
            plan: self.plan.clone(),
            stats: Arc::clone(&self.stats),
            clock: AtomicU64::new(0),
            burst: Mutex::new(HashMap::new()),
        })
    }

    /// Aggregated injection accounting across every wrapped module.
    pub fn stats(&self) -> FaultStats {
        self.stats.snapshot()
    }
}

/// A [`BlackBox`] decorator injecting deterministic transient faults.
///
/// The wrapper is transparent to the rest of the pipeline: it delegates the
/// descriptor (so cache keys, catalog ids and match verdicts are unchanged)
/// and only ever *adds* transient errors in front of the inner module.
pub struct FaultyModule {
    inner: SharedModule,
    plan: FaultPlan,
    stats: Arc<FaultStatsInner>,
    /// Simulated module-local clock: advanced by invocation latency and by
    /// retry backoff via [`BlackBox::advance_ticks`].
    clock: AtomicU64,
    /// Remaining consecutive-fault burst per key hash.
    burst: Mutex<HashMap<u64, u32>>,
}

impl FaultyModule {
    /// Wraps `module` with its own private stats (see [`FaultInjector`] for
    /// population-wide aggregation).
    pub fn new(module: SharedModule, plan: FaultPlan) -> FaultyModule {
        FaultyModule {
            inner: module,
            plan,
            stats: Arc::default(),
            clock: AtomicU64::new(0),
            burst: Mutex::new(HashMap::new()),
        }
    }

    /// This wrapper's injection accounting.
    pub fn stats(&self) -> FaultStats {
        self.stats.snapshot()
    }

    /// Current value of the simulated module clock.
    pub fn clock_ticks(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Pure per-key decision hash: seed × module id × inputs.
    fn fault_key(&self, inputs: &[Value]) -> u64 {
        let mut hasher = DefaultHasher::new();
        self.plan.seed.hash(&mut hasher);
        self.inner.descriptor().id.hash(&mut hasher);
        inputs.hash(&mut hasher);
        hasher.finish()
    }

    /// How many consecutive attempts of this key fail (0 = key never
    /// faults). Low hash bits pick *whether*, high bits pick *how long*.
    fn planned_burst(&self, key: u64) -> u32 {
        if self.plan.fault_rate_millis == 0 || self.plan.max_consecutive == 0 {
            return 0;
        }
        if key % 1000 < u64::from(self.plan.fault_rate_millis) {
            1 + ((key >> 32) % u64::from(self.plan.max_consecutive)) as u32
        } else {
            0
        }
    }
}

impl BlackBox for FaultyModule {
    fn descriptor(&self) -> &ModuleDescriptor {
        self.inner.descriptor()
    }

    fn invoke(&self, inputs: &[Value]) -> Result<Vec<Value>, InvocationError> {
        self.stats.invocations.fetch_add(1, Ordering::Relaxed);
        let tick = self
            .clock
            .fetch_add(self.plan.latency_ticks, Ordering::Relaxed);
        if self.plan.flaps.iter().any(|w| w.contains(tick)) {
            self.stats
                .injected_unavailable
                .fetch_add(1, Ordering::Relaxed);
            if dex_telemetry::is_enabled() {
                fault_counters().1.add(1);
            }
            if dex_telemetry::flight_on() {
                dex_telemetry::flight(
                    dex_telemetry::FlightKind::FaultInjected,
                    self.inner.descriptor().id.as_str(),
                    "injected unavailable (flap window)".to_string(),
                    tick,
                );
            }
            return Err(InvocationError::Unavailable);
        }
        let key = self.fault_key(inputs);
        let planned = self.planned_burst(key);
        if planned > 0 {
            let mut burst = self.burst.lock().expect("no poisoning");
            let fired = burst.entry(key).or_insert(0);
            if *fired < planned {
                *fired += 1;
                let nth = *fired;
                drop(burst);
                self.stats.injected_faults.fetch_add(1, Ordering::Relaxed);
                if dex_telemetry::is_enabled() {
                    fault_counters().0.add(1);
                }
                if dex_telemetry::flight_on() {
                    dex_telemetry::flight(
                        dex_telemetry::FlightKind::FaultInjected,
                        self.inner.descriptor().id.as_str(),
                        format!("injected transient fault ({nth}/{planned})"),
                        tick,
                    );
                }
                return Err(InvocationError::fault(format!(
                    "injected transient fault ({nth}/{planned})"
                )));
            }
        }
        self.inner.invoke(inputs)
    }

    fn advance_ticks(&self, ticks: u64) {
        self.clock.fetch_add(ticks, Ordering::Relaxed);
        self.inner.advance_ticks(ticks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackbox::FnModule;
    use crate::module::ModuleKind;
    use crate::param::Parameter;
    use crate::retry::{Retrier, RetryPolicy};
    use dex_values::StructuralType;

    fn upper() -> SharedModule {
        FnModule::shared(
            ModuleDescriptor::new(
                "op:upper",
                "Upper",
                ModuleKind::RestService,
                vec![Parameter::required("in", StructuralType::Text, "Document")],
                vec![Parameter::required("out", StructuralType::Text, "Document")],
            ),
            |i| Ok(vec![Value::text(i[0].as_text().unwrap().to_uppercase())]),
        )
    }

    #[test]
    fn injection_is_deterministic_and_order_independent() {
        let plan = FaultPlan::rate_pct(7, 30);
        let inputs: Vec<Vec<Value>> = (0..40)
            .map(|i| vec![Value::text(format!("k{i}"))])
            .collect();

        let outcomes_of = |order: Vec<usize>| {
            let faulty = FaultyModule::new(upper(), plan.clone());
            let mut out = vec![None; inputs.len()];
            for i in order {
                out[i] = Some(faulty.invoke(&inputs[i]).is_err());
            }
            (
                out.into_iter().map(Option::unwrap).collect::<Vec<bool>>(),
                faulty.stats().injected_faults,
            )
        };

        let (forward, injected) = outcomes_of((0..inputs.len()).collect());
        let (reverse, _) = outcomes_of((0..inputs.len()).rev().collect());
        assert_eq!(
            forward, reverse,
            "first-attempt fate is per-key, not per-sequence"
        );
        assert!(injected > 0, "a 30% rate over 40 keys injects something");
        assert!(forward.iter().any(|e| !e), "and spares something");
    }

    #[test]
    fn bursts_are_bounded_and_then_the_truth_comes_through() {
        let plan = FaultPlan {
            seed: 11,
            fault_rate_millis: 1000, // every key faults
            max_consecutive: 3,
            latency_ticks: 1,
            flaps: Vec::new(),
        };
        let faulty = FaultyModule::new(upper(), plan);
        let input = [Value::text("seq")];
        let mut failures = 0;
        let ok = loop {
            match faulty.invoke(&input) {
                Ok(out) => break out,
                Err(e) => {
                    assert!(e.is_transient());
                    failures += 1;
                    assert!(failures <= 3, "burst must be bounded");
                }
            }
        };
        assert_eq!(ok, vec![Value::text("SEQ")]);
        assert!(failures >= 1);
        // Once drained, the key is served straight from the inner module.
        assert!(faulty.invoke(&input).is_ok());
    }

    #[test]
    fn flap_window_fails_unavailable_until_backoff_escapes_it() {
        let plan = FaultPlan::none(0).with_flap(1, 5);
        let faulty = FaultyModule::new(upper(), plan);
        let input = [Value::text("x")];
        assert!(faulty.invoke(&input).is_ok(), "tick 0 precedes the flap");
        assert_eq!(
            faulty.invoke(&input),
            Err(InvocationError::Unavailable),
            "tick 1 is inside"
        );
        // Retry backoff advances the module clock past the window.
        faulty.advance_ticks(4);
        assert!(faulty.invoke(&input).is_ok(), "tick 6 is restored");
    }

    #[test]
    fn retrier_rides_out_a_flap_via_backoff() {
        let plan = FaultPlan::none(0).with_flap(0, 4);
        let faulty = FaultyModule::new(upper(), plan);
        let retrier = Retrier::new(RetryPolicy {
            max_attempts: 4,
            base_backoff_ticks: 2,
            max_backoff_ticks: 8,
            retry_budget: None,
        });
        let out = retrier.invoke(&faulty, &[Value::text("x")]);
        assert_eq!(out.unwrap(), vec![Value::text("X")]);
        assert!(retrier.stats().retries >= 1);
    }

    #[test]
    fn zero_rate_plan_is_transparent() {
        let faulty = FaultyModule::new(upper(), FaultPlan::none(99));
        for i in 0..20 {
            assert!(faulty.invoke(&[Value::text(format!("v{i}"))]).is_ok());
        }
        let stats = faulty.stats();
        assert_eq!(stats.injected_total(), 0);
        assert_eq!(stats.invocations, 20);
    }

    #[test]
    fn injector_aggregates_across_wrapped_modules() {
        let injector = FaultInjector::new(FaultPlan::rate_pct(3, 100));
        let a = injector.wrap(upper());
        let b = injector.wrap(upper());
        for i in 0..10 {
            let _ = a.invoke(&[Value::text(format!("a{i}"))]);
            let _ = b.invoke(&[Value::text(format!("b{i}"))]);
        }
        assert_eq!(injector.stats().invocations, 20);
        assert_eq!(injector.plan().fault_rate_millis, 1000);
    }
}
