//! Invocation outcomes.

use std::fmt;

/// Why a module invocation failed to terminate normally.
///
/// The generation heuristic (§3.2) cares about exactly one distinction:
/// *normal termination* (a `Vec<Value>` result) versus anything else — "when
/// generating data examples, we only consider the combinations that yield
/// normal termination of the module invocation". The variants exist so that
/// operators, workflow enactment and the repair verifier can report *why*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvocationError {
    /// Wrong number of input values supplied.
    Arity { expected: usize, got: usize },
    /// An input value does not conform to its parameter's structural type,
    /// or `Null` was fed to a mandatory parameter.
    BadInput { parameter: String, reason: String },
    /// The module executed but rejected the input combination (e.g. an
    /// accession that resolves to nothing, a sequence its algorithm cannot
    /// process). This is the "invalid combination" case of §3.2.
    Rejected { reason: String },
    /// The provider has withdrawn the module (workflow decay, §6).
    Unavailable,
    /// The module crashed on the inputs.
    Fault { reason: String },
}

impl fmt::Display for InvocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvocationError::Arity { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            InvocationError::BadInput { parameter, reason } => {
                write!(f, "bad value for input `{parameter}`: {reason}")
            }
            InvocationError::Rejected { reason } => {
                write!(f, "module rejected the inputs: {reason}")
            }
            InvocationError::Unavailable => {
                write!(f, "module is no longer supplied by its provider")
            }
            InvocationError::Fault { reason } => write!(f, "module fault: {reason}"),
        }
    }
}

impl std::error::Error for InvocationError {}

impl InvocationError {
    /// Convenience constructor for [`InvocationError::Rejected`].
    pub fn rejected(reason: impl Into<String>) -> Self {
        InvocationError::Rejected {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`InvocationError::Fault`].
    pub fn fault(reason: impl Into<String>) -> Self {
        InvocationError::Fault {
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(InvocationError::Arity {
            expected: 2,
            got: 1
        }
        .to_string()
        .contains("expected 2"));
        assert!(InvocationError::rejected("no such accession")
            .to_string()
            .contains("no such accession"));
        assert!(InvocationError::Unavailable
            .to_string()
            .contains("no longer"));
        assert!(InvocationError::fault("boom").to_string().contains("boom"));
        assert!(InvocationError::BadInput {
            parameter: "seq".into(),
            reason: "not text".into()
        }
        .to_string()
        .contains("seq"));
    }
}
