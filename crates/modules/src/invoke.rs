//! Invocation outcomes.

use std::fmt;

/// Why a module invocation failed to terminate normally.
///
/// The generation heuristic (§3.2) cares about exactly one distinction:
/// *normal termination* (a `Vec<Value>` result) versus anything else — "when
/// generating data examples, we only consider the combinations that yield
/// normal termination of the module invocation". The variants exist so that
/// operators, workflow enactment and the repair verifier can report *why*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvocationError {
    /// Wrong number of input values supplied.
    Arity { expected: usize, got: usize },
    /// An input value does not conform to its parameter's structural type,
    /// or `Null` was fed to a mandatory parameter.
    BadInput { parameter: String, reason: String },
    /// The module executed but rejected the input combination (e.g. an
    /// accession that resolves to nothing, a sequence its algorithm cannot
    /// process). This is the "invalid combination" case of §3.2.
    Rejected { reason: String },
    /// The provider has withdrawn the module (workflow decay, §6).
    Unavailable,
    /// The module crashed on the inputs.
    Fault { reason: String },
}

impl fmt::Display for InvocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvocationError::Arity { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            InvocationError::BadInput { parameter, reason } => {
                write!(f, "bad value for input `{parameter}`: {reason}")
            }
            InvocationError::Rejected { reason } => {
                write!(f, "module rejected the inputs: {reason}")
            }
            InvocationError::Unavailable => {
                write!(f, "module is no longer supplied by its provider")
            }
            InvocationError::Fault { reason } => write!(f, "module fault: {reason}"),
        }
    }
}

impl std::error::Error for InvocationError {}

impl InvocationError {
    /// Convenience constructor for [`InvocationError::Rejected`].
    pub fn rejected(reason: impl Into<String>) -> Self {
        InvocationError::Rejected {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`InvocationError::Fault`].
    pub fn fault(reason: impl Into<String>) -> Self {
        InvocationError::Fault {
            reason: reason.into(),
        }
    }

    /// Whether the error describes a *state-dependent* failure that a later
    /// attempt may not reproduce.
    ///
    /// `Arity`, `BadInput` and `Rejected` are functions of the input vector
    /// alone — a deterministic module will fail the same way forever, so they
    /// are safe to memoize and pointless to retry. `Unavailable` depends on
    /// catalog/provider state (a withdrawn module can be restored, §6) and
    /// `Fault` models a crashed service call; both can succeed on a retry and
    /// must never be cached.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            InvocationError::Unavailable | InvocationError::Fault { .. }
        )
    }

    /// Whether the error is a deterministic function of the inputs — the
    /// complement of [`InvocationError::is_transient`].
    pub fn is_permanent(&self) -> bool {
        !self.is_transient()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(InvocationError::Arity {
            expected: 2,
            got: 1
        }
        .to_string()
        .contains("expected 2"));
        assert!(InvocationError::rejected("no such accession")
            .to_string()
            .contains("no such accession"));
        assert!(InvocationError::Unavailable
            .to_string()
            .contains("no longer"));
        assert!(InvocationError::fault("boom").to_string().contains("boom"));
        assert!(InvocationError::BadInput {
            parameter: "seq".into(),
            reason: "not text".into()
        }
        .to_string()
        .contains("seq"));
    }

    #[test]
    fn taxonomy_splits_state_dependent_from_deterministic() {
        assert!(InvocationError::Unavailable.is_transient());
        assert!(InvocationError::fault("timeout").is_transient());
        assert!(InvocationError::Arity {
            expected: 1,
            got: 0
        }
        .is_permanent());
        assert!(InvocationError::BadInput {
            parameter: "seq".into(),
            reason: "not text".into()
        }
        .is_permanent());
        assert!(InvocationError::rejected("no such accession").is_permanent());
    }
}
