//! Cross-pipeline invocation cache: one module invocation per distinct
//! `(module, input value vector)` across the whole process.
//!
//! In the paper's setting (§3.2) modules are remote, metered SOAP/REST
//! services, so the invocation is the dominant cost of every downstream
//! workload. The pipeline re-invokes the same module on the same value
//! vector many times over — generation retries, the matcher's aligned
//! generation at multiple value offsets, repair verification, workflow
//! re-enactment. An [`InvocationCache`] memoizes the full outcome (outputs
//! *or* error — modules are deterministic, so a `Rejected` is as cacheable
//! as a result vector) behind sharded locks, and guarantees that concurrent
//! readers racing on the same key trigger exactly one invocation.
//!
//! **Transient errors are never memoized.** `Unavailable` and `Fault` are
//! state-dependent (a withdrawn module can be restored; a crashed call can
//! succeed on retry — see [`InvocationError::is_transient`]), so memoizing
//! one would poison the key for the rest of the process. The cache hands
//! the transient outcome to the callers that raced on it, then forgets the
//! entry so the next lookup invokes afresh.

use crate::blackbox::BlackBox;
use crate::invoke::InvocationError;
use crate::module::ModuleId;
use dex_values::Value;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The memoized result of one invocation: the module's outputs, or the error
/// that prevented normal termination.
pub type InvocationOutcome = Result<Vec<Value>, InvocationError>;

/// Cache key: module identity plus the exact input value vector. The hash is
/// precomputed once (vectors can hold large flat-file texts) and reused by
/// both shard selection and the shard's `HashMap`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CacheKey {
    module: ModuleId,
    inputs: Vec<Value>,
    precomputed_hash: u64,
}

impl CacheKey {
    fn new(module: &ModuleId, inputs: &[Value]) -> CacheKey {
        let mut hasher = DefaultHasher::new();
        module.hash(&mut hasher);
        inputs.hash(&mut hasher);
        CacheKey {
            module: module.clone(),
            inputs: inputs.to_vec(),
            precomputed_hash: hasher.finish(),
        }
    }
}

impl Hash for CacheKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.precomputed_hash);
    }
}

/// One entry: a `OnceLock` cell so the first arrival invokes and every
/// concurrent arrival blocks on the same initialization instead of invoking
/// a duplicate.
type CacheCell = Arc<OnceLock<Arc<InvocationOutcome>>>;

/// One lock-sharded slice of the key space. FIFO insertion order is kept per
/// shard so a capacity bound can evict the oldest entries.
#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, CacheCell>,
    fifo: VecDeque<CacheKey>,
}

/// Snapshot of an [`InvocationCache`]'s behavior, serializable into run
/// reports (`TELEMETRY.json`, `BENCH_invocation.json`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvocationCacheStats {
    /// Lookups answered by an existing entry (including entries still being
    /// initialized by another thread — the caller waits, it never re-invokes).
    /// A waiter whose entry resolves to a transient outcome is counted under
    /// `transients` instead: the entry is forgotten immediately, so no
    /// invocation was durably saved.
    pub hits: u64,
    /// Lookups that created a fresh entry and invoked the module.
    pub misses: u64,
    /// Entries dropped by the capacity bound.
    pub evictions: u64,
    /// Transient outcomes handed through (and immediately forgotten) instead
    /// of being memoized.
    pub transients: u64,
    /// Entries currently held across all shards.
    pub entries: usize,
    /// Initialized entries currently holding a transient error — the
    /// invariant is that this is always `0` *at every instant*, not just at
    /// quiescence: transient entries are forgotten before their cell is
    /// published, so even a `stats()` racing with the failing invocation
    /// cannot observe one. Reported so callers (and the stress tests) can
    /// assert it mid-run.
    pub memoized_transients: usize,
}

impl InvocationCacheStats {
    /// Hit fraction in `[0, 1]`; `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Invocations avoided by the cache — one per hit.
    pub fn invocations_saved(&self) -> u64 {
        self.hits
    }
}

/// Process-global telemetry counters for cache traffic, interned once.
fn cache_counters() -> &'static (
    dex_telemetry::Counter,
    dex_telemetry::Counter,
    dex_telemetry::Counter,
    dex_telemetry::Counter,
) {
    static COUNTERS: OnceLock<(
        dex_telemetry::Counter,
        dex_telemetry::Counter,
        dex_telemetry::Counter,
        dex_telemetry::Counter,
    )> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        (
            dex_telemetry::counter("dex.invoke.cache.hits"),
            dex_telemetry::counter("dex.invoke.cache.misses"),
            dex_telemetry::counter("dex.invoke.cache.evictions"),
            dex_telemetry::counter("dex.invoke.cache.transients"),
        )
    })
}

/// A concurrency-safe memo of invocation outcomes keyed by
/// `(module id, input value vector)`.
///
/// * **Sharded**: keys hash to one of [`InvocationCache::SHARDS`] mutexed
///   maps, so the hot path never serializes on a global lock.
/// * **Exactly-once**: each entry is a `OnceLock`; when N threads race on a
///   missing key, one invokes and N−1 block on the cell, so a vector is
///   never invoked twice (see the `tests/invocation_cache.rs` concurrency
///   suite).
/// * **Bounded (optionally)**: `with_capacity` caps the total entry count;
///   the oldest entries of the fullest shard are evicted FIFO.
/// * **Transient-aware**: outcomes whose error
///   [`InvocationError::is_transient`] holds are handed through to the
///   racing callers and then *forgotten* — only successes and permanent
///   errors are memoized.
/// * **Observable**: per-cache atomic counters plus `dex.invoke.cache.*`
///   telemetry counters when the global subscriber is on.
pub struct InvocationCache {
    shards: Box<[Mutex<Shard>]>,
    /// Max entries per shard (`None` = unbounded).
    per_shard_capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    transients: AtomicU64,
}

impl Default for InvocationCache {
    fn default() -> Self {
        InvocationCache::new()
    }
}

impl InvocationCache {
    /// Number of lock shards (power of two; shard = hash low bits).
    pub const SHARDS: usize = 16;

    /// An unbounded cache.
    pub fn new() -> InvocationCache {
        InvocationCache::build(None)
    }

    /// A cache holding at most `capacity` entries (rounded up to a multiple
    /// of the shard count); the oldest entries are evicted first.
    pub fn with_capacity(capacity: usize) -> InvocationCache {
        InvocationCache::build(Some(capacity.div_ceil(Self::SHARDS).max(1)))
    }

    fn build(per_shard_capacity: Option<usize>) -> InvocationCache {
        let mut shards = Vec::with_capacity(Self::SHARDS);
        shards.resize_with(Self::SHARDS, || Mutex::new(Shard::default()));
        InvocationCache {
            shards: shards.into_boxed_slice(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            transients: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[(key.precomputed_hash as usize) & (Self::SHARDS - 1)]
    }

    /// Invokes `module` on `inputs` through the cache: the first call for a
    /// distinct `(module, inputs)` pair invokes the black box; every later
    /// (or concurrent) call returns the memoized outcome.
    ///
    /// The invocation itself runs *outside* the shard lock — only the cell
    /// lookup/insert is locked — so a slow remote module never blocks cache
    /// traffic for other keys, and concurrent misses on different keys
    /// proceed in parallel.
    pub fn invoke(&self, module: &dyn BlackBox, inputs: &[Value]) -> Arc<InvocationOutcome> {
        let key = CacheKey::new(&module.descriptor().id, inputs);
        let telemetry_on = dex_telemetry::is_enabled();
        let (cell, fresh) = {
            let mut shard = self.shard(&key).lock().expect("no poisoning");
            match shard.map.entry(key.clone()) {
                Entry::Occupied(occupied) => (Arc::clone(occupied.get()), false),
                Entry::Vacant(vacant) => {
                    let cell: CacheCell = Arc::new(OnceLock::new());
                    vacant.insert(Arc::clone(&cell));
                    shard.fifo.push_back(key);
                    if let Some(cap) = self.per_shard_capacity {
                        // One pass over the FIFO at most: entries whose
                        // invocation is still in flight are rotated to the
                        // back instead of evicted — dropping an uninitialized
                        // cell would let a later lookup re-invoke the same
                        // vector concurrently, breaking exactly-once. The
                        // bound can be exceeded transiently while every
                        // entry is in flight.
                        let mut attempts = shard.fifo.len();
                        while shard.fifo.len() > cap && attempts > 0 {
                            attempts -= 1;
                            let Some(old) = shard.fifo.pop_front() else {
                                break;
                            };
                            match shard.map.get(&old) {
                                Some(cell) if cell.get().is_none() => {
                                    shard.fifo.push_back(old);
                                }
                                Some(_) => {
                                    shard.map.remove(&old);
                                    self.evictions.fetch_add(1, Ordering::Relaxed);
                                    if telemetry_on {
                                        cache_counters().2.add(1);
                                    }
                                    if dex_telemetry::flight_on() {
                                        dex_telemetry::flight(
                                            dex_telemetry::FlightKind::CacheEviction,
                                            old.module.as_str(),
                                            "fifo eviction".to_string(),
                                            shard.map.len() as u64,
                                        );
                                    }
                                }
                                // The FIFO can hold keys whose entry a
                                // transient forget already removed — dropping
                                // the stale key is not an eviction.
                                None => {}
                            }
                        }
                    }
                    (cell, true)
                }
            }
        };
        if fresh {
            self.misses.fetch_add(1, Ordering::Relaxed);
            if telemetry_on {
                cache_counters().1.add(1);
            }
        }
        // `get_or_init` runs the invocation at most once per cell; racing
        // readers block here until the winner's outcome is published.
        let outcome = Arc::clone(cell.get_or_init(|| {
            let outcome = Arc::new(module.invoke(inputs));
            if dex_telemetry::flight_on() {
                let detail = match outcome.as_ref() {
                    Ok(values) => format!("ok ({} outputs)", values.len()),
                    Err(error) => format!("{error:?}"),
                };
                dex_telemetry::flight(
                    dex_telemetry::FlightKind::Invocation,
                    module.descriptor().id.as_str(),
                    detail,
                    0,
                );
            }
            if matches!(outcome.as_ref(), Err(e) if e.is_transient()) {
                // State-dependent failure: forget the entry *before* the
                // cell is published, so no concurrent `stats()` can ever
                // observe a memoized transient — the waiters blocked on
                // this cell still receive the outcome, but the map never
                // holds an initialized transient entry.
                self.forget_transient(module, inputs, &cell);
            }
            outcome
        }));
        let transient = matches!(outcome.as_ref(), Err(e) if e.is_transient());
        if transient {
            self.transients.fetch_add(1, Ordering::Relaxed);
            if telemetry_on {
                cache_counters().3.add(1);
            }
        }
        if !fresh {
            // Hits are counted only once the outcome is known memoizable: a
            // waiter that raced onto a cell which resolves transient did
            // not durably save an invocation (the entry is forgotten and
            // the next lookup re-invokes), so counting it as a hit would
            // inflate `hit_rate` under exactly the contention the batched
            // executor produces.
            if !transient {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if telemetry_on {
                    cache_counters().0.add(1);
                }
            }
        }
        outcome
    }

    /// Removes the entry for `(module, inputs)` if it still holds `cell` —
    /// a newer cell (inserted after an earlier forget, or after eviction)
    /// must not be clobbered by a stale transient outcome.
    fn forget_transient(&self, module: &dyn BlackBox, inputs: &[Value], cell: &CacheCell) {
        let key = CacheKey::new(&module.descriptor().id, inputs);
        let mut shard = self.shard(&key).lock().expect("no poisoning");
        if shard
            .map
            .get(&key)
            .is_some_and(|current| Arc::ptr_eq(current, cell))
        {
            shard.map.remove(&key);
            shard.fifo.retain(|k| k != &key);
        }
    }

    /// The memoized outcome for `(module, inputs)`, if present and
    /// initialized — never invokes.
    pub fn peek(&self, module: &ModuleId, inputs: &[Value]) -> Option<Arc<InvocationOutcome>> {
        let key = CacheKey::new(module, inputs);
        let shard = self.shard(&key).lock().expect("no poisoning");
        shard.map.get(&key).and_then(|cell| cell.get().cloned())
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("no poisoning").map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry; counters are kept (they describe lifetime traffic).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut shard = shard.lock().expect("no poisoning");
            shard.map.clear();
            shard.fifo.clear();
        }
    }

    /// Snapshot of the cache's lifetime behavior.
    pub fn stats(&self) -> InvocationCacheStats {
        let mut entries = 0;
        let mut memoized_transients = 0;
        for shard in self.shards.iter() {
            let shard = shard.lock().expect("no poisoning");
            entries += shard.map.len();
            memoized_transients += shard
                .map
                .values()
                .filter(|cell| {
                    matches!(cell.get().map(|o| o.as_ref()), Some(Err(e)) if e.is_transient())
                })
                .count();
        }
        InvocationCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            transients: self.transients.load(Ordering::Relaxed),
            entries,
            memoized_transients,
        }
    }

    /// Publishes this cache's stats as `dex.invoke.cache.*` gauges so they
    /// appear in `TELEMETRY.json` (no-op while telemetry is disabled —
    /// gauges are point-in-time, unlike the live hit/miss counters).
    pub fn publish_telemetry(&self) {
        if !dex_telemetry::is_enabled() {
            return;
        }
        let stats = self.stats();
        dex_telemetry::gauge_set("dex.invoke.cache.entries", stats.entries as i64);
        dex_telemetry::gauge_set(
            "dex.invoke.cache.hit_rate_pct",
            (stats.hit_rate() * 100.0) as i64,
        );
    }
}

/// Fans distinct invocations of one module out over `threads` scoped
/// threads, all sharing `cache`. `vectors` may contain duplicates — the
/// cache's exactly-once cell guarantees each distinct vector is invoked a
/// single time no matter how the scheduler interleaves the workers.
///
/// Returns one outcome per input vector, in input order (deterministic
/// regardless of scheduling). `threads <= 1` degrades to the plain
/// sequential loop with no thread spawned.
pub fn invoke_all_cached(
    module: &dyn BlackBox,
    vectors: &[Vec<Value>],
    cache: &InvocationCache,
    threads: usize,
) -> Vec<Arc<InvocationOutcome>> {
    let threads = threads.max(1).min(vectors.len());
    if threads <= 1 {
        return vectors.iter().map(|v| cache.invoke(module, v)).collect();
    }
    let mut results: Vec<Option<Arc<InvocationOutcome>>> = vec![None; vectors.len()];
    let chunk = vectors.len().div_ceil(threads);
    std::thread::scope(|scope| {
        // Input and output chunks are paired *before* spawning — each worker
        // owns a disjoint &mut result chunk and exactly its input range.
        for (vec_chunk, out_chunk) in vectors.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (vector, slot) in vec_chunk.iter().zip(out_chunk) {
                    *slot = Some(cache.invoke(module, vector));
                }
            });
        }
    });
    results.into_iter().map(|r| r.expect("filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackbox::FnModule;
    use crate::module::{ModuleDescriptor, ModuleKind};
    use crate::param::Parameter;
    use dex_values::StructuralType;
    use std::sync::atomic::AtomicUsize;

    fn counted_upper() -> (FnModule, Arc<AtomicUsize>) {
        let count = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&count);
        let module = FnModule::new(
            ModuleDescriptor::new(
                "op:upper",
                "ToUpper",
                ModuleKind::RestService,
                vec![Parameter::required(
                    "text",
                    StructuralType::Text,
                    "Document",
                )],
                vec![Parameter::required("out", StructuralType::Text, "Document")],
            ),
            move |inputs| {
                seen.fetch_add(1, Ordering::Relaxed);
                let text = inputs[0].as_text().expect("validated");
                if text.is_empty() {
                    return Err(InvocationError::rejected("empty"));
                }
                Ok(vec![Value::text(text.to_uppercase())])
            },
        );
        (module, count)
    }

    #[test]
    fn second_lookup_is_a_hit_and_skips_the_module() {
        let cache = InvocationCache::new();
        let (module, invoked) = counted_upper();
        let a = cache.invoke(&module, &[Value::text("abc")]);
        let b = cache.invoke(&module, &[Value::text("abc")]);
        assert_eq!(a.as_ref().as_ref().unwrap(), &vec![Value::text("ABC")]);
        assert!(Arc::ptr_eq(&a, &b), "same memoized outcome");
        assert_eq!(invoked.load(Ordering::Relaxed), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
        assert_eq!(stats.invocations_saved(), 1);
    }

    #[test]
    fn errors_are_memoized_too() {
        let cache = InvocationCache::new();
        let (module, invoked) = counted_upper();
        for _ in 0..3 {
            let out = cache.invoke(&module, &[Value::text("")]);
            assert!(matches!(
                out.as_ref(),
                Err(InvocationError::Rejected { .. })
            ));
        }
        assert_eq!(invoked.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn distinct_vectors_are_distinct_entries() {
        let cache = InvocationCache::new();
        let (module, invoked) = counted_upper();
        for text in ["a", "b", "c"] {
            cache.invoke(&module, &[Value::text(text)]);
        }
        assert_eq!(invoked.load(Ordering::Relaxed), 3);
        assert_eq!(cache.len(), 3);
        assert!(cache
            .peek(&module.descriptor().id, &[Value::text("b")])
            .is_some());
        assert!(cache
            .peek(&module.descriptor().id, &[Value::text("z")])
            .is_none());
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        // Capacity rounds up to one entry per shard; 40 distinct keys over 16
        // shards must evict at least one entry somewhere.
        let cache = InvocationCache::with_capacity(16);
        let (module, _) = counted_upper();
        for i in 0..40 {
            cache.invoke(&module, &[Value::text(format!("v{i}"))]);
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "evictions occurred");
        assert!(stats.entries <= 16, "bounded: {} entries", stats.entries);
        assert_eq!(stats.misses, 40);
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = InvocationCache::new();
        let (module, _) = counted_upper();
        cache.invoke(&module, &[Value::text("x")]);
        cache.invoke(&module, &[Value::text("x")]);
        cache.clear();
        assert!(cache.is_empty());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 0));
    }

    #[test]
    fn invoke_all_parallel_matches_sequential_order() {
        let (module, invoked) = counted_upper();
        let cache = InvocationCache::new();
        let vectors: Vec<Vec<Value>> = (0..50)
            .map(|i| vec![Value::text(format!("t{}", i % 7))])
            .collect();
        let results = invoke_all_cached(&module, &vectors, &cache, 8);
        assert_eq!(results.len(), vectors.len());
        for (vector, outcome) in vectors.iter().zip(&results) {
            let expected = vector[0].as_text().unwrap().to_uppercase();
            assert_eq!(
                outcome.as_ref().as_ref().unwrap(),
                &vec![Value::text(expected)]
            );
        }
        // 7 distinct vectors → exactly 7 invocations despite 50 requests
        // across 8 threads.
        assert_eq!(invoked.load(Ordering::Relaxed), 7);
    }

    /// A module that fails `Unavailable` while the flag is raised — the
    /// cache must re-invoke it every time instead of memoizing the outage.
    fn flagged_module() -> (
        FnModule,
        Arc<AtomicUsize>,
        Arc<std::sync::atomic::AtomicBool>,
    ) {
        let count = Arc::new(AtomicUsize::new(0));
        let down = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let seen = Arc::clone(&count);
        let outage = Arc::clone(&down);
        let module = FnModule::new(
            ModuleDescriptor::new(
                "op:flagged",
                "Flagged",
                ModuleKind::SoapService,
                vec![Parameter::required(
                    "text",
                    StructuralType::Text,
                    "Document",
                )],
                vec![Parameter::required("out", StructuralType::Text, "Document")],
            ),
            move |inputs| {
                seen.fetch_add(1, Ordering::Relaxed);
                if outage.load(Ordering::Relaxed) {
                    return Err(InvocationError::Unavailable);
                }
                Ok(vec![Value::text(
                    inputs[0].as_text().unwrap().to_uppercase(),
                )])
            },
        );
        (module, count, down)
    }

    #[test]
    fn transient_outcomes_are_passed_through_not_memoized() {
        let cache = InvocationCache::new();
        let (module, invoked, down) = flagged_module();
        down.store(true, Ordering::Relaxed);
        for _ in 0..3 {
            let out = cache.invoke(&module, &[Value::text("x")]);
            assert_eq!(out.as_ref(), &Err(InvocationError::Unavailable));
        }
        // Every lookup re-invoked — no poisoned cell.
        assert_eq!(invoked.load(Ordering::Relaxed), 3);
        let stats = cache.stats();
        assert_eq!(stats.transients, 3);
        assert_eq!(stats.memoized_transients, 0, "invariant: never stored");
        assert_eq!(stats.entries, 0);

        // Recovery: once the outage lifts, the success is memoized again.
        down.store(false, Ordering::Relaxed);
        let ok = cache.invoke(&module, &[Value::text("x")]);
        assert_eq!(ok.as_ref().as_ref().unwrap(), &vec![Value::text("X")]);
        cache.invoke(&module, &[Value::text("x")]);
        assert_eq!(invoked.load(Ordering::Relaxed), 4, "second lookup hit");
        assert_eq!(cache.stats().memoized_transients, 0);
    }

    #[test]
    fn transient_forget_does_not_clobber_a_newer_success() {
        // Sequence: outage outcome obtained, key re-invoked successfully,
        // then the stale forget path must leave the fresh entry in place.
        // (Exercised here sequentially; the Arc::ptr_eq guard is what makes
        // the interleaved version safe.)
        let cache = InvocationCache::new();
        let (module, invoked, down) = flagged_module();
        down.store(true, Ordering::Relaxed);
        let _ = cache.invoke(&module, &[Value::text("k")]);
        down.store(false, Ordering::Relaxed);
        let _ = cache.invoke(&module, &[Value::text("k")]);
        let _ = cache.invoke(&module, &[Value::text("k")]);
        assert_eq!(invoked.load(Ordering::Relaxed), 2, "outage + one success");
        assert_eq!(cache.stats().entries, 1);
    }
}
