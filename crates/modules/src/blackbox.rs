//! The black-box invocation boundary.

use crate::invoke::InvocationError;
use crate::module::ModuleDescriptor;
use dex_values::Value;
use std::sync::{Arc, OnceLock};

/// Process-wide invocation counters, resolved once.
fn invoke_counters() -> &'static (
    dex_telemetry::Counter,
    dex_telemetry::Counter,
    dex_telemetry::Counter,
) {
    static COUNTERS: OnceLock<(
        dex_telemetry::Counter,
        dex_telemetry::Counter,
        dex_telemetry::Counter,
    )> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        (
            dex_telemetry::counter("dex.invoke.total"),
            dex_telemetry::counter("dex.invoke.ok"),
            dex_telemetry::counter("dex.invoke.abnormal"),
        )
    })
}

/// A scientific module as the outside world sees it: an interface plus an
/// invoke button.
///
/// Implementations must be deterministic for a fixed input vector — the
/// services the paper characterizes are (retrievals, transformations,
/// analyses), and both data-example generation and the matcher compare
/// outputs across invocations.
pub trait BlackBox: Send + Sync {
    /// The module's externally visible interface.
    fn descriptor(&self) -> &ModuleDescriptor;

    /// Invokes the module on one value per declared input, in declaration
    /// order. Returns one value per declared output, or the error that
    /// prevented normal termination.
    fn invoke(&self, inputs: &[Value]) -> Result<Vec<Value>, InvocationError>;

    /// Advances the module's *simulated* clock by `ticks`.
    ///
    /// The pipeline has no wall clock: retry backoff (see `retry`) announces
    /// the ticks it would have slept through this hook, and fault wrappers
    /// (see `fault`) key flap schedules off the accumulated tick count.
    /// Modules without a notion of time ignore it — the default is a no-op.
    fn advance_ticks(&self, _ticks: u64) {}
}

/// Shared ownership handle for heterogeneous module populations.
pub type SharedModule = Arc<dyn BlackBox>;

/// A module implemented by a Rust closure, with input validation applied
/// before the closure runs and optional-parameter defaulting applied to
/// `Null` inputs.
pub struct FnModule {
    descriptor: ModuleDescriptor,
    #[allow(clippy::type_complexity)]
    body: Box<dyn Fn(&[Value]) -> Result<Vec<Value>, InvocationError> + Send + Sync>,
    /// Per-module (ok, abnormal) counters, interned on first enabled invoke.
    counters: OnceLock<(dex_telemetry::Counter, dex_telemetry::Counter)>,
}

impl FnModule {
    /// Wraps `body` as a module with the given interface.
    ///
    /// # Panics
    /// Panics if the descriptor fails [`ModuleDescriptor::validate`] — a
    /// malformed interface is a programming error in the universe builder,
    /// not a runtime condition.
    pub fn new(
        descriptor: ModuleDescriptor,
        body: impl Fn(&[Value]) -> Result<Vec<Value>, InvocationError> + Send + Sync + 'static,
    ) -> Self {
        if let Err(e) = descriptor.validate() {
            panic!("invalid module descriptor: {e}");
        }
        FnModule {
            descriptor,
            body: Box::new(body),
            counters: OnceLock::new(),
        }
    }

    /// Builds a [`SharedModule`] directly.
    pub fn shared(
        descriptor: ModuleDescriptor,
        body: impl Fn(&[Value]) -> Result<Vec<Value>, InvocationError> + Send + Sync + 'static,
    ) -> SharedModule {
        Arc::new(FnModule::new(descriptor, body))
    }
}

impl FnModule {
    fn invoke_inner(&self, inputs: &[Value]) -> Result<Vec<Value>, InvocationError> {
        let params = &self.descriptor.inputs;
        if inputs.len() != params.len() {
            return Err(InvocationError::Arity {
                expected: params.len(),
                got: inputs.len(),
            });
        }
        // Validate and apply defaults.
        let mut effective: Vec<Value> = Vec::with_capacity(inputs.len());
        for (param, value) in params.iter().zip(inputs) {
            if !param.admits(value) {
                return Err(InvocationError::BadInput {
                    parameter: param.name.clone(),
                    reason: if value.is_null() {
                        "null fed to a mandatory parameter".to_string()
                    } else {
                        format!("value does not conform to {}", param.structural)
                    },
                });
            }
            effective.push(if value.is_null() {
                param.default.clone()
            } else {
                value.clone()
            });
        }
        let outputs = (self.body)(&effective)?;
        debug_assert_eq!(
            outputs.len(),
            self.descriptor.outputs.len(),
            "module {} produced a wrong-arity output vector",
            self.descriptor.id
        );
        Ok(outputs)
    }
}

impl BlackBox for FnModule {
    fn descriptor(&self) -> &ModuleDescriptor {
        &self.descriptor
    }

    fn invoke(&self, inputs: &[Value]) -> Result<Vec<Value>, InvocationError> {
        let result = self.invoke_inner(inputs);
        // Per-module invocation accounting covers every termination path,
        // including input-validation rejections (§3.2's "abnormal
        // termination" is anything but a normal result vector). Counter
        // handles are cached so the cost per invoke is one atomic add.
        if dex_telemetry::is_enabled() {
            let (total, ok, abnormal) = invoke_counters();
            total.add(1);
            let (module_ok, module_abnormal) = self.counters.get_or_init(|| {
                let id = &self.descriptor.id;
                (
                    dex_telemetry::counter(&format!("dex.invoke.module.{id}.ok")),
                    dex_telemetry::counter(&format!("dex.invoke.module.{id}.abnormal")),
                )
            });
            if result.is_ok() {
                ok.add(1);
                module_ok.add(1);
            } else {
                abnormal.add(1);
                module_abnormal.add(1);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleKind;
    use crate::param::Parameter;
    use dex_values::StructuralType;

    fn upper_module() -> FnModule {
        FnModule::new(
            ModuleDescriptor::new(
                "op:upper",
                "ToUpper",
                ModuleKind::LocalProgram,
                vec![
                    Parameter::required("text", StructuralType::Text, "Document"),
                    Parameter::optional(
                        "suffix",
                        StructuralType::Text,
                        "Document",
                        Value::text("!"),
                    ),
                ],
                vec![Parameter::required("out", StructuralType::Text, "Document")],
            ),
            |inputs| {
                let text = inputs[0].as_text().expect("validated");
                let suffix = inputs[1].as_text().expect("defaulted");
                Ok(vec![Value::text(format!(
                    "{}{}",
                    text.to_uppercase(),
                    suffix
                ))])
            },
        )
    }

    #[test]
    fn happy_path_invocation() {
        let m = upper_module();
        let out = m.invoke(&[Value::text("abc"), Value::text("?")]).unwrap();
        assert_eq!(out, vec![Value::text("ABC?")]);
    }

    #[test]
    fn null_optional_uses_default() {
        let m = upper_module();
        let out = m.invoke(&[Value::text("abc"), Value::Null]).unwrap();
        assert_eq!(out, vec![Value::text("ABC!")]);
    }

    #[test]
    fn null_mandatory_rejected() {
        let m = upper_module();
        let err = m.invoke(&[Value::Null, Value::Null]).unwrap_err();
        assert!(matches!(err, InvocationError::BadInput { .. }));
    }

    #[test]
    fn arity_checked() {
        let m = upper_module();
        assert_eq!(
            m.invoke(&[Value::text("x")]).unwrap_err(),
            InvocationError::Arity {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn structural_mismatch_rejected() {
        let m = upper_module();
        let err = m.invoke(&[Value::Integer(3), Value::Null]).unwrap_err();
        assert!(matches!(err, InvocationError::BadInput { .. }));
    }

    #[test]
    #[should_panic(expected = "invalid module descriptor")]
    fn malformed_descriptor_panics() {
        let _ = FnModule::new(
            ModuleDescriptor::new("bad", "Bad", ModuleKind::LocalProgram, vec![], vec![]),
            |_| Ok(vec![]),
        );
    }
}
