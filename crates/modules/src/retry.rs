//! Retry with simulated-tick backoff for transient invocation failures.
//!
//! Remote services fail transiently all the time; the paper's pipeline only
//! keeps combinations that "terminate normally", so a transient
//! `Unavailable`/`Fault` must not be confused with a deterministic rejection.
//! A [`Retrier`] wraps the invocation call sites (direct or through an
//! [`InvocationCache`]) and re-attempts *transient* errors only, with
//! exponential backoff counted in simulated ticks — no wall clock, so
//! retried runs stay byte-for-byte reproducible. Backoff ticks are delivered
//! to the module via [`BlackBox::advance_ticks`], which lets deterministic
//! fault injectors (see [`crate::fault`]) run flap schedules against the
//! same clock the retrier advances.

use crate::blackbox::BlackBox;
use crate::cache::{InvocationCache, InvocationOutcome};
use dex_values::Value;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// How (and how much) to retry transient invocation failures.
///
/// Permanent errors (`Arity`, `BadInput`, `Rejected`) are never retried —
/// they are deterministic functions of the input vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per invocation, including the first (`>= 1`).
    pub max_attempts: u32,
    /// Simulated ticks of backoff before the first retry; doubles per retry.
    pub base_backoff_ticks: u64,
    /// Cap on the per-retry backoff.
    pub max_backoff_ticks: u64,
    /// Optional cap on the *total* retries a [`Retrier`] may spend across
    /// its lifetime — the per-run retry budget. `None` is unbounded.
    pub retry_budget: Option<u64>,
}

impl RetryPolicy {
    /// No retries at all: one attempt, zero backoff. Exactly the pipeline's
    /// pre-retry behavior — this is the default everywhere.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ticks: 0,
            max_backoff_ticks: 0,
            retry_budget: None,
        }
    }

    /// Retries transients up to `max_attempts` total attempts with 1→2→4…
    /// tick exponential backoff (capped at 8 ticks), unbounded budget.
    pub fn transient(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff_ticks: 1,
            max_backoff_ticks: 8,
            retry_budget: None,
        }
    }

    /// This policy with a lifetime retry budget.
    pub fn with_budget(mut self, budget: u64) -> RetryPolicy {
        self.retry_budget = Some(budget);
        self
    }

    /// Whether this policy can ever retry.
    pub fn retries_enabled(&self) -> bool {
        self.max_attempts > 1
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

/// Snapshot of a [`Retrier`]'s lifetime accounting, serializable into run
/// reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryStats {
    /// Invocation attempts made through the retrier (first tries included).
    pub attempts: u64,
    /// Attempts beyond the first for some input vector.
    pub retries: u64,
    /// Transient errors observed (whether or not a retry followed).
    pub transient_failures: u64,
    /// Invocations that returned a transient error after exhausting
    /// `max_attempts`.
    pub exhausted: u64,
    /// Retries suppressed because the budget was spent.
    pub budget_denied: u64,
    /// Total simulated backoff ticks accumulated.
    pub backoff_ticks: u64,
}

/// Process-global telemetry counters for retry traffic, interned once.
fn retry_counters() -> &'static (
    dex_telemetry::Counter,
    dex_telemetry::Counter,
    dex_telemetry::Counter,
    dex_telemetry::Counter,
) {
    static COUNTERS: OnceLock<(
        dex_telemetry::Counter,
        dex_telemetry::Counter,
        dex_telemetry::Counter,
        dex_telemetry::Counter,
    )> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        (
            dex_telemetry::counter("dex.retry.attempts"),
            dex_telemetry::counter("dex.retry.exhausted"),
            dex_telemetry::counter("dex.retry.budget_denied"),
            dex_telemetry::counter("dex.retry.backoff_ticks"),
        )
    })
}

/// Executes invocations under a [`RetryPolicy`], with thread-safe lifetime
/// accounting. One retrier is typically shared by a whole run (generation
/// fleet, match session, corpus build) so the retry budget is global to it.
#[derive(Debug, Default)]
pub struct Retrier {
    policy: RetryPolicy,
    attempts: AtomicU64,
    retries: AtomicU64,
    transient_failures: AtomicU64,
    exhausted: AtomicU64,
    budget_denied: AtomicU64,
    backoff_ticks: AtomicU64,
}

impl Retrier {
    /// A retrier executing `policy`.
    pub fn new(policy: RetryPolicy) -> Retrier {
        Retrier {
            policy,
            ..Retrier::default()
        }
    }

    /// A retrier that never retries (see [`RetryPolicy::none`]).
    pub fn none() -> Retrier {
        Retrier::new(RetryPolicy::none())
    }

    /// The policy this retrier executes.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Snapshot of lifetime accounting.
    pub fn stats(&self) -> RetryStats {
        RetryStats {
            attempts: self.attempts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            transient_failures: self.transient_failures.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
            budget_denied: self.budget_denied.load(Ordering::Relaxed),
            backoff_ticks: self.backoff_ticks.load(Ordering::Relaxed),
        }
    }

    /// Reserves one retry against the budget; returns `false` (and counts a
    /// denial) when the budget is spent.
    fn try_reserve_retry(&self) -> bool {
        match self.policy.retry_budget {
            None => {
                self.retries.fetch_add(1, Ordering::Relaxed);
                true
            }
            Some(budget) => {
                // Optimistic reserve: grab a slot, give it back if that
                // overshot the budget. Concurrent reservers can transiently
                // overshoot the counter but never the number of granted slots.
                let prev = self.retries.fetch_add(1, Ordering::Relaxed);
                if prev >= budget {
                    self.retries.fetch_sub(1, Ordering::Relaxed);
                    self.budget_denied.fetch_add(1, Ordering::Relaxed);
                    if dex_telemetry::is_enabled() {
                        retry_counters().2.add(1);
                    }
                    false
                } else {
                    true
                }
            }
        }
    }

    /// Backoff before retry number `retry` (1-based): exponential in the
    /// base, capped.
    fn backoff_for(&self, retry: u32) -> u64 {
        let base = self.policy.base_backoff_ticks;
        if base == 0 {
            return 0;
        }
        let doublings = (retry - 1).min(32);
        let raw = base.saturating_mul(1u64 << doublings);
        raw.min(self.policy.max_backoff_ticks.max(base))
    }

    /// Books one attempt and, if `outcome` is a transient error with retries
    /// (and budget) remaining, books the backoff and returns `Some(ticks)`
    /// to signal "retry after advancing the module clock by `ticks`".
    fn plan_retry(&self, outcome: &InvocationOutcome, retry_idx: u32) -> Option<u64> {
        self.attempts.fetch_add(1, Ordering::Relaxed);
        let telemetry_on = dex_telemetry::is_enabled();
        if telemetry_on {
            retry_counters().0.add(1);
        }
        let transient = matches!(outcome, Err(e) if e.is_transient());
        if !transient {
            return None;
        }
        self.transient_failures.fetch_add(1, Ordering::Relaxed);
        if retry_idx + 1 >= self.policy.max_attempts {
            self.exhausted.fetch_add(1, Ordering::Relaxed);
            if telemetry_on {
                retry_counters().1.add(1);
            }
            return None;
        }
        if !self.try_reserve_retry() {
            return None;
        }
        let ticks = self.backoff_for(retry_idx + 1);
        self.backoff_ticks.fetch_add(ticks, Ordering::Relaxed);
        if telemetry_on && ticks > 0 {
            retry_counters().3.add(ticks);
        }
        Some(ticks)
    }

    /// Books the causal record of one scheduled retry: lazily opens the
    /// invocation-level span (so the healthy path never allocates one) and
    /// records a flight event. Subsequent attempts then open `retry.attempt`
    /// spans that nest under `invoke.retrying`.
    fn note_retry(
        &self,
        module: &dyn BlackBox,
        invoke_span: &mut Option<dex_telemetry::SpanGuard>,
        retry_idx: u32,
        ticks: u64,
    ) {
        if !dex_telemetry::is_enabled() {
            return;
        }
        if invoke_span.is_none() {
            *invoke_span = Some(dex_telemetry::span("invoke.retrying"));
        }
        if dex_telemetry::flight_on() {
            dex_telemetry::flight(
                dex_telemetry::FlightKind::Retry,
                module.descriptor().id.as_str(),
                format!("transient failure; backing off {ticks} ticks"),
                (retry_idx + 1) as u64,
            );
        }
    }

    /// Records the flight post-mortem entry for a transient error that
    /// survived every attempt (or was denied by the budget).
    fn note_exhausted(&self, module: &dyn BlackBox, outcome: &InvocationOutcome) {
        let Err(error) = outcome else { return };
        if error.is_transient() && dex_telemetry::flight_on() {
            dex_telemetry::flight(
                dex_telemetry::FlightKind::RetryExhausted,
                module.descriptor().id.as_str(),
                format!("{error:?}"),
                0,
            );
        }
    }

    /// Invokes `module` directly, retrying transient failures per the
    /// policy. The final outcome (success, permanent error, or the transient
    /// error that survived every attempt) is returned.
    pub fn invoke(&self, module: &dyn BlackBox, inputs: &[Value]) -> InvocationOutcome {
        let mut retry_idx = 0u32;
        let mut invoke_span = None;
        loop {
            let outcome = {
                let _attempt = invoke_span
                    .as_ref()
                    .map(|_| dex_telemetry::span("retry.attempt"));
                module.invoke(inputs)
            };
            match self.plan_retry(&outcome, retry_idx) {
                Some(ticks) => {
                    self.note_retry(module, &mut invoke_span, retry_idx, ticks);
                    module.advance_ticks(ticks);
                    retry_idx += 1;
                }
                None => {
                    if retry_idx > 0 {
                        self.note_exhausted(module, &outcome);
                    }
                    return outcome;
                }
            }
        }
    }

    /// Invokes `module` through `cache`, retrying transient failures.
    ///
    /// The cache never memoizes transients (see
    /// [`InvocationCache::invoke`]), so each retry reaches the module; a
    /// success or permanent error is memoized as usual and ends the loop.
    pub fn invoke_cached(
        &self,
        cache: &InvocationCache,
        module: &dyn BlackBox,
        inputs: &[Value],
    ) -> Arc<InvocationOutcome> {
        let mut retry_idx = 0u32;
        let mut invoke_span = None;
        loop {
            let outcome = {
                let _attempt = invoke_span
                    .as_ref()
                    .map(|_| dex_telemetry::span("retry.attempt"));
                cache.invoke(module, inputs)
            };
            match self.plan_retry(&outcome, retry_idx) {
                Some(ticks) => {
                    self.note_retry(module, &mut invoke_span, retry_idx, ticks);
                    module.advance_ticks(ticks);
                    retry_idx += 1;
                }
                None => {
                    if retry_idx > 0 {
                        self.note_exhausted(module, &outcome);
                    }
                    return outcome;
                }
            }
        }
    }
}

/// Fans invocations of one module out over `threads` scoped threads, each
/// routed through `retrier` and (when given) `cache`. The retrying
/// counterpart of [`crate::invoke_all_cached`]: one outcome per input
/// vector, in input order, duplicates invoked at most once when cached.
pub fn invoke_all_retrying(
    module: &dyn BlackBox,
    vectors: &[Vec<Value>],
    cache: Option<&InvocationCache>,
    retrier: &Retrier,
    threads: usize,
) -> Vec<Arc<InvocationOutcome>> {
    let one = |vector: &Vec<Value>| match cache {
        Some(cache) => retrier.invoke_cached(cache, module, vector),
        None => Arc::new(retrier.invoke(module, vector)),
    };
    let threads = threads.max(1).min(vectors.len());
    if threads <= 1 {
        return vectors.iter().map(one).collect();
    }
    let mut results: Vec<Option<Arc<InvocationOutcome>>> = vec![None; vectors.len()];
    let chunk = vectors.len().div_ceil(threads);
    let ctx = dex_telemetry::current_context();
    std::thread::scope(|scope| {
        // Input and output chunks are paired *before* spawning — each worker
        // owns a disjoint &mut result chunk and exactly its input range.
        for (vec_chunk, out_chunk) in vectors.chunks(chunk).zip(results.chunks_mut(chunk)) {
            let one = &one;
            scope.spawn(move || {
                let _worker = ctx.span("invoke.wave_worker");
                for (vector, slot) in vec_chunk.iter().zip(out_chunk) {
                    *slot = Some(one(vector));
                }
            });
        }
    });
    results.into_iter().map(|r| r.expect("filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackbox::FnModule;
    use crate::invoke::InvocationError;
    use crate::module::{ModuleDescriptor, ModuleKind};
    use crate::param::Parameter;
    use dex_values::StructuralType;
    use std::sync::atomic::AtomicUsize;

    /// A module that fails transiently the first `flaky` times per distinct
    /// input, then succeeds forever.
    fn flaky_upper(flaky: usize) -> (FnModule, Arc<AtomicUsize>) {
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&calls);
        let module = FnModule::new(
            ModuleDescriptor::new(
                "op:flaky",
                "Flaky",
                ModuleKind::SoapService,
                vec![Parameter::required("in", StructuralType::Text, "Document")],
                vec![Parameter::required("out", StructuralType::Text, "Document")],
            ),
            move |inputs| {
                let n = seen.fetch_add(1, Ordering::Relaxed);
                if n < flaky {
                    return Err(InvocationError::fault("transient blip"));
                }
                Ok(vec![Value::text(
                    inputs[0].as_text().unwrap().to_uppercase(),
                )])
            },
        );
        (module, calls)
    }

    #[test]
    fn transient_failures_are_retried_to_success() {
        let (module, calls) = flaky_upper(2);
        let retrier = Retrier::new(RetryPolicy::transient(4));
        let out = retrier.invoke(&module, &[Value::text("ok")]);
        assert_eq!(out.unwrap(), vec![Value::text("OK")]);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        let stats = retrier.stats();
        assert_eq!(stats.attempts, 3);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.transient_failures, 2);
        assert_eq!(stats.exhausted, 0);
        // Exponential backoff: 1 + 2 simulated ticks.
        assert_eq!(stats.backoff_ticks, 3);
    }

    #[test]
    fn permanent_errors_are_never_retried() {
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&calls);
        let module = FnModule::new(
            ModuleDescriptor::new(
                "op:reject",
                "Reject",
                ModuleKind::RestService,
                vec![Parameter::required("in", StructuralType::Text, "Document")],
                vec![Parameter::required("out", StructuralType::Text, "Document")],
            ),
            move |_| {
                seen.fetch_add(1, Ordering::Relaxed);
                Err(InvocationError::rejected("always"))
            },
        );
        let retrier = Retrier::new(RetryPolicy::transient(5));
        let out = retrier.invoke(&module, &[Value::text("x")]);
        assert!(matches!(out, Err(InvocationError::Rejected { .. })));
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(retrier.stats().retries, 0);
    }

    #[test]
    fn exhaustion_returns_the_transient_error() {
        let (module, calls) = flaky_upper(usize::MAX);
        let retrier = Retrier::new(RetryPolicy::transient(3));
        let out = retrier.invoke(&module, &[Value::text("x")]);
        assert!(matches!(out, Err(InvocationError::Fault { .. })));
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        let stats = retrier.stats();
        assert_eq!(stats.exhausted, 1);
        assert_eq!(stats.retries, 2);
    }

    #[test]
    fn budget_caps_total_retries_across_invocations() {
        let (module, _) = flaky_upper(usize::MAX);
        let retrier = Retrier::new(RetryPolicy::transient(10).with_budget(3));
        for i in 0..4 {
            let _ = retrier.invoke(&module, &[Value::text(format!("v{i}"))]);
        }
        let stats = retrier.stats();
        assert_eq!(stats.retries, 3, "budget granted exactly 3 retries");
        assert!(stats.budget_denied >= 1, "{stats:?}");
    }

    #[test]
    fn none_policy_is_single_attempt() {
        let (module, calls) = flaky_upper(usize::MAX);
        let retrier = Retrier::none();
        let out = retrier.invoke(&module, &[Value::text("x")]);
        assert!(out.is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert!(!retrier.policy().retries_enabled());
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let retrier = Retrier::new(RetryPolicy {
            max_attempts: 10,
            base_backoff_ticks: 2,
            max_backoff_ticks: 10,
            retry_budget: None,
        });
        assert_eq!(retrier.backoff_for(1), 2);
        assert_eq!(retrier.backoff_for(2), 4);
        assert_eq!(retrier.backoff_for(3), 8);
        assert_eq!(retrier.backoff_for(4), 10, "capped");
        assert_eq!(retrier.backoff_for(60), 10, "shift saturates");
    }
}
