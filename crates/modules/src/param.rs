//! Module parameters: structural + semantic annotation.

use dex_values::{StructuralType, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A module input or output parameter.
///
/// Carries the two annotations of the paper's model: the structural type
/// `str(i)` (grounding) and the semantic type `sem(i)` — the *name* of a
/// concept in the domain ontology used for annotation. The name is resolved
/// against an [`Ontology`](dex_ontology::Ontology) at partitioning time;
/// storing names rather than ids keeps serialized registries stable across
/// ontology rebuilds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Parameter {
    /// Parameter name, unique within its direction (inputs or outputs).
    pub name: String,
    /// Structural type `str(i)`.
    pub structural: StructuralType,
    /// Semantic type `sem(i)`: a concept name in the annotation ontology.
    pub semantic: String,
    /// Whether the parameter may be fed `Null` ("a module m may have optional
    /// parameters", §2). When `true`, `default` is used by enactment when no
    /// value is wired in.
    pub optional: bool,
    /// Default value for an optional parameter (`Value::Null` when absent).
    pub default: Value,
}

impl Parameter {
    /// A mandatory parameter.
    pub fn required(
        name: impl Into<String>,
        structural: StructuralType,
        semantic: impl Into<String>,
    ) -> Self {
        Parameter {
            name: name.into(),
            structural,
            semantic: semantic.into(),
            optional: false,
            default: Value::Null,
        }
    }

    /// An optional parameter with a default.
    pub fn optional(
        name: impl Into<String>,
        structural: StructuralType,
        semantic: impl Into<String>,
        default: Value,
    ) -> Self {
        Parameter {
            name: name.into(),
            structural,
            semantic: semantic.into(),
            optional: true,
            default,
        }
    }

    /// Whether `value` may legally feed this parameter: `Null` requires the
    /// parameter to be optional; anything else must conform structurally.
    pub fn admits(&self, value: &Value) -> bool {
        if value.is_null() {
            self.optional
        } else {
            value.conforms_to(&self.structural)
        }
    }

    /// Structural + semantic compatibility with another parameter, as needed
    /// by the 1-to-1 parameter mapping of the matcher (§6): same semantic
    /// domain and same structure.
    pub fn compatible(&self, other: &Parameter) -> bool {
        self.structural == other.structural && self.semantic == other.semantic
    }
}

impl fmt::Display for Parameter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({}{})",
            self.name,
            self.semantic,
            self.structural,
            if self.optional { ", optional" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_param_rejects_null() {
        let p = Parameter::required("seq", StructuralType::Text, "ProteinSequence");
        assert!(!p.admits(&Value::Null));
        assert!(p.admits(&Value::text("MKV")));
        assert!(!p.admits(&Value::Integer(1)));
    }

    #[test]
    fn optional_param_admits_null() {
        let p = Parameter::optional(
            "tol",
            StructuralType::Float,
            "ErrorTolerance",
            Value::Float(1.0),
        );
        assert!(p.admits(&Value::Null));
        assert!(p.admits(&Value::Float(0.5)));
        assert!(p.admits(&Value::Integer(2))); // integer widens to float
        assert!(!p.admits(&Value::text("x")));
    }

    #[test]
    fn compatibility_requires_both_annotations() {
        let a = Parameter::required("x", StructuralType::Text, "ProteinSequence");
        let b = Parameter::required("y", StructuralType::Text, "ProteinSequence");
        let c = Parameter::required("x", StructuralType::Text, "DNASequence");
        let d = Parameter::required("x", StructuralType::Integer, "ProteinSequence");
        assert!(a.compatible(&b), "names may differ");
        assert!(!a.compatible(&c));
        assert!(!a.compatible(&d));
    }

    #[test]
    fn display_mentions_annotations() {
        let p = Parameter::required("seq", StructuralType::Text, "ProteinSequence");
        let s = p.to_string();
        assert!(s.contains("seq") && s.contains("ProteinSequence") && s.contains("Text"));
    }
}
