//! The volatile population of modules supplied by third-party providers.

use crate::blackbox::SharedModule;
use crate::invoke::InvocationError;
use crate::module::{ModuleDescriptor, ModuleId};
use dex_values::Value;
use std::collections::{BTreeMap, BTreeSet};

/// A catalog of modules keyed by id, with provider-withdrawal tracking.
///
/// This models the world the paper's §6 describes: "there is no agreement
/// that compels the providers to continuously supply their modules". Code
/// that *uses* modules goes through [`ModuleCatalog::invoke`], which fails
/// with [`InvocationError::Unavailable`] once a module has been withdrawn —
/// even though the descriptor may still be known from old registries.
///
/// A `BTreeMap` keeps iteration deterministic, which the experiment harness
/// relies on for reproducible tables.
#[derive(Default)]
pub struct ModuleCatalog {
    modules: BTreeMap<ModuleId, SharedModule>,
    withdrawn: BTreeSet<ModuleId>,
}

impl ModuleCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a module. Replaces any previous module with the same id and
    /// clears its withdrawn flag (a provider re-publishing a service).
    pub fn register(&mut self, module: SharedModule) {
        let id = module.descriptor().id.clone();
        dex_telemetry::event!(
            dex_telemetry::Level::Debug,
            "catalog",
            "registered module `{id}`"
        );
        self.withdrawn.remove(&id);
        self.modules.insert(id, module);
    }

    /// Number of registered modules (including withdrawn ones).
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Marks a module as withdrawn by its provider. Returns `false` when the
    /// id is unknown.
    pub fn withdraw(&mut self, id: &ModuleId) -> bool {
        if self.modules.contains_key(id) {
            dex_telemetry::event!(
                dex_telemetry::Level::Info,
                "catalog",
                "module `{id}` withdrawn by its provider"
            );
            self.withdrawn.insert(id.clone());
            true
        } else {
            false
        }
    }

    /// Restores a withdrawn module (provider resumed supply).
    pub fn restore(&mut self, id: &ModuleId) -> bool {
        let restored = self.withdrawn.remove(id);
        if restored {
            dex_telemetry::event!(
                dex_telemetry::Level::Info,
                "catalog",
                "module `{id}` supply restored"
            );
        }
        restored
    }

    /// Whether the module exists and is currently supplied.
    pub fn is_available(&self, id: &ModuleId) -> bool {
        self.modules.contains_key(id) && !self.withdrawn.contains(id)
    }

    /// The module's interface, if known — descriptors survive withdrawal
    /// (registries keep stale metadata; only invocation dies).
    pub fn descriptor(&self, id: &ModuleId) -> Option<&ModuleDescriptor> {
        self.modules.get(id).map(|m| m.descriptor())
    }

    /// The module handle, only while available.
    pub fn get(&self, id: &ModuleId) -> Option<&SharedModule> {
        if self.withdrawn.contains(id) {
            None
        } else {
            self.modules.get(id)
        }
    }

    /// Invokes a module through the availability gate.
    pub fn invoke(&self, id: &ModuleId, inputs: &[Value]) -> Result<Vec<Value>, InvocationError> {
        if self.withdrawn.contains(id) || !self.modules.contains_key(id) {
            dex_telemetry::counter_add("dex.catalog.unavailable_invocations", 1);
            return Err(InvocationError::Unavailable);
        }
        self.modules[id].invoke(inputs)
    }

    /// Ids of all currently available modules, in deterministic order.
    pub fn available_ids(&self) -> Vec<ModuleId> {
        self.modules
            .keys()
            .filter(|id| !self.withdrawn.contains(*id))
            .cloned()
            .collect()
    }

    /// Ids of withdrawn modules, in deterministic order.
    pub fn withdrawn_ids(&self) -> Vec<ModuleId> {
        self.withdrawn.iter().cloned().collect()
    }

    /// Iterates `(id, module)` pairs of available modules.
    pub fn iter_available(&self) -> impl Iterator<Item = (&ModuleId, &SharedModule)> {
        self.modules
            .iter()
            .filter(|(id, _)| !self.withdrawn.contains(*id))
    }

    /// Replaces every registered module — withdrawn ones included — with
    /// `wrap(id, module)`, preserving ids and withdrawal flags. This is how
    /// a fault injector (see [`crate::fault::FaultInjector`]) decorates a
    /// whole population without re-plumbing the universe builder.
    ///
    /// # Panics
    /// Panics if a wrapper changes the module's id: the catalog key, cache
    /// keys and experiment tables all assume the decorated module is
    /// externally indistinguishable from the original.
    pub fn wrap_modules(&mut self, mut wrap: impl FnMut(&ModuleId, SharedModule) -> SharedModule) {
        let ids: Vec<ModuleId> = self.modules.keys().cloned().collect();
        for id in ids {
            let module = self.modules.get(&id).expect("listed above").clone();
            let wrapped = wrap(&id, module);
            assert_eq!(
                wrapped.descriptor().id,
                id,
                "module wrappers must preserve the module id"
            );
            self.modules.insert(id, wrapped);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackbox::FnModule;
    use crate::module::ModuleKind;
    use crate::param::Parameter;
    use dex_values::StructuralType;

    fn echo(id: &str) -> SharedModule {
        FnModule::shared(
            ModuleDescriptor::new(
                id,
                format!("Echo-{id}"),
                ModuleKind::RestService,
                vec![Parameter::required("in", StructuralType::Text, "Document")],
                vec![Parameter::required("out", StructuralType::Text, "Document")],
            ),
            |inputs| Ok(vec![inputs[0].clone()]),
        )
    }

    #[test]
    fn register_and_invoke() {
        let mut cat = ModuleCatalog::new();
        cat.register(echo("a"));
        let id = ModuleId::from("a");
        assert!(cat.is_available(&id));
        let out = cat.invoke(&id, &[Value::text("hi")]).unwrap();
        assert_eq!(out, vec![Value::text("hi")]);
    }

    #[test]
    fn withdrawal_blocks_invocation_but_keeps_descriptor() {
        let mut cat = ModuleCatalog::new();
        cat.register(echo("a"));
        let id = ModuleId::from("a");
        assert!(cat.withdraw(&id));
        assert!(!cat.is_available(&id));
        assert_eq!(
            cat.invoke(&id, &[Value::text("hi")]).unwrap_err(),
            InvocationError::Unavailable
        );
        assert!(cat.descriptor(&id).is_some());
        assert!(cat.get(&id).is_none());
    }

    #[test]
    fn restore_resumes_supply() {
        let mut cat = ModuleCatalog::new();
        cat.register(echo("a"));
        let id = ModuleId::from("a");
        cat.withdraw(&id);
        assert!(cat.restore(&id));
        assert!(cat.is_available(&id));
        assert!(!cat.restore(&id), "double restore is a no-op");
    }

    #[test]
    fn unknown_module_is_unavailable() {
        let cat = ModuleCatalog::new();
        let id = ModuleId::from("ghost");
        assert!(!cat.is_available(&id));
        assert_eq!(
            cat.invoke(&id, &[]).unwrap_err(),
            InvocationError::Unavailable
        );
        let mut cat = cat;
        assert!(!cat.withdraw(&id));
    }

    #[test]
    fn id_listings_are_sorted_and_partitioned() {
        let mut cat = ModuleCatalog::new();
        for id in ["c", "a", "b"] {
            cat.register(echo(id));
        }
        cat.withdraw(&ModuleId::from("b"));
        assert_eq!(
            cat.available_ids(),
            vec![ModuleId::from("a"), ModuleId::from("c")]
        );
        assert_eq!(cat.withdrawn_ids(), vec![ModuleId::from("b")]);
        assert_eq!(cat.len(), 3);
        assert_eq!(cat.iter_available().count(), 2);
    }

    #[test]
    fn reregistration_clears_withdrawal() {
        let mut cat = ModuleCatalog::new();
        cat.register(echo("a"));
        let id = ModuleId::from("a");
        cat.withdraw(&id);
        cat.register(echo("a"));
        assert!(cat.is_available(&id));
    }

    #[test]
    fn wrap_modules_preserves_ids_and_withdrawal() {
        use crate::fault::{FaultInjector, FaultPlan};
        let mut cat = ModuleCatalog::new();
        for id in ["a", "b"] {
            cat.register(echo(id));
        }
        cat.withdraw(&ModuleId::from("b"));
        let injector = FaultInjector::new(FaultPlan::none(1));
        cat.wrap_modules(|_, m| injector.wrap(m));
        assert!(cat.is_available(&ModuleId::from("a")));
        assert!(!cat.is_available(&ModuleId::from("b")), "flag survives");
        let out = cat
            .invoke(&ModuleId::from("a"), &[Value::text("hi")])
            .unwrap();
        assert_eq!(out, vec![Value::text("hi")]);
        assert_eq!(injector.stats().invocations, 1, "wrapper is in the path");
    }
}
