//! Concurrency contract of the shared [`InvocationCache`]: under scoped
//! threads hammering the same key set, every distinct input vector is
//! invoked **exactly once** — racing readers block on the winner's cell
//! instead of invoking a duplicate — and every reader observes the same
//! memoized outcome.

use dex_modules::{
    invoke_all_cached, BlackBox, FnModule, InvocationCache, InvocationError, ModuleCatalog,
    ModuleDescriptor, ModuleKind, Parameter, Retrier, RetryPolicy, SharedModule,
};
use dex_values::{StructuralType, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex, RwLock};

/// A module that records how often each distinct input was invoked, with an
/// artificial stall to widen the race window.
fn counting_module(stall: std::time::Duration) -> (FnModule, Arc<Mutex<HashMap<String, usize>>>) {
    let counts: Arc<Mutex<HashMap<String, usize>>> = Arc::default();
    let seen = Arc::clone(&counts);
    let module = FnModule::new(
        ModuleDescriptor::new(
            "op:counted",
            "Counted",
            ModuleKind::SoapService,
            vec![Parameter::required("in", StructuralType::Text, "Document")],
            vec![Parameter::required("out", StructuralType::Text, "Document")],
        ),
        move |inputs| {
            let text = inputs[0].as_text().expect("text input").to_string();
            *seen.lock().unwrap().entry(text.clone()).or_insert(0) += 1;
            std::thread::sleep(stall);
            if text.ends_with('!') {
                return Err(InvocationError::rejected("bang"));
            }
            Ok(vec![Value::text(text.to_uppercase())])
        },
    );
    (module, counts)
}

#[test]
fn racing_threads_never_double_invoke_a_vector() {
    let (module, counts) = counting_module(std::time::Duration::from_millis(2));
    let cache = InvocationCache::new();
    let vectors: Vec<Vec<Value>> = (0..24)
        .map(|i| {
            // Every third vector is a rejection — errors must be
            // exactly-once memoized like successes.
            if i % 3 == 0 {
                vec![Value::text(format!("v{i}!"))]
            } else {
                vec![Value::text(format!("v{i}"))]
            }
        })
        .collect();

    let threads = 8;
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let barrier = &barrier;
            let cache = &cache;
            let module = &module;
            let vectors = &vectors;
            scope.spawn(move || {
                // All workers start together and walk the key set from
                // different offsets, maximizing same-key collisions.
                barrier.wait();
                for k in 0..vectors.len() {
                    let vector = &vectors[(k + t * 3) % vectors.len()];
                    let outcome = cache.invoke(module, vector);
                    let text = vector[0].as_text().unwrap();
                    match outcome.as_ref() {
                        Ok(out) => assert_eq!(out[0].as_text().unwrap(), text.to_uppercase()),
                        Err(_) => assert!(text.ends_with('!')),
                    }
                }
            });
        }
    });

    let counts = counts.lock().unwrap();
    assert_eq!(counts.len(), vectors.len(), "every vector was invoked");
    for (text, count) in counts.iter() {
        assert_eq!(*count, 1, "vector {text} was invoked {count} times");
    }
    let stats = cache.stats();
    assert_eq!(stats.misses as usize, vectors.len());
    assert_eq!(
        (stats.hits + stats.misses) as usize,
        threads * vectors.len(),
        "every lookup was counted"
    );
    assert_eq!(stats.entries, vectors.len());
    assert_eq!(stats.evictions, 0);
}

#[test]
fn racing_readers_share_the_winners_outcome() {
    let (module, counts) = counting_module(std::time::Duration::from_millis(5));
    let cache = InvocationCache::new();
    let vector = vec![Value::text("contested")];
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let cache = &cache;
                let module = &module;
                let vector = &vector;
                scope.spawn(move || cache.invoke(module, vector))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // One invocation, and all sixteen readers hold the same Arc.
    assert_eq!(counts.lock().unwrap()["contested"], 1);
    for outcome in &outcomes[1..] {
        assert!(Arc::ptr_eq(outcome, &outcomes[0]));
    }
}

#[test]
fn parallel_executor_is_exactly_once_across_duplicate_heavy_input() {
    let (module, counts) = counting_module(std::time::Duration::ZERO);
    let cache = InvocationCache::new();
    // 96 requests over 8 distinct vectors, fanned over 6 threads.
    let vectors: Vec<Vec<Value>> = (0..96)
        .map(|i| vec![Value::text(format!("d{}", i % 8))])
        .collect();
    let outcomes = invoke_all_cached(&module, &vectors, &cache, 6);
    assert_eq!(outcomes.len(), vectors.len());
    for (vector, outcome) in vectors.iter().zip(&outcomes) {
        let expected = vector[0].as_text().unwrap().to_uppercase();
        assert_eq!(
            outcome.as_ref().as_ref().unwrap(),
            &vec![Value::text(expected)]
        );
    }
    let counts = counts.lock().unwrap();
    assert_eq!(counts.len(), 8);
    assert!(counts.values().all(|&c| c == 1), "{counts:?}");
}

/// The batched blocked executor's access pattern (ISSUE 6): workers claim
/// *chunks* of a worklist off an atomic cursor, keys repeat across chunks,
/// and every key faults transiently on its first attempt. While the run is
/// in flight, a sampler thread polls `stats()` continuously — the
/// `memoized_transients == 0` invariant must hold at every instant, not
/// just at quiescence (transient entries are forgotten *before* their cell
/// publishes), and the hit/miss/transient ledger must balance exactly.
#[test]
fn bucket_chunked_access_keeps_stats_invariants_mid_run() {
    const KEYS: usize = 12;
    const CHUNK: usize = 5;
    let attempts: Arc<Mutex<HashMap<String, usize>>> = Arc::default();
    let seen = Arc::clone(&attempts);
    let module = FnModule::new(
        ModuleDescriptor::new(
            "op:first-try-faults",
            "FirstTryFaults",
            ModuleKind::SoapService,
            vec![Parameter::required("in", StructuralType::Text, "Document")],
            vec![Parameter::required("out", StructuralType::Text, "Document")],
        ),
        move |inputs| {
            let text = inputs[0].as_text().unwrap().to_string();
            let attempt = {
                let mut seen = seen.lock().unwrap();
                let n = seen.entry(text.clone()).or_insert(0);
                *n += 1;
                *n
            };
            std::thread::sleep(std::time::Duration::from_micros(300));
            if attempt == 1 {
                return Err(InvocationError::fault("cold start"));
            }
            Ok(vec![Value::text(text.to_uppercase())])
        },
    );

    // A worklist like the executor's comparable-pair list: every key appears
    // many times, interleaved so consecutive chunks collide on keys.
    let worklist: Vec<Vec<Value>> = (0..KEYS * 10)
        .map(|i| vec![Value::text(format!("k{}", i % KEYS))])
        .collect();
    let cache = InvocationCache::new();
    let retrier = Retrier::new(RetryPolicy::transient(4));
    let cursor = AtomicUsize::new(0);
    let done = std::sync::atomic::AtomicBool::new(false);
    let threads = 6;
    let barrier = Barrier::new(threads + 1);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let cache = &cache;
            let retrier = &retrier;
            let module = &module;
            let worklist = &worklist;
            let cursor = &cursor;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                loop {
                    let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                    if start >= worklist.len() {
                        break;
                    }
                    for vector in &worklist[start..(start + CHUNK).min(worklist.len())] {
                        let outcome = retrier.invoke_cached(cache, module, vector);
                        let text = vector[0].as_text().unwrap();
                        assert_eq!(
                            outcome.as_ref().as_ref().unwrap(),
                            &vec![Value::text(text.to_uppercase())]
                        );
                    }
                }
            });
        }
        // The sampler: hammers stats() for the whole run, asserting the
        // invariant the old code violated in the window between cell
        // publication and the post-hoc forget.
        let cache = &cache;
        let done = &done;
        let barrier = &barrier;
        let sampler = scope.spawn(move || {
            barrier.wait();
            let mut samples = 0usize;
            while !done.load(Ordering::Relaxed) {
                let stats = cache.stats();
                assert_eq!(
                    stats.memoized_transients, 0,
                    "observed a memoized transient mid-run after {samples} clean samples"
                );
                samples += 1;
            }
            samples
        });
        // Scope joins the workers; flag the sampler down afterwards. The
        // worker handles are anonymous, so park until the cursor drains.
        while cursor.load(Ordering::Relaxed) < worklist.len() + threads * CHUNK {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        done.store(true, Ordering::Relaxed);
        assert!(sampler.join().unwrap() > 0, "sampler never ran");
    });

    let attempts = attempts.lock().unwrap();
    assert_eq!(attempts.len(), KEYS);
    for (key, count) in attempts.iter() {
        // One cold-start fault plus exactly one memoized success per key:
        // the success cell is created once and never raced into a duplicate.
        assert_eq!(*count, 2, "key {key} invoked {count} times");
    }
    let stats = cache.stats();
    assert_eq!(stats.memoized_transients, 0);
    assert_eq!(stats.entries, KEYS, "only successes are memoized");
    assert_eq!(
        stats.misses as usize,
        2 * KEYS,
        "one fresh cell per fault, one per success"
    );
    // Ledger balance: every lookup is a miss, a hit, or a transient
    // observation — and a fresh-and-transient lookup is counted under both
    // miss and transient, which happens exactly once per key here. Retries
    // add one extra lookup per transient observation.
    let total_lookups = worklist.len() as u64 + stats.transients;
    assert_eq!(
        stats.hits + stats.misses + stats.transients,
        total_lookups + KEYS as u64,
        "{stats:?}"
    );
}

/// A *bounded* cache under the chunked pattern: the capacity sweeper must
/// never evict a cell whose invocation is still in flight — doing so would
/// let another worker re-invoke the same vector concurrently. The module
/// detects overlapping invocations of one key directly.
#[test]
fn bounded_cache_never_evicts_in_flight_cells() {
    let in_flight: Arc<Mutex<HashMap<String, usize>>> = Arc::default();
    let overlaps = Arc::new(AtomicUsize::new(0));
    let flight = Arc::clone(&in_flight);
    let clashes = Arc::clone(&overlaps);
    let module = FnModule::new(
        ModuleDescriptor::new(
            "op:overlap-detect",
            "OverlapDetect",
            ModuleKind::SoapService,
            vec![Parameter::required("in", StructuralType::Text, "Document")],
            vec![Parameter::required("out", StructuralType::Text, "Document")],
        ),
        move |inputs| {
            let text = inputs[0].as_text().unwrap().to_string();
            {
                let mut flying = flight.lock().unwrap();
                let slot = flying.entry(text.clone()).or_insert(0);
                if *slot > 0 {
                    clashes.fetch_add(1, Ordering::SeqCst);
                }
                *slot += 1;
            }
            std::thread::sleep(std::time::Duration::from_micros(500));
            *flight.lock().unwrap().get_mut(&text).unwrap() -= 1;
            Ok(vec![Value::text(text.to_uppercase())])
        },
    );

    // Tiny capacity, many distinct keys, heavy duplication: the sweeper
    // runs constantly while most entries are still initializing.
    let cache = InvocationCache::with_capacity(16);
    let worklist: Vec<Vec<Value>> = (0..600)
        .map(|i| vec![Value::text(format!("e{}", i % 48))])
        .collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let cache = &cache;
            let module = &module;
            let worklist = &worklist;
            let cursor = &cursor;
            scope.spawn(move || loop {
                let start = cursor.fetch_add(4, Ordering::Relaxed);
                if start >= worklist.len() {
                    break;
                }
                for vector in &worklist[start..(start + 4).min(worklist.len())] {
                    let outcome = cache.invoke(module, vector);
                    assert!(outcome.is_ok());
                }
            });
        }
    });
    assert_eq!(
        overlaps.load(Ordering::SeqCst),
        0,
        "a key was invoked concurrently with itself — an in-flight cell was evicted"
    );
    let stats = cache.stats();
    assert!(stats.evictions > 0, "the capacity bound was exercised");
    assert!(
        stats.entries <= 16 + 8,
        "bound may only be exceeded by in-flight rotation: {}",
        stats.entries
    );
}

/// Two *different* modules with identical input vectors must not collide:
/// the key is (module id, vector), not the vector alone.
#[test]
fn cache_keys_are_scoped_by_module_identity() {
    let upper = FnModule::new(
        ModuleDescriptor::new(
            "op:upper",
            "Upper",
            ModuleKind::RestService,
            vec![Parameter::required("in", StructuralType::Text, "Document")],
            vec![Parameter::required("out", StructuralType::Text, "Document")],
        ),
        |i| Ok(vec![Value::text(i[0].as_text().unwrap().to_uppercase())]),
    );
    let lower = FnModule::new(
        ModuleDescriptor::new(
            "op:lower",
            "Lower",
            ModuleKind::RestService,
            vec![Parameter::required("in", StructuralType::Text, "Document")],
            vec![Parameter::required("out", StructuralType::Text, "Document")],
        ),
        |i| Ok(vec![Value::text(i[0].as_text().unwrap().to_lowercase())]),
    );
    let cache = InvocationCache::new();
    let input = [Value::text("MiXeD")];
    let a = cache.invoke(&upper, &input);
    let b = cache.invoke(&lower, &input);
    assert_eq!(a.as_ref().as_ref().unwrap()[0], Value::text("MIXED"));
    assert_eq!(b.as_ref().as_ref().unwrap()[0], Value::text("mixed"));
    assert_eq!(cache.stats().misses, 2);
    assert_eq!(cache.stats().hits, 0);
    // And both replay as hits.
    cache.invoke(&upper, &input);
    cache.invoke(&lower, &input);
    assert_eq!(cache.stats().hits, 2);
    let _ = upper.descriptor();
}

/// Adapter that routes every invocation through a live [`ModuleCatalog`]'s
/// availability gate, so a test can withdraw/restore the module *between*
/// cache lookups — the caching equivalent of a provider flapping mid-run.
struct CatalogBacked {
    descriptor: ModuleDescriptor,
    catalog: Arc<RwLock<ModuleCatalog>>,
}

impl BlackBox for CatalogBacked {
    fn descriptor(&self) -> &ModuleDescriptor {
        &self.descriptor
    }

    fn invoke(&self, inputs: &[Value]) -> Result<Vec<Value>, InvocationError> {
        let catalog = self.catalog.read().unwrap();
        catalog.invoke(&self.descriptor.id, inputs)
    }
}

/// Regression for the PR 4 poisoning bug: a module withdrawn mid-run used to
/// leave a memoized `Unavailable` behind, so restoring the provider never
/// helped. Transients now pass through, and the restored module recovers.
#[test]
fn withdrawn_then_restored_module_recovers_through_the_cache() {
    let (module, counts) = counting_module(std::time::Duration::ZERO);
    let descriptor = module.descriptor().clone();
    let id = descriptor.id.clone();
    let mut catalog = ModuleCatalog::new();
    catalog.register(Arc::new(module) as SharedModule);
    let catalog = Arc::new(RwLock::new(catalog));
    let backed = CatalogBacked {
        descriptor,
        catalog: Arc::clone(&catalog),
    };
    let cache = InvocationCache::new();
    let input = [Value::text("probe")];

    // Healthy: success memoized.
    assert!(cache.invoke(&backed, &input).is_ok());

    // Provider withdraws the module mid-run; the cached success for *this*
    // vector still answers (the cache is process-scoped — see the enactment
    // test for the per-enactment gate), but a fresh vector observes the
    // outage as a pass-through transient.
    catalog.write().unwrap().withdraw(&id);
    let fresh = [Value::text("during-outage")];
    for _ in 0..2 {
        assert_eq!(
            cache.invoke(&backed, &fresh).as_ref(),
            &Err(InvocationError::Unavailable)
        );
    }

    // Provider restores supply: the very next lookup recovers. Before the
    // taxonomy fix this stayed `Unavailable` forever.
    catalog.write().unwrap().restore(&id);
    let out = cache.invoke(&backed, &fresh);
    assert_eq!(
        out.as_ref().as_ref().unwrap(),
        &vec![Value::text("DURING-OUTAGE")]
    );
    let stats = cache.stats();
    assert_eq!(stats.transients, 2, "both outage lookups passed through");
    assert_eq!(stats.memoized_transients, 0);
    assert_eq!(counts.lock().unwrap()["during-outage"], 1, "one real run");
}

/// Two threads racing on a transiently-failing key must both retry — no
/// `OnceLock` cell may stay permanently seeded with a transient error — and
/// the eventual success must still be invoked exactly once.
#[test]
fn racing_retriers_share_exactly_one_eventual_success() {
    let attempts = Arc::new(AtomicUsize::new(0));
    let successes = Arc::new(AtomicUsize::new(0));
    let seen_attempts = Arc::clone(&attempts);
    let seen_successes = Arc::clone(&successes);
    let module = FnModule::new(
        ModuleDescriptor::new(
            "op:recovering",
            "Recovering",
            ModuleKind::SoapService,
            vec![Parameter::required("in", StructuralType::Text, "Document")],
            vec![Parameter::required("out", StructuralType::Text, "Document")],
        ),
        move |inputs| {
            // The first two invocations fault transiently; from then on the
            // module is healthy.
            if seen_attempts.fetch_add(1, Ordering::SeqCst) < 2 {
                return Err(InvocationError::fault("cold start"));
            }
            seen_successes.fetch_add(1, Ordering::SeqCst);
            Ok(vec![Value::text(
                inputs[0].as_text().unwrap().to_uppercase(),
            )])
        },
    );

    let cache = InvocationCache::new();
    let retrier = Retrier::new(RetryPolicy::transient(8));
    let input = vec![Value::text("contended")];
    let barrier = Barrier::new(2);
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cache = &cache;
                let retrier = &retrier;
                let module = &module;
                let input = &input;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    retrier.invoke_cached(cache, module, input)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for outcome in &outcomes {
        assert_eq!(
            outcome.as_ref().as_ref().unwrap(),
            &vec![Value::text("CONTENDED")],
            "both racers recovered"
        );
    }
    assert_eq!(
        successes.load(Ordering::SeqCst),
        1,
        "exactly-once still holds for the success"
    );
    let stats = cache.stats();
    assert_eq!(
        stats.memoized_transients, 0,
        "no cell seeded with a transient"
    );
    assert!(
        stats.transients >= 1,
        "the cold-start faults passed through"
    );
    assert_eq!(stats.entries, 1, "only the success is memoized");
    assert!(retrier.stats().retries >= 1);
}
