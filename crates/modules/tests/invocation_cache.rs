//! Concurrency contract of the shared [`InvocationCache`]: under scoped
//! threads hammering the same key set, every distinct input vector is
//! invoked **exactly once** — racing readers block on the winner's cell
//! instead of invoking a duplicate — and every reader observes the same
//! memoized outcome.

use dex_modules::{
    invoke_all_cached, BlackBox, FnModule, InvocationCache, InvocationError, ModuleDescriptor,
    ModuleKind, Parameter,
};
use dex_values::{StructuralType, Value};
use std::collections::HashMap;
use std::sync::{Arc, Barrier, Mutex};

/// A module that records how often each distinct input was invoked, with an
/// artificial stall to widen the race window.
fn counting_module(stall: std::time::Duration) -> (FnModule, Arc<Mutex<HashMap<String, usize>>>) {
    let counts: Arc<Mutex<HashMap<String, usize>>> = Arc::default();
    let seen = Arc::clone(&counts);
    let module = FnModule::new(
        ModuleDescriptor::new(
            "op:counted",
            "Counted",
            ModuleKind::SoapService,
            vec![Parameter::required("in", StructuralType::Text, "Document")],
            vec![Parameter::required("out", StructuralType::Text, "Document")],
        ),
        move |inputs| {
            let text = inputs[0].as_text().expect("text input").to_string();
            *seen.lock().unwrap().entry(text.clone()).or_insert(0) += 1;
            std::thread::sleep(stall);
            if text.ends_with('!') {
                return Err(InvocationError::rejected("bang"));
            }
            Ok(vec![Value::text(text.to_uppercase())])
        },
    );
    (module, counts)
}

#[test]
fn racing_threads_never_double_invoke_a_vector() {
    let (module, counts) = counting_module(std::time::Duration::from_millis(2));
    let cache = InvocationCache::new();
    let vectors: Vec<Vec<Value>> = (0..24)
        .map(|i| {
            // Every third vector is a rejection — errors must be
            // exactly-once memoized like successes.
            if i % 3 == 0 {
                vec![Value::text(format!("v{i}!"))]
            } else {
                vec![Value::text(format!("v{i}"))]
            }
        })
        .collect();

    let threads = 8;
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let barrier = &barrier;
            let cache = &cache;
            let module = &module;
            let vectors = &vectors;
            scope.spawn(move || {
                // All workers start together and walk the key set from
                // different offsets, maximizing same-key collisions.
                barrier.wait();
                for k in 0..vectors.len() {
                    let vector = &vectors[(k + t * 3) % vectors.len()];
                    let outcome = cache.invoke(module, vector);
                    let text = vector[0].as_text().unwrap();
                    match outcome.as_ref() {
                        Ok(out) => assert_eq!(out[0].as_text().unwrap(), text.to_uppercase()),
                        Err(_) => assert!(text.ends_with('!')),
                    }
                }
            });
        }
    });

    let counts = counts.lock().unwrap();
    assert_eq!(counts.len(), vectors.len(), "every vector was invoked");
    for (text, count) in counts.iter() {
        assert_eq!(*count, 1, "vector {text} was invoked {count} times");
    }
    let stats = cache.stats();
    assert_eq!(stats.misses as usize, vectors.len());
    assert_eq!(
        (stats.hits + stats.misses) as usize,
        threads * vectors.len(),
        "every lookup was counted"
    );
    assert_eq!(stats.entries, vectors.len());
    assert_eq!(stats.evictions, 0);
}

#[test]
fn racing_readers_share_the_winners_outcome() {
    let (module, counts) = counting_module(std::time::Duration::from_millis(5));
    let cache = InvocationCache::new();
    let vector = vec![Value::text("contested")];
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let cache = &cache;
                let module = &module;
                let vector = &vector;
                scope.spawn(move || cache.invoke(module, vector))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // One invocation, and all sixteen readers hold the same Arc.
    assert_eq!(counts.lock().unwrap()["contested"], 1);
    for outcome in &outcomes[1..] {
        assert!(Arc::ptr_eq(outcome, &outcomes[0]));
    }
}

#[test]
fn parallel_executor_is_exactly_once_across_duplicate_heavy_input() {
    let (module, counts) = counting_module(std::time::Duration::ZERO);
    let cache = InvocationCache::new();
    // 96 requests over 8 distinct vectors, fanned over 6 threads.
    let vectors: Vec<Vec<Value>> = (0..96)
        .map(|i| vec![Value::text(format!("d{}", i % 8))])
        .collect();
    let outcomes = invoke_all_cached(&module, &vectors, &cache, 6);
    assert_eq!(outcomes.len(), vectors.len());
    for (vector, outcome) in vectors.iter().zip(&outcomes) {
        let expected = vector[0].as_text().unwrap().to_uppercase();
        assert_eq!(
            outcome.as_ref().as_ref().unwrap(),
            &vec![Value::text(expected)]
        );
    }
    let counts = counts.lock().unwrap();
    assert_eq!(counts.len(), 8);
    assert!(counts.values().all(|&c| c == 1), "{counts:?}");
}

/// Two *different* modules with identical input vectors must not collide:
/// the key is (module id, vector), not the vector alone.
#[test]
fn cache_keys_are_scoped_by_module_identity() {
    let upper = FnModule::new(
        ModuleDescriptor::new(
            "op:upper",
            "Upper",
            ModuleKind::RestService,
            vec![Parameter::required("in", StructuralType::Text, "Document")],
            vec![Parameter::required("out", StructuralType::Text, "Document")],
        ),
        |i| Ok(vec![Value::text(i[0].as_text().unwrap().to_uppercase())]),
    );
    let lower = FnModule::new(
        ModuleDescriptor::new(
            "op:lower",
            "Lower",
            ModuleKind::RestService,
            vec![Parameter::required("in", StructuralType::Text, "Document")],
            vec![Parameter::required("out", StructuralType::Text, "Document")],
        ),
        |i| Ok(vec![Value::text(i[0].as_text().unwrap().to_lowercase())]),
    );
    let cache = InvocationCache::new();
    let input = [Value::text("MiXeD")];
    let a = cache.invoke(&upper, &input);
    let b = cache.invoke(&lower, &input);
    assert_eq!(a.as_ref().as_ref().unwrap()[0], Value::text("MIXED"));
    assert_eq!(b.as_ref().as_ref().unwrap()[0], Value::text("mixed"));
    assert_eq!(cache.stats().misses, 2);
    assert_eq!(cache.stats().hits, 0);
    // And both replay as hits.
    cache.invoke(&upper, &input);
    cache.invoke(&lower, &input);
    assert_eq!(cache.stats().hits, 2);
    let _ = upper.descriptor();
}
