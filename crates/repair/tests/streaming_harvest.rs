//! Streaming harvest correctness contract: feeding enactment traces into a
//! `HarvestSink` one at a time — dropping each trace immediately — yields a
//! pool byte-identical to materializing the whole `ProvenanceCorpus` first
//! and running `harvest_pool` over it. Holds with a cold or warm shared
//! `InvocationCache` and with seeded transient faults injected into every
//! module (the two sides see identical fault-clock phases because they make
//! identical invocation sequences).

use dex_modules::{FaultInjector, FaultPlan, InvocationCache, RetryPolicy};
use dex_pool::build_text_pool;
use dex_provenance::harvest_pool;
use dex_repair::{
    build_corpus_with, generate_repository, stream_harvested_pool, RepositoryPlan,
    WorkflowRepository,
};
use dex_universe::scale::{build_scaled, ScalePlan};
use dex_universe::Universe;
use dex_values::classify::classify_concept;
use proptest::prelude::*;

fn scale_plan(seed: u64) -> ScalePlan {
    ScalePlan {
        modules: 24 + (seed % 40) as usize,
        seed,
        depth: 4,
        max_family: 8,
        shared_shape_every: 5,
        shared_shapes: 3,
    }
}

fn world(seed: u64, fault: Option<(u64, u32)>) -> Universe {
    let mut world = build_scaled(&scale_plan(seed)).universe;
    if let Some((fault_seed, rate_pct)) = fault {
        let injector = FaultInjector::new(FaultPlan::rate_pct(fault_seed, rate_pct));
        world
            .catalog
            .wrap_modules(|_, module| injector.wrap(module));
    }
    world
}

fn repository(universe: &Universe, seed: u64) -> WorkflowRepository {
    let pool = build_text_pool(&universe.ontology, 6, seed);
    let plan = RepositoryPlan {
        healthy: 25,
        equivalent_full: 0,
        equivalent_partial: 0,
        overlap_full: 0,
        overlap_partial: 0,
        overlap_odd: 0,
        none_only: 0,
        seed,
    };
    generate_repository(universe, &pool, &plan)
}

fn check_equivalence(seed: u64, fault: Option<(u64, u32)>) {
    // The repository is composed against a fault-free world so its structure
    // is a pure function of the seed; both harvest sides then run it against
    // their own identically-faulted universe instance.
    let base = world(seed, None);
    let pool = build_text_pool(&base.ontology, 6, seed);
    let repo = repository(&base, seed);
    let retry = RetryPolicy::transient(3);

    let materialized = world(seed, fault);
    let (corpus, report_m) = build_corpus_with(&materialized, &repo, &pool, retry, false);
    let pool_m = harvest_pool(&corpus, &materialized.catalog, classify_concept);

    let streaming = world(seed, fault);
    let cache = InvocationCache::new();
    let (pool_s, report_s) =
        stream_harvested_pool(&streaming, &repo, &pool, classify_concept, retry, &cache);

    let bytes_m = serde_json::to_string(&pool_m).expect("pool serializes");
    let bytes_s = serde_json::to_string(&pool_s).expect("pool serializes");
    assert_eq!(bytes_m, bytes_s, "streaming pool must be byte-identical");
    assert_eq!(
        report_m.failed_enactments, report_s.failed_enactments,
        "both sides must skip the same enactments"
    );

    // Warm-cache pass: re-streaming over the already-warm shared cache must
    // reproduce the same pool (deterministic modules make cache state
    // unobservable; under faults the cache changes fault-clock phase, so the
    // warm contract is only pinned fault-free).
    if fault.is_none() {
        let (pool_w, _) = stream_harvested_pool(
            &streaming,
            &repo,
            &pool,
            classify_concept,
            RetryPolicy::none(),
            &cache,
        );
        let bytes_w = serde_json::to_string(&pool_w).expect("pool serializes");
        assert_eq!(bytes_s, bytes_w, "warm-cache streaming must agree");
    }
}

proptest! {
    /// Streaming == materialized, cold and warm cache, fault-free.
    #[test]
    fn streaming_harvest_matches_materialized(seed in any::<u64>()) {
        check_equivalence(seed, None);
    }

    /// Same contract with seeded transient faults in every module.
    #[test]
    fn streaming_harvest_matches_materialized_under_faults(
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        fault_rate_pct in 1u32..26,
    ) {
        check_equivalence(seed, Some((fault_seed, fault_rate_pct)));
    }
}
