//! # dex-repair
//!
//! The workflow-decay-and-repair system of the paper's §6: a
//! myExperiment-like [`repository`] of ~3000 workflows, a provenance
//! [`corpus`] recorded while every module was still supplied, the
//! [`matching`] study that classifies the 72 withdrawn modules against the
//! available population (Figure 8), and the [`engine`] that substitutes
//! matched modules into broken workflows and verifies the repairs by
//! replaying the workflows' own traces.
//!
//! The repository generator is deliberately *planned*: the mix of healthy
//! workflows, workflows using substitutable legacy modules, and hopeless
//! ones is a [`RepositoryPlan`] whose defaults reproduce the populations
//! behind the paper's numbers (≈3000 workflows, ≈half broken, 334
//! repairable). The *outcomes*, however, are computed, not asserted — the
//! matcher and the repair verifier genuinely run.

pub mod corpus;
pub mod engine;
pub mod keys;
pub mod matching;
pub mod repository;

pub use corpus::{build_corpus, build_corpus_with, stream_harvested_pool, CorpusBuildReport};
pub use engine::{
    repair_repository, repair_repository_with, RepairOutcome, RepairStatus, RepairSummary,
};
pub use matching::{
    pick_better_substitute, run_matching_study, run_matching_study_with, LegacyMatch, MatchingStudy,
};
pub use repository::{generate_repository, RepositoryPlan, StoredWorkflow, WorkflowRepository};
