//! A myExperiment-like workflow repository with a planned population.

use crate::keys::diverges_on;
use dex_modules::{ModuleCatalog, ModuleDescriptor, ModuleId, Parameter};
use dex_ontology::ConceptId;
use dex_pool::InstancePool;
use dex_universe::{ExpectedMatch, Universe};
use dex_values::Value;
use dex_workflow::{Source, Workflow};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which population a generated workflow belongs to. Generation metadata
/// only: the repair engine never reads it (tests use it to check that
/// computed outcomes match the plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlanGroup {
    /// Uses only modules that will stay available.
    Healthy,
    /// Uses one legacy module that has an equivalent substitute.
    EquivalentFull,
    /// Equivalent-substitutable legacy + an unsubstitutable one.
    EquivalentPartial,
    /// Overlapping-substitutable legacy, sample input on the agreeing side.
    OverlapFull,
    /// Agreeing overlapping legacy + an unsubstitutable one.
    OverlapPartial,
    /// Overlapping legacy, sample input on the *disagreeing* side — the
    /// substitute exists but does not play the same role here.
    OverlapOdd,
    /// Uses only unsubstitutable legacy modules.
    NoneOnly,
}

/// One repository record: the workflow plus the example inputs its author
/// published with it (myExperiment workflows ship sample inputs; the paper
/// enacts repaired workflows "using samples of randomly selected inputs").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoredWorkflow {
    /// The workflow definition.
    pub workflow: Workflow,
    /// Sample values for the workflow-level inputs.
    pub sample_inputs: Vec<Value>,
    /// Generation metadata.
    pub group: PlanGroup,
}

/// The repository.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorkflowRepository {
    /// Stored workflows, in generation order.
    pub workflows: Vec<StoredWorkflow>,
}

impl WorkflowRepository {
    /// Number of stored workflows.
    pub fn len(&self) -> usize {
        self.workflows.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.workflows.is_empty()
    }

    /// Serializes the repository to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Loads a repository from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<WorkflowRepository> {
        serde_json::from_str(json)
    }

    /// Workflows referencing the given module.
    pub fn using_module<'a>(
        &'a self,
        id: &'a ModuleId,
    ) -> impl Iterator<Item = &'a StoredWorkflow> {
        self.workflows
            .iter()
            .filter(move |w| w.workflow.uses_module(id))
    }
}

/// Population sizes for repository generation. The defaults approximate the
/// paper's §6 numbers: ~3000 workflows, roughly half broken, 334 of them
/// repairable (321 via equivalents + 13 via usable overlaps, 73 partial).
#[derive(Debug, Clone)]
pub struct RepositoryPlan {
    pub healthy: usize,
    pub equivalent_full: usize,
    pub equivalent_partial: usize,
    pub overlap_full: usize,
    pub overlap_partial: usize,
    pub overlap_odd: usize,
    pub none_only: usize,
    /// Generation seed.
    pub seed: u64,
}

impl Default for RepositoryPlan {
    fn default() -> Self {
        RepositoryPlan {
            healthy: 1466,
            equivalent_full: 255,
            equivalent_partial: 66,
            overlap_full: 6,
            overlap_partial: 7,
            overlap_odd: 400,
            none_only: 800,
            seed: 0x5eed,
        }
    }
}

impl RepositoryPlan {
    /// Total workflows the plan generates.
    pub fn total(&self) -> usize {
        self.healthy
            + self.equivalent_full
            + self.equivalent_partial
            + self.overlap_full
            + self.overlap_partial
            + self.overlap_odd
            + self.none_only
    }

    /// A small plan for tests.
    pub fn small(seed: u64) -> Self {
        RepositoryPlan {
            healthy: 30,
            equivalent_full: 20,
            equivalent_partial: 8,
            overlap_full: 6,
            overlap_partial: 4,
            overlap_odd: 20,
            none_only: 15,
            seed,
        }
    }
}

/// Generates a repository against a universe (pre-decay) and a pool used
/// for the sample inputs.
pub fn generate_repository(
    universe: &Universe,
    pool: &InstancePool,
    plan: &RepositoryPlan,
) -> WorkflowRepository {
    let mut rng = StdRng::seed_from_u64(plan.seed);
    let gen = Generator::new(universe, pool);
    let mut repo = WorkflowRepository::default();

    let mut eq_legacy: Vec<&ModuleId> = Vec::new();
    let mut ov_legacy: Vec<&ModuleId> = Vec::new();
    let mut none_legacy: Vec<&ModuleId> = Vec::new();
    for (id, expected) in &universe.expected_match {
        match expected {
            ExpectedMatch::Equivalent(_) => eq_legacy.push(id),
            ExpectedMatch::Overlapping(_) => ov_legacy.push(id),
            ExpectedMatch::None => none_legacy.push(id),
        }
    }
    let available: Vec<ModuleId> = universe.available_ids();

    let mut counter = 0usize;
    let push = |repo: &mut WorkflowRepository, stored: StoredWorkflow| {
        repo.workflows.push(stored);
    };

    for _ in 0..plan.healthy {
        let first = &available[rng.gen_range(0..available.len())];
        let stored = gen.compose(first, None, None, PlanGroup::Healthy, counter, &mut rng);
        counter += 1;
        push(&mut repo, stored);
    }
    for i in 0..plan.equivalent_full {
        let first = eq_legacy[i % eq_legacy.len()];
        let stored = gen.compose(
            first,
            None,
            None,
            PlanGroup::EquivalentFull,
            counter,
            &mut rng,
        );
        counter += 1;
        push(&mut repo, stored);
    }
    for i in 0..plan.equivalent_partial {
        let first = eq_legacy[i % eq_legacy.len()];
        let extra = none_legacy[i % none_legacy.len()];
        let stored = gen.compose(
            first,
            Some(extra),
            None,
            PlanGroup::EquivalentPartial,
            counter,
            &mut rng,
        );
        counter += 1;
        push(&mut repo, stored);
    }
    for i in 0..plan.overlap_full {
        let first = ov_legacy[i % ov_legacy.len()];
        let stored = gen.compose(
            first,
            None,
            Some(false),
            PlanGroup::OverlapFull,
            counter,
            &mut rng,
        );
        counter += 1;
        push(&mut repo, stored);
    }
    for i in 0..plan.overlap_partial {
        let first = ov_legacy[(plan.overlap_full + i) % ov_legacy.len()];
        let extra = none_legacy[i % none_legacy.len()];
        let stored = gen.compose(
            first,
            Some(extra),
            Some(false),
            PlanGroup::OverlapPartial,
            counter,
            &mut rng,
        );
        counter += 1;
        push(&mut repo, stored);
    }
    for i in 0..plan.overlap_odd {
        let first = ov_legacy[i % ov_legacy.len()];
        let stored = gen.compose(
            first,
            None,
            Some(true),
            PlanGroup::OverlapOdd,
            counter,
            &mut rng,
        );
        counter += 1;
        push(&mut repo, stored);
    }
    for i in 0..plan.none_only {
        let first = none_legacy[i % none_legacy.len()];
        let stored = gen.compose(first, None, None, PlanGroup::NoneOnly, counter, &mut rng);
        counter += 1;
        push(&mut repo, stored);
    }

    repo
}

/// Composition machinery shared across groups.
struct Generator<'a> {
    universe: &'a Universe,
    pool: &'a InstancePool,
    /// Downstream candidates per module: available modules whose first
    /// input accepts the module's first output.
    downstream: std::collections::BTreeMap<ModuleId, Vec<ModuleId>>,
}

/// Descriptor lookup with context: generation never *invokes* modules, so a
/// missing descriptor is a broken universe invariant, never a transient
/// fault — panic loudly, naming the module.
fn described(catalog: &ModuleCatalog, id: &ModuleId) -> ModuleDescriptor {
    catalog
        .descriptor(id)
        .unwrap_or_else(|| panic!("module {id} has no descriptor in the generation catalog"))
        .clone()
}

impl<'a> Generator<'a> {
    fn new(universe: &'a Universe, pool: &'a InstancePool) -> Self {
        let ontology = &universe.ontology;
        let mut downstream = std::collections::BTreeMap::new();
        let available = universe.available_ids();
        // Invert the compatibility check: bucket the candidates by their
        // first input's semantic concept, then for each module walk the
        // ancestor chain of its output concept and merge the buckets along
        // it. `t subsumes s` iff `t` is an ancestor-or-self of `s`, so the
        // walk visits exactly the concepts whose candidates pass the
        // semantic test — O(modules × depth) instead of the all-pairs scan.
        // A final sort restores `available` order (BTreeMap keys), keeping
        // the candidate lists identical to the quadratic formulation.
        let mut by_input: std::collections::BTreeMap<ConceptId, Vec<(&ModuleId, &Parameter)>> =
            std::collections::BTreeMap::new();
        for cand in &available {
            let cin = &universe
                .catalog
                .descriptor(cand)
                .unwrap_or_else(|| {
                    panic!("candidate {cand} vanished from the catalog it came from")
                })
                .inputs[0];
            // Candidates annotated outside the ontology can never subsume
            // anything, matching the `(None, _)` arm of the pairwise check.
            if let Some(t) = ontology.id(&cin.semantic) {
                by_input.entry(t).or_default().push((cand, cin));
            }
        }
        // Index every module (legacy ones included: their outputs feed
        // downstream steps too).
        let all_ids: Vec<ModuleId> = universe.catalog.available_ids().into_iter().collect();
        for id in &all_ids {
            // Audit note: descriptor lookups never invoke the module, so
            // these cannot fail transiently — a miss here is a broken
            // universe invariant, and the panic message says which module.
            let out = &universe
                .catalog
                .descriptor(id)
                .unwrap_or_else(|| panic!("module {id} vanished from the catalog it came from"))
                .outputs[0];
            let mut compatible = Vec::new();
            if let Some(s) = ontology.id(&out.semantic) {
                for t in ontology.ancestors(s) {
                    for (cand, cin) in by_input.get(&t).into_iter().flatten() {
                        if *cand != id && cin.structural.accepts(&out.structural) {
                            compatible.push((*cand).clone());
                        }
                    }
                }
            }
            compatible.sort();
            downstream.insert(id.clone(), compatible);
        }
        Generator {
            universe,
            pool,
            downstream,
        }
    }

    /// Builds one workflow: `first` as step 0 (all inputs from workflow
    /// inputs), an optional parallel `extra` legacy step, and 0–2 chained
    /// downstream steps. `want_divergent` controls the parity of the sample
    /// value feeding `first` (overlapping-legacy groups only).
    fn compose(
        &self,
        first: &ModuleId,
        extra: Option<&ModuleId>,
        want_divergent: Option<bool>,
        group: PlanGroup,
        counter: usize,
        rng: &mut StdRng,
    ) -> StoredWorkflow {
        let catalog = &self.universe.catalog;
        let mut builder = Workflow::builder(
            format!("wf{counter:05}"),
            format!("workflow {counter} ({first})"),
        );
        let mut sample_inputs: Vec<Value> = Vec::new();

        // Step 0: the focus module.
        let d0 = described(catalog, first);
        let s0 = builder.step(d0.name.clone(), first.clone());
        for (j, p) in d0.inputs.iter().enumerate() {
            let idx = builder.input(p.clone());
            builder.link(Source::WorkflowInput(idx), s0, j);
            let value = if j == 0 {
                self.sample_value(first, p, want_divergent, rng)
            } else {
                self.plain_sample(p, rng)
            };
            sample_inputs.push(value);
        }

        // Optional parallel legacy step.
        if let Some(extra_id) = extra {
            let d1 = described(catalog, extra_id);
            let s1 = builder.step(d1.name.clone(), extra_id.clone());
            for (j, p) in d1.inputs.iter().enumerate() {
                let idx = builder.input(p.clone());
                builder.link(Source::WorkflowInput(idx), s1, j);
                sample_inputs.push(self.plain_sample(p, rng));
            }
        }

        // Chain 0–2 downstream steps off step 0's first output.
        let mut upstream = (s0, first.clone());
        let chain_len = rng.gen_range(0..=2usize);
        for _ in 0..chain_len {
            let Some(candidates) = self.downstream.get(&upstream.1) else {
                break;
            };
            if candidates.is_empty() {
                break;
            }
            let next = &candidates[rng.gen_range(0..candidates.len())];
            let dn = described(catalog, next);
            let sn = builder.step(dn.name.clone(), next.clone());
            builder.link(
                Source::StepOutput {
                    step: upstream.0,
                    output: 0,
                },
                sn,
                0,
            );
            for (j, p) in dn.inputs.iter().enumerate().skip(1) {
                let idx = builder.input(p.clone());
                builder.link(Source::WorkflowInput(idx), sn, j);
                sample_inputs.push(self.plain_sample(p, rng));
            }
            upstream = (sn, next.clone());
        }

        let last_step = upstream.0;
        builder.output(
            "result",
            Source::StepOutput {
                step: last_step,
                output: 0,
            },
        );
        StoredWorkflow {
            workflow: builder.build(),
            sample_inputs,
            group,
        }
    }

    /// Any pool realization of the parameter's concept.
    fn plain_sample(&self, p: &Parameter, rng: &mut StdRng) -> Value {
        let skip = rng.gen_range(0..6usize);
        self.pool
            .get_instance(&p.semantic, &p.structural, skip)
            .or_else(|| self.pool.get_instance(&p.semantic, &p.structural, 0))
            .unwrap_or_else(|| panic!("pool has no realization of {}", p.semantic))
            .value
            .clone()
    }

    /// A realization with a chosen divergence parity, when requested.
    fn sample_value(
        &self,
        module: &ModuleId,
        p: &Parameter,
        want_divergent: Option<bool>,
        rng: &mut StdRng,
    ) -> Value {
        let Some(want) = want_divergent else {
            return self.plain_sample(p, rng);
        };
        let mut matching: Vec<Value> = Vec::new();
        for skip in 0..32usize {
            let Some(inst) = self.pool.get_instance(&p.semantic, &p.structural, skip) else {
                break;
            };
            if diverges_on(module, &inst.value) == Some(want) {
                matching.push(inst.value.clone());
            }
        }
        if matching.is_empty() {
            // No value with the requested parity in the pool prefix; fall
            // back (tests assert this does not happen for the shipped pool).
            return self.plain_sample(p, rng);
        }
        matching[rng.gen_range(0..matching.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_pool::build_synthetic_pool;
    use dex_universe::build;
    use dex_workflow::validate;

    fn fixture() -> (Universe, InstancePool) {
        let u = build();
        let pool = build_synthetic_pool(&u.ontology, 40, 77);
        (u, pool)
    }

    #[test]
    fn generated_workflows_validate_and_enact_pre_decay() {
        let (u, pool) = fixture();
        let repo = generate_repository(&u, &pool, &RepositoryPlan::small(1));
        assert_eq!(repo.len(), RepositoryPlan::small(1).total());
        for stored in &repo.workflows {
            validate(&stored.workflow, &u.catalog, &u.ontology)
                .unwrap_or_else(|e| panic!("{}: {e:?}", stored.workflow.id));
            dex_workflow::enact(&stored.workflow, &u.catalog, &stored.sample_inputs)
                .unwrap_or_else(|e| panic!("{}: {e}", stored.workflow.id));
        }
    }

    #[test]
    fn overlap_groups_have_requested_parity() {
        let (u, pool) = fixture();
        let repo = generate_repository(&u, &pool, &RepositoryPlan::small(2));
        for stored in &repo.workflows {
            let want = match stored.group {
                PlanGroup::OverlapFull | PlanGroup::OverlapPartial => Some(false),
                PlanGroup::OverlapOdd => Some(true),
                _ => None,
            };
            if let Some(want) = want {
                let module = &stored.workflow.steps[0].module;
                let got = diverges_on(module, &stored.sample_inputs[0]);
                assert_eq!(got, Some(want), "{} ({module})", stored.workflow.id);
            }
        }
    }

    #[test]
    fn broken_groups_reference_legacy_modules() {
        let (u, pool) = fixture();
        let repo = generate_repository(&u, &pool, &RepositoryPlan::small(3));
        for stored in &repo.workflows {
            let uses_legacy = stored.workflow.module_ids().iter().any(|m| u.is_legacy(m));
            assert_eq!(
                uses_legacy,
                stored.group != PlanGroup::Healthy,
                "{}",
                stored.workflow.id
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (u, pool) = fixture();
        let a = generate_repository(&u, &pool, &RepositoryPlan::small(4));
        let b = generate_repository(&u, &pool, &RepositoryPlan::small(4));
        for (x, y) in a.workflows.iter().zip(&b.workflows) {
            assert_eq!(x.workflow, y.workflow);
            assert_eq!(x.sample_inputs, y.sample_inputs);
        }
    }

    #[test]
    fn repository_round_trips_through_json() {
        let (u, pool) = fixture();
        let repo = generate_repository(&u, &pool, &RepositoryPlan::small(6));
        let json = repo.to_json().unwrap();
        let back = WorkflowRepository::from_json(&json).unwrap();
        assert_eq!(back.len(), repo.len());
        for (a, b) in repo.workflows.iter().zip(&back.workflows) {
            assert_eq!(a.workflow, b.workflow);
            assert_eq!(a.sample_inputs, b.sample_inputs);
            assert_eq!(a.group, b.group);
        }
    }

    #[test]
    fn using_module_finds_references() {
        let (u, pool) = fixture();
        let repo = generate_repository(&u, &pool, &RepositoryPlan::small(5));
        let legacy = &u.legacy[0];
        let direct = repo.using_module(legacy).count();
        assert!(direct > 0, "legacy module {legacy} unused in repository");
    }
}
