//! Substitution-based repair of decayed workflows, with trace-replay
//! verification (§6's "we enacted those workflows … and verified … that
//! they deliver results comparable with those that the corresponding
//! missing unavailable modules would deliver").

use crate::matching::MatchingStudy;
use crate::repository::WorkflowRepository;
use dex_core::matching::{map_parameters, MappingMode, MatchVerdict};
use dex_modules::{InvocationCache, ModuleCatalog, ModuleId, Retrier, RetryPolicy};
use dex_ontology::Ontology;
use dex_provenance::ProvenanceCorpus;
use dex_values::Value;

/// One accepted substitution inside a workflow.
#[derive(Debug, Clone)]
pub struct Substitution {
    /// Step index repaired.
    pub step: usize,
    /// The withdrawn module.
    pub from: ModuleId,
    /// The substitute.
    pub to: ModuleId,
    /// The matcher's verdict that justified the substitution.
    pub verdict: MatchVerdict,
}

/// Repair status of one workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStatus {
    /// All referenced modules still supplied; nothing to do.
    Healthy,
    /// Every unavailable step received a verified substitute.
    FullyRepaired,
    /// Some, but not all, unavailable steps were fixed.
    PartiallyRepaired,
    /// No step could be fixed.
    Unrepaired,
}

/// The repair outcome of one workflow.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The workflow's id.
    pub workflow_id: String,
    /// Accepted (verified) substitutions.
    pub substitutions: Vec<Substitution>,
    /// Steps that stayed broken.
    pub unfixed_steps: Vec<(usize, ModuleId)>,
    /// Final status.
    pub status: RepairStatus,
}

/// Aggregate repair results — the §6 closing numbers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairSummary {
    pub healthy: usize,
    pub fully_repaired: usize,
    pub partially_repaired: usize,
    pub unrepaired: usize,
    /// Repaired workflows (full or partial) that used only equivalent
    /// substitutes.
    pub via_equivalent: usize,
    /// Repaired workflows where at least one overlapping substitute played
    /// the role.
    pub via_overlapping: usize,
}

impl RepairSummary {
    /// Total workflows repaired to some degree — the paper's "334".
    pub fn repaired(&self) -> usize {
        self.fully_repaired + self.partially_repaired
    }
}

/// Repairs every workflow of a repository against a post-decay catalog.
///
/// For each step whose module is withdrawn, the precomputed matching study
/// proposes a substitute. Each proposal is **verified by replay**: the
/// substitute is invoked on the exact inputs the original module received
/// in this workflow's own provenance trace, and its outputs must match the
/// recorded ones. This is what separates "an overlapping module exists"
/// from "the overlapping module plays the same role *in this workflow*"
/// (the paper found that held for only 13 workflows).
pub fn repair_repository(
    repository: &WorkflowRepository,
    catalog: &ModuleCatalog,
    study: &MatchingStudy,
    corpus: &ProvenanceCorpus,
    ontology: &Ontology,
) -> (Vec<RepairOutcome>, RepairSummary) {
    repair_repository_with(
        repository,
        catalog,
        study,
        corpus,
        ontology,
        RetryPolicy::none(),
    )
}

/// [`repair_repository`] with transient-fault tolerance: verification
/// replays go through one pass-wide [`Retrier`] built from `retry`, so a
/// flapping candidate is re-attempted instead of being rejected as a
/// substitute on the strength of a momentary outage.
pub fn repair_repository_with(
    repository: &WorkflowRepository,
    catalog: &ModuleCatalog,
    study: &MatchingStudy,
    corpus: &ProvenanceCorpus,
    ontology: &Ontology,
    retry: RetryPolicy,
) -> (Vec<RepairOutcome>, RepairSummary) {
    let mut outcomes = Vec::with_capacity(repository.len());
    let mut summary = RepairSummary::default();
    // One invocation memo for the whole repair pass: the same few candidates
    // are proposed for many workflows, and trace records frequently repeat
    // input vectors (same pool values feed many workflows), so verification
    // replays overlap heavily across outcomes.
    let invocations = InvocationCache::new();
    let retrier = Retrier::new(retry);

    for stored in &repository.workflows {
        let workflow = &stored.workflow;
        let broken: Vec<(usize, ModuleId)> = workflow
            .steps
            .iter()
            .enumerate()
            .filter(|(_, s)| !catalog.is_available(&s.module))
            .map(|(i, s)| (i, s.module.clone()))
            .collect();

        if broken.is_empty() {
            summary.healthy += 1;
            outcomes.push(RepairOutcome {
                workflow_id: workflow.id.clone(),
                substitutions: Vec::new(),
                unfixed_steps: Vec::new(),
                status: RepairStatus::Healthy,
            });
            continue;
        }

        let mut substitutions = Vec::new();
        let mut unfixed = Vec::new();
        for (step, module) in broken {
            match study.substitute_for(&module) {
                Some((candidate, verdict))
                    if verify_substitution(
                        workflow,
                        step,
                        &module,
                        candidate,
                        catalog,
                        corpus,
                        ontology,
                        &invocations,
                        &retrier,
                    ) =>
                {
                    substitutions.push(Substitution {
                        step,
                        from: module,
                        to: candidate.clone(),
                        verdict: *verdict,
                    });
                }
                _ => unfixed.push((step, module)),
            }
        }

        let status = match (substitutions.is_empty(), unfixed.is_empty()) {
            (false, true) => RepairStatus::FullyRepaired,
            (false, false) => RepairStatus::PartiallyRepaired,
            (true, _) => RepairStatus::Unrepaired,
        };
        match status {
            RepairStatus::FullyRepaired => summary.fully_repaired += 1,
            RepairStatus::PartiallyRepaired => summary.partially_repaired += 1,
            RepairStatus::Unrepaired => summary.unrepaired += 1,
            RepairStatus::Healthy => unreachable!("broken set was non-empty"),
        }
        if status != RepairStatus::Unrepaired {
            let any_overlap = substitutions
                .iter()
                .any(|s| matches!(s.verdict, MatchVerdict::Overlapping { .. }));
            if any_overlap {
                summary.via_overlapping += 1;
            } else {
                summary.via_equivalent += 1;
            }
        }
        outcomes.push(RepairOutcome {
            workflow_id: workflow.id.clone(),
            substitutions,
            unfixed_steps: unfixed,
            status,
        });
    }

    invocations.publish_telemetry();
    (outcomes, summary)
}

/// Replays the workflow's own recorded invocations of `step` against the
/// candidate; accepts only exact output agreement. Invocations route through
/// the repair pass's shared memo, so a candidate is fed each distinct trace
/// vector at most once across all workflows.
#[allow(clippy::too_many_arguments)]
fn verify_substitution(
    workflow: &dex_workflow::Workflow,
    step: usize,
    from: &ModuleId,
    candidate_id: &ModuleId,
    catalog: &ModuleCatalog,
    corpus: &ProvenanceCorpus,
    ontology: &Ontology,
    invocations: &InvocationCache,
    retrier: &Retrier,
) -> bool {
    let Some(candidate) = catalog.get(candidate_id) else {
        return false;
    };
    let Some(target_descriptor) = catalog.descriptor(from) else {
        return false;
    };
    let mode = if map_parameters(
        target_descriptor,
        candidate.descriptor(),
        ontology,
        MappingMode::Strict,
    )
    .is_ok()
    {
        MappingMode::Strict
    } else {
        MappingMode::Subsuming
    };
    let Ok(mapping) = map_parameters(target_descriptor, candidate.descriptor(), ontology, mode)
    else {
        return false;
    };

    let mut replayed = 0usize;
    for trace in corpus.traces_of(&workflow.id) {
        for record in trace.steps.iter().filter(|r| r.step == step) {
            let mut inputs: Vec<Value> = vec![Value::Null; candidate.descriptor().inputs.len()];
            for (t_idx, &c_idx) in mapping.inputs.iter().enumerate() {
                inputs[c_idx] = record.inputs[t_idx].clone();
            }
            match retrier
                .invoke_cached(invocations, candidate.as_ref(), &inputs)
                .as_ref()
            {
                Ok(outputs) => {
                    let all_equal = mapping
                        .outputs
                        .iter()
                        .enumerate()
                        .all(|(t_idx, &c_idx)| outputs[c_idx] == record.outputs[t_idx]);
                    if !all_equal {
                        return false;
                    }
                    replayed += 1;
                }
                Err(_) => return false,
            }
        }
    }
    replayed > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::build_corpus;
    use crate::matching::run_matching_study;
    use crate::repository::{generate_repository, PlanGroup, RepositoryPlan};
    use dex_pool::build_synthetic_pool;
    use dex_universe::build;

    #[test]
    fn repair_statuses_match_the_plan_groups() {
        let mut u = build();
        let pool = build_synthetic_pool(&u.ontology, 40, 77);
        let plan = RepositoryPlan::small(9);
        let repo = generate_repository(&u, &pool, &plan);
        let corpus = build_corpus(&u, &repo, &pool);
        u.decay();
        let study = run_matching_study(&u.catalog, &corpus, &u.ontology);
        let (outcomes, summary) =
            repair_repository(&repo, &u.catalog, &study, &corpus, &u.ontology);

        assert_eq!(outcomes.len(), plan.total());
        for (stored, outcome) in repo.workflows.iter().zip(&outcomes) {
            let expected = match stored.group {
                PlanGroup::Healthy => RepairStatus::Healthy,
                PlanGroup::EquivalentFull | PlanGroup::OverlapFull => RepairStatus::FullyRepaired,
                PlanGroup::EquivalentPartial | PlanGroup::OverlapPartial => {
                    RepairStatus::PartiallyRepaired
                }
                PlanGroup::OverlapOdd | PlanGroup::NoneOnly => RepairStatus::Unrepaired,
            };
            assert_eq!(
                outcome.status, expected,
                "{} ({:?})",
                outcome.workflow_id, stored.group
            );
        }

        assert_eq!(summary.healthy, plan.healthy);
        assert_eq!(
            summary.fully_repaired,
            plan.equivalent_full + plan.overlap_full
        );
        assert_eq!(
            summary.partially_repaired,
            plan.equivalent_partial + plan.overlap_partial
        );
        assert_eq!(
            summary.via_overlapping,
            plan.overlap_full + plan.overlap_partial
        );
        assert_eq!(
            summary.via_equivalent,
            plan.equivalent_full + plan.equivalent_partial
        );
        assert_eq!(
            summary.repaired(),
            plan.equivalent_full
                + plan.equivalent_partial
                + plan.overlap_full
                + plan.overlap_partial
        );
    }

    #[test]
    fn fully_repaired_workflows_reenact_successfully() {
        let mut u = build();
        let pool = build_synthetic_pool(&u.ontology, 40, 77);
        let plan = RepositoryPlan::small(11);
        let repo = generate_repository(&u, &pool, &plan);
        let corpus = build_corpus(&u, &repo, &pool);
        u.decay();
        let study = run_matching_study(&u.catalog, &corpus, &u.ontology);
        let (outcomes, _) = repair_repository(&repo, &u.catalog, &study, &corpus, &u.ontology);

        for (stored, outcome) in repo.workflows.iter().zip(&outcomes) {
            if outcome.status != RepairStatus::FullyRepaired {
                continue;
            }
            let mut repaired = stored.workflow.clone();
            for s in &outcome.substitutions {
                repaired.steps[s.step].module = s.to.clone();
            }
            let trace = dex_workflow::enact(&repaired, &u.catalog, &stored.sample_inputs)
                .unwrap_or_else(|e| panic!("{}: {e}", stored.workflow.id));
            // The repaired workflow must deliver the pre-decay results.
            let original = corpus.traces_of(&stored.workflow.id).next().unwrap();
            assert_eq!(
                trace.outputs, original.outputs,
                "{}: repaired outputs differ",
                stored.workflow.id
            );
        }
    }
}
