//! The §6 matching study (Figure 8): classify every withdrawn module
//! against the available population using provenance-reconstructed data
//! examples.

use dex_core::matching::{
    map_parameters, match_against_examples_retrying, MappingMode, MatchVerdict,
    PartitionFingerprint,
};
use dex_modules::{InvocationCache, ModuleCatalog, ModuleId, Retrier, RetryPolicy, RetryStats};
use dex_ontology::Ontology;
use dex_provenance::{reconstruct_examples, ProvenanceCorpus};
use std::collections::BTreeMap;

/// The matching outcome for one legacy module.
#[derive(Debug, Clone)]
pub struct LegacyMatch {
    /// The withdrawn module.
    pub module: ModuleId,
    /// How many data examples were reconstructed from provenance.
    pub reconstructed_examples: usize,
    /// How many available candidates were comparable at all.
    pub candidates_compared: usize,
    /// The best verdict found: the candidate and its verdict. `None` when
    /// nothing comparable exists or everything was disjoint.
    pub best: Option<(ModuleId, MatchVerdict)>,
}

impl LegacyMatch {
    /// Whether an equivalent substitute was found.
    pub fn has_equivalent(&self) -> bool {
        matches!(self.best, Some((_, MatchVerdict::Equivalent { .. })))
    }

    /// Whether the best finding is an overlapping substitute.
    pub fn has_overlap_only(&self) -> bool {
        matches!(self.best, Some((_, MatchVerdict::Overlapping { .. })))
    }
}

/// The full study result.
#[derive(Debug, Clone, Default)]
pub struct MatchingStudy {
    /// Per-legacy outcomes, in module-id order.
    pub matches: BTreeMap<ModuleId, LegacyMatch>,
    /// Retry accounting for the study's replay invocations — all zeros when
    /// the study ran with retries disabled (the default).
    pub retry: RetryStats,
}

impl MatchingStudy {
    /// `(equivalent, overlapping, none)` counts — the three bars of
    /// Figure 8.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut eq = 0;
        let mut ov = 0;
        let mut none = 0;
        for m in self.matches.values() {
            if m.has_equivalent() {
                eq += 1;
            } else if m.has_overlap_only() {
                ov += 1;
            } else {
                none += 1;
            }
        }
        (eq, ov, none)
    }

    /// The accepted substitute for a legacy module, if any.
    pub fn substitute_for(&self, legacy: &ModuleId) -> Option<&(ModuleId, MatchVerdict)> {
        self.matches.get(legacy).and_then(|m| m.best.as_ref())
    }

    /// Assembles a study from per-legacy outcomes computed elsewhere —
    /// the incremental layer feeds this with verdicts *carried forward*
    /// from its maintained matching matrix at withdrawal time, so the
    /// substitute search costs zero replay invocations. Retry accounting
    /// stays zero: no invocations happened on this path.
    pub fn from_carried(matches: impl IntoIterator<Item = LegacyMatch>) -> MatchingStudy {
        MatchingStudy {
            matches: matches.into_iter().map(|m| (m.module.clone(), m)).collect(),
            retry: RetryStats::default(),
        }
    }
}

/// Runs the study: for every withdrawn module of `catalog`, reconstruct its
/// data examples from `corpus` and replay them against every available
/// module with a compatible interface (strict mapping first; the Figure 7
/// subsuming relaxation as a fallback for candidates that fail strict).
///
/// Candidate ranking: an `Equivalent` verdict wins outright; otherwise the
/// `Overlapping` candidate with the highest agreement ratio wins; `Disjoint`
/// candidates never count as substitutes.
pub fn run_matching_study(
    catalog: &ModuleCatalog,
    corpus: &ProvenanceCorpus,
    ontology: &Ontology,
) -> MatchingStudy {
    run_matching_study_with(catalog, corpus, ontology, RetryPolicy::none())
}

/// [`run_matching_study`] with transient-fault tolerance: every candidate
/// replay invocation goes through one study-wide [`Retrier`] built from
/// `retry`, so a momentarily flapping candidate is re-attempted instead of
/// silently classified from a failed replay. The per-run accounting lands in
/// [`MatchingStudy::retry`].
pub fn run_matching_study_with(
    catalog: &ModuleCatalog,
    corpus: &ProvenanceCorpus,
    ontology: &Ontology,
    retry: RetryPolicy,
) -> MatchingStudy {
    let mut study = MatchingStudy::default();
    let withdrawn = catalog.withdrawn_ids();
    // One memo across the whole study: legacy modules decayed from the same
    // template replay the same candidates on the same reconstructed values.
    let invocations = InvocationCache::new();
    let retrier = Retrier::new(retry);
    // Fingerprint every available candidate once for the whole study: the
    // substitute scan below is O(withdrawn × available) and most pairs die
    // on interface shape alone, without touching the mapping solver.
    let candidates: Vec<_> = catalog
        .iter_available()
        .map(|(id, module)| {
            (
                id,
                module,
                PartitionFingerprint::of(module.descriptor(), ontology),
            )
        })
        .collect();

    for legacy in &withdrawn {
        let descriptor = catalog
            .descriptor(legacy)
            .expect("withdrawn modules keep descriptors")
            .clone();
        let examples = reconstruct_examples(corpus, legacy, &descriptor);
        let mut best: Option<(ModuleId, MatchVerdict)> = None;
        let mut compared = 0usize;

        if !examples.is_empty() {
            let legacy_fp = PartitionFingerprint::of(&descriptor, ontology);
            for (candidate_id, candidate, candidate_fp) in &candidates {
                // Fingerprint prefilter: an arity mismatch rules out every
                // mapping mode outright, and a fingerprint mismatch rules
                // out the strict mode (unequal label multisets admit no
                // 1-to-1 strict mapping), leaving only the subsuming
                // fallback to solve. Compatible fingerprints are merely an
                // admission ticket — the solver still confirms.
                if !legacy_fp.arity_compatible(candidate_fp) {
                    continue;
                }
                // Prefer strict mapping; fall back to the subsuming mode.
                let mode = if legacy_fp.compatible(candidate_fp)
                    && map_parameters(
                        &descriptor,
                        candidate.descriptor(),
                        ontology,
                        MappingMode::Strict,
                    )
                    .is_ok()
                {
                    MappingMode::Strict
                } else if map_parameters(
                    &descriptor,
                    candidate.descriptor(),
                    ontology,
                    MappingMode::Subsuming,
                )
                .is_ok()
                {
                    MappingMode::Subsuming
                } else {
                    continue;
                };
                let Ok(verdict) = match_against_examples_retrying(
                    &descriptor,
                    &examples,
                    candidate.as_ref(),
                    ontology,
                    mode,
                    &invocations,
                    &retrier,
                ) else {
                    continue;
                };
                compared += 1;
                best = pick_better_substitute(best, ((*candidate_id).clone(), verdict));
                if matches!(best, Some((_, MatchVerdict::Equivalent { .. }))) {
                    // Nothing beats an equivalent; stop scanning.
                    break;
                }
            }
        }

        study.matches.insert(
            legacy.clone(),
            LegacyMatch {
                module: legacy.clone(),
                reconstructed_examples: examples.len(),
                candidates_compared: compared,
                best: best.filter(|(_, v)| v.is_usable()),
            },
        );
    }
    invocations.publish_telemetry();
    study.retry = retrier.stats();
    study
}

/// The study's candidate ranking, exposed for callers that rank verdicts
/// they already hold (the incremental layer's carried-forward substitute
/// capture): an `Equivalent` verdict wins outright, then the `Overlapping`
/// candidate with the highest agreement ratio; `Disjoint` never wins, and
/// on equal rank the incumbent is kept (first-found wins, matching the
/// study's early-exit scan order).
pub fn pick_better_substitute(
    current: Option<(ModuleId, MatchVerdict)>,
    challenger: (ModuleId, MatchVerdict),
) -> Option<(ModuleId, MatchVerdict)> {
    fn rank(v: &MatchVerdict) -> (u8, f64) {
        match v {
            MatchVerdict::Equivalent { .. } => (2, 1.0),
            MatchVerdict::Overlapping { agreeing, compared } => {
                (1, *agreeing as f64 / *compared as f64)
            }
            MatchVerdict::Disjoint { .. } => (0, 0.0),
        }
    }
    match current {
        None => Some(challenger),
        Some(current) => {
            if rank(&challenger.1) > rank(&current.1) {
                Some(challenger)
            } else {
                Some(current)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::build_corpus;
    use crate::repository::{generate_repository, RepositoryPlan};
    use dex_pool::build_synthetic_pool;
    use dex_universe::{build, ExpectedMatch};

    /// The Figure 8 headline: matching the withdrawn modules against the
    /// available 252 finds exactly the planted 16 equivalent and 23
    /// overlapping substitutes.
    #[test]
    fn figure8_counts_are_16_23_33() {
        let mut u = build();
        let pool = build_synthetic_pool(&u.ontology, 40, 77);
        let repo = generate_repository(&u, &pool, &RepositoryPlan::small(1));
        let corpus = build_corpus(&u, &repo, &pool);
        u.decay();
        let study = run_matching_study(&u.catalog, &corpus, &u.ontology);
        assert_eq!(study.matches.len(), 72);

        // Per-module agreement with the planted ground truth.
        for (legacy, expected) in &u.expected_match {
            let m = &study.matches[legacy];
            match expected {
                ExpectedMatch::Equivalent(_) => {
                    assert!(
                        m.has_equivalent(),
                        "{legacy}: expected equivalent, got {:?}",
                        m.best
                    )
                }
                ExpectedMatch::Overlapping(_) => assert!(
                    m.has_overlap_only(),
                    "{legacy}: expected overlapping, got {:?}",
                    m.best
                ),
                ExpectedMatch::None => {
                    assert!(
                        m.best.is_none(),
                        "{legacy}: expected none, got {:?}",
                        m.best
                    )
                }
            }
        }
        assert_eq!(study.counts(), (16, 23, 33));
    }
}
