//! Provenance corpus construction: repository enactments + archive traces.

use crate::repository::WorkflowRepository;
use dex_core::ValueClassifier;
use dex_modules::{InvocationCache, ModuleId, Retrier, RetryPolicy, RetryStats};
use dex_pool::InstancePool;
use dex_provenance::{HarvestSink, ProvenanceCorpus};
use dex_universe::Universe;
use dex_values::Value;
use dex_workflow::{enact_retrying, EnactmentTrace, StepRecord};

/// Failure accounting for a tolerant corpus build: which enactments and
/// archive invocations were skipped, and what the retrier spent getting the
/// rest through.
#[derive(Debug, Clone, Default)]
pub struct CorpusBuildReport {
    /// Repository workflows whose enactment failed even after retries, with
    /// the rendered error. Empty on a healthy (or fully recovered) build.
    pub failed_enactments: Vec<(String, String)>,
    /// Legacy archive invocations that failed permanently, per module.
    pub failed_archive_invocations: Vec<(ModuleId, String)>,
    /// Lifetime retry accounting for the build's internal retrier.
    pub retry: RetryStats,
}

impl CorpusBuildReport {
    /// True when every enactment and archive invocation landed.
    pub fn is_clean(&self) -> bool {
        self.failed_enactments.is_empty() && self.failed_archive_invocations.is_empty()
    }
}

/// Builds the provenance corpus the §6 study trawls.
///
/// Two sources, mirroring the paper:
///
/// 1. every repository workflow is enacted once with its published sample
///    inputs, **before** decay (all modules still supplied);
/// 2. "previous eScience project" archives (the paper's iSpider traces): a
///    handful of direct invocations per legacy module, with diverse inputs
///    drawn from the pool — these give every withdrawn module reconstruction
///    coverage beyond whatever the repository happened to exercise.
///
/// Must be called on a pre-decay universe; enactment failures are a bug in
/// the repository generator and panic. For fault-tolerant builds (injected
/// faults, flaky services) use [`build_corpus_with`], which retries
/// transients and records rather than panics on residual failures.
pub fn build_corpus(
    universe: &Universe,
    repository: &WorkflowRepository,
    pool: &InstancePool,
) -> ProvenanceCorpus {
    let (corpus, report) = build_corpus_with(universe, repository, pool, RetryPolicy::none(), true);
    debug_assert!(report.is_clean());
    corpus
}

/// [`build_corpus`] with fault tolerance: transiently failing enactments and
/// archive invocations are retried under `retry`; anything that still fails
/// is *skipped and accounted* in the returned [`CorpusBuildReport`] instead
/// of aborting the build — unless `fail_fast` is set, which restores the
/// panic-on-failure contract for callers that treat any failure as a bug.
pub fn build_corpus_with(
    universe: &Universe,
    repository: &WorkflowRepository,
    pool: &InstancePool,
    retry: RetryPolicy,
    fail_fast: bool,
) -> (ProvenanceCorpus, CorpusBuildReport) {
    let mut corpus = ProvenanceCorpus::new("simulated-taverna");
    let mut report = CorpusBuildReport::default();
    let retrier = Retrier::new(retry);

    // Repository workflows are stamped out from shared templates over shared
    // pool values, so their step invocations repeat heavily; one memo across
    // all enactments skips the duplicates without changing any trace.
    let invocations = InvocationCache::new();
    for stored in &repository.workflows {
        match enact_retrying(
            &stored.workflow,
            &universe.catalog,
            &stored.sample_inputs,
            &invocations,
            &retrier,
        ) {
            Ok(trace) => corpus.add(trace),
            Err(e) if fail_fast => {
                panic!(
                    "pre-decay enactment of {} must succeed: {e}",
                    stored.workflow.id
                )
            }
            Err(e) => {
                if dex_telemetry::is_enabled() {
                    dex_telemetry::counter_add("dex.corpus.enact_failures", 1);
                }
                report
                    .failed_enactments
                    .push((stored.workflow.id.clone(), e.to_string()));
            }
        }
    }

    for legacy in &universe.legacy {
        for (k, inputs) in archive_inputs(universe, pool, legacy)
            .into_iter()
            .enumerate()
        {
            let Some(module) = universe.catalog.get(legacy) else {
                report
                    .failed_archive_invocations
                    .push((legacy.clone(), "module unavailable".to_string()));
                continue;
            };
            match retrier.invoke(module.as_ref(), &inputs) {
                Ok(outputs) => corpus.add(EnactmentTrace {
                    workflow: format!("ispider:{legacy}:{k}"),
                    inputs: inputs.clone(),
                    steps: vec![StepRecord {
                        step: 0,
                        step_name: "invoke".to_string(),
                        module: legacy.clone(),
                        inputs,
                        outputs: outputs.clone(),
                    }],
                    outputs,
                }),
                // Archive invocations were always best-effort (a rejected
                // input simply yields no trace), so permanent rejections are
                // not failures — but record them when telemetry is on so a
                // faulted run can be audited.
                Err(e) if e.is_transient() => {
                    if dex_telemetry::is_enabled() {
                        dex_telemetry::counter_add("dex.corpus.archive_failures", 1);
                    }
                    report
                        .failed_archive_invocations
                        .push((legacy.clone(), e.to_string()));
                }
                Err(_) => continue,
            }
        }
    }

    report.retry = retrier.stats();
    (corpus, report)
}

/// Streams the corpus build straight into a harvested pool: every workflow
/// is enacted and its trace absorbed into a [`HarvestSink`] immediately, so
/// at no point does more than the one in-flight trace exist. Memory is
/// bounded by distinct harvested data, not by enactment volume — this is
/// what lets a 100k-module repository build its pool without materializing
/// a [`ProvenanceCorpus`] first.
///
/// The trace *sources* are exactly those of [`build_corpus_with`] in the
/// tolerant (non-`fail_fast`) mode — repository enactments first, then the
/// legacy archive invocations — and the annotation rules are those of
/// [`dex_provenance::harvest_pool`], so the resulting pool is byte-identical
/// to `harvest_pool(&build_corpus_with(..).0, ..)` (pinned by property
/// tests below). `invocations` is caller-owned so a warm cache can be
/// shared across the build and everything downstream of it.
pub fn stream_harvested_pool(
    universe: &Universe,
    repository: &WorkflowRepository,
    pool: &InstancePool,
    classifier: ValueClassifier,
    retry: RetryPolicy,
    invocations: &InvocationCache,
) -> (InstancePool, CorpusBuildReport) {
    let _span = dex_telemetry::span("corpus.stream_harvest");
    let mut sink = HarvestSink::new("harvest-simulated-taverna", &universe.catalog, classifier);
    let mut report = CorpusBuildReport::default();
    let retrier = Retrier::new(retry);

    for stored in &repository.workflows {
        match enact_retrying(
            &stored.workflow,
            &universe.catalog,
            &stored.sample_inputs,
            invocations,
            &retrier,
        ) {
            Ok(trace) => sink.absorb(&trace),
            Err(e) => {
                if dex_telemetry::is_enabled() {
                    dex_telemetry::counter_add("dex.corpus.enact_failures", 1);
                }
                report
                    .failed_enactments
                    .push((stored.workflow.id.clone(), e.to_string()));
            }
        }
    }

    for legacy in &universe.legacy {
        for (k, inputs) in archive_inputs(universe, pool, legacy)
            .into_iter()
            .enumerate()
        {
            let Some(module) = universe.catalog.get(legacy) else {
                report
                    .failed_archive_invocations
                    .push((legacy.clone(), "module unavailable".to_string()));
                continue;
            };
            match retrier.invoke(module.as_ref(), &inputs) {
                Ok(outputs) => sink.absorb(&EnactmentTrace {
                    workflow: format!("ispider:{legacy}:{k}"),
                    inputs: inputs.clone(),
                    steps: vec![StepRecord {
                        step: 0,
                        step_name: "invoke".to_string(),
                        module: legacy.clone(),
                        inputs,
                        outputs: outputs.clone(),
                    }],
                    outputs,
                }),
                Err(e) if e.is_transient() => {
                    if dex_telemetry::is_enabled() {
                        dex_telemetry::counter_add("dex.corpus.archive_failures", 1);
                    }
                    report
                        .failed_archive_invocations
                        .push((legacy.clone(), e.to_string()));
                }
                Err(_) => continue,
            }
        }
    }

    report.retry = retrier.stats();
    (sink.finish(), report)
}

/// Picks archive inputs for one legacy module: up to six distinct pool
/// realizations per input slot, balanced across the divergence split for
/// overlapping modules (real archives are heterogeneous; this guarantees
/// the heterogeneity survives a small sample).
fn archive_inputs(universe: &Universe, pool: &InstancePool, legacy: &ModuleId) -> Vec<Vec<Value>> {
    let descriptor = universe
        .catalog
        .descriptor(legacy)
        .unwrap_or_else(|| panic!("legacy module {legacy} is not registered in the catalog"));
    assert_eq!(
        descriptor.inputs.len(),
        1,
        "archive generation assumes single-input legacy modules"
    );
    let p = &descriptor.inputs[0];

    let mut agreeing: Vec<Value> = Vec::new();
    let mut diverging: Vec<Value> = Vec::new();
    let mut plain: Vec<Value> = Vec::new();
    for skip in 0..48usize {
        let Some(inst) = pool.get_instance(&p.semantic, &p.structural, skip) else {
            break;
        };
        match crate::keys::diverges_on(legacy, &inst.value) {
            Some(false) => agreeing.push(inst.value.clone()),
            Some(true) => diverging.push(inst.value.clone()),
            None => plain.push(inst.value.clone()),
        }
    }
    let mut chosen: Vec<Value> = Vec::new();
    chosen.extend(agreeing.into_iter().take(3));
    chosen.extend(diverging.into_iter().take(3));
    if chosen.is_empty() {
        chosen.extend(plain.into_iter().take(6));
    }
    chosen.into_iter().map(|v| vec![v]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::diverges_on;
    use crate::repository::{generate_repository, RepositoryPlan};
    use dex_pool::build_synthetic_pool;
    use dex_universe::{build, ExpectedMatch};

    #[test]
    fn corpus_covers_every_legacy_module_with_diverse_inputs() {
        let u = build();
        let pool = build_synthetic_pool(&u.ontology, 40, 77);
        let repo = generate_repository(&u, &pool, &RepositoryPlan::small(1));
        let corpus = build_corpus(&u, &repo, &pool);
        assert!(corpus.len() >= repo.len());

        for (legacy, expected) in &u.expected_match {
            let invocations: Vec<_> = corpus.invocations_of(legacy).collect();
            assert!(
                invocations.len() >= 2,
                "{legacy}: only {} invocations",
                invocations.len()
            );
            if matches!(expected, ExpectedMatch::Overlapping(_)) {
                let mut saw_agree = false;
                let mut saw_diverge = false;
                for record in &invocations {
                    match diverges_on(legacy, &record.inputs[0]) {
                        Some(true) => saw_diverge = true,
                        Some(false) => saw_agree = true,
                        None => {}
                    }
                }
                assert!(
                    saw_agree && saw_diverge,
                    "{legacy}: archive lacks parity diversity"
                );
            }
        }
    }

    #[test]
    fn tolerant_build_matches_the_panicking_build_when_healthy() {
        let u = build();
        let pool = build_synthetic_pool(&u.ontology, 40, 77);
        let repo = generate_repository(&u, &pool, &RepositoryPlan::small(1));
        let strict = build_corpus(&u, &repo, &pool);
        let (tolerant, report) =
            build_corpus_with(&u, &repo, &pool, RetryPolicy::transient(3), false);
        assert!(report.is_clean());
        assert_eq!(report.retry.retries, 0, "no faults, no retries");
        assert_eq!(strict.len(), tolerant.len());
    }

    #[test]
    fn tolerant_build_skips_and_accounts_failed_enactments() {
        let mut u = build();
        let pool = build_synthetic_pool(&u.ontology, 40, 77);
        let repo = generate_repository(&u, &pool, &RepositoryPlan::small(1));
        // Withdraw one workflow module pre-build: every workflow using it now
        // fails its enactment permanently, and the tolerant build must carry
        // on with the rest instead of panicking.
        let victim = repo.workflows[0].workflow.steps[0].module.clone();
        u.catalog.withdraw(&victim);
        let (corpus, report) =
            build_corpus_with(&u, &repo, &pool, RetryPolicy::transient(2), false);
        assert!(!report.is_clean());
        assert!(report
            .failed_enactments
            .iter()
            .any(|(id, _)| *id == repo.workflows[0].workflow.id));
        // Unaffected workflows still contributed traces.
        let affected = report.failed_enactments.len();
        assert!(corpus.len() >= repo.len() - affected);
    }
}
