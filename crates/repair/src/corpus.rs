//! Provenance corpus construction: repository enactments + archive traces.

use crate::repository::WorkflowRepository;
use dex_modules::{InvocationCache, ModuleId};
use dex_pool::InstancePool;
use dex_provenance::ProvenanceCorpus;
use dex_universe::Universe;
use dex_values::Value;
use dex_workflow::{enact_cached, EnactmentTrace, StepRecord};

/// Builds the provenance corpus the §6 study trawls.
///
/// Two sources, mirroring the paper:
///
/// 1. every repository workflow is enacted once with its published sample
///    inputs, **before** decay (all modules still supplied);
/// 2. "previous eScience project" archives (the paper's iSpider traces): a
///    handful of direct invocations per legacy module, with diverse inputs
///    drawn from the pool — these give every withdrawn module reconstruction
///    coverage beyond whatever the repository happened to exercise.
///
/// Must be called on a pre-decay universe; enactment failures are a bug in
/// the repository generator and panic.
pub fn build_corpus(
    universe: &Universe,
    repository: &WorkflowRepository,
    pool: &InstancePool,
) -> ProvenanceCorpus {
    let mut corpus = ProvenanceCorpus::new("simulated-taverna");

    // Repository workflows are stamped out from shared templates over shared
    // pool values, so their step invocations repeat heavily; one memo across
    // all enactments skips the duplicates without changing any trace.
    let invocations = InvocationCache::new();
    for stored in &repository.workflows {
        let trace = enact_cached(
            &stored.workflow,
            &universe.catalog,
            &stored.sample_inputs,
            &invocations,
        )
        .unwrap_or_else(|e| {
            panic!(
                "pre-decay enactment of {} must succeed: {e}",
                stored.workflow.id
            )
        });
        corpus.add(trace);
    }

    for legacy in &universe.legacy {
        for (k, inputs) in archive_inputs(universe, pool, legacy)
            .into_iter()
            .enumerate()
        {
            match universe.catalog.invoke(legacy, &inputs) {
                Ok(outputs) => corpus.add(EnactmentTrace {
                    workflow: format!("ispider:{legacy}:{k}"),
                    inputs: inputs.clone(),
                    steps: vec![StepRecord {
                        step: 0,
                        step_name: "invoke".to_string(),
                        module: legacy.clone(),
                        inputs,
                        outputs: outputs.clone(),
                    }],
                    outputs,
                }),
                Err(_) => continue,
            }
        }
    }

    corpus
}

/// Picks archive inputs for one legacy module: up to six distinct pool
/// realizations per input slot, balanced across the divergence split for
/// overlapping modules (real archives are heterogeneous; this guarantees
/// the heterogeneity survives a small sample).
fn archive_inputs(universe: &Universe, pool: &InstancePool, legacy: &ModuleId) -> Vec<Vec<Value>> {
    let descriptor = universe
        .catalog
        .descriptor(legacy)
        .expect("legacy module registered");
    assert_eq!(
        descriptor.inputs.len(),
        1,
        "archive generation assumes single-input legacy modules"
    );
    let p = &descriptor.inputs[0];

    let mut agreeing: Vec<Value> = Vec::new();
    let mut diverging: Vec<Value> = Vec::new();
    let mut plain: Vec<Value> = Vec::new();
    for skip in 0..48usize {
        let Some(inst) = pool.get_instance(&p.semantic, &p.structural, skip) else {
            break;
        };
        match crate::keys::diverges_on(legacy, &inst.value) {
            Some(false) => agreeing.push(inst.value.clone()),
            Some(true) => diverging.push(inst.value.clone()),
            None => plain.push(inst.value.clone()),
        }
    }
    let mut chosen: Vec<Value> = Vec::new();
    chosen.extend(agreeing.into_iter().take(3));
    chosen.extend(diverging.into_iter().take(3));
    if chosen.is_empty() {
        chosen.extend(plain.into_iter().take(6));
    }
    chosen.into_iter().map(|v| vec![v]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::diverges_on;
    use crate::repository::{generate_repository, RepositoryPlan};
    use dex_pool::build_synthetic_pool;
    use dex_universe::{build, ExpectedMatch};

    #[test]
    fn corpus_covers_every_legacy_module_with_diverse_inputs() {
        let u = build();
        let pool = build_synthetic_pool(&u.ontology, 40, 77);
        let repo = generate_repository(&u, &pool, &RepositoryPlan::small(1));
        let corpus = build_corpus(&u, &repo, &pool);
        assert!(corpus.len() >= repo.len());

        for (legacy, expected) in &u.expected_match {
            let invocations: Vec<_> = corpus.invocations_of(legacy).collect();
            assert!(
                invocations.len() >= 2,
                "{legacy}: only {} invocations",
                invocations.len()
            );
            if matches!(expected, ExpectedMatch::Overlapping(_)) {
                let mut saw_agree = false;
                let mut saw_diverge = false;
                for record in &invocations {
                    match diverges_on(legacy, &record.inputs[0]) {
                        Some(true) => saw_diverge = true,
                        Some(false) => saw_agree = true,
                        None => {}
                    }
                }
                assert!(
                    saw_agree && saw_diverge,
                    "{legacy}: archive lacks parity diversity"
                );
            }
        }
    }
}
