//! Divergence keys of the overlapping legacy modules.
//!
//! Each overlapping legacy module disagrees with its modern counterpart on
//! inputs whose *divergence key* hashes odd (see
//! [`dex_universe::legacy_divergent`]). Which part of the input the key is
//! (the raw accession, the accession inside a record, the sequence, …)
//! depends on the module. The repository generator uses this to plant
//! sample inputs on a chosen side of the split; nothing in the matcher or
//! the repair engine reads it.

use dex_modules::ModuleId;
use dex_universe::legacy_divergent;
use dex_values::formats::records::RecordFormat;
use dex_values::Value;

/// Extracts the divergence key of an input value for an overlapping legacy
/// module, or `None` when the module is not overlapping / the value shape
/// is unexpected.
pub fn divergence_key(module: &ModuleId, input: &Value) -> Option<String> {
    let id = module.as_str();
    let text = input.as_text()?;
    let key = match id {
        "legacy:get_uniprot_record_old"
        | "legacy:get_pdb_record_old"
        | "legacy:get_embl_record_old"
        | "legacy:get_genbank_record_old"
        | "legacy:get_fasta_uniprot_old"
        | "legacy:map_uniprot_go_old"
        | "legacy:map_uniprot_embl_old"
        | "legacy:map_uniprot_entrez_old"
        | "legacy:map_entrez_ensembl_old"
        | "legacy:map_symbol_entrez_old"
        | "legacy:get_dna_sequence_old"
        | "legacy:get_abstract_old"
        | "legacy:annotate_protein_old"
        | "legacy:resolve_term_old"
        | "legacy:digest_protein_old"
        | "legacy:seq_stats_old"
        | "legacy:gc_content_old"
        | "legacy:get_concept_old" => text.to_string(),
        "legacy:conv_genbank_fasta_old" => RecordFormat::GenBank.parse(text).ok()?.accession,
        "legacy:conv_embl_fasta_old" => RecordFormat::Embl.parse(text).ok()?.accession,
        "legacy:conv_pdb_fasta_old" => RecordFormat::Pdb.parse(text).ok()?.accession,
        "legacy:normalize_uniprot_old" => RecordFormat::Uniprot.parse(text).ok()?.accession,
        "legacy:build_tree_old" => RecordFormat::Fasta.parse(text).ok()?.sequence,
        _ => return None,
    };
    Some(key)
}

/// Whether this input makes the overlapping module *disagree* with its
/// modern counterpart.
pub fn diverges_on(module: &ModuleId, input: &Value) -> Option<bool> {
    let key = divergence_key(module, input)?;
    let mut diverges = legacy_divergent(&key);
    // `get_concept_old` only observably diverges when the document mentions
    // more than one concept (first-vs-last pick).
    if module.as_str() == "legacy:get_concept_old" {
        let concepts =
            dex_values::formats::document::extract_concepts(input.as_text().unwrap_or(""));
        if concepts.len() < 2 {
            diverges = false;
        }
    }
    Some(diverges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_universe::build;

    #[test]
    fn every_overlapping_legacy_module_has_a_key_extractor() {
        let u = build();
        let pool = dex_pool::build_synthetic_pool(&u.ontology, 3, 5);
        for (id, expected) in &u.expected_match {
            if matches!(expected, dex_universe::ExpectedMatch::Overlapping(_)) {
                let descriptor = u.catalog.descriptor(id).unwrap();
                let concept = &descriptor.inputs[0].semantic;
                let inst = pool
                    .get_instance(concept, &descriptor.inputs[0].structural, 0)
                    .unwrap_or_else(|| panic!("no instance for {concept}"));
                assert!(
                    divergence_key(id, &inst.value).is_some(),
                    "no divergence key for {id} on a {concept} value"
                );
            }
        }
    }

    #[test]
    fn key_prediction_matches_actual_behavior() {
        // For each overlapping module, invoking the legacy and its modern
        // counterpart must agree exactly when `diverges_on` says so.
        let u = build();
        let pool = dex_pool::build_synthetic_pool(&u.ontology, 8, 6);
        for (id, expected) in &u.expected_match {
            let dex_universe::ExpectedMatch::Overlapping(target) = expected else {
                continue;
            };
            let descriptor = u.catalog.descriptor(id).unwrap().clone();
            let concept = descriptor.inputs[0].semantic.clone();
            for skip in 0..8 {
                let Some(inst) =
                    pool.get_instance(&concept, &descriptor.inputs[0].structural, skip)
                else {
                    break;
                };
                let Some(expected_diverge) = diverges_on(id, &inst.value) else {
                    continue;
                };
                let legacy_out = u.catalog.invoke(id, std::slice::from_ref(&inst.value));
                let modern_out = u.catalog.invoke(target, std::slice::from_ref(&inst.value));
                if let (Ok(a), Ok(b)) = (legacy_out, modern_out) {
                    assert_eq!(
                        a != b,
                        expected_diverge,
                        "{id} vs {target} on {}",
                        inst.value.preview(40)
                    );
                }
            }
        }
    }

    #[test]
    fn non_overlapping_modules_have_no_key() {
        assert!(divergence_key(&"legacy:get_homologous".into(), &Value::text("P12345")).is_none());
        assert!(divergence_key(&"dr:get_uniprot_record".into(), &Value::text("P12345")).is_none());
    }
}
