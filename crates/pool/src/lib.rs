//! # dex-pool
//!
//! Pools of semantically annotated data instances — the "pool of annotated
//! instances `pl`" that §3.2 of the paper requires for fully automating
//! data-example construction.
//!
//! An [`AnnotatedInstance`] pairs a concrete [`Value`] with the name of the
//! *most specific* ontology concept it instantiates, plus where it came from
//! (harvested provenance, synthesis, or manual curation). The pool supports
//! the paper's `getInstance(c, pl)` with realization semantics: the instance
//! returned for a concept `c` is an instance of `c` that is *not* an instance
//! of any strict sub-concept of `c`.
//!
//! Pools are built two ways, mirroring the paper:
//! * [`build_synthetic_pool`] — synthesis per realizable ontology concept
//!   (what a curator would supply by hand);
//! * harvesting from a workflow provenance corpus (see `dex-provenance`),
//!   which is how the paper populated its pool from the Taverna corpus.
//!
//! ```
//! use dex_pool::{AnnotatedInstance, InstancePool};
//! use dex_values::{StructuralType, Value};
//!
//! let mut pool = InstancePool::new("demo");
//! pool.add(AnnotatedInstance::synthetic(Value::text("P12345"), "UniprotAccession"));
//! let inst = pool
//!     .get_instance("UniprotAccession", &StructuralType::Text, 0)
//!     .unwrap();
//! assert_eq!(inst.value, Value::text("P12345"));
//! ```

pub mod instance;
pub mod pool;
pub mod stats;
pub mod synthetic;

pub use instance::{AnnotatedInstance, InstanceSource};
pub use pool::{ConceptIndex, InstancePool};
pub use stats::PoolStats;
pub use synthetic::{build_synthetic_pool, build_text_pool, text_instance};

pub use dex_values::Value;
