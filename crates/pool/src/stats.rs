//! Pool statistics, for experiment reporting and pool-size ablations.

use crate::pool::InstancePool;
use std::collections::BTreeMap;

/// Summary statistics over an [`InstancePool`].
#[derive(Debug, Clone, PartialEq)]
pub struct PoolStats {
    /// Total instance count.
    pub instances: usize,
    /// Distinct concepts with at least one realization.
    pub concepts: usize,
    /// Total payload bytes across all values.
    pub payload_bytes: usize,
    /// Instance count per concept, sorted by concept name.
    pub per_concept: BTreeMap<String, usize>,
}

impl PoolStats {
    /// Computes statistics for a pool.
    pub fn of(pool: &InstancePool) -> PoolStats {
        let mut per_concept: BTreeMap<String, usize> = BTreeMap::new();
        let mut payload_bytes = 0;
        for inst in pool.iter() {
            *per_concept.entry(inst.concept.clone()).or_default() += 1;
            payload_bytes += inst.value.payload_bytes();
        }
        PoolStats {
            instances: pool.len(),
            concepts: per_concept.len(),
            payload_bytes,
            per_concept,
        }
    }

    /// The minimum per-concept instance count, 0 for an empty pool.
    pub fn min_per_concept(&self) -> usize {
        self.per_concept.values().copied().min().unwrap_or(0)
    }

    /// The maximum per-concept instance count, 0 for an empty pool.
    pub fn max_per_concept(&self) -> usize {
        self.per_concept.values().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::AnnotatedInstance;
    use dex_values::Value;

    #[test]
    fn stats_count_correctly() {
        let mut p = InstancePool::new("t");
        p.add(AnnotatedInstance::synthetic(Value::text("abcd"), "A"));
        p.add(AnnotatedInstance::synthetic(Value::text("ef"), "A"));
        p.add(AnnotatedInstance::synthetic(Value::Integer(1), "B"));
        let s = PoolStats::of(&p);
        assert_eq!(s.instances, 3);
        assert_eq!(s.concepts, 2);
        assert_eq!(s.payload_bytes, 4 + 2 + 8);
        assert_eq!(s.per_concept["A"], 2);
        assert_eq!(s.min_per_concept(), 1);
        assert_eq!(s.max_per_concept(), 2);
    }

    #[test]
    fn empty_pool_stats() {
        let s = PoolStats::of(&InstancePool::new("e"));
        assert_eq!(s.instances, 0);
        assert_eq!(s.min_per_concept(), 0);
        assert_eq!(s.max_per_concept(), 0);
    }
}
