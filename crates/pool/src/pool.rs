//! The instance pool and its `getInstance` lookups.

use crate::instance::AnnotatedInstance;
use dex_ontology::Ontology;
use dex_values::StructuralType;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A pool of annotated instances with concept-indexed lookup.
///
/// Instances are kept in insertion order; all lookups return instances in
/// that order, so a fixed pool gives fully deterministic data-example
/// generation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InstancePool {
    name: String,
    instances: Vec<AnnotatedInstance>,
    /// concept name → indices of instances annotated with exactly it.
    #[serde(skip)]
    by_concept: HashMap<String, Vec<usize>>,
}

impl InstancePool {
    /// An empty pool.
    pub fn new(name: impl Into<String>) -> Self {
        InstancePool {
            name: name.into(),
            instances: Vec::new(),
            by_concept: HashMap::new(),
        }
    }

    /// The pool's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the pool has no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Adds an instance.
    pub fn add(&mut self, instance: AnnotatedInstance) {
        let idx = self.instances.len();
        self.by_concept
            .entry(instance.concept.clone())
            .or_default()
            .push(idx);
        self.instances.push(instance);
    }

    /// Iterates all instances in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &AnnotatedInstance> {
        self.instances.iter()
    }

    /// Instances that *realize* `concept` — annotated with exactly it.
    pub fn realizations_of(&self, concept: &str) -> impl Iterator<Item = &AnnotatedInstance> {
        self.by_concept
            .get(concept)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(|&i| &self.instances[i])
    }

    /// The paper's `getInstance(c, pl)`: the first instance realizing
    /// `concept` whose structure is accepted by `structural`; `skip` selects
    /// later candidates deterministically (used by the matcher to pick the
    /// *same* values for two modules, and by ablations to vary values).
    pub fn get_instance(
        &self,
        concept: &str,
        structural: &StructuralType,
        skip: usize,
    ) -> Option<&AnnotatedInstance> {
        self.realizations_of(concept)
            .filter(|inst| inst.value.conforms_to(structural))
            .nth(skip)
    }

    /// Instances of `concept` under instance-of semantics: annotated with
    /// `concept` or any concept subsumed by it. Requires the ontology to
    /// resolve subsumption; instances annotated with names the ontology does
    /// not know are skipped.
    pub fn instances_of<'a>(
        &'a self,
        concept: &str,
        ontology: &'a Ontology,
    ) -> impl Iterator<Item = &'a AnnotatedInstance> {
        let target = ontology.id(concept);
        self.instances.iter().filter(move |inst| {
            let Some(target) = target else { return false };
            ontology
                .id(&inst.concept)
                .is_some_and(|c| ontology.subsumes(target, c))
        })
    }

    /// Concepts that have at least one realization in the pool, sorted.
    pub fn covered_concepts(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .by_concept
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, _)| k.as_str())
            .collect();
        names.sort_unstable();
        names
    }

    /// Rebuilds the concept index (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.by_concept.clear();
        for (idx, inst) in self.instances.iter().enumerate() {
            self.by_concept
                .entry(inst.concept.clone())
                .or_default()
                .push(idx);
        }
    }

    /// Serializes the pool to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Loads a pool from JSON, rebuilding the concept index.
    pub fn from_json(json: &str) -> serde_json::Result<InstancePool> {
        let mut pool: InstancePool = serde_json::from_str(json)?;
        pool.rebuild_index();
        Ok(pool)
    }

    /// Retains only instances satisfying the predicate (used by pool-size
    /// ablations). Rebuilds the index.
    pub fn retain(&mut self, predicate: impl FnMut(&AnnotatedInstance) -> bool) {
        self.instances.retain(predicate);
        self.rebuild_index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::AnnotatedInstance;
    use dex_values::Value;

    fn sample_ontology() -> Ontology {
        dex_ontology::text::parse(
            "ontology t\nBioData\n  Sequence\n    DNA\n    Protein\n  Accession\n",
        )
        .unwrap()
    }

    fn pool() -> InstancePool {
        let mut p = InstancePool::new("test");
        p.add(AnnotatedInstance::synthetic(Value::text("ACGT"), "DNA"));
        p.add(AnnotatedInstance::synthetic(Value::text("MKVL"), "Protein"));
        p.add(AnnotatedInstance::synthetic(Value::text("NNNN"), "Sequence"));
        p.add(AnnotatedInstance::synthetic(Value::text("TTTT"), "DNA"));
        p.add(AnnotatedInstance::synthetic(Value::Integer(7), "Accession"));
        p
    }

    #[test]
    fn realizations_are_exact_matches_in_order() {
        let p = pool();
        let dna: Vec<String> = p
            .realizations_of("DNA")
            .map(|i| i.value.to_string())
            .collect();
        assert_eq!(dna, vec!["ACGT", "TTTT"]);
        assert_eq!(p.realizations_of("Nope").count(), 0);
    }

    #[test]
    fn get_instance_respects_structure_and_skip() {
        let p = pool();
        let first = p
            .get_instance("DNA", &StructuralType::Text, 0)
            .unwrap();
        assert_eq!(first.value, Value::text("ACGT"));
        let second = p
            .get_instance("DNA", &StructuralType::Text, 1)
            .unwrap();
        assert_eq!(second.value, Value::text("TTTT"));
        assert!(p.get_instance("DNA", &StructuralType::Text, 2).is_none());
        // Structural filter: the Accession instance is an Integer.
        assert!(p
            .get_instance("Accession", &StructuralType::Text, 0)
            .is_none());
        assert!(p
            .get_instance("Accession", &StructuralType::Integer, 0)
            .is_some());
    }

    #[test]
    fn instance_of_semantics_includes_descendants() {
        let p = pool();
        let o = sample_ontology();
        let seqs: Vec<String> = p
            .instances_of("Sequence", &o)
            .map(|i| i.value.to_string())
            .collect();
        // DNA + Protein + Sequence realization + DNA again, in pool order.
        assert_eq!(seqs, vec!["ACGT", "MKVL", "NNNN", "TTTT"]);
        assert_eq!(p.instances_of("DNA", &o).count(), 2);
        assert_eq!(p.instances_of("Unknown", &o).count(), 0);
    }

    #[test]
    fn covered_concepts_sorted() {
        let p = pool();
        assert_eq!(
            p.covered_concepts(),
            vec!["Accession", "DNA", "Protein", "Sequence"]
        );
    }

    #[test]
    fn retain_rebuilds_index() {
        let mut p = pool();
        p.retain(|i| i.concept != "DNA");
        assert_eq!(p.len(), 3);
        assert_eq!(p.realizations_of("DNA").count(), 0);
        assert_eq!(p.realizations_of("Protein").count(), 1);
    }

    #[test]
    fn serde_round_trip_with_reindex() {
        let p = pool();
        let json = p.to_json().unwrap();
        let back = InstancePool::from_json(&json).unwrap();
        assert_eq!(back.len(), p.len());
        assert_eq!(back.realizations_of("DNA").count(), 2);
        assert!(back
            .get_instance("Protein", &StructuralType::Text, 0)
            .is_some());
    }
}
