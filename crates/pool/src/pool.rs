//! The instance pool and its `getInstance` lookups.

use crate::instance::AnnotatedInstance;
use dex_ontology::{ConceptId, Ontology};
use dex_values::{StructuralType, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Structural conformance of one pool instance, precomputed at index time.
///
/// `get_instance` must test every realization candidate against the
/// parameter's structural type; caching the verdict-determining shape here
/// turns that test into an enum match + [`StructuralType::accepts`] instead
/// of a recursive walk over the value on every query.
#[derive(Debug, Clone)]
enum CachedShape {
    /// `Null`: conforms to every structural type.
    Any,
    /// A value whose conformance is exactly `query.accepts(shape)` — scalars,
    /// and lists whose non-null elements all share one structural type.
    Exact(StructuralType),
    /// Mixed or empty lists: conformance needs the full recursive
    /// [`Value::conforms_to`] walk.
    Opaque,
}

/// Pool-lookup counters, interned once — `get_instance` is the hottest
/// instrumented path in the generator.
fn pool_counters() -> &'static (
    dex_telemetry::Counter,
    dex_telemetry::Counter,
    dex_telemetry::Counter,
) {
    use std::sync::OnceLock;
    static COUNTERS: OnceLock<(
        dex_telemetry::Counter,
        dex_telemetry::Counter,
        dex_telemetry::Counter,
    )> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        (
            dex_telemetry::counter("dex.pool.lookups"),
            dex_telemetry::counter("dex.pool.lookup_misses"),
            dex_telemetry::counter("dex.pool.subtree_merges"),
        )
    })
}

impl CachedShape {
    fn of(value: &Value) -> CachedShape {
        match value {
            Value::Null => CachedShape::Any,
            Value::List(items) => {
                let mut inner: Option<StructuralType> = None;
                for item in items {
                    match CachedShape::of(item) {
                        CachedShape::Any => {}
                        CachedShape::Exact(t) => match &inner {
                            None => inner = Some(t),
                            Some(prev) if *prev == t => {}
                            Some(_) => return CachedShape::Opaque,
                        },
                        CachedShape::Opaque => return CachedShape::Opaque,
                    }
                }
                match inner {
                    Some(t) => CachedShape::Exact(StructuralType::list_of(t)),
                    // Empty / all-null lists conform to every list type but
                    // no scalar type; leave those to the full walk.
                    None => CachedShape::Opaque,
                }
            }
            scalar => match scalar.structural_type() {
                Some(t) => CachedShape::Exact(t),
                None => CachedShape::Opaque,
            },
        }
    }
}

/// Realizations of one exact concept: instance indices in insertion order,
/// each with its cached structural shape.
#[derive(Debug, Clone, Default)]
struct Bucket {
    entries: Vec<(usize, CachedShape)>,
}

/// Derived lookup structures, skipped by serde and rebuilt by
/// [`InstancePool::rebuild_index`].
#[derive(Debug, Clone, Default)]
struct PoolIndex {
    /// concept name → slot in `buckets`.
    slot_by_name: HashMap<String, usize>,
    buckets: Vec<Bucket>,
}

impl PoolIndex {
    fn add(&mut self, instance_idx: usize, instance: &AnnotatedInstance) {
        let slot = match self.slot_by_name.get(&instance.concept) {
            Some(&slot) => slot,
            None => {
                let slot = self.buckets.len();
                self.slot_by_name.insert(instance.concept.clone(), slot);
                self.buckets.push(Bucket::default());
                slot
            }
        };
        self.buckets[slot]
            .entries
            .push((instance_idx, CachedShape::of(&instance.value)));
    }

    fn bucket(&self, concept: &str) -> &[(usize, CachedShape)] {
        self.slot_by_name
            .get(concept)
            .map(|&slot| self.buckets[slot].entries.as_slice())
            .unwrap_or(&[])
    }
}

/// A pool of annotated instances with concept-indexed lookup.
///
/// Instances are kept in insertion order; all lookups return instances in
/// that order, so a fixed pool gives fully deterministic data-example
/// generation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InstancePool {
    name: String,
    instances: Vec<AnnotatedInstance>,
    #[serde(skip)]
    index: PoolIndex,
}

impl InstancePool {
    /// An empty pool.
    pub fn new(name: impl Into<String>) -> Self {
        InstancePool {
            name: name.into(),
            instances: Vec::new(),
            index: PoolIndex::default(),
        }
    }

    /// The pool's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the pool has no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Adds an instance.
    pub fn add(&mut self, instance: AnnotatedInstance) {
        let idx = self.instances.len();
        self.index.add(idx, &instance);
        self.instances.push(instance);
    }

    /// Iterates all instances in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &AnnotatedInstance> {
        self.instances.iter()
    }

    /// Instances that *realize* `concept` — annotated with exactly it.
    pub fn realizations_of(&self, concept: &str) -> impl Iterator<Item = &AnnotatedInstance> {
        self.index
            .bucket(concept)
            .iter()
            .map(|&(i, _)| &self.instances[i])
    }

    /// The paper's `getInstance(c, pl)`: the first instance realizing
    /// `concept` whose structure is accepted by `structural`; `skip` selects
    /// later candidates deterministically (used by the matcher to pick the
    /// *same* values for two modules, and by ablations to vary values).
    ///
    /// An indexed lookup: candidates come from the concept's bucket and the
    /// structural test uses the shape cached at index time, so no value is
    /// re-walked per query.
    pub fn get_instance(
        &self,
        concept: &str,
        structural: &StructuralType,
        skip: usize,
    ) -> Option<&AnnotatedInstance> {
        pool_counters().0.add(1);
        let mut remaining = skip;
        for (i, shape) in self.index.bucket(concept) {
            let conforms = match shape {
                CachedShape::Any => true,
                CachedShape::Exact(actual) => structural.accepts(actual),
                CachedShape::Opaque => self.instances[*i].value.conforms_to(structural),
            };
            if conforms {
                if remaining == 0 {
                    return Some(&self.instances[*i]);
                }
                remaining -= 1;
            }
        }
        pool_counters().1.add(1);
        None
    }

    /// Instances of `concept` under instance-of semantics: annotated with
    /// `concept` or any concept subsumed by it. Requires the ontology to
    /// resolve subsumption; instances annotated with names the ontology does
    /// not know are skipped.
    ///
    /// Subtree-aware: enumerates the concept's descendants (a contiguous
    /// pre-order slice under the ontology's interval labels) and merges
    /// their realization buckets, instead of scanning every instance and
    /// walking parent chains. Cost is O(descendants + hits·log hits) rather
    /// than O(pool size × depth).
    pub fn instances_of<'a>(
        &'a self,
        concept: &str,
        ontology: &'a Ontology,
    ) -> impl Iterator<Item = &'a AnnotatedInstance> {
        let indices = match ontology.id(concept) {
            Some(target) => self.subtree_indices(target, ontology),
            None => Vec::new(),
        };
        indices.into_iter().map(move |i| &self.instances[i])
    }

    /// Pool indices of all instances-of `concept`, in insertion order.
    fn subtree_indices(&self, concept: ConceptId, ontology: &Ontology) -> Vec<usize> {
        pool_counters().2.add(1);
        let mut indices: Vec<usize> = Vec::new();
        for c in ontology.descendants(concept) {
            indices.extend(
                self.index
                    .bucket(ontology.concept_name(c))
                    .iter()
                    .map(|&(i, _)| i),
            );
        }
        // Buckets are per-concept runs; sorting restores global insertion
        // order across the merged subtree.
        indices.sort_unstable();
        indices
    }

    /// Resolves this pool's buckets against an ontology once, yielding a
    /// [`ConceptIndex`] whose lookups are keyed by [`ConceptId`] — no name
    /// hashing on any subsequent query.
    pub fn bind<'p>(&'p self, ontology: &Ontology) -> ConceptIndex<'p> {
        let mut slots = vec![None; ontology.len()];
        for (name, &slot) in &self.index.slot_by_name {
            if let Some(id) = ontology.id(name) {
                slots[id.index()] = Some(slot);
            }
        }
        ConceptIndex { pool: self, slots }
    }

    /// Concepts that have at least one realization in the pool, sorted.
    pub fn covered_concepts(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .index
            .slot_by_name
            .iter()
            .filter(|(_, &slot)| !self.index.buckets[slot].entries.is_empty())
            .map(|(k, _)| k.as_str())
            .collect();
        names.sort_unstable();
        names
    }

    /// Rebuilds the concept index (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.index = PoolIndex::default();
        for (idx, inst) in self.instances.iter().enumerate() {
            self.index.add(idx, inst);
        }
    }

    /// Serializes the pool to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Loads a pool from JSON, rebuilding the concept index.
    pub fn from_json(json: &str) -> serde_json::Result<InstancePool> {
        let mut pool: InstancePool = serde_json::from_str(json)?;
        pool.rebuild_index();
        Ok(pool)
    }

    /// Retains only instances satisfying the predicate (used by pool-size
    /// ablations). Rebuilds the index.
    pub fn retain(&mut self, predicate: impl FnMut(&AnnotatedInstance) -> bool) {
        self.instances.retain(predicate);
        self.rebuild_index();
    }

    /// Removes the `occurrence`-th instance annotated exactly `concept`
    /// (in insertion order, the order [`realizations_of`] iterates) and
    /// returns it; `None` — and no change — when the concept has fewer
    /// occurrences. The single-instance mutation behind the incremental
    /// layer's `Delta::PoolRemove` event; rebuilds the index.
    ///
    /// [`realizations_of`]: InstancePool::realizations_of
    pub fn remove_realization(
        &mut self,
        concept: &str,
        occurrence: usize,
    ) -> Option<AnnotatedInstance> {
        let pos = self
            .instances
            .iter()
            .enumerate()
            .filter(|(_, inst)| inst.concept == concept)
            .nth(occurrence)
            .map(|(pos, _)| pos)?;
        let removed = self.instances.remove(pos);
        self.rebuild_index();
        Some(removed)
    }
}

/// An ontology-bound view of an [`InstancePool`]: every lookup is keyed by
/// [`ConceptId`], with the concept-name → bucket resolution done once in
/// [`InstancePool::bind`]. Build it outside a matching loop and reuse it for
/// every query against the same ontology.
#[derive(Debug, Clone)]
pub struct ConceptIndex<'p> {
    pool: &'p InstancePool,
    /// `ConceptId` index → bucket slot in the pool's index (`None` when the
    /// pool holds no realization of that concept).
    slots: Vec<Option<usize>>,
}

impl<'p> ConceptIndex<'p> {
    /// The pool this index resolves into.
    pub fn pool(&self) -> &'p InstancePool {
        self.pool
    }

    fn bucket(&self, concept: ConceptId) -> &'p [(usize, CachedShape)] {
        self.slots
            .get(concept.index())
            .copied()
            .flatten()
            .map(|slot| self.pool.index.buckets[slot].entries.as_slice())
            .unwrap_or(&[])
    }

    /// Instances realizing exactly `concept`, in insertion order.
    pub fn realizations_of(
        &self,
        concept: ConceptId,
    ) -> impl Iterator<Item = &'p AnnotatedInstance> {
        self.bucket(concept)
            .iter()
            .map(|&(i, _)| &self.pool.instances[i])
    }

    /// [`InstancePool::get_instance`] keyed by concept id.
    pub fn get_instance(
        &self,
        concept: ConceptId,
        structural: &StructuralType,
        skip: usize,
    ) -> Option<&'p AnnotatedInstance> {
        pool_counters().0.add(1);
        let mut remaining = skip;
        for (i, shape) in self.bucket(concept) {
            let conforms = match shape {
                CachedShape::Any => true,
                CachedShape::Exact(actual) => structural.accepts(actual),
                CachedShape::Opaque => self.pool.instances[*i].value.conforms_to(structural),
            };
            if conforms {
                if remaining == 0 {
                    return Some(&self.pool.instances[*i]);
                }
                remaining -= 1;
            }
        }
        pool_counters().1.add(1);
        None
    }

    /// [`InstancePool::instances_of`] keyed by concept id: merges the
    /// realization buckets of the concept's descendant slice.
    pub fn instances_of(
        &self,
        concept: ConceptId,
        ontology: &Ontology,
    ) -> Vec<&'p AnnotatedInstance> {
        pool_counters().2.add(1);
        let mut indices: Vec<usize> = Vec::new();
        for c in ontology.descendants(concept) {
            indices.extend(self.bucket(c).iter().map(|&(i, _)| i));
        }
        indices.sort_unstable();
        indices
            .into_iter()
            .map(|i| &self.pool.instances[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::AnnotatedInstance;
    use dex_values::Value;

    fn sample_ontology() -> Ontology {
        dex_ontology::text::parse(
            "ontology t\nBioData\n  Sequence\n    DNA\n    Protein\n  Accession\n",
        )
        .unwrap()
    }

    fn pool() -> InstancePool {
        let mut p = InstancePool::new("test");
        p.add(AnnotatedInstance::synthetic(Value::text("ACGT"), "DNA"));
        p.add(AnnotatedInstance::synthetic(Value::text("MKVL"), "Protein"));
        p.add(AnnotatedInstance::synthetic(
            Value::text("NNNN"),
            "Sequence",
        ));
        p.add(AnnotatedInstance::synthetic(Value::text("TTTT"), "DNA"));
        p.add(AnnotatedInstance::synthetic(Value::Integer(7), "Accession"));
        p
    }

    #[test]
    fn realizations_are_exact_matches_in_order() {
        let p = pool();
        let dna: Vec<String> = p
            .realizations_of("DNA")
            .map(|i| i.value.to_string())
            .collect();
        assert_eq!(dna, vec!["ACGT", "TTTT"]);
        assert_eq!(p.realizations_of("Nope").count(), 0);
    }

    #[test]
    fn get_instance_respects_structure_and_skip() {
        let p = pool();
        let first = p.get_instance("DNA", &StructuralType::Text, 0).unwrap();
        assert_eq!(first.value, Value::text("ACGT"));
        let second = p.get_instance("DNA", &StructuralType::Text, 1).unwrap();
        assert_eq!(second.value, Value::text("TTTT"));
        assert!(p.get_instance("DNA", &StructuralType::Text, 2).is_none());
        // Structural filter: the Accession instance is an Integer.
        assert!(p
            .get_instance("Accession", &StructuralType::Text, 0)
            .is_none());
        assert!(p
            .get_instance("Accession", &StructuralType::Integer, 0)
            .is_some());
    }

    #[test]
    fn instance_of_semantics_includes_descendants() {
        let p = pool();
        let o = sample_ontology();
        let seqs: Vec<String> = p
            .instances_of("Sequence", &o)
            .map(|i| i.value.to_string())
            .collect();
        // DNA + Protein + Sequence realization + DNA again, in pool order.
        assert_eq!(seqs, vec!["ACGT", "MKVL", "NNNN", "TTTT"]);
        assert_eq!(p.instances_of("DNA", &o).count(), 2);
        assert_eq!(p.instances_of("Unknown", &o).count(), 0);
    }

    #[test]
    fn covered_concepts_sorted() {
        let p = pool();
        assert_eq!(
            p.covered_concepts(),
            vec!["Accession", "DNA", "Protein", "Sequence"]
        );
    }

    #[test]
    fn retain_rebuilds_index() {
        let mut p = pool();
        p.retain(|i| i.concept != "DNA");
        assert_eq!(p.len(), 3);
        assert_eq!(p.realizations_of("DNA").count(), 0);
        assert_eq!(p.realizations_of("Protein").count(), 1);
    }

    #[test]
    fn remove_realization_targets_nth_occurrence() {
        let mut p = pool();
        // Occurrence index counts within the concept, not the whole pool.
        let removed = p.remove_realization("DNA", 1).unwrap();
        assert_eq!(removed.value, Value::text("TTTT"));
        assert_eq!(p.len(), 4);
        let dna: Vec<String> = p
            .realizations_of("DNA")
            .map(|i| i.value.to_string())
            .collect();
        assert_eq!(dna, vec!["ACGT"]);
        // Other buckets keep their order after the index rebuild.
        assert!(p
            .get_instance("Accession", &StructuralType::Integer, 0)
            .is_some());
        // Out-of-range occurrence and unknown concept are no-ops.
        assert!(p.remove_realization("DNA", 1).is_none());
        assert!(p.remove_realization("Nope", 0).is_none());
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn serde_round_trip_with_reindex() {
        let p = pool();
        let json = p.to_json().unwrap();
        let back = InstancePool::from_json(&json).unwrap();
        assert_eq!(back.len(), p.len());
        assert_eq!(back.realizations_of("DNA").count(), 2);
        assert!(back
            .get_instance("Protein", &StructuralType::Text, 0)
            .is_some());
    }

    #[test]
    fn bound_index_agrees_with_name_keyed_lookups() {
        let p = pool();
        let o = sample_ontology();
        let idx = p.bind(&o);
        for name in ["BioData", "Sequence", "DNA", "Protein", "Accession"] {
            let id = o.id(name).unwrap();
            let by_name: Vec<&AnnotatedInstance> = p.realizations_of(name).collect();
            let by_id: Vec<&AnnotatedInstance> = idx.realizations_of(id).collect();
            assert_eq!(by_id.len(), by_name.len(), "{name}");
            for (a, b) in by_id.iter().zip(&by_name) {
                assert_eq!(a.value, b.value);
            }
            let of_name: Vec<String> = p
                .instances_of(name, &o)
                .map(|i| i.value.to_string())
                .collect();
            let of_id: Vec<String> = idx
                .instances_of(id, &o)
                .into_iter()
                .map(|i| i.value.to_string())
                .collect();
            assert_eq!(of_id, of_name, "{name}");
            for skip in 0..3 {
                assert_eq!(
                    idx.get_instance(id, &StructuralType::Text, skip)
                        .map(|i| &i.value),
                    p.get_instance(name, &StructuralType::Text, skip)
                        .map(|i| &i.value),
                    "{name} skip {skip}"
                );
            }
        }
    }

    #[test]
    fn cached_shapes_preserve_conformance_semantics() {
        let mut p = InstancePool::new("shapes");
        p.add(AnnotatedInstance::synthetic(Value::Null, "C"));
        p.add(AnnotatedInstance::synthetic(Value::Integer(1), "C"));
        p.add(AnnotatedInstance::synthetic(
            Value::from(vec![1i64, 2]),
            "C",
        ));
        p.add(AnnotatedInstance::synthetic(Value::List(vec![]), "C"));
        p.add(AnnotatedInstance::synthetic(
            Value::List(vec![Value::Integer(1), Value::text("x")]),
            "C",
        ));
        let queries = [
            StructuralType::Text,
            StructuralType::Integer,
            StructuralType::Float,
            StructuralType::list_of(StructuralType::Integer),
            StructuralType::list_of(StructuralType::Float),
            StructuralType::list_of(StructuralType::Text),
        ];
        // Oracle: the unindexed per-value conformance walk.
        for q in &queries {
            let expected: Vec<&AnnotatedInstance> =
                p.iter().filter(|i| i.value.conforms_to(q)).collect();
            for (skip, want) in expected.iter().enumerate() {
                let got = p.get_instance("C", q, skip).unwrap();
                assert_eq!(got.value, want.value, "query {q:?} skip {skip}");
            }
            assert!(p.get_instance("C", q, expected.len()).is_none());
        }
    }

    #[test]
    fn rebuild_index_matches_fresh_scan_after_retain_and_serde() {
        let assert_consistent = |p: &InstancePool| {
            // Every concept's bucket must list exactly the pool indices a
            // fresh scan finds, in insertion order.
            for name in p.covered_concepts() {
                let scanned: Vec<&AnnotatedInstance> =
                    p.iter().filter(|i| i.concept == name).collect();
                let indexed: Vec<&AnnotatedInstance> = p.realizations_of(name).collect();
                assert_eq!(indexed.len(), scanned.len(), "{name}");
                for (a, b) in indexed.iter().zip(&scanned) {
                    assert_eq!(a.value, b.value, "{name}");
                }
            }
            let total: usize = p
                .covered_concepts()
                .iter()
                .map(|n| p.realizations_of(n).count())
                .sum();
            assert_eq!(total, p.len(), "index covers every instance");
        };

        let mut p = pool();
        assert_consistent(&p);
        p.retain(|i| i.concept != "DNA");
        assert_consistent(&p);
        let back = InstancePool::from_json(&p.to_json().unwrap()).unwrap();
        assert_consistent(&back);
        assert_eq!(back.covered_concepts(), p.covered_concepts());
    }
}
