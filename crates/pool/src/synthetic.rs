//! Synthetic pool construction: one curator-in-a-box.

use crate::instance::AnnotatedInstance;
use crate::pool::InstancePool;
use dex_ontology::Ontology;
use dex_values::synth;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a pool holding `per_concept` synthetic realizations of every
/// realizable concept of `ontology` that the synthesizer supports.
///
/// Deterministic in `seed`. Concepts are visited in ontology insertion
/// order; unsupported concepts (none, for the shipped myGrid-like ontology)
/// are skipped silently — callers can detect gaps via
/// [`InstancePool::covered_concepts`].
pub fn build_synthetic_pool(ontology: &Ontology, per_concept: usize, seed: u64) -> InstancePool {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = InstancePool::new(format!("synthetic-{seed}"));
    for concept in ontology.iter() {
        if !ontology.can_be_realized(concept) {
            continue;
        }
        let name = ontology.concept_name(concept);
        for _ in 0..per_concept {
            if let Some(value) = synth::synthesize(name, &mut rng) {
                pool.add(AnnotatedInstance::synthetic(value, name));
            }
        }
    }
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_ontology::mygrid;
    use dex_values::StructuralType;

    #[test]
    fn pool_covers_every_realizable_concept() {
        let onto = mygrid::ontology();
        let pool = build_synthetic_pool(&onto, 3, 1);
        let realizable = onto.iter().filter(|&c| onto.can_be_realized(c)).count();
        assert_eq!(pool.covered_concepts().len(), realizable);
        assert_eq!(pool.len(), realizable * 3);
    }

    #[test]
    fn pool_is_deterministic() {
        let onto = mygrid::ontology();
        let a = build_synthetic_pool(&onto, 2, 42);
        let b = build_synthetic_pool(&onto, 2, 42);
        let va: Vec<_> = a.iter().map(|i| i.value.clone()).collect();
        let vb: Vec<_> = b.iter().map(|i| i.value.clone()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let onto = mygrid::ontology();
        let a = build_synthetic_pool(&onto, 2, 1);
        let b = build_synthetic_pool(&onto, 2, 2);
        let va: Vec<_> = a.iter().map(|i| i.value.clone()).collect();
        let vb: Vec<_> = b.iter().map(|i| i.value.clone()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn get_instance_works_for_key_concepts() {
        let onto = mygrid::ontology();
        let pool = build_synthetic_pool(&onto, 2, 7);
        for concept in ["UniprotAccession", "ProteinSequence", "PeptideMassList"] {
            let ty = dex_values::synth::structural_type_of(concept).unwrap();
            assert!(
                pool.get_instance(concept, &ty, 0).is_some(),
                "no realization for {concept}"
            );
        }
        // Abstract concepts have no realizations.
        assert!(pool
            .get_instance("NucleotideSequence", &StructuralType::Text, 0)
            .is_none());
    }
}
