//! Synthetic pool construction: one curator-in-a-box.

use crate::instance::AnnotatedInstance;
use crate::pool::InstancePool;
use dex_ontology::Ontology;
use dex_values::synth;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a pool holding `per_concept` synthetic realizations of every
/// realizable concept of `ontology` that the synthesizer supports.
///
/// Deterministic in `seed`. Concepts are visited in ontology insertion
/// order; unsupported concepts (none, for the shipped myGrid-like ontology)
/// are skipped silently — callers can detect gaps via
/// [`InstancePool::covered_concepts`].
pub fn build_synthetic_pool(ontology: &Ontology, per_concept: usize, seed: u64) -> InstancePool {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = InstancePool::new(format!("synthetic-{seed}"));
    for concept in ontology.iter() {
        if !ontology.can_be_realized(concept) {
            continue;
        }
        let name = ontology.concept_name(concept);
        for _ in 0..per_concept {
            if let Some(value) = synth::synthesize(name, &mut rng) {
                pool.add(AnnotatedInstance::synthetic(value, name));
            }
        }
    }
    pool
}

/// The canonical text of the `k`-th pool instance of `concept` under `seed`,
/// as produced by [`build_text_pool`]: `ec:{concept}:{k:04}:{salt:08x}`.
///
/// The concept name sits between fixed `:` delimiters, so a value's
/// partition is recoverable from its text alone — the contract the scaled
/// universe's overlapping-module cores key their divergence on
/// (`dex_universe::scale`), pinned by that crate's tests.
pub fn text_instance(concept: &str, k: usize, seed: u64) -> dex_values::Value {
    // FNV-1a over (concept, k, seed): cheap, stable, dependency-free.
    let mut salt = 0xcbf2_9ce4_8422_2325u64;
    for byte in concept
        .bytes()
        .chain(k.to_le_bytes())
        .chain(seed.to_le_bytes())
    {
        salt ^= u64::from(byte);
        salt = salt.wrapping_mul(0x1000_0000_01b3);
    }
    dex_values::Value::text(format!("ec:{concept}:{k:04}:{:08x}", salt as u32))
}

/// Builds a pool holding `per_concept` deterministic *text* realizations of
/// every realizable concept of `ontology` — no synthesizer involved, so it
/// works for ontologies whose concepts the hard-coded myGrid synthesizer
/// has never heard of (the scaled EDAM-shaped ontologies of
/// `dex_universe::scale`, where `build_synthetic_pool` would silently skip
/// every concept and yield an empty pool).
///
/// Deterministic in `seed`; concepts are visited in ontology insertion
/// order and every realizable concept is covered by construction.
pub fn build_text_pool(ontology: &Ontology, per_concept: usize, seed: u64) -> InstancePool {
    let mut pool = InstancePool::new(format!("text-{seed}"));
    for concept in ontology.iter() {
        if !ontology.can_be_realized(concept) {
            continue;
        }
        let name = ontology.concept_name(concept);
        for k in 0..per_concept {
            pool.add(AnnotatedInstance::synthetic(
                text_instance(name, k, seed),
                name,
            ));
        }
    }
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_ontology::mygrid;
    use dex_values::StructuralType;

    #[test]
    fn pool_covers_every_realizable_concept() {
        let onto = mygrid::ontology();
        let pool = build_synthetic_pool(&onto, 3, 1);
        let realizable = onto.iter().filter(|&c| onto.can_be_realized(c)).count();
        assert_eq!(pool.covered_concepts().len(), realizable);
        assert_eq!(pool.len(), realizable * 3);
    }

    #[test]
    fn pool_is_deterministic() {
        let onto = mygrid::ontology();
        let a = build_synthetic_pool(&onto, 2, 42);
        let b = build_synthetic_pool(&onto, 2, 42);
        let va: Vec<_> = a.iter().map(|i| i.value.clone()).collect();
        let vb: Vec<_> = b.iter().map(|i| i.value.clone()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let onto = mygrid::ontology();
        let a = build_synthetic_pool(&onto, 2, 1);
        let b = build_synthetic_pool(&onto, 2, 2);
        let va: Vec<_> = a.iter().map(|i| i.value.clone()).collect();
        let vb: Vec<_> = b.iter().map(|i| i.value.clone()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn text_pool_covers_every_realizable_concept_of_any_ontology() {
        let mut builder = Ontology::builder("alien");
        builder.root("Thing").unwrap();
        builder.abstract_child("Abstract", "Thing").unwrap();
        builder.child("ConcreteA", "Abstract").unwrap();
        builder.child("ConcreteB", "Abstract").unwrap();
        let onto = builder.build().unwrap();
        // The synthesizer knows none of these names…
        assert_eq!(build_synthetic_pool(&onto, 2, 1).len(), 0);
        // …but the text pool covers all three realizable concepts.
        let pool = build_text_pool(&onto, 2, 1);
        assert_eq!(pool.len(), 6);
        for concept in ["Thing", "ConcreteA", "ConcreteB"] {
            let inst = pool
                .get_instance(concept, &StructuralType::Text, 0)
                .unwrap_or_else(|| panic!("no realization for {concept}"));
            let text = inst.value.as_text().unwrap();
            assert!(
                text.starts_with(&format!("ec:{concept}:")),
                "value text {text} must carry its partition tag"
            );
        }
        assert!(pool
            .get_instance("Abstract", &StructuralType::Text, 0)
            .is_none());
    }

    #[test]
    fn text_pool_is_deterministic_and_seed_sensitive() {
        let onto = mygrid::ontology();
        let a: Vec<_> = build_text_pool(&onto, 2, 9).iter().cloned().collect();
        let b: Vec<_> = build_text_pool(&onto, 2, 9).iter().cloned().collect();
        let c: Vec<_> = build_text_pool(&onto, 2, 10).iter().cloned().collect();
        assert_eq!(a, b);
        assert_ne!(
            a.iter().map(|i| i.value.clone()).collect::<Vec<_>>(),
            c.iter().map(|i| i.value.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn get_instance_works_for_key_concepts() {
        let onto = mygrid::ontology();
        let pool = build_synthetic_pool(&onto, 2, 7);
        for concept in ["UniprotAccession", "ProteinSequence", "PeptideMassList"] {
            let ty = dex_values::synth::structural_type_of(concept).unwrap();
            assert!(
                pool.get_instance(concept, &ty, 0).is_some(),
                "no realization for {concept}"
            );
        }
        // Abstract concepts have no realizations.
        assert!(pool
            .get_instance("NucleotideSequence", &StructuralType::Text, 0)
            .is_none());
    }
}
