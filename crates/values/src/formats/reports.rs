//! Analysis report formats: alignment reports, identification reports,
//! annotation summaries and newick trees.
//!
//! Data-analysis modules emit these; the matcher compares them verbatim, so
//! renderings are deterministic functions of their logical content.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One hit inside an alignment report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlignmentHit {
    /// Accession of the matched entry.
    pub accession: String,
    /// Alignment score (higher is better).
    pub score: f64,
    /// E-value (lower is better).
    pub evalue: f64,
}

/// A sequence-similarity search report (BLAST-like or FASTA-like).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlignmentReport {
    /// Name of the algorithm that produced the report (e.g. `blastp`).
    pub program: String,
    /// Database searched.
    pub database: String,
    /// Echo of the query (possibly elided).
    pub query: String,
    /// Hits, best first.
    pub hits: Vec<AlignmentHit>,
}

impl AlignmentReport {
    /// Renders the report as flat text; [`AlignmentReport::parse`] inverts it.
    pub fn render(&self) -> String {
        let mut out = format!(
            "PROGRAM  {}\nDATABASE {}\nQUERY    {}\nHITS     {}\n",
            self.program,
            self.database,
            self.query,
            self.hits.len()
        );
        for (rank, hit) in self.hits.iter().enumerate() {
            out.push_str(&format!(
                "{:>4}  {:<16} score={:.1} evalue={:e}\n",
                rank + 1,
                hit.accession,
                hit.score,
                hit.evalue
            ));
        }
        out
    }

    /// Parses a rendered report.
    pub fn parse(text: &str) -> Option<AlignmentReport> {
        let mut program = None;
        let mut database = None;
        let mut query = None;
        let mut hits = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("PROGRAM  ") {
                program = Some(rest.trim().to_string());
            } else if let Some(rest) = line.strip_prefix("DATABASE ") {
                database = Some(rest.trim().to_string());
            } else if let Some(rest) = line.strip_prefix("QUERY    ") {
                query = Some(rest.trim().to_string());
            } else if line.starts_with("HITS") {
                // count line; individual hits follow
            } else {
                let mut parts = line.split_whitespace();
                let _rank = parts.next()?;
                let accession = parts.next()?.to_string();
                let score = parts.next()?.strip_prefix("score=")?.parse::<f64>().ok()?;
                let evalue = parts.next()?.strip_prefix("evalue=")?.parse::<f64>().ok()?;
                hits.push(AlignmentHit {
                    accession,
                    score,
                    evalue,
                });
            }
        }
        Some(AlignmentReport {
            program: program?,
            database: database?,
            query: query?,
            hits,
        })
    }

    /// Accessions of all hits, in rank order.
    pub fn hit_accessions(&self) -> Vec<&str> {
        self.hits.iter().map(|h| h.accession.as_str()).collect()
    }
}

/// A protein identification result (what the paper's `Identify` module emits).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdentificationReport {
    /// Best-matching protein accession.
    pub accession: String,
    /// Identification confidence in `[0, 1]`.
    pub confidence: f64,
    /// Number of peptide masses that matched.
    pub matched_peptides: usize,
}

impl fmt::Display for IdentificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IDENTIFIED {} confidence={:.3} peptides={}",
            self.accession, self.confidence, self.matched_peptides
        )
    }
}

impl IdentificationReport {
    /// Parses the `Display` rendering.
    pub fn parse(text: &str) -> Option<IdentificationReport> {
        let mut parts = text.split_whitespace();
        if parts.next()? != "IDENTIFIED" {
            return None;
        }
        let accession = parts.next()?.to_string();
        let confidence = parts.next()?.strip_prefix("confidence=")?.parse().ok()?;
        let matched_peptides = parts.next()?.strip_prefix("peptides=")?.parse().ok()?;
        Some(IdentificationReport {
            accession,
            confidence,
            matched_peptides,
        })
    }
}

/// A functional-annotation summary: term → evidence weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnotationReport {
    /// Subject of the annotation.
    pub accession: String,
    /// `(term, weight)` pairs, strongest first.
    pub terms: Vec<(String, f64)>,
}

impl AnnotationReport {
    /// Renders as `ANNOTATION acc\nterm weight` lines.
    pub fn render(&self) -> String {
        let mut out = format!("ANNOTATION {}\n", self.accession);
        for (term, weight) in &self.terms {
            out.push_str(&format!("{term} {weight:.4}\n"));
        }
        out
    }

    /// Parses a rendered annotation report.
    pub fn parse(text: &str) -> Option<AnnotationReport> {
        let mut lines = text.lines();
        let accession = lines.next()?.strip_prefix("ANNOTATION ")?.to_string();
        let mut terms = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let (term, weight) = line.rsplit_once(' ')?;
            terms.push((term.to_string(), weight.parse().ok()?));
        }
        Some(AnnotationReport { accession, terms })
    }
}

/// A phylogenetic tree in newick-like syntax, built from leaf labels.
///
/// The shape is a deterministic left-leaning ladder: `(((a,b),c),d);` — what
/// matters for behavior characterization is that equal inputs give equal
/// trees and different inputs give different trees.
pub fn newick_ladder(leaves: &[String]) -> String {
    match leaves {
        [] => ";".to_string(),
        [single] => format!("{single};"),
        [first, rest @ ..] => {
            let mut tree = first.clone();
            for leaf in rest {
                tree = format!("({tree},{leaf})");
            }
            format!("{tree};")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> AlignmentReport {
        AlignmentReport {
            program: "blastp".into(),
            database: "uniprot".into(),
            query: "P12345".into(),
            hits: vec![
                AlignmentHit {
                    accession: "Q99999".into(),
                    score: 812.5,
                    evalue: 1e-80,
                },
                AlignmentHit {
                    accession: "O11111".into(),
                    score: 230.0,
                    evalue: 2e-12,
                },
            ],
        }
    }

    #[test]
    fn alignment_report_round_trips() {
        let r = report();
        let text = r.render();
        let back = AlignmentReport::parse(&text).unwrap();
        assert_eq!(back.program, r.program);
        assert_eq!(back.database, r.database);
        assert_eq!(back.hits.len(), 2);
        assert_eq!(back.hit_accessions(), vec!["Q99999", "O11111"]);
        assert!((back.hits[0].score - 812.5).abs() < 1e-9);
    }

    #[test]
    fn alignment_report_with_no_hits() {
        let r = AlignmentReport {
            program: "fasta".into(),
            database: "pdb".into(),
            query: "1ABC".into(),
            hits: vec![],
        };
        let back = AlignmentReport::parse(&r.render()).unwrap();
        assert!(back.hits.is_empty());
    }

    #[test]
    fn alignment_parse_rejects_garbage() {
        assert!(AlignmentReport::parse("hello").is_none());
    }

    #[test]
    fn identification_report_round_trips() {
        let r = IdentificationReport {
            accession: "P12345".into(),
            confidence: 0.917,
            matched_peptides: 14,
        };
        let back = IdentificationReport::parse(&r.to_string()).unwrap();
        assert_eq!(back.accession, "P12345");
        assert_eq!(back.matched_peptides, 14);
        assert!((back.confidence - 0.917).abs() < 1e-9);
        assert!(IdentificationReport::parse("nope").is_none());
    }

    #[test]
    fn annotation_report_round_trips() {
        let r = AnnotationReport {
            accession: "hsa:10458".into(),
            terms: vec![("GO:0008150".into(), 0.93), ("GO:0003674".into(), 0.41)],
        };
        let back = AnnotationReport::parse(&r.render()).unwrap();
        assert_eq!(back.accession, r.accession);
        assert_eq!(back.terms.len(), 2);
        assert_eq!(back.terms[0].0, "GO:0008150");
    }

    #[test]
    fn newick_shapes() {
        assert_eq!(newick_ladder(&[]), ";");
        assert_eq!(newick_ladder(&["a".into()]), "a;");
        assert_eq!(
            newick_ladder(&["a".into(), "b".into(), "c".into()]),
            "((a,b),c);"
        );
    }
}
